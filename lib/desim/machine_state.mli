(** Per-machine dynamic state of the fault-injected simulation.

    Extracted from the engine monolith: each machine carries its
    liveness, outage clock, straggler speed factor, the copy it is
    processing, and the recovery bookkeeping (orphaned copies, pending
    failure detections, blink count for backoff, and the machine-local
    checkpoint store). The engine mutates these fields directly — the
    module is a state container plus the clock/speed helpers, not an
    abstraction boundary; keeping the fields transparent is what lets
    the refactored engine stay bit-for-bit identical to the monolith. *)

module Bitset = Usched_model.Bitset

(** A copy of a task in flight on one machine. [c_remaining] is
    re-synced at every speed change, so completion predictions stay
    exact under mid-task slowdowns. [c_base] is work banked by earlier
    checkpointed attempts (always 0 without a recovery policy). *)
type copy = {
  c_task : int;
  c_started : float;
  mutable c_remaining : float;  (** actual-time units of work left *)
  mutable c_last : float;  (** when [c_remaining] was last synced *)
  c_base : float;  (** actual-time units resumed from a checkpoint *)
}

type machine = {
  mutable alive : bool;
  mutable down_until : float;
      (** unavailable while [now < down_until] *)
  mutable factor : float;  (** straggler speed multiplier *)
  mutable gen : int;  (** invalidates queued completion events *)
  mutable current : copy option;
  mutable orphan : int option;
      (** copy killed by a failure the scheduler has not yet detected *)
  mutable undetected : float option;
      (** earliest failure time awaiting detection *)
  mutable blinks : int;  (** outages suffered so far, drives backoff *)
  mutable trust_after : float;  (** no dispatches before this time *)
  mutable ckpt : (int * float) option;
      (** task and work preserved on local disk by its last checkpoint *)
}

type t

val create : ?speeds:float array -> m:int -> unit -> t
(** All machines up, at their configured base speed (default 1.0),
    holding nothing. *)

val m : t -> int
val get : t -> int -> machine

val alive_set : t -> Bitset.t
(** Machines that have not crashed (shared, kept in sync by
    {!mark_crashed}). *)

val base_speed : t -> int -> float
(** The configured speed, before any slowdown factor. *)

val eff_speed : t -> int -> float
(** [base_speed * factor]: the rate at which the machine currently
    processes work. *)

val available : t -> time:float -> int -> bool
(** Alive and not inside an outage window. *)

val idle : t -> time:float -> int -> bool
(** {!available} and processing nothing. *)

val mark_crashed : t -> int -> unit
(** Permanently removes the machine: clears [alive] and updates
    {!alive_set}. *)

val fresh_copy : task:int -> time:float -> work:float -> copy
val resumed_copy : task:int -> time:float -> work:float -> banked:float -> copy

val sync_remaining : copy -> time:float -> speed:float -> unit
(** Bank the work processed since the last sync at [speed] (used at
    speed changes; intentionally unclamped, matching the engine's
    slowdown arithmetic). *)

val remaining_at : copy -> time:float -> speed:float -> float
(** Non-mutating, clamped view of the work left at [time] if the copy
    ran at [speed] since its last sync (used by checkpoint salvage). *)
