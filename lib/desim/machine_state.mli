(** Per-machine dynamic state of the fault-injected simulation,
    laid out struct-of-arrays.

    Each machine carries its liveness, outage clock, straggler speed
    factor, the copy it is processing, and the recovery bookkeeping
    (orphaned copies, pending failure detections, blink count for
    backoff, and the machine-local checkpoint store) — one unboxed
    int/float lane per field instead of a record per machine. The
    in-flight copy lives in the [cur_*] lanes with [cur_task.(i) = -1]
    meaning idle; the former option-typed recovery fields use sentinel
    values ([orphan = -1], [undetected = nan], [ckpt_task = -1]).

    The engine mutates the lanes directly — this module is a state
    container plus the clock/speed helpers, not an abstraction
    boundary. Keeping the representation transparent (and off the
    minor heap: full-length lanes are major-heap allocations) is what
    lets the engine's hot loops run allocation-free. *)

module Bitset = Usched_model.Bitset

type t = {
  m : int;
  base : float array;  (** configured speed (1.0 when unspecified) *)
  alive : bool array;
  down_until : float array;  (** unavailable while [now < down_until] *)
  factor : float array;  (** straggler speed multiplier *)
  gen : int array;  (** invalidates queued completion events *)
  cur_task : int array;  (** task in flight; -1 = idle *)
  cur_started : float array;
  cur_remaining : float array;  (** actual-time units of work left *)
  cur_last : float array;  (** when [cur_remaining] was last synced *)
  cur_base : float array;
      (** actual-time units resumed from a checkpoint (0 without
          recovery) *)
  orphan : int array;
      (** copy killed by an undetected failure; -1 = none *)
  undetected : float array;
      (** earliest failure time awaiting detection; nan = none *)
  blinks : int array;  (** outages suffered so far, drives backoff *)
  trust_after : float array;  (** no dispatches before this time *)
  ckpt_task : int array;
      (** task preserved on local disk by its last checkpoint; -1 = none *)
  ckpt_work : float array;  (** work banked by that checkpoint *)
  alive_set : Bitset.t;
      (** machines that have not crashed (kept in sync by
          {!mark_crashed}) *)
}

val create : ?speeds:float array -> m:int -> unit -> t
(** All machines up, at their configured base speed (default 1.0),
    holding nothing. [speeds] is copied. *)

val m : t -> int

val alive_set : t -> Bitset.t

val base_speed : t -> int -> float
(** The configured speed, before any slowdown factor. *)

val eff_speed : t -> int -> float
(** [base_speed * factor]: the rate at which the machine currently
    processes work. *)

val available : t -> time:float -> int -> bool
(** Alive and not inside an outage window. *)

val idle : t -> time:float -> int -> bool
(** {!available} and processing nothing. *)

val mark_crashed : t -> int -> unit
(** Permanently removes the machine: clears [alive] and updates
    [alive_set]. *)

val start_fresh : t -> int -> task:int -> time:float -> work:float -> unit
(** Install a fresh copy of [task] on machine [i]. *)

val start_resumed :
  t -> int -> task:int -> time:float -> work:float -> banked:float -> unit
(** Install a copy resuming from [banked] checkpointed work. *)

val clear_current : t -> int -> unit
(** The machine holds nothing ([cur_task.(i) <- -1]). *)

val sync_remaining : t -> int -> time:float -> speed:float -> unit
(** Bank the work processed since the last sync at [speed] (used at
    speed changes; intentionally unclamped, matching the engine's
    slowdown arithmetic). *)

val remaining_at : t -> int -> time:float -> speed:float -> float
(** Non-mutating, clamped view of the work left at [time] if the copy
    ran at [speed] since its last sync (used by checkpoint salvage). *)
