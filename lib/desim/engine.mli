(** The phase-2 execution engine.

    Every online policy in the paper is an instance of {e
    eligibility-restricted list scheduling}: tasks carry a fixed priority
    order, and whenever a machine becomes idle it starts the
    highest-priority unscheduled task whose data it holds. The engine
    simulates this with a machine-idle event queue; actual processing
    times drive the clock (they are only "revealed" through completion
    events, exactly the semi-clairvoyant model of the paper).

    Instances of this engine:
    - LPT-No Restriction: full placement, order = estimates descending;
    - Graham LS: full placement, order = submission order;
    - LS-Group phase 2: group placement, order = phase-1 group assignment
      order;
    - static strategies: singleton placements (the order is irrelevant).

    Determinism: simultaneous idle machines are served in increasing
    machine id; the task order breaks all other ties. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type event =
  | Started of { time : float; machine : int; task : int }
  | Completed of { time : float; machine : int; task : int }

val run :
  ?speeds:float array ->
  Instance.t ->
  Realization.t ->
  placement:Bitset.t array ->
  order:int array ->
  Schedule.t
(** Simulate to completion. [speeds] (default all 1.0) gives each
    machine a speed: a task with actual processing requirement [p]
    occupies machine [i] for [p / speeds.(i)] — the uniform (related)
    machines extension. Raises [Invalid_argument] when [placement] or
    [order] is malformed (wrong length, empty machine set, order not a
    permutation), when [speeds] has the wrong length or a non-positive
    entry, and [Failure] if some task can never be scheduled (impossible
    for well-formed inputs). *)

val run_traced :
  ?speeds:float array ->
  Instance.t ->
  Realization.t ->
  placement:Bitset.t array ->
  order:int array ->
  Schedule.t * event list
(** Like {!run}, also returning the chronological event log. *)
