(** The phase-2 execution engine — a thin composition of the layered
    desim core: [Machine_state] (per-machine clocks, speeds, up/down
    state, checkpoint store), [Event_core] (the typed priority-queue
    event loop with its simultaneous-event ordering contract), and
    {!Dispatch} (the pluggable policy deciding which eligible task an
    idle machine starts).

    Every online policy in the paper is an instance of {e
    eligibility-restricted list scheduling}: tasks carry a fixed priority
    order, and whenever a machine becomes idle it starts the
    highest-priority unscheduled task whose data it holds. The engine
    simulates this with a machine-idle event queue; actual processing
    times drive the clock (they are only "revealed" through completion
    events, exactly the semi-clairvoyant model of the paper).

    Instances of this engine:
    - LPT-No Restriction: full placement, order = estimates descending;
    - Graham LS: full placement, order = submission order;
    - LS-Group phase 2: group placement, order = phase-1 group assignment
      order;
    - static strategies: singleton placements (the order is irrelevant).

    The {e which-eligible-task} rule is a first-class parameter: every
    entry point takes [?dispatch:Dispatch.spec] (default
    [Dispatch.List_priority], bit-for-bit the historical behavior).
    Alternative policies — least-loaded holder, earliest estimated
    completion, seeded random tie-breaking — only see scheduler-visible
    state, so the semi-clairvoyant model is preserved whichever policy
    runs.

    Determinism: simultaneous idle machines are served in increasing
    machine id (machines freed at the same instant re-dispatch in
    increasing machine id too — [Dispatch.redispatch_order] is the
    single home of that contract); the dispatch policy breaks all other
    ties (the default follows the task order).

    {!run_faulty} extends the same engine with dynamic fault injection
    (see [Usched_faults]): machines crash permanently mid-run, blink out
    transiently, or degrade into stragglers, and the engine re-dispatches
    killed work to surviving replica holders — the Hadoop fault-tolerance
    story from the paper's introduction, made executable.

    {b Observability}: every entry point accepts an optional
    [Usched_obs.Metrics] registry. When one is passed, the engine records
    (write-only — metrics never influence the simulation, so outputs are
    bit-for-bit identical with metrics on or off):

    - [engine.events] (counter): simulation events processed;
    - [engine.dispatches] (counter): task copies started;
    - [engine.redispatches] (counter): copies started for a task whose
      previous copies were all killed (fault recovery);
    - [engine.spec_starts] / [engine.spec_cancelled] (counters):
      speculative backup copies started / aborted after losing the race;
    - [engine.kills] (counter): in-flight copies killed by crash/outage;
    - [engine.crashes] / [engine.outages] / [engine.slowdowns] (counters);
    - [engine.completed] / [engine.stranded] (counters);
    - [engine.queue_depth_max] (gauge): high-water mark of the event
      queue;
    - [engine.makespan] / [engine.wasted_work] (gauges);
    - [engine.machine_idle] (histogram): per-machine time not spent
      processing, over [[0, makespan]] (downtime and a crashed machine's
      tail count as idle).

    Under an active recovery policy (and only then — they are registered
    lazily at their first use, so a policy that never triggers them
    leaves the snapshot untouched):

    - [engine.rereplications] (counter): data transfers completed;
    - [engine.transfer_aborts] (counter): transfers killed mid-copy by
      an endpoint crash;
    - [engine.transfer_time] (histogram): per-completed-transfer
      duration;
    - [engine.checkpoint_resumes] (counter): copies resumed from a
      checkpoint;
    - [engine.detection_lag] (histogram): failure-to-knowledge delay per
      acknowledged failure.

    Registries accumulate across runs when reused; pass a fresh one per
    run for per-run numbers. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Metrics = Usched_obs.Metrics

type event =
  | Arrived of { time : float; task : int }
      (** The task entered the system (streaming runs only — batch runs
          behave as if every task arrived at t = 0 and emit no arrival
          events). *)
  | Started of { time : float; machine : int; task : int }
  | Completed of { time : float; machine : int; task : int }
  | Killed of { time : float; machine : int; task : int }
      (** A running copy died with its machine (crash or outage); the work
          is lost, the task returns to the pool. *)
  | Cancelled of { time : float; machine : int; task : int }
      (** A speculative duplicate lost the race: another copy of the task
          finished first and this one was aborted. *)
  | Machine_crashed of { time : float; machine : int }
  | Machine_down of { time : float; machine : int; until : float }
  | Machine_up of { time : float; machine : int }
  | Machine_slowed of { time : float; machine : int; factor : float }
  | Failure_detected of { time : float; machine : int }
      (** The scheduler learned of the machine's failure — the detector
          fired, or the machine truthfully reported an outage on rejoin.
          Only emitted under a recovery policy with a detection latency,
          and only for failures the scheduler must react to. *)
  | Rereplication_started of { time : float; task : int; src : int; dst : int }
      (** The healer began copying the task's data from holder [src] to
          [dst] (recovery policies with [rereplication_target > 0]). *)
  | Rereplication_completed of {
      time : float;
      task : int;
      src : int;
      dst : int;
    }  (** [dst] now holds the task's data: its eligibility set grew. *)
  | Rereplication_aborted of { time : float; task : int; src : int; dst : int }
      (** An endpoint crashed mid-transfer; the partial copy is useless. *)
  | Checkpoint_resumed of {
      time : float;
      machine : int;
      task : int;
      progress : float;
    }
      (** The machine restarted the task from its local checkpoint with
          [progress] actual-time units of work already banked (always
          follows a [Started] event at the same time). *)

exception Unschedulable of int list
(** Raised by {!run} when the listed tasks can never be scheduled.
    Impossible for well-formed inputs — a placement guarantees every task
    a non-empty machine set — so catching it means the inputs lied, not
    that data was lost. Genuine data loss only exists under failures and
    is {e reported}, never raised: {!run_faulty} returns the same task
    ids as [Stranded] fates in its {!outcome}. *)

val run :
  ?speeds:float array ->
  ?dispatch:Dispatch.spec ->
  ?metrics:Metrics.t ->
  Instance.t ->
  Realization.t ->
  placement:Bitset.t array ->
  order:int array ->
  Schedule.t
(** Simulate to completion. [speeds] (default all 1.0) gives each
    machine a speed: a task with actual processing requirement [p]
    occupies machine [i] for [p / speeds.(i)] — the uniform (related)
    machines extension. [dispatch] (default [Dispatch.List_priority])
    selects the rule an idle machine uses to pick among its eligible
    tasks; every policy is work-conserving, so {!Unschedulable} does not
    depend on the policy. Raises [Invalid_argument] when [placement] or
    [order] is malformed (wrong length, empty machine set, order not a
    permutation), when [speeds] has the wrong length or a non-positive
    entry, and {!Unschedulable} if some task can never be scheduled
    (impossible for well-formed inputs). *)

val run_traced :
  ?speeds:float array ->
  ?dispatch:Dispatch.spec ->
  ?metrics:Metrics.t ->
  Instance.t ->
  Realization.t ->
  placement:Bitset.t array ->
  order:int array ->
  Schedule.t * event list
(** Like {!run}, also returning the chronological event log. *)

(** {1 Fault injection} *)

type fate =
  | Finished of Schedule.entry
      (** The surviving copy's machine and start/finish times. *)
  | Stranded
      (** Every machine holding the task's data crashed before any copy
          could finish or transfer out — the data is gone and the task
          cannot complete. *)

type outcome = {
  fates : fate array;  (** Per task id. *)
  completed : int;  (** Number of [Finished] tasks. *)
  stranded : int list;  (** Ids of [Stranded] tasks, ascending. *)
  makespan : float;
      (** Effective makespan: latest finish among completed tasks (0.0 if
          nothing completed). When tasks are stranded this measures what
          the survivors achieved, not a full-workload makespan. *)
  wasted : float;
      (** Total machine-time consumed by copies that did not produce the
          task's result: work killed by crashes/outages plus speculative
          duplicates that lost their race. 0.0 on an empty trace. *)
  metrics : Metrics.snapshot;
      (** Snapshot of the run's metrics registry at the end of the run
          (see the module docstring for instrument names); empty when no
          [metrics] registry was passed. *)
}

val outcome_schedule : m:int -> outcome -> Schedule.t option
(** The outcome as a {!Schedule.t} over [m] machines when every task
    finished; [None] as soon as one task is stranded. *)

val run_faulty :
  ?speeds:float array ->
  ?speculation:float ->
  ?dispatch:Dispatch.spec ->
  ?recovery:Usched_faults.Recovery.t ->
  ?metrics:Metrics.t ->
  Instance.t ->
  Realization.t ->
  faults:Usched_faults.Trace.t ->
  placement:Bitset.t array ->
  order:int array ->
  outcome
(** {!run} under a failure trace. Semantics:

    - {b Crash} at [t]: the machine is removed forever. Its in-flight
      copy (if any) is killed — the work done so far is lost, counted in
      [wasted], and the task returns to the pool for re-dispatch to a
      surviving holder of its data. The machine leaves every task's
      eligibility set (its disk is gone); a task whose last replica
      holder crashes before some copy finishes becomes [Stranded] —
      reported, never raised.
    - {b Outage} over [[t, until)]: like a crash at [t] (in-flight work
      is lost, unless checkpointed — see below) except the disk
      survives: the machine keeps its data, accepts no work during the
      interval, and rejoins at [until].
    - {b Slowdown} by [f] at [t]: from [t] on the machine processes work
      at [f] times its configured speed; the completion of an in-flight
      copy is re-predicted from its remaining work.
    - {b Speculation} ([speculation = Some beta], off by default): when a
      copy of task [j] started on machine [i] has been running longer
      than [beta * est(j) / speeds.(i)] — estimates, not actuals: the
      scheduler is semi-clairvoyant — an idle surviving holder of [j]'s
      data may start a backup copy (at most one duplicate; the copy is
      restarted from scratch). The first copy to finish wins; the other
      is aborted and its machine-time counted in [wasted].
    - {b Dispatch} ([dispatch], default [Dispatch.List_priority]): the
      rule an idle machine uses to pick among eligible tasks, including
      re-dispatch after kills and picks among re-replicated data.
      Policies see only scheduler-visible state (never actuals); the
      checkpoint-resume preference and speculation remain engine
      mechanisms, applied identically under every policy.
    - {b Recovery} ([recovery], default {!Usched_faults.Recovery.none}):
      the scheduler heals instead of merely reacting — see
      [Usched_faults.Recovery] for the four mechanisms (failure
      detection with latency, online re-replication that grows
      eligibility sets mid-run, checkpoint/resume across outages,
      capped-backoff distrust of blinking machines). With the default
      [none] policy the engine runs the exact pre-recovery code path:
      same branches, same float operations, same events, same metrics —
      bit-for-bit.

    Determinism: simultaneous events are ordered by time, then machine
    id, then class (fault events and failure detections before
    completions and data-transfer arrivals, before dispatch decisions),
    then insertion order — so a crash kills a task finishing at exactly
    the same instant on the same machine, and an empty trace reproduces
    {!run} bit-for-bit (identical float arithmetic, identical
    tie-breaking).

    Raises [Invalid_argument] on malformed inputs, when the trace's
    machine count differs from the instance, or when [speculation] is
    not positive. *)

val run_faulty_traced :
  ?speeds:float array ->
  ?speculation:float ->
  ?dispatch:Dispatch.spec ->
  ?recovery:Usched_faults.Recovery.t ->
  ?metrics:Metrics.t ->
  Instance.t ->
  Realization.t ->
  faults:Usched_faults.Trace.t ->
  placement:Bitset.t array ->
  order:int array ->
  outcome * event list
(** Like {!run_faulty}, also returning the chronological event log
    (including kills, cancellations, machine state changes, and the
    recovery events: detections, re-replications, checkpoint resumes). *)

(** {1 Open-system streaming service mode}

    The batch entry points above answer "how fast does this placement
    clear a fixed workload"; {!run_stream} answers "what response times
    does it sustain when tasks keep arriving". Task [j] becomes visible
    to the scheduler only at [arrivals.(j)]; until then it cannot be
    dispatched (its data placement exists from t = 0 — data is staged
    ahead, requests arrive online). Everything else composes unchanged:
    fault traces, recovery policies, dispatch policies, and speculation —
    which doubles as the replicate-on-straggler latency policy: an
    overdue copy gets a backup replica, the first finisher wins, the
    loser is cancelled and its machine-time credited to
    [outcome.wasted]. *)

type stream_outcome = {
  outcome : outcome;
      (** The underlying batch-style outcome. [makespan] is the drain
          time: the instant the last admitted task finished. *)
  latencies : float array;
      (** Per-finished-task response time [finish - arrival], in task-id
          (= admission) order; stranded tasks are absent. Feed this to
          [Usched_stats] for p50/p95/p99. *)
}

val run_stream :
  ?speeds:float array ->
  ?speculation:float ->
  ?dispatch:Dispatch.spec ->
  ?recovery:Usched_faults.Recovery.t ->
  ?metrics:Metrics.t ->
  ?faults:Usched_faults.Trace.t ->
  Instance.t ->
  Realization.t ->
  arrivals:float array ->
  placement:Bitset.t array ->
  order:int array ->
  stream_outcome
(** Simulate the open system until it drains: every admitted task
    completes or strands. [arrivals] gives task [j]'s arrival instant
    (one per task, finite, [>= 0], any order — generate with
    {!Arrival.generate} / {!Arrival.generate_until}); [faults] defaults
    to the empty trace.

    Ordering contract: arrivals are events on the virtual source
    "machine" [-1] with class [Event_core.cls_arrival], so at an equal
    instant every arrival strikes before any per-machine event. In
    particular a stream whose arrivals all land at t = 0 sees the whole
    workload before the first dispatch decision and reproduces the batch
    engine bit-for-bit.

    Streaming runs register two extra instruments (never present in
    batch snapshots): [engine.arrivals] (counter) and [engine.latency]
    (histogram of per-completion response times).

    Raises [Invalid_argument] on malformed inputs (see {!run_faulty})
    or when [arrivals] has the wrong length or a non-finite/negative
    entry. *)

val run_stream_traced :
  ?speeds:float array ->
  ?speculation:float ->
  ?dispatch:Dispatch.spec ->
  ?recovery:Usched_faults.Recovery.t ->
  ?metrics:Metrics.t ->
  ?faults:Usched_faults.Trace.t ->
  Instance.t ->
  Realization.t ->
  arrivals:float array ->
  placement:Bitset.t array ->
  order:int array ->
  stream_outcome * event list
(** Like {!run_stream}, also returning the chronological event log
    (arrivals included). *)

(** {1 JSON serialization}

    The trace sink's view of a run ([usched solve --trace]): one JSONL
    object per event, plus a closing outcome record. *)

val event_json : event -> Usched_report.Json.t
(** [{"type":"event","kind":"started","t":..,"machine":..,"task":..}] and
    friends; [Machine_down] adds ["until"], [Machine_slowed] adds
    ["factor"]. *)

val outcome_json : outcome -> Usched_report.Json.t
(** [{"type":"outcome","completed":..,"stranded":[..],"makespan":..,
    "wasted":..,"metrics":{..}}]. *)
