module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type entry = { machine : int; start : float; finish : float }

type t = { m : int; entries : entry array }

let make ~m entries =
  Array.iteri
    (fun j e ->
      if e.machine < 0 || e.machine >= m then
        invalid_arg (Printf.sprintf "Schedule.make: task %d on machine %d" j e.machine);
      if e.start < 0.0 || e.finish < e.start then
        invalid_arg (Printf.sprintf "Schedule.make: task %d has bad times" j))
    entries;
  { m; entries = Array.copy entries }

let n t = Array.length t.entries
let m t = t.m
let entry t j = t.entries.(j)
let machine_of t j = t.entries.(j).machine

let makespan t = Array.fold_left (fun acc e -> Float.max acc e.finish) 0.0 t.entries

let loads t =
  let loads = Array.make t.m 0.0 in
  Array.iter
    (fun e -> loads.(e.machine) <- loads.(e.machine) +. (e.finish -. e.start))
    t.entries;
  loads

let machine_tasks t i =
  let tasks = ref [] in
  Array.iteri (fun j e -> if e.machine = i then tasks := j :: !tasks) t.entries;
  List.sort
    (fun a b -> Float.compare t.entries.(a).start t.entries.(b).start)
    !tasks

let assignment t = Array.map (fun e -> e.machine) t.entries

let of_assignment ~m ~durations assignment =
  if Array.length durations <> Array.length assignment then
    invalid_arg "Schedule.of_assignment: length mismatch";
  let next_free = Array.make m 0.0 in
  let entries =
    Array.mapi
      (fun j machine ->
        let start = next_free.(machine) in
        let finish = start +. durations.(j) in
        next_free.(machine) <- finish;
        { machine; start; finish })
      assignment
  in
  make ~m entries

type violation =
  | Overlap of { machine : int; task_a : int; task_b : int }
  | Wrong_duration of { task : int; expected : float; got : float }
  | Not_allowed of { task : int; machine : int }

let validate ?placement ?speeds instance realization t =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let tolerance = 1e-9 *. Float.max 1.0 (makespan t) in
  let speed_of i = match speeds with None -> 1.0 | Some s -> s.(i) in
  (* Durations must match the realized actual times (scaled by machine
     speed on uniform machines). *)
  Array.iteri
    (fun j e ->
      let expected = Realization.actual realization j /. speed_of e.machine in
      let got = e.finish -. e.start in
      if Float.abs (expected -. got) > tolerance then
        push (Wrong_duration { task = j; expected; got }))
    t.entries;
  (* Data locality: each task ran where its data was placed. *)
  (match placement with
  | None -> ()
  | Some sets ->
      Array.iteri
        (fun j e ->
          if not (Bitset.mem sets.(j) e.machine) then
            push (Not_allowed { task = j; machine = e.machine }))
        t.entries);
  (* No two tasks overlap on one machine. *)
  for i = 0 to t.m - 1 do
    let tasks = machine_tasks t i in
    let rec check = function
      | a :: (b :: _ as rest) ->
          if t.entries.(a).finish > t.entries.(b).start +. tolerance then
            push (Overlap { machine = i; task_a = a; task_b = b });
          check rest
      | _ -> ()
    in
    check tasks
  done;
  ignore instance;
  List.rev !violations

let pp_violation ppf = function
  | Overlap { machine; task_a; task_b } ->
      Format.fprintf ppf "overlap on machine %d between tasks %d and %d" machine
        task_a task_b
  | Wrong_duration { task; expected; got } ->
      Format.fprintf ppf "task %d ran for %g instead of %g" task got expected
  | Not_allowed { task; machine } ->
      Format.fprintf ppf "task %d executed on machine %d without its data" task
        machine

let pp ppf t =
  Format.fprintf ppf "schedule(n=%d, m=%d, makespan=%g)" (n t) t.m (makespan t)
