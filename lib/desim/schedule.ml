module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type entry = { machine : int; start : float; finish : float }

(* Struct-of-arrays internally: one int lane and two unboxed float
   lanes instead of an array of 4-word mixed records. The engines fill
   the lanes in place and hand them over via [of_soa] without building
   a record per task; [entry] records are materialized on demand. *)
type t = { m : int; machines : int array; starts : float array; finishes : float array }

let check ~m t =
  let n = Array.length t.machines in
  for j = 0 to n - 1 do
    let machine = t.machines.(j) in
    if machine < 0 || machine >= m then
      invalid_arg (Printf.sprintf "Schedule.make: task %d on machine %d" j machine);
    let start = t.starts.(j) and finish = t.finishes.(j) in
    if start < 0.0 || finish < start then
      invalid_arg (Printf.sprintf "Schedule.make: task %d has bad times" j)
  done;
  t

let make ~m entries =
  check ~m
    {
      m;
      machines = Array.map (fun e -> e.machine) entries;
      starts = Array.map (fun e -> e.start) entries;
      finishes = Array.map (fun e -> e.finish) entries;
    }

let of_soa ~m ~machines ~starts ~finishes =
  let n = Array.length machines in
  if Array.length starts <> n || Array.length finishes <> n then
    invalid_arg "Schedule.of_soa: length mismatch";
  check ~m { m; machines; starts; finishes }

let n t = Array.length t.machines
let m t = t.m

let entry t j =
  { machine = t.machines.(j); start = t.starts.(j); finish = t.finishes.(j) }

let machine_of t j = t.machines.(j)

let makespan t = Array.fold_left Float.max 0.0 t.finishes

let loads t =
  let loads = Array.make t.m 0.0 in
  for j = 0 to n t - 1 do
    let i = t.machines.(j) in
    loads.(i) <- loads.(i) +. (t.finishes.(j) -. t.starts.(j))
  done;
  loads

let machine_tasks t i =
  let tasks = ref [] in
  for j = n t - 1 downto 0 do
    if t.machines.(j) = i then tasks := j :: !tasks
  done;
  List.sort (fun a b -> Float.compare t.starts.(a) t.starts.(b)) !tasks

let assignment t = Array.copy t.machines

let of_assignment ~m ~durations assignment =
  let n = Array.length assignment in
  if Array.length durations <> n then
    invalid_arg "Schedule.of_assignment: length mismatch";
  let next_free = Array.make m 0.0 in
  let machines = Array.copy assignment in
  let starts = Array.make n 0.0 in
  let finishes = Array.make n 0.0 in
  (* Machine range is validated by [check] below; guard the indexing
     into [next_free] here so a bad machine id fails with the make
     error, not an array bound. *)
  Array.iteri
    (fun j machine ->
      if machine >= 0 && machine < m then begin
        let start = next_free.(machine) in
        let finish = start +. durations.(j) in
        next_free.(machine) <- finish;
        starts.(j) <- start;
        finishes.(j) <- finish
      end)
    machines;
  check ~m { m; machines; starts; finishes }

type violation =
  | Overlap of { machine : int; task_a : int; task_b : int }
  | Wrong_duration of { task : int; expected : float; got : float }
  | Not_allowed of { task : int; machine : int }

let validate ?placement ?speeds instance realization t =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let tolerance = 1e-9 *. Float.max 1.0 (makespan t) in
  let speed_of i = match speeds with None -> 1.0 | Some s -> s.(i) in
  (* Durations must match the realized actual times (scaled by machine
     speed on uniform machines). *)
  for j = 0 to n t - 1 do
    let expected = Realization.actual realization j /. speed_of t.machines.(j) in
    let got = t.finishes.(j) -. t.starts.(j) in
    if Float.abs (expected -. got) > tolerance then
      push (Wrong_duration { task = j; expected; got })
  done;
  (* Data locality: each task ran where its data was placed. *)
  (match placement with
  | None -> ()
  | Some sets ->
      for j = 0 to n t - 1 do
        if not (Bitset.mem sets.(j) t.machines.(j)) then
          push (Not_allowed { task = j; machine = t.machines.(j) })
      done);
  (* No two tasks overlap on one machine. *)
  for i = 0 to t.m - 1 do
    let tasks = machine_tasks t i in
    let rec check = function
      | a :: (b :: _ as rest) ->
          if t.finishes.(a) > t.starts.(b) +. tolerance then
            push (Overlap { machine = i; task_a = a; task_b = b });
          check rest
      | _ -> ()
    in
    check tasks
  done;
  ignore instance;
  List.rev !violations

let pp_violation ppf = function
  | Overlap { machine; task_a; task_b } ->
      Format.fprintf ppf "overlap on machine %d between tasks %d and %d" machine
        task_a task_b
  | Wrong_duration { task; expected; got } ->
      Format.fprintf ppf "task %d ran for %g instead of %g" task got expected
  | Not_allowed { task; machine } ->
      Format.fprintf ppf "task %d executed on machine %d without its data" task
        machine

let pp ppf t =
  Format.fprintf ppf "schedule(n=%d, m=%d, makespan=%g)" (n t) t.m (makespan t)
