module Rng = Usched_prng.Rng

type t =
  | Poisson of { rate : float }
  | Mmpp of { rates : float array; switch : float }
  | Trace of float array

let finite_pos name v =
  if not (Float.is_finite v && v > 0.0) then
    invalid_arg (Printf.sprintf "Arrival.%s must be finite and > 0" name)

let poisson ~rate =
  finite_pos "poisson: rate" rate;
  Poisson { rate }

let mmpp ~rates ~switch =
  if Array.length rates = 0 then invalid_arg "Arrival.mmpp: no rates";
  Array.iter
    (fun r ->
      if not (Float.is_finite r && r >= 0.0) then
        invalid_arg "Arrival.mmpp: rates must be finite and >= 0")
    rates;
  if not (Array.exists (fun r -> r > 0.0) rates) then
    invalid_arg "Arrival.mmpp: at least one rate must be > 0";
  finite_pos "mmpp: switch" switch;
  Mmpp { rates = Array.copy rates; switch }

let trace times =
  let prev = ref 0.0 in
  Array.iter
    (fun x ->
      if not (Float.is_finite x && x >= 0.0) then
        invalid_arg "Arrival.trace: instants must be finite and >= 0";
      if x < !prev then
        invalid_arg "Arrival.trace: instants must be non-decreasing";
      prev := x)
    times;
  Trace (Array.copy times)

let mean_rate = function
  | Poisson { rate } -> rate
  | Mmpp { rates; switch = _ } ->
      Array.fold_left ( +. ) 0.0 rates /. float_of_int (Array.length rates)
  | Trace times ->
      let n = Array.length times in
      if n = 0 then 0.0
      else
        let span = times.(n - 1) in
        if span > 0.0 then float_of_int n /. span else 0.0

(* Inverse-CDF exponential variate. [Rng.float] is uniform in [0, 1), so
   [1 - u] is in (0, 1] and the log is finite; a rate-0 state never
   produces an arrival (infinite delay). *)
let exponential rng ~rate =
  if rate <= 0.0 then infinity else -.Float.log1p (-.Rng.float rng) /. rate

(* Fold arrivals into [emit] until [continue] says stop. Every process
   generates a non-decreasing sequence starting from time 0. *)
let iter_arrivals t rng ~continue ~emit =
  match t with
  | Poisson { rate } ->
      let now = ref 0.0 in
      let rec loop () =
        if continue !now then begin
          now := !now +. exponential rng ~rate;
          if continue !now then begin
            emit !now;
            loop ()
          end
        end
      in
      loop ()
  | Mmpp { rates; switch } ->
      let k = Array.length rates in
      let now = ref 0.0 in
      let state = ref 0 in
      let state_end = ref (exponential rng ~rate:(1.0 /. switch)) in
      let rec loop () =
        if continue !now then begin
          let candidate = !now +. exponential rng ~rate:rates.(!state) in
          if candidate <= !state_end then begin
            now := candidate;
            if continue !now then begin
              emit !now;
              loop ()
            end
          end
          else begin
            (* Sojourn expired before the next arrival: the memoryless
               within-state process restarts in the next state. *)
            now := !state_end;
            state := (!state + 1) mod k;
            state_end := !state_end +. exponential rng ~rate:(1.0 /. switch);
            loop ()
          end
        end
      in
      loop ()
  | Trace times ->
      let i = ref 0 in
      while !i < Array.length times && continue times.(!i) do
        emit times.(!i);
        incr i
      done

let generate t rng ~count =
  if count < 0 then invalid_arg "Arrival.generate: count < 0";
  (match t with
  | Trace times when Array.length times < count ->
      invalid_arg
        (Printf.sprintf
           "Arrival.generate: trace holds %d arrivals, %d requested"
           (Array.length times) count)
  | _ -> ());
  let out = Array.make count 0.0 in
  let filled = ref 0 in
  iter_arrivals t rng
    ~continue:(fun _ -> !filled < count)
    ~emit:(fun x ->
      out.(!filled) <- x;
      incr filled);
  out

let generate_until t rng ~horizon =
  if not (Float.is_finite horizon && horizon > 0.0) then
    invalid_arg "Arrival.generate_until: horizon must be finite and > 0";
  let acc = ref [] in
  let n = ref 0 in
  iter_arrivals t rng
    ~continue:(fun now -> now < horizon)
    ~emit:(fun x ->
      acc := x :: !acc;
      incr n);
  let out = Array.make !n 0.0 in
  List.iteri (fun i x -> out.(!n - 1 - i) <- x) !acc;
  out

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | Mmpp { rates; switch } ->
      Printf.sprintf "mmpp:%s:%g"
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%g") rates)))
        switch
  | Trace times -> Printf.sprintf "trace:<%d arrivals>" (Array.length times)

let grammar = "rate:L | poisson:L | mmpp:R1,R2,...:S | trace:FILE"

let fail fmt = Printf.ksprintf (fun msg -> Error (msg ^ " (" ^ grammar ^ ")")) fmt

let read_trace_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> fail "trace: %s" msg
  | lines -> (
      let values =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then None else Some line)
          lines
      in
      let parsed =
        List.map
          (fun s ->
            match float_of_string_opt s with
            | Some v -> Ok v
            | None -> Error s)
          values
      in
      match
        List.find_opt (function Error _ -> true | Ok _ -> false) parsed
      with
      | Some (Error s) -> fail "trace %s: invalid arrival instant %S" path s
      | _ -> (
          let arr =
            Array.of_list
              (List.map (function Ok v -> v | Error _ -> 0.0) parsed)
          in
          match trace arr with
          | t -> Ok t
          | exception Invalid_argument msg -> fail "trace %s: %s" path msg))

let of_string s =
  let pos_float name v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f && f > 0.0 -> Ok f
    | Some f -> fail "%s %g must be finite and > 0" name f
    | None -> fail "invalid %s %S" name v
  in
  match String.index_opt s ':' with
  | None -> fail "expected an arrival spec, got %S" s
  | Some i -> (
      let keyword = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match keyword with
      | "rate" | "poisson" -> (
          match pos_float "rate" rest with
          | Ok rate -> Ok (Poisson { rate })
          | Error _ as e -> e)
      | "mmpp" -> (
          match String.rindex_opt rest ':' with
          | None -> fail "mmpp needs rates and a sojourn: mmpp:R1,R2,...:S"
          | Some j -> (
              let rates_s = String.sub rest 0 j in
              let switch_s =
                String.sub rest (j + 1) (String.length rest - j - 1)
              in
              match pos_float "mmpp sojourn" switch_s with
              | Error _ as e -> e
              | Ok switch -> (
                  let parts = String.split_on_char ',' rates_s in
                  let parsed =
                    List.map (fun p -> float_of_string_opt (String.trim p)) parts
                  in
                  if List.exists (( = ) None) parsed then
                    fail "mmpp: invalid rate list %S" rates_s
                  else
                    let rates =
                      Array.of_list (List.map Option.get parsed)
                    in
                    match mmpp ~rates ~switch with
                    | t -> Ok t
                    | exception Invalid_argument msg -> fail "%s" msg)))
      | "trace" -> read_trace_file rest
      | _ -> fail "unknown arrival process %S" keyword)
