type machine_stats = {
  machine : int;
  busy : float;
  finish : float;
  tasks : int;
  idle_before_finish : float;
}

let machine_stats schedule =
  Array.init (Schedule.m schedule) (fun i ->
      let tasks = Schedule.machine_tasks schedule i in
      let busy, finish =
        List.fold_left
          (fun (busy, finish) task ->
            let e = Schedule.entry schedule task in
            ( busy +. (e.Schedule.finish -. e.Schedule.start),
              Float.max finish e.Schedule.finish ))
          (0.0, 0.0) tasks
      in
      {
        machine = i;
        busy;
        finish;
        tasks = List.length tasks;
        idle_before_finish = finish -. busy;
      })

let utilization schedule =
  let horizon = Schedule.makespan schedule in
  if horizon <= 0.0 then 0.0
  else begin
    let stats = machine_stats schedule in
    let busy = Array.fold_left (fun acc s -> acc +. s.busy) 0.0 stats in
    busy /. (float_of_int (Schedule.m schedule) *. horizon)
  end

let render_events events =
  let buffer = Buffer.create 256 in
  List.iter
    (fun event ->
      let line =
        match event with
        | Engine.Arrived { time; task } ->
            Printf.sprintf "t=%-10.4f      arrive   task %d\n" time task
        | Engine.Started { time; machine; task } ->
            Printf.sprintf "t=%-10.4f m%-3d start    task %d\n" time machine task
        | Engine.Completed { time; machine; task } ->
            Printf.sprintf "t=%-10.4f m%-3d complete task %d\n" time machine task
        | Engine.Killed { time; machine; task } ->
            Printf.sprintf "t=%-10.4f m%-3d KILLED   task %d (work lost)\n" time
              machine task
        | Engine.Cancelled { time; machine; task } ->
            Printf.sprintf "t=%-10.4f m%-3d cancel   task %d (lost the race)\n"
              time machine task
        | Engine.Machine_crashed { time; machine } ->
            Printf.sprintf "t=%-10.4f m%-3d CRASHED  (data lost)\n" time machine
        | Engine.Machine_down { time; machine; until } ->
            Printf.sprintf "t=%-10.4f m%-3d down     until %.4f\n" time machine
              until
        | Engine.Machine_up { time; machine } ->
            Printf.sprintf "t=%-10.4f m%-3d up\n" time machine
        | Engine.Machine_slowed { time; machine; factor } ->
            Printf.sprintf "t=%-10.4f m%-3d slowed   x%.3f\n" time machine factor
        | Engine.Failure_detected { time; machine } ->
            Printf.sprintf "t=%-10.4f m%-3d detected (failure acknowledged)\n"
              time machine
        | Engine.Rereplication_started { time; task; src; dst } ->
            Printf.sprintf "t=%-10.4f m%-3d replicate task %d -> m%d (started)\n"
              time src task dst
        | Engine.Rereplication_completed { time; task; src; dst } ->
            Printf.sprintf "t=%-10.4f m%-3d replicate task %d <- m%d (done)\n"
              time dst task src
        | Engine.Rereplication_aborted { time; task; src; dst } ->
            Printf.sprintf
              "t=%-10.4f m%-3d replicate task %d -> m%d (ABORTED)\n" time src
              task dst
        | Engine.Checkpoint_resumed { time; machine; task; progress } ->
            Printf.sprintf "t=%-10.4f m%-3d resume   task %d (%.3f banked)\n"
              time machine task progress
      in
      Buffer.add_string buffer line)
    events;
  Buffer.contents buffer

let render_stats schedule =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "machine  tasks      busy    finish      idle\n";
  Array.iter
    (fun s ->
      Buffer.add_string buffer
        (Printf.sprintf "m%-7d %5d %9.3f %9.3f %9.3f\n" s.machine s.tasks s.busy
           s.finish s.idle_before_finish))
    (machine_stats schedule);
  Buffer.add_string buffer
    (Printf.sprintf "utilization: %.1f%% of m * makespan\n"
       (100.0 *. utilization schedule));
  Buffer.contents buffer
