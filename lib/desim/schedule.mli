(** Completed schedules and their quality measures.

    The output of phase 2: for every task, the machine that executed it and
    its start/finish times. Provides the makespan [C_max], per-machine
    loads, and a validator that re-checks every structural property the
    engine is supposed to guarantee (used heavily by the test suite). *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type entry = { machine : int; start : float; finish : float }

type t

val make : m:int -> entry array -> t
(** [make ~m entries] wraps per-task entries. Raises [Invalid_argument] on
    negative times, [finish < start], or machines outside [0, m). *)

val of_soa :
  m:int -> machines:int array -> starts:float array -> finishes:float array -> t
(** Struct-of-arrays constructor: takes ownership of the three lanes
    (no copy — callers must not mutate them afterwards) and runs the
    same validation as {!make}. This is the engines' hand-off path; it
    allocates nothing per task. *)

val n : t -> int
val m : t -> int

val entry : t -> int -> entry
(** Entry of a task id. *)

val machine_of : t -> int -> int
val makespan : t -> float

val loads : t -> float array
(** Total busy time per machine. *)

val machine_tasks : t -> int -> int list
(** Tasks run by a machine, in increasing start order. *)

val assignment : t -> int array
(** Per-task machine, as a fresh array. *)

val of_assignment : m:int -> durations:float array -> int array -> t
(** Build the schedule that runs each task on its assigned machine
    back-to-back in task-id order — the canonical schedule of a static
    (phase-1-only) assignment. *)

type violation =
  | Overlap of { machine : int; task_a : int; task_b : int }
  | Wrong_duration of { task : int; expected : float; got : float }
  | Not_allowed of { task : int; machine : int }

val validate :
  ?placement:Bitset.t array ->
  ?speeds:float array ->
  Instance.t ->
  Realization.t ->
  t ->
  violation list
(** All structural violations of the schedule w.r.t. the realization and
    (optionally) a placement: task durations must equal actual times
    (divided by the executing machine's speed when [speeds] is given),
    tasks on one machine must not overlap, and each task must run on a
    machine holding its data. Empty list = valid. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
