(** ASCII Gantt charts of schedules.

    Regenerates the paper's schedule illustrations (Figures 1, 2, 4 and 5)
    as terminal art: one row per machine, tasks drawn to horizontal scale
    and labelled with their id (mod 10, or a custom labeller). *)

val render :
  ?width:int ->
  ?label:(int -> char) ->
  Schedule.t ->
  string
(** [render schedule] draws the schedule scaled into [width] columns
    (default 72). [label] maps a task id to its fill character (default:
    last digit of the id). Zero-duration schedules render as empty
    tracks. *)

val render_two :
  ?width:int -> left_title:string -> right_title:string ->
  Schedule.t -> Schedule.t -> string
(** Side-by-side rendering on a shared time scale — the format of the
    paper's "online vs offline optimal" and "phase 1 vs phase 2"
    figures. *)
