let default_label task = Char.chr (Char.code '0' + (task mod 10))

let render_track buffer ~width ~scale ~label schedule i =
  let row = Bytes.make width '.' in
  List.iter
    (fun task ->
      let e = Schedule.entry schedule task in
      let first = int_of_float (e.Schedule.start *. scale) in
      let last = int_of_float (e.Schedule.finish *. scale) - 1 in
      let first = Stdlib.max 0 (Stdlib.min (width - 1) first) in
      let last = Stdlib.max first (Stdlib.min (width - 1) last) in
      for c = first to last do
        Bytes.set row c (label task)
      done)
    (Schedule.machine_tasks schedule i);
  Buffer.add_string buffer (Printf.sprintf "m%-3d |%s|\n" i (Bytes.to_string row))

let render ?(width = 72) ?(label = default_label) schedule =
  let buffer = Buffer.create 256 in
  let horizon = Schedule.makespan schedule in
  let scale = if horizon > 0.0 then float_of_int width /. horizon else 0.0 in
  Buffer.add_string buffer
    (Printf.sprintf "time 0 .. %g (makespan), %d machines\n" horizon
       (Schedule.m schedule));
  for i = 0 to Schedule.m schedule - 1 do
    render_track buffer ~width ~scale ~label schedule i
  done;
  Buffer.contents buffer

let render_two ?(width = 36) ~left_title ~right_title left right =
  let buffer = Buffer.create 512 in
  let horizon = Float.max (Schedule.makespan left) (Schedule.makespan right) in
  let scale = if horizon > 0.0 then float_of_int width /. horizon else 0.0 in
  if Schedule.m left <> Schedule.m right then
    invalid_arg "Gantt.render_two: machine counts differ";
  Buffer.add_string buffer
    (Printf.sprintf "%-*s   %s\n" (width + 7) left_title right_title);
  Buffer.add_string buffer
    (Printf.sprintf "shared time scale 0 .. %g\n" horizon);
  for i = 0 to Schedule.m left - 1 do
    let track schedule =
      let row = Bytes.make width '.' in
      List.iter
        (fun task ->
          let e = Schedule.entry schedule task in
          let first = int_of_float (e.Schedule.start *. scale) in
          let last = int_of_float (e.Schedule.finish *. scale) - 1 in
          let first = Stdlib.max 0 (Stdlib.min (width - 1) first) in
          let last = Stdlib.max first (Stdlib.min (width - 1) last) in
          for c = first to last do
            Bytes.set row c (default_label task)
          done)
        (Schedule.machine_tasks schedule i);
      Bytes.to_string row
    in
    Buffer.add_string buffer
      (Printf.sprintf "m%-3d |%s|   |%s|\n" i (track left) (track right))
  done;
  Buffer.contents buffer
