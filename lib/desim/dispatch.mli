(** First-class, pluggable dispatch policies for the phase-2 engine.

    Every online algorithm in the paper is {e eligibility-restricted
    list scheduling}: an idle machine consults a rule to pick which
    eligible task to start. The replication-scheduling literature shows
    this rule is the interesting knob (delay-optimal replica dispatch,
    data-locality-aware assignment); this module makes it a value the
    engine takes as a parameter instead of a hard-coded scan.

    A policy sees only the {e scheduler-visible} state ({!view}): the
    priority order, which tasks are in the pool, who currently holds
    each task's data (replica sets grow mid-run under re-replication),
    per-machine dispatched load and configured speeds, and machine
    availability. Policies never see actual processing times — the
    semi-clairvoyant model — and they never refuse available work: when
    some eligible task exists, {!select} returns one ({e
    work-conservation}; the engine's completeness argument and the
    policy/fault reachability property in the tests rely on it).

    Policies are {b stateful per run}: {!make} instantiates fresh state
    (the default policy's cursors, the random policy's seeded RNG), so a
    policy value must not be shared between concurrent runs. Identical
    inputs give identical decisions — every policy is deterministic,
    including [Random_tiebreak], whose randomness is a pure function of
    its seed.

    Selection is allocation-free for the default, least-loaded,
    earliest-completion, and (topology-free) locality policies: the raw
    {!select_machine} returns a plain int ([-1] = no eligible task) and
    reads the simulation clock from the shared [now] cell instead of
    taking a (boxed) float argument. *)

module Bitset = Usched_model.Bitset
module Topology = Usched_model.Topology

type spec =
  | List_priority
      (** The paper's default: the highest-priority eligible task, via
          cursors over the order — per-machine cursors on small or
          re-replicating instances, one cursor per holder-set bucket on
          large stable ones (O(#distinct sets) per decision). This is
          bit-for-bit the rule the pre-refactor engine hard-coded. *)
  | Least_loaded_holder
      (** The highest-priority eligible task for which this machine is a
          least-loaded available holder of the data; a machine defers
          tasks that a strictly less-loaded replica holder could take,
          falling back to plain priority order when nothing prefers it.
          Load is dispatched estimate-units, never actuals. *)
  | Earliest_estimated_completion
      (** The eligible task this machine finishes earliest by estimate:
          minimize [est(j) / speed(i)] (SPT restricted to held data);
          ties resolve to the priority order. *)
  | Locality
      (** [Least_loaded_holder] with data movement priced in: each
          candidate holder's load is inflated by the staging time it
          would pay to pull the task's data across zones from its home
          machine [j mod m]. A machine defers a task whenever another
          available holder has a strictly smaller load-plus-staging
          total. Identical to [Least_loaded_holder] when the view
          carries no topology (or a single-zone one). *)
  | Random_tiebreak of int
      (** [List_priority] with genuine priority ties — eligible tasks
          sharing the leading estimate — broken uniformly at random from
          the seeded generator. Coincides with [List_priority] when
          estimates are distinct; deterministic given the seed. *)

val default : spec
(** [List_priority]. *)

val name : spec -> string
(** Stable CLI/trace name: ["list-priority"], ["least-loaded"],
    ["earliest-completion"], ["locality"], ["random:SEED"]. *)

val spec_of_string : string -> (spec, string) result
(** Inverse of {!name} (["random"] alone means seed 0). The error
    message lists the valid names — surfaced verbatim by the [--policy]
    cmdliner converter. *)

val known_names : string
(** Human-readable list of accepted names, for usage strings. *)

val builtin : spec list
(** One representative of every policy family (random seeded 0), in
    presentation order — what sweeps and benches iterate over. *)

(** The scheduler-visible state a policy decides from. The arrays are
    live views owned by the engine: [dispatchable.(j)] is whether task
    [j] is in the pool right now, [holders.(j)] the machines whose disk
    currently has [j]'s data, [load.(i)] the estimate-units dispatched
    to machine [i] so far. [now] is the shared one-cell simulation
    clock — the engine stores the current time there before asking for
    a decision, and [available] reads it, so no float crosses a call
    boundary on the hot path. *)
type view = {
  n : int;
  m : int;
  order : int array;  (** fixed task priority order *)
  pos_of : int array;  (** inverse permutation of [order] *)
  dispatchable : bool array;
  holders : Bitset.t array;
  est : float array;  (** per-task estimate *)
  speed : float array;  (** configured base speed (not slowdowns) *)
  load : float array;
  now : float array;  (** length-1 clock cell, engine-owned *)
  available : int -> bool;  (** at time [now.(0)] *)
  holders_stable : bool;
      (** no holder set will gain members mid-run (false under online
          re-replication) — licenses the bucketed default policy *)
  topology : Topology.t option;
      (** the instance's cluster topology, when it has one — what the
          [Locality] policy prices zone distance with *)
  size : float array;
      (** per-task data size; may be [[||]] when [topology] is [None]
          (no policy reads it then) *)
}

type t

val make : spec -> view -> t
(** Instantiate the policy with fresh per-run state over the given
    view. Raises [Invalid_argument] when [order]/[pos_of]/[est]/[speed]
    disagree with [n]/[m], [now] is not length 1, or a topology is
    present but [size] does not cover every task. *)

val spec : t -> spec
val policy_name : t -> string

val select : t -> time:float -> machine:int -> int option
(** The task idle machine [machine] should start now, or [None] when it
    holds no eligible task. Work-conserving: [None] implies no
    dispatchable task has [machine] among its holders. Stores [time]
    into the view's [now] cell, then defers to {!select_machine}. *)

val select_machine : t -> machine:int -> int
(** Raw allocation-free selection: the chosen task, or [-1] for none.
    The caller must have stored the current time in the view's [now]
    cell. The engine's hot loops call this instead of {!select}. *)

val notify_available : t -> task:int -> unit
(** The task (re-)entered the pool or grew its holder set — a kill
    returned it, a streaming arrival, or a re-replication landed.
    Stateful policies must reconsider it ([List_priority] rewinds its
    cursors); stateless scans ignore the notification. *)

val redispatch_order : t -> int list -> int list
(** The order in which machines freed at the same instant look for new
    work: increasing machine id. This is the single home of the
    documented re-dispatch determinism contract (the engine previously
    duplicated it inline). *)
