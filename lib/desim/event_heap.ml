(* Allocation-free 4-ary min-heap specialized to simulation events.

   The old [Pqueue]-backed event loop paid for itself three times over
   on hot paths: every pop boxed its result in an [option], every event
   was a 7-word record (with the timestamp boxed on top), and a full
   drain dropped the backing store so the next run re-grew it from
   scratch. This heap keeps each event as one slot across parallel
   lanes (struct-of-arrays): the float lane stores timestamps unboxed,
   the int lanes carry machine/class/sequence plus two generic integer
   payload words ([aux]/[aux2] — the engine packs task ids and
   generation counters there so its per-event payloads can be constant
   constructors), and the polymorphic lane holds the payload proper.
   Push and pop are plain array writes plus int/float compares: no
   allocation once capacity is reached, and capacity is retained across
   drains.

   Ordering is the simulation contract verbatim: (time, machine, class,
   seq), with [seq] unique per push — a total order, so heap arity and
   internal layout cannot affect the pop sequence. Arity 4 keeps the
   tree shallow (one level fewer than binary at typical queue depths)
   while sift-down still touches a single cache line of each lane.

   Popped payload slots are overwritten with [dummy] so a drained heap
   retains nothing (the weak-pointer test that pinned this on [Pqueue]
   is ported to this heap). *)

type 'a t = {
  dummy : 'a;
  mutable size : int;
  mutable next_seq : int;
  mutable times : float array;
  mutable machines : int array;
  mutable classes : int array;
  mutable seqs : int array;
  mutable aux : int array;
  mutable aux2 : int array;
  mutable payloads : 'a array;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = Stdlib.max 1 capacity in
  {
    dummy;
    size = 0;
    next_seq = 0;
    times = Array.make capacity 0.0;
    machines = Array.make capacity 0;
    classes = Array.make capacity 0;
    seqs = Array.make capacity 0;
    aux = Array.make capacity 0;
    aux2 = Array.make capacity 0;
    payloads = Array.make capacity dummy;
  }

let length t = t.size
let is_empty t = t.size = 0

(* Strict (time, machine, class, seq) order between two slots. [seq] is
   unique, so the result is never a tie. *)
let[@inline] lt t a b =
  let ta = t.times.(a) and tb = t.times.(b) in
  if ta < tb then true
  else if ta > tb then false
  else
    (* Equal times — NaN never reaches the heap (the engine validates
       its inputs), so [not (<) && not (>)] means equality here. *)
    let d = t.machines.(a) - t.machines.(b) in
    if d <> 0 then d < 0
    else
      let d = t.classes.(a) - t.classes.(b) in
      if d <> 0 then d < 0 else t.seqs.(a) < t.seqs.(b)

let swap t a b =
  let f = t.times.(a) in
  t.times.(a) <- t.times.(b);
  t.times.(b) <- f;
  let x = t.machines.(a) in
  t.machines.(a) <- t.machines.(b);
  t.machines.(b) <- x;
  let x = t.classes.(a) in
  t.classes.(a) <- t.classes.(b);
  t.classes.(b) <- x;
  let x = t.seqs.(a) in
  t.seqs.(a) <- t.seqs.(b);
  t.seqs.(b) <- x;
  let x = t.aux.(a) in
  t.aux.(a) <- t.aux.(b);
  t.aux.(b) <- x;
  let x = t.aux2.(a) in
  t.aux2.(a) <- t.aux2.(b);
  t.aux2.(b) <- x;
  let p = t.payloads.(a) in
  t.payloads.(a) <- t.payloads.(b);
  t.payloads.(b) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let c0 = (4 * i) + 1 in
  if c0 < t.size then begin
    let b = c0 in
    let b = if c0 + 1 < t.size && lt t (c0 + 1) b then c0 + 1 else b in
    let b = if c0 + 2 < t.size && lt t (c0 + 2) b then c0 + 2 else b in
    let b = if c0 + 3 < t.size && lt t (c0 + 3) b then c0 + 3 else b in
    if lt t b i then begin
      swap t b i;
      sift_down t b
    end
  end

let grow t =
  let capacity = 2 * Array.length t.times in
  let times = Array.make capacity 0.0 in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let machines = Array.make capacity 0 in
  Array.blit t.machines 0 machines 0 t.size;
  t.machines <- machines;
  let classes = Array.make capacity 0 in
  Array.blit t.classes 0 classes 0 t.size;
  t.classes <- classes;
  let seqs = Array.make capacity 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  let aux = Array.make capacity 0 in
  Array.blit t.aux 0 aux 0 t.size;
  t.aux <- aux;
  let aux2 = Array.make capacity 0 in
  Array.blit t.aux2 0 aux2 0 t.size;
  t.aux2 <- aux2;
  let payloads = Array.make capacity t.dummy in
  Array.blit t.payloads 0 payloads 0 t.size;
  t.payloads <- payloads

(* Reserve the next slot: bumps [size], assigns the sequence number, and
   clears [aux]/[aux2]/[payloads] to their defaults. The caller writes
   the remaining lanes directly and then calls {!sift_up} on the
   returned slot — the pattern the engine uses to push without passing a
   boxed float argument through a function call. *)
let alloc t =
  if t.size = Array.length t.times then grow t;
  let s = t.size in
  t.size <- s + 1;
  t.next_seq <- t.next_seq + 1;
  t.seqs.(s) <- t.next_seq;
  t.aux.(s) <- 0;
  t.aux2.(s) <- 0;
  t.payloads.(s) <- t.dummy;
  s

let push t ~time ~machine ~cls payload =
  let s = alloc t in
  t.times.(s) <- time;
  t.machines.(s) <- machine;
  t.classes.(s) <- cls;
  t.payloads.(s) <- payload;
  sift_up t s

let push_aux t ~time ~machine ~cls ~aux ~aux2 payload =
  let s = alloc t in
  t.times.(s) <- time;
  t.machines.(s) <- machine;
  t.classes.(s) <- cls;
  t.aux.(s) <- aux;
  t.aux2.(s) <- aux2;
  t.payloads.(s) <- payload;
  sift_up t s

let min_time t =
  if t.size = 0 then invalid_arg "Event_heap.min_time: empty heap";
  t.times.(0)

let min_machine t =
  if t.size = 0 then invalid_arg "Event_heap.min_machine: empty heap";
  t.machines.(0)

let min_cls t =
  if t.size = 0 then invalid_arg "Event_heap.min_cls: empty heap";
  t.classes.(0)

let min_aux t =
  if t.size = 0 then invalid_arg "Event_heap.min_aux: empty heap";
  t.aux.(0)

let min_aux2 t =
  if t.size = 0 then invalid_arg "Event_heap.min_aux2: empty heap";
  t.aux2.(0)

let min_payload t =
  if t.size = 0 then invalid_arg "Event_heap.min_payload: empty heap";
  t.payloads.(0)

(* Remove the root. The vacated slot (and the root slot of a drained
   heap) is reset to [dummy] so no popped payload stays reachable;
   capacity is retained for the next push. *)
let remove_min t =
  if t.size = 0 then invalid_arg "Event_heap.remove_min: empty heap";
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    t.times.(0) <- t.times.(last);
    t.machines.(0) <- t.machines.(last);
    t.classes.(0) <- t.classes.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.aux.(0) <- t.aux.(last);
    t.aux2.(0) <- t.aux2.(last);
    t.payloads.(0) <- t.payloads.(last);
    t.payloads.(last) <- t.dummy;
    sift_down t 0
  end
  else t.payloads.(0) <- t.dummy
