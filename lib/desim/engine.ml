(* The phase-2 engine, as a thin composition of the desim layers:

   - [Machine_state]: per-machine clocks, speeds, up/down state, the
     in-flight copy, and the recovery bookkeeping (checkpoint store,
     orphaned copies, detection and backoff timers);
   - [Event_core]: the typed priority-queue event loop and the
     simultaneous-event ordering contract;
   - [Dispatch]: the pluggable policy deciding which eligible task an
     idle machine starts, and the re-dispatch order of machines freed
     at the same instant.

   What remains here is the physics: what a crash, outage, slowdown,
   completion, transfer, checkpoint, or speculation event does to the
   shared task state, and the observability taps around it. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json

type event =
  | Arrived of { time : float; task : int }
  | Started of { time : float; machine : int; task : int }
  | Completed of { time : float; machine : int; task : int }
  | Killed of { time : float; machine : int; task : int }
  | Cancelled of { time : float; machine : int; task : int }
  | Machine_crashed of { time : float; machine : int }
  | Machine_down of { time : float; machine : int; until : float }
  | Machine_up of { time : float; machine : int }
  | Machine_slowed of { time : float; machine : int; factor : float }
  | Failure_detected of { time : float; machine : int }
  | Rereplication_started of { time : float; task : int; src : int; dst : int }
  | Rereplication_completed of {
      time : float;
      task : int;
      src : int;
      dst : int;
    }
  | Rereplication_aborted of { time : float; task : int; src : int; dst : int }
  | Checkpoint_resumed of {
      time : float;
      machine : int;
      task : int;
      progress : float;
    }

exception Unschedulable of int list

let check_inputs ?speeds ~name instance ~placement ~order =
  let n = Instance.n instance and m = Instance.m instance in
  (match speeds with
  | None -> ()
  | Some s ->
      if Array.length s <> m then
        invalid_arg (Printf.sprintf "%s: speeds length differs from machine count" name);
      Array.iter
        (fun v ->
          if not (v > 0.0) then
            invalid_arg (Printf.sprintf "%s: speeds must be > 0" name))
        s);
  if Array.length placement <> n then
    invalid_arg (Printf.sprintf "%s: placement length differs from instance" name);
  Array.iteri
    (fun j set ->
      if Bitset.capacity set <> m then
        invalid_arg (Printf.sprintf "%s: placement of task %d has wrong capacity" name j);
      if Bitset.is_empty set then
        invalid_arg (Printf.sprintf "%s: task %d is placed nowhere" name j))
    placement;
  if Array.length order <> n then
    invalid_arg (Printf.sprintf "%s: order length differs from instance" name);
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg (Printf.sprintf "%s: order is not a permutation of task ids" name);
      seen.(j) <- true)
    order

let inverse_order ~n order =
  let pos_of = Array.make n 0 in
  Array.iteri (fun pos j -> pos_of.(j) <- pos) order;
  pos_of

let run_internal ?speeds ~dispatch ~metrics instance realization ~placement
    ~order ~emit =
  check_inputs ?speeds ~name:"Engine.run" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  let speed_of i = match speeds with None -> 1.0 | Some s -> s.(i) in
  (* Observability. Every update is guarded (a disabled registry hands
     out no-op instruments), and nothing below reads a metric back, so
     the schedule is bit-for-bit identical with metrics on or off. *)
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  let busy = if live then Array.make m 0.0 else [||] in
  (* [dispatchable.(j)]: task j is in the pool. In the healthy engine a
     task leaves the pool exactly once, so eligibility never grows and
     the default policy's cursors are monotone. *)
  let dispatchable = Array.make n true in
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let remaining = ref n in
  let loads = Array.make m 0.0 in
  let policy =
    Dispatch.make dispatch
      {
        Dispatch.n;
        m;
        order;
        pos_of = inverse_order ~n order;
        dispatchable;
        holders = placement;
        est = Instance.est instance;
        speed = speed_of;
        load = loads;
        available = (fun ~time:_ _ -> true);
      }
  in
  let queue = Event_core.create () in
  for i = 0 to m - 1 do
    Event_core.push queue ~time:0.0 ~machine:i ~cls:Event_core.cls_decision ()
  done;
  if live then
    Metrics.record_max mg_queue (float_of_int (Event_core.length queue));
  Event_core.drain queue ~handle:(fun ~time ~machine:i () ->
      Metrics.incr mc_events;
      match Dispatch.select policy ~time ~machine:i with
      | None -> () (* machine i retires: nothing it holds remains *)
      | Some j ->
          let finish = time +. (Realization.actual realization j /. speed_of i) in
          entries.(j) <- { Schedule.machine = i; start = time; finish };
          dispatchable.(j) <- false;
          loads.(i) <- loads.(i) +. Instance.est instance j;
          remaining := !remaining - 1;
          emit (Started { time; machine = i; task = j });
          emit (Completed { time = finish; machine = i; task = j });
          Metrics.incr mc_dispatches;
          if live then busy.(i) <- busy.(i) +. (finish -. time);
          Event_core.push queue ~time:finish ~machine:i
            ~cls:Event_core.cls_decision ();
          if live then
            Metrics.record_max mg_queue (float_of_int (Event_core.length queue)));
  if !remaining > 0 then begin
    let left = ref [] in
    for j = n - 1 downto 0 do
      if dispatchable.(j) then left := j :: !left
    done;
    raise (Unschedulable !left)
  end;
  if live then begin
    let mk = ref 0.0 in
    Array.iter
      (fun e -> if e.Schedule.finish > !mk then mk := e.Schedule.finish)
      entries;
    Metrics.set mg_makespan !mk;
    for i = 0 to m - 1 do
      Metrics.observe mh_idle (!mk -. busy.(i))
    done
  end;
  Schedule.make ~m entries

let run ?speeds ?(dispatch = Dispatch.default) ?(metrics = Metrics.disabled)
    instance realization ~placement ~order =
  run_internal ?speeds ~dispatch ~metrics instance realization ~placement
    ~order ~emit:(fun _ -> ())

let sort_events events =
  let time_of = function
    | Arrived { time; _ }
    | Started { time; _ }
    | Completed { time; _ }
    | Killed { time; _ }
    | Cancelled { time; _ }
    | Machine_crashed { time; _ }
    | Machine_down { time; _ }
    | Machine_up { time; _ }
    | Machine_slowed { time; _ }
    | Failure_detected { time; _ }
    | Rereplication_started { time; _ }
    | Rereplication_completed { time; _ }
    | Rereplication_aborted { time; _ }
    | Checkpoint_resumed { time; _ } -> time
  in
  List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) events

let run_traced ?speeds ?(dispatch = Dispatch.default)
    ?(metrics = Metrics.disabled) instance realization ~placement ~order =
  let events = ref [] in
  let schedule =
    run_internal ?speeds ~dispatch ~metrics instance realization ~placement
      ~order ~emit:(fun e -> events := e :: !events)
  in
  (schedule, sort_events (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)
(* ------------------------------------------------------------------ *)

type fate =
  | Finished of Schedule.entry
  | Stranded

type outcome = {
  fates : fate array;
  completed : int;
  stranded : int list;
  makespan : float;
  wasted : float;
  metrics : Metrics.snapshot;
}

let outcome_schedule ~m outcome =
  if outcome.stranded <> [] then None
  else
    Some
      (Schedule.make ~m
         (Array.map
            (function Finished e -> e | Stranded -> assert false)
            outcome.fates))

type tstatus = Pending | Running | Done | Lost

(* Simulation event payloads; [Event_core] classes rank simultaneous
   events on one machine: faults (and failure detections) strike before
   completions (and data-transfer arrivals), completions before dispatch
   decisions, speculation checks last. *)
type sim =
  | Sim_fault of Fault.kind
  | Sim_up
  | Sim_detect
  | Sim_arrive of { task : int }
  | Sim_complete of { gen : int }
  | Sim_transfer of { task : int; src : int; dst : int; id : int }
  | Sim_dispatch
  | Sim_speculate of { task : int; gen : int }

let run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
    ~arrivals instance realization ~faults ~placement ~order ~emit =
  check_inputs ?speeds ~name:"Engine.run_faulty" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  if Trace.m faults <> m then
    invalid_arg "Engine.run_faulty: trace machine count differs from instance";
  (match arrivals with
  | None -> ()
  | Some arr ->
      if Array.length arr <> n then
        invalid_arg "Engine.run_stream: arrivals length differs from instance";
      Array.iter
        (fun t ->
          if not (Float.is_finite t && t >= 0.0) then
            invalid_arg
              "Engine.run_stream: arrival times must be finite and >= 0")
        arr);
  (match speculation with
  | Some beta when not (beta > 0.0) ->
      invalid_arg "Engine.run_faulty: speculation factor must be > 0"
  | _ -> ());
  (* [Recovery.none] is recognized physically: the engine then runs the
     exact pre-recovery code path (same branches, same float operations,
     same event sequence numbers), which the golden qcheck property in
     test_recovery checks bit-for-bit against a structurally-neutral
     active policy. *)
  let rec_active = Recovery.is_active recovery in
  let det_latency = recovery.Recovery.detection_latency in
  (* The live-replica target is per task: [Fixed r] heals everything
     toward the same count (constant function — bit-for-bit the old
     fixed-degree arithmetic), [Degree] toward the replication degree
     phase 1 originally gave each task, captured here before any fault
     or transfer mutates the working sets. *)
  let heals = Recovery.heals recovery in
  let target_of =
    match recovery.Recovery.rereplication_target with
    | Recovery.Fixed r -> fun _ -> r
    | Recovery.Degree ->
        let degree = Array.map Bitset.cardinal placement in
        fun j -> degree.(j)
  in
  let bandwidth = recovery.Recovery.bandwidth in
  let ckpt_interval = recovery.Recovery.checkpoint_interval in
  (* Observability: write-only instruments, see [run_internal]. *)
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mc_redispatches = Metrics.counter metrics "engine.redispatches" in
  let mc_spec_starts = Metrics.counter metrics "engine.spec_starts" in
  let mc_spec_cancelled = Metrics.counter metrics "engine.spec_cancelled" in
  let mc_kills = Metrics.counter metrics "engine.kills" in
  let mc_crashes = Metrics.counter metrics "engine.crashes" in
  let mc_outages = Metrics.counter metrics "engine.outages" in
  let mc_slowdowns = Metrics.counter metrics "engine.slowdowns" in
  let mc_completed = Metrics.counter metrics "engine.completed" in
  let mc_stranded = Metrics.counter metrics "engine.stranded" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mg_wasted = Metrics.gauge metrics "engine.wasted_work" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  (* Streaming instruments exist only in streaming runs: handles register
     on creation, so a batch snapshot must never see them. *)
  let streaming = arrivals <> None in
  let stream_metrics = if streaming then metrics else Metrics.disabled in
  let mc_arrivals = Metrics.counter stream_metrics "engine.arrivals" in
  let mh_latency = Metrics.histogram stream_metrics "engine.latency" in
  let busy = if live then Array.make m 0.0 else [||] in
  let st = Machine_state.create ?speeds ~m () in
  let machine = Machine_state.get st in
  let eff_speed = Machine_state.eff_speed st in
  let base_speed = Machine_state.base_speed st in
  let available ~time i = Machine_state.available st ~time i in
  let alive_set = Machine_state.alive_set st in
  let status = Array.make n Pending in
  (* In a streaming run a task is invisible to the scheduler until its
     arrival fires; batch runs behave as if everything arrived at t=0. *)
  let arrived = Array.make n (not streaming) in
  let dispatchable = Array.make n (not streaming) in
  let set_status j s =
    status.(j) <- s;
    dispatchable.(j) <- (s = Pending && arrived.(j))
  in
  let copies = Array.make n ([] : int list) in
  let task_gen = Array.make n 0 in
  let spec_ready = Array.make n false in
  (* Who holds each task's data *now*. Under an active policy transfers
     grow these sets mid-run, so they are private copies; under
     [Recovery.none] they are the placement arrays themselves and never
     change. All holder-semantics reads below go through [data]. *)
  let data =
    if rec_active then Array.map Bitset.copy placement else placement
  in
  (* In-flight re-replication per task: (src, dst, id). The id guards
     against stale [Sim_transfer] deliveries after an abort. *)
  let transfer = Array.make n (None : (int * int * int) option) in
  let transfer_id = ref 0 in
  (* Replicas stored on (or reserved for) each machine: the healer's
     least-loaded destination choice. *)
  let replica_load = Array.make m 0 in
  if rec_active then
    Array.iter
      (Bitset.iter (fun i -> replica_load.(i) <- replica_load.(i) + 1))
      data;
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let wasted = ref 0.0 in
  let loads = Array.make m 0.0 in
  let policy =
    Dispatch.make dispatch
      {
        Dispatch.n;
        m;
        order;
        pos_of = inverse_order ~n order;
        dispatchable;
        holders = data;
        est = Instance.est instance;
        speed = base_speed;
        load = loads;
        available;
      }
  in
  let queue = Event_core.create () in
  let push ~time ~machine ~cls sim =
    Event_core.push queue ~time ~machine ~cls sim;
    if live then
      Metrics.record_max mg_queue (float_of_int (Event_core.length queue))
  in
  for i = 0 to m - 1 do
    push ~time:0.0 ~machine:i ~cls:Event_core.cls_decision Sim_dispatch
  done;
  List.iter
    (fun (e : Fault.event) ->
      push ~time:e.Fault.time ~machine:e.Fault.machine ~cls:Event_core.cls_fault
        (Sim_fault e.Fault.kind))
    (Trace.events faults);
  (* Arrivals ride the virtual source "machine" -1: at an equal instant
     they strike before every per-machine event, so a stream whose
     arrivals all land at t=0 sees the whole workload before the first
     dispatch decision — exactly the batch engine's starting state. *)
  (match arrivals with
  | None -> ()
  | Some arr ->
      Array.iteri
        (fun j t ->
          push ~time:t ~machine:(-1) ~cls:Event_core.cls_arrival
            (Sim_arrive { task = j }))
        arr);
  let wake_idle ~time =
    for i = 0 to m - 1 do
      if Machine_state.idle st ~time i then
        push ~time ~machine:i ~cls:Event_core.cls_decision Sim_dispatch
    done
  in
  (* A task arrives: it becomes visible to the scheduler and, if still
     alive (early faults may have stranded it before it even showed up),
     joins the dispatch pool. *)
  let on_arrive ~time j =
    arrived.(j) <- true;
    Metrics.incr mc_arrivals;
    emit (Arrived { time; task = j });
    if status.(j) = Pending then begin
      dispatchable.(j) <- true;
      Dispatch.notify_available policy ~task:j;
      wake_idle ~time
    end
  in
  (* Online re-replication: copy every under-replicated task's data from
     its lowest-numbered available holder to the least-loaded available
     non-holder, one transfer per task at a time. Transfers survive
     outages of either endpoint (the stream is buffered; the data lands
     on the destination disk) but abort when an endpoint crashes. *)
  let transfer_duration j = Instance.size instance j /. bandwidth in
  let heal ~time =
    if heals then
      for j = 0 to n - 1 do
        match status.(j) with
        | Done | Lost -> ()
        | Pending | Running ->
            if transfer.(j) = None then begin
              let live = Bitset.cardinal (Bitset.inter alive_set data.(j)) in
              if live >= 1 && live < target_of j then begin
                let src = ref (-1) in
                (try
                   Bitset.iter
                     (fun i ->
                       if available ~time i then begin
                         src := i;
                         raise Exit
                       end)
                     data.(j)
                 with Exit -> ());
                if !src >= 0 then begin
                  let dst = ref (-1) and best = ref max_int in
                  for i = 0 to m - 1 do
                    if
                      available ~time i
                      && (not (Bitset.mem data.(j) i))
                      && replica_load.(i) < !best
                    then begin
                      dst := i;
                      best := replica_load.(i)
                    end
                  done;
                  if !dst >= 0 then begin
                    incr transfer_id;
                    transfer.(j) <- Some (!src, !dst, !transfer_id);
                    replica_load.(!dst) <- replica_load.(!dst) + 1;
                    emit
                      (Rereplication_started
                         { time; task = j; src = !src; dst = !dst });
                    push
                      ~time:(time +. transfer_duration j)
                      ~machine:!dst ~cls:Event_core.cls_arrival
                      (Sim_transfer
                         { task = j; src = !src; dst = !dst; id = !transfer_id })
                  end
                end
              end
            end
      done
  in
  let abort_transfers ~time x =
    for j = 0 to n - 1 do
      match transfer.(j) with
      | Some (src, dst, _) when src = x || dst = x ->
          transfer.(j) <- None;
          replica_load.(dst) <- replica_load.(dst) - 1;
          emit (Rereplication_aborted { time; task = j; src; dst });
          Metrics.incr (Metrics.counter metrics "engine.transfer_aborts")
      | _ -> ()
    done
  in
  let start_copy ?resume ~time i j =
    let ms = machine i in
    let c =
      match resume with
      | None ->
          Machine_state.fresh_copy ~task:j ~time
            ~work:(Realization.actual realization j)
      | Some banked ->
          Machine_state.resumed_copy ~task:j ~time
            ~work:(Realization.actual realization j)
            ~banked
    in
    ms.current <- Some c;
    ms.gen <- ms.gen + 1;
    let was_primary = copies.(j) = [] in
    copies.(j) <- i :: copies.(j);
    set_status j Running;
    loads.(i) <- loads.(i) +. Instance.est instance j;
    Metrics.incr mc_dispatches;
    if was_primary then begin
      if task_gen.(j) > 0 then Metrics.incr mc_redispatches
    end
    else Metrics.incr mc_spec_starts;
    emit (Started { time; machine = i; task = j });
    (match resume with
    | Some banked ->
        ms.ckpt <- None;
        emit (Checkpoint_resumed { time; machine = i; task = j; progress = banked });
        Metrics.incr (Metrics.counter metrics "engine.checkpoint_resumes")
    | None -> ());
    let finish = time +. (c.Machine_state.c_remaining /. eff_speed i) in
    push ~time:finish ~machine:i ~cls:Event_core.cls_arrival
      (Sim_complete { gen = ms.gen });
    match speculation with
    | Some beta when was_primary ->
        (* Arm the straggler check from estimates only: the scheduler is
           semi-clairvoyant and must not peek at actual times. *)
        let expected = Instance.est instance j /. base_speed i in
        push
          ~time:(time +. (beta *. expected))
          ~machine:i ~cls:Event_core.cls_audit
          (Sim_speculate { task = j; gen = task_gen.(j) })
    | _ -> ()
  in
  (* Return a copy-less task to the scheduler's pool — or declare it
     [Lost] when no live machine holds its data and no transfer is
     carrying it out. Under a detection latency this is what gets
     deferred until the failure becomes known. *)
  let release_task ~time j =
    task_gen.(j) <- task_gen.(j) + 1;
    spec_ready.(j) <- false;
    if
      Bitset.is_empty (Bitset.inter alive_set data.(j)) && transfer.(j) = None
    then set_status j Lost
    else begin
      set_status j Pending;
      Dispatch.notify_available policy ~task:j;
      wake_idle ~time
    end
  in
  (* Kill the in-flight copy of machine [i] (crash or outage): the work
     is lost — except what a checkpoint salvages on an outage — and the
     task returns to the pool (immediately, or at failure detection when
     the policy models a latency). *)
  let kill_current ?(salvage = false) ~time i =
    let ms = machine i in
    match ms.current with
    | None -> ()
    | Some c ->
        let j = c.Machine_state.c_task in
        let wall = time -. c.Machine_state.c_started in
        let waste = ref wall in
        if salvage && ckpt_interval > 0.0 then begin
          (* Work processed this attempt, synced exactly as a slowdown
             resync would do it. *)
          let remaining_now =
            Machine_state.remaining_at c ~time ~speed:(eff_speed i)
          in
          let attempt_total =
            Realization.actual realization j -. c.Machine_state.c_base
          in
          let done_attempt = attempt_total -. remaining_now in
          let total_done = c.Machine_state.c_base +. done_attempt in
          let preserved =
            Float.min total_done
              (Float.floor (total_done /. ckpt_interval) *. ckpt_interval)
          in
          if preserved > 0.0 then begin
            ms.ckpt <- Some (j, preserved);
            if done_attempt > 0.0 then begin
              (* Credit the preserved share of this attempt against the
                 waste, pro-rated by wall time so mid-attempt speed
                 changes cannot make the waste negative. *)
              let credit =
                Float.max 0.0
                  (Float.min done_attempt (preserved -. c.Machine_state.c_base))
              in
              waste := wall *. (1.0 -. (credit /. done_attempt))
            end
          end
        end;
        wasted := !wasted +. !waste;
        Metrics.incr mc_kills;
        if live then busy.(i) <- busy.(i) +. wall;
        ms.current <- None;
        ms.gen <- ms.gen + 1;
        emit (Killed { time; machine = i; task = j });
        copies.(j) <- List.filter (fun k -> k <> i) copies.(j);
        if copies.(j) = [] then
          if rec_active && det_latency > 0.0 then ms.orphan <- Some j
          else release_task ~time j
  in
  (* The disk of a dead machine [i] is gone: strand every waiting task
     whose last replica it held (unless a transfer is carrying a copy
     out, which keeps the task alive until the transfer resolves). *)
  let strand_scan i =
    for j = 0 to n - 1 do
      if
        status.(j) = Pending
        && Bitset.mem data.(j) i
        && Bitset.is_empty (Bitset.inter alive_set data.(j))
        && transfer.(j) = None
      then set_status j Lost
    done
  in
  (* The moment the scheduler learns of machine [i]'s failure — either
     the detector fires [det_latency] after the fault, or the machine
     truthfully reports its own outage when it rejoins, whichever comes
     first. Only then is the orphaned copy released for re-dispatch. *)
  let acknowledge ~time i =
    let ms = machine i in
    match ms.undetected with
    | None -> ()
    | Some t0 ->
        ms.undetected <- None;
        emit (Failure_detected { time; machine = i });
        Metrics.observe
          (Metrics.histogram metrics "engine.detection_lag")
          (time -. t0);
        (match ms.orphan with
        | Some j ->
            ms.orphan <- None;
            if status.(j) = Running && copies.(j) = [] then
              release_task ~time j
        | None -> ());
        if not ms.alive then strand_scan i
  in
  let on_transfer ~time ~task ~src ~dst ~id =
    match transfer.(task) with
    | Some (_, _, id') when id' = id ->
        transfer.(task) <- None;
        Bitset.add data.(task) dst;
        emit (Rereplication_completed { time; task; src; dst });
        Metrics.incr (Metrics.counter metrics "engine.rereplications");
        Metrics.observe
          (Metrics.histogram metrics "engine.transfer_time")
          (transfer_duration task);
        if status.(task) = Pending then begin
          Dispatch.notify_available policy ~task;
          wake_idle ~time
        end;
        heal ~time
    | _ -> () (* aborted (and possibly re-issued): stale delivery *)
  in
  let find_speculation i =
    (* First task in priority order that is running a single overdue copy
       whose data machine [i] also holds. Speculation is a safety
       mechanism, not a placement decision, so it stays with the engine
       rather than the dispatch policy. *)
    let rec scan pos =
      if pos >= n then None
      else
        let j = order.(pos) in
        if
          status.(j) = Running && spec_ready.(j)
          && (match copies.(j) with [ k ] -> k <> i | _ -> false)
          && Bitset.mem data.(j) i
        then Some j
        else scan (pos + 1)
    in
    if speculation = None then None else scan 0
  in
  (* A machine holding a checkpoint of a waiting task resumes it in
     preference to fresh work: the banked progress makes it the cheapest
     copy anyone can start. *)
  let resume_candidate i =
    match (machine i).ckpt with
    | Some (j, banked) when status.(j) = Pending && Bitset.mem data.(j) i ->
        Some (j, banked)
    | _ -> None
  in
  let dispatch_machine ~time i =
    let ms = machine i in
    if available ~time i && ms.current = None && time >= ms.trust_after then
      match resume_candidate i with
      | Some (j, banked) -> start_copy ~resume:banked ~time i j
      | None -> (
          match Dispatch.select policy ~time ~machine:i with
          | Some j -> start_copy ~time i j
          | None -> (
              match find_speculation i with
              | Some j -> start_copy ~time i j
              | None -> () (* idle; woken again if work returns to the pool *))
          )
  in
  let complete ~time i gen =
    let ms = machine i in
    match ms.current with
    | Some c when gen = ms.gen ->
        let j = c.Machine_state.c_task in
        entries.(j) <-
          { Schedule.machine = i; start = c.Machine_state.c_started; finish = time };
        set_status j Done;
        ms.current <- None;
        ms.gen <- ms.gen + 1;
        if live then
          busy.(i) <- busy.(i) +. (time -. c.Machine_state.c_started);
        emit (Completed { time; machine = i; task = j });
        (match arrivals with
        | None -> ()
        | Some arr -> Metrics.observe mh_latency (time -. arr.(j)));
        (* Speculative losers: first copy to finish wins, the rest abort. *)
        let losers = List.filter (fun k -> k <> i) copies.(j) in
        copies.(j) <- [];
        List.iter
          (fun k ->
            let mk = machine k in
            (match mk.current with
            | Some ck ->
                wasted := !wasted +. (time -. ck.Machine_state.c_started);
                if live then
                  busy.(k) <- busy.(k) +. (time -. ck.Machine_state.c_started)
            | None -> assert false);
            mk.current <- None;
            mk.gen <- mk.gen + 1;
            Metrics.incr mc_spec_cancelled;
            emit (Cancelled { time; machine = k; task = j }))
          losers;
        List.iter (dispatch_machine ~time)
          (Dispatch.redispatch_order policy (i :: losers))
    | _ -> () (* stale completion: the copy was killed or cancelled *)
  in
  let on_fault ~time i kind =
    let ms = machine i in
    match kind with
    | Fault.Crash ->
        if ms.alive then begin
          Metrics.incr mc_crashes;
          Machine_state.mark_crashed st i;
          emit (Machine_crashed { time; machine = i });
          (* Physical consequences are immediate: the disk (and any
             checkpoint on it) is gone, in-flight transfers touching the
             machine die, the running copy dies. *)
          ms.ckpt <- None;
          if rec_active then abort_transfers ~time i;
          kill_current ~time i;
          if rec_active && det_latency > 0.0 then begin
            (* The scheduler only reacts once the detector fires. *)
            if ms.undetected = None then ms.undetected <- Some time;
            push ~time:(time +. det_latency) ~machine:i
              ~cls:Event_core.cls_fault Sim_detect
          end
          else begin
            (* Strand every waiting task whose last replica the dead disk
               held, then re-replicate whatever it left under target. *)
            strand_scan i;
            if rec_active then heal ~time
          end
        end
    | Fault.Outage until ->
        if ms.alive then begin
          Metrics.incr mc_outages;
          ms.down_until <- Float.max ms.down_until until;
          emit (Machine_down { time; machine = i; until = ms.down_until });
          kill_current ~salvage:true ~time i;
          if rec_active then begin
            ms.blinks <- ms.blinks + 1;
            let b = Recovery.backoff recovery ~blinks:ms.blinks in
            if b > 0.0 then
              ms.trust_after <- Float.max ms.trust_after (ms.down_until +. b);
            (* Detection only matters when a copy was orphaned: the
               outage's other effects wait for the rejoin anyway. *)
            if det_latency > 0.0 && ms.orphan <> None then begin
              if ms.undetected = None then ms.undetected <- Some time;
              push ~time:(time +. det_latency) ~machine:i
                ~cls:Event_core.cls_fault Sim_detect
            end
          end;
          push ~time:ms.down_until ~machine:i ~cls:Event_core.cls_fault Sim_up
        end
    | Fault.Slowdown factor ->
        Metrics.incr mc_slowdowns;
        let old_speed = eff_speed i in
        ms.factor <- factor;
        emit (Machine_slowed { time; machine = i; factor });
        (match ms.current with
        | Some c ->
            Machine_state.sync_remaining c ~time ~speed:old_speed;
            ms.gen <- ms.gen + 1;
            push
              ~time:(time +. (c.Machine_state.c_remaining /. eff_speed i))
              ~machine:i ~cls:Event_core.cls_arrival
              (Sim_complete { gen = ms.gen })
        | None -> ())
  in
  let on_up ~time i =
    let ms = machine i in
    if ms.alive && time >= ms.down_until then begin
      emit (Machine_up { time; machine = i });
      if rec_active then begin
        (* The machine reports its own fate truthfully on rejoin, which
           may beat the detector; its return may also unblock healing
           (as a transfer source or destination). *)
        acknowledge ~time i;
        heal ~time
      end;
      if time >= ms.trust_after then dispatch_machine ~time i
      else
        (* Backoff: the machine blinked recently, so it only receives
           new work once its distrust window expires. *)
        push ~time:ms.trust_after ~machine:i ~cls:Event_core.cls_decision
          Sim_dispatch
    end
  in
  let on_detect ~time i =
    acknowledge ~time i;
    heal ~time
  in
  let on_speculate ~time task gen =
    if
      task_gen.(task) = gen && status.(task) = Running
      && List.length copies.(task) = 1
    then begin
      spec_ready.(task) <- true;
      (* Grab an idle surviving holder right now if one exists; otherwise
         the next machine to go idle picks the task up in
         [dispatch_machine]. *)
      let runner = List.hd copies.(task) in
      let exception Found of int in
      match
        Bitset.iter
          (fun i ->
            if i <> runner && Machine_state.idle st ~time i then
              raise (Found i))
          data.(task)
      with
      | () -> ()
      | exception Found i -> start_copy ~time i task
    end
  in
  (* An active healer starts working before the first dispatch: a
     placement below the replication target (k = 1, say) is brought up
     to its per-task target from time zero. (Under [Degree] the initial
     placement already meets the target, so this is a no-op there.) *)
  if rec_active then heal ~time:0.0;
  Event_core.drain queue ~handle:(fun ~time ~machine sim ->
      Metrics.incr mc_events;
      match sim with
      | Sim_fault kind -> on_fault ~time machine kind
      | Sim_up -> on_up ~time machine
      | Sim_detect -> on_detect ~time machine
      | Sim_arrive { task } -> on_arrive ~time task
      | Sim_complete { gen } -> complete ~time machine gen
      | Sim_transfer { task; src; dst; id } ->
          on_transfer ~time ~task ~src ~dst ~id
      | Sim_dispatch -> dispatch_machine ~time machine
      | Sim_speculate { task; gen } -> on_speculate ~time task gen);
  let fates =
    Array.init n (fun j ->
        match status.(j) with
        | Done -> Finished entries.(j)
        | Lost | Pending | Running -> Stranded)
  in
  let completed = ref 0 and stranded = ref [] and makespan = ref 0.0 in
  for j = n - 1 downto 0 do
    match fates.(j) with
    | Finished e ->
        incr completed;
        makespan := Float.max !makespan e.Schedule.finish
    | Stranded -> stranded := j :: !stranded
  done;
  if live then begin
    Metrics.add mc_completed !completed;
    Metrics.add mc_stranded (List.length !stranded);
    Metrics.set mg_makespan !makespan;
    Metrics.set mg_wasted !wasted;
    for i = 0 to m - 1 do
      (* Everything a machine did not spend processing (including
         downtime and its post-crash tail) counts as idle. *)
      Metrics.observe mh_idle (!makespan -. busy.(i))
    done
  end;
  {
    fates;
    completed = !completed;
    stranded = !stranded;
    makespan = !makespan;
    wasted = !wasted;
    metrics = Metrics.snapshot metrics;
  }

let run_faulty ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) instance
    realization ~faults ~placement ~order =
  run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
    ~arrivals:None instance realization ~faults ~placement ~order
    ~emit:(fun _ -> ())

let run_faulty_traced ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) instance
    realization ~faults ~placement ~order =
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:None instance realization ~faults ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  (outcome, sort_events (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Open-system streaming service mode.                                 *)
(* ------------------------------------------------------------------ *)

type stream_outcome = { outcome : outcome; latencies : float array }

(* Response time of every finished task, in task-id (= admission) order.
   Stranded tasks contribute nothing: their latency is unbounded, and
   averaging an arbitrary sentinel in would poison the quantiles. *)
let stream_latencies ~arrivals outcome =
  let acc = ref [] in
  for j = Array.length outcome.fates - 1 downto 0 do
    match outcome.fates.(j) with
    | Finished e -> acc := (e.Schedule.finish -. arrivals.(j)) :: !acc
    | Stranded -> ()
  done;
  Array.of_list !acc

let run_stream ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) ?faults instance
    realization ~arrivals ~placement ~order =
  let faults =
    match faults with Some f -> f | None -> Trace.empty ~m:(Instance.m instance)
  in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:(Some arrivals) instance realization ~faults ~placement ~order
      ~emit:(fun _ -> ())
  in
  { outcome; latencies = stream_latencies ~arrivals outcome }

let run_stream_traced ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) ?faults instance
    realization ~arrivals ~placement ~order =
  let faults =
    match faults with Some f -> f | None -> Trace.empty ~m:(Instance.m instance)
  in
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:(Some arrivals) instance realization ~faults ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  ( { outcome; latencies = stream_latencies ~arrivals outcome },
    sort_events (List.rev !events) )

(* ------------------------------------------------------------------ *)
(* JSON serialization of events and outcomes (the trace sink's view).  *)
(* ------------------------------------------------------------------ *)

let event_json e =
  let base kind time fields =
    Json.Obj
      (("type", Json.String "event")
      :: ("kind", Json.String kind)
      :: ("t", Json.float time)
      :: fields)
  in
  match e with
  | Arrived { time; task } -> base "arrived" time [ ("task", Json.Int task) ]
  | Started { time; machine; task } ->
      base "started" time [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Completed { time; machine; task } ->
      base "completed" time
        [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Killed { time; machine; task } ->
      base "killed" time [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Cancelled { time; machine; task } ->
      base "cancelled" time
        [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Machine_crashed { time; machine } ->
      base "machine_crashed" time [ ("machine", Json.Int machine) ]
  | Machine_down { time; machine; until } ->
      base "machine_down" time
        [ ("machine", Json.Int machine); ("until", Json.float until) ]
  | Machine_up { time; machine } ->
      base "machine_up" time [ ("machine", Json.Int machine) ]
  | Machine_slowed { time; machine; factor } ->
      base "machine_slowed" time
        [ ("machine", Json.Int machine); ("factor", Json.float factor) ]
  | Failure_detected { time; machine } ->
      base "failure_detected" time [ ("machine", Json.Int machine) ]
  | Rereplication_started { time; task; src; dst } ->
      base "rereplication_started" time
        [ ("task", Json.Int task); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Rereplication_completed { time; task; src; dst } ->
      base "rereplication_completed" time
        [ ("task", Json.Int task); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Rereplication_aborted { time; task; src; dst } ->
      base "rereplication_aborted" time
        [ ("task", Json.Int task); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Checkpoint_resumed { time; machine; task; progress } ->
      base "checkpoint_resumed" time
        [
          ("machine", Json.Int machine);
          ("task", Json.Int task);
          ("progress", Json.float progress);
        ]

let outcome_json outcome =
  Json.Obj
    [
      ("type", Json.String "outcome");
      ("completed", Json.Int outcome.completed);
      ("stranded", Json.List (List.map (fun j -> Json.Int j) outcome.stranded));
      ("makespan", Json.float outcome.makespan);
      ("wasted", Json.float outcome.wasted);
      ("metrics", Metrics.to_json outcome.metrics);
    ]
