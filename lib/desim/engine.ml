(* The phase-2 engine, as a thin composition of the desim layers:

   - [Machine_state]: per-machine clocks, speeds, up/down state, the
     in-flight copy, and the recovery bookkeeping — flat int/float
     lanes the engine destructures into locals and indexes directly;
   - [Event_core] / [Event_heap]: the typed event loop (struct-of-arrays
     4-ary heap) and the simultaneous-event ordering contract;
   - [Dispatch]: the pluggable policy deciding which eligible task an
     idle machine starts, and the re-dispatch order of machines freed
     at the same instant.

   What remains here is the physics: what a crash, outage, slowdown,
   completion, transfer, checkpoint, or speculation event does to the
   shared task state, and the observability taps around it.

   The hot loops are written to allocate nothing on the minor heap when
   metrics and tracing are off: event payload data rides the heap's
   integer [aux] lanes instead of boxed constructor arguments, the
   simulation clock lives in a shared one-cell float array read by the
   policy instead of crossing call boundaries as a (boxed) float, trace
   events are constructed only under an [if tr] guard, and per-task /
   per-machine state is flat arrays whose full-length allocations land
   in the major heap. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Topology = Usched_model.Topology
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json

type event =
  | Arrived of { time : float; task : int }
  | Started of { time : float; machine : int; task : int }
  | Completed of { time : float; machine : int; task : int }
  | Killed of { time : float; machine : int; task : int }
  | Cancelled of { time : float; machine : int; task : int }
  | Machine_crashed of { time : float; machine : int }
  | Machine_down of { time : float; machine : int; until : float }
  | Machine_up of { time : float; machine : int }
  | Machine_slowed of { time : float; machine : int; factor : float }
  | Failure_detected of { time : float; machine : int }
  | Rereplication_started of { time : float; task : int; src : int; dst : int }
  | Rereplication_completed of {
      time : float;
      task : int;
      src : int;
      dst : int;
    }
  | Rereplication_aborted of { time : float; task : int; src : int; dst : int }
  | Checkpoint_resumed of {
      time : float;
      machine : int;
      task : int;
      progress : float;
    }

exception Unschedulable of int list

let check_inputs ?speeds ~name instance ~placement ~order =
  let n = Instance.n instance and m = Instance.m instance in
  (match speeds with
  | None -> ()
  | Some s ->
      if Array.length s <> m then
        invalid_arg (Printf.sprintf "%s: speeds length differs from machine count" name);
      Array.iter
        (fun v ->
          if not (v > 0.0) then
            invalid_arg (Printf.sprintf "%s: speeds must be > 0" name))
        s);
  if Array.length placement <> n then
    invalid_arg (Printf.sprintf "%s: placement length differs from instance" name);
  Array.iteri
    (fun j set ->
      if Bitset.capacity set <> m then
        invalid_arg (Printf.sprintf "%s: placement of task %d has wrong capacity" name j);
      if Bitset.is_empty set then
        invalid_arg (Printf.sprintf "%s: task %d is placed nowhere" name j))
    placement;
  if Array.length order <> n then
    invalid_arg (Printf.sprintf "%s: order length differs from instance" name);
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg (Printf.sprintf "%s: order is not a permutation of task ids" name);
      seen.(j) <- true)
    order

let inverse_order ~n order =
  let pos_of = Array.make n 0 in
  Array.iteri (fun pos j -> pos_of.(j) <- pos) order;
  pos_of

let run_internal ?speeds ~dispatch ~metrics instance realization ~placement
    ~order ~tr ~emit =
  check_inputs ?speeds ~name:"Engine.run" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  let base =
    match speeds with None -> Array.make m 1.0 | Some s -> Array.copy s
  in
  (* Bulk copies land in the major heap; per-element [Array.init]
     through a closure would box every returned float. The [est] fill
     inlines to unboxed loads. *)
  let actuals = Realization.actuals realization in
  let ests = Array.make n 0.0 in
  for j = 0 to n - 1 do
    ests.(j) <- Instance.est instance j
  done;
  let sizes = Array.make n 0.0 in
  for j = 0 to n - 1 do
    sizes.(j) <- Instance.size instance j
  done;
  (* Staging: with a topology, a machine's (only) copy of task j first
     pulls j's data from its home machine [j mod m]; the pull extends
     the copy's duration by the cross-zone staging time (zero within the
     home zone). Without a topology the float arithmetic below is
     untouched — [None] keeps this run bit-for-bit the pre-topology
     engine. *)
  let topo = Instance.topology instance in
  (* Observability. Every update is guarded (a disabled registry hands
     out no-op instruments), and nothing below reads a metric back, so
     the schedule is bit-for-bit identical with metrics on or off. *)
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  let busy = if live then Array.make m 0.0 else [||] in
  (* [dispatchable.(j)]: task j is in the pool. In the healthy engine a
     task leaves the pool exactly once, so eligibility never grows and
     the default policy's cursors are monotone. *)
  let dispatchable = Array.make n true in
  let e_machine = Array.make n 0 in
  let e_start = Array.make n 0.0 in
  let e_finish = Array.make n 0.0 in
  let remaining = ref n in
  let loads = Array.make m 0.0 in
  let now = Array.make 1 0.0 in
  let policy =
    Dispatch.make dispatch
      {
        Dispatch.n;
        m;
        order;
        pos_of = inverse_order ~n order;
        dispatchable;
        holders = placement;
        est = ests;
        speed = base;
        load = loads;
        now;
        available = (fun _ -> true);
        holders_stable = true;
        topology = topo;
        size = sizes;
      }
  in
  let queue = Event_core.create ~dummy:() () in
  for i = 0 to m - 1 do
    Event_core.push queue ~time:0.0 ~machine:i ~cls:Event_core.cls_decision ()
  done;
  if live then
    Metrics.record_max mg_queue (float_of_int (Event_core.length queue));
  while not (Event_heap.is_empty queue) do
    let time = queue.Event_heap.times.(0) in
    let i = queue.Event_heap.machines.(0) in
    Event_heap.remove_min queue;
    Metrics.incr mc_events;
    now.(0) <- time;
    let j = Dispatch.select_machine policy ~machine:i in
    (* [j < 0]: machine i retires — nothing it holds remains. *)
    if j >= 0 then begin
      let finish =
        match topo with
        | None -> time +. (actuals.(j) /. base.(i))
        | Some tp ->
            time
            +. (actuals.(j) /. base.(i))
            +. Topology.staging_time tp ~src:(j mod m) ~dst:i ~size:sizes.(j)
      in
      e_machine.(j) <- i;
      e_start.(j) <- time;
      e_finish.(j) <- finish;
      dispatchable.(j) <- false;
      loads.(i) <- loads.(i) +. ests.(j);
      remaining := !remaining - 1;
      if tr then begin
        emit (Started { time; machine = i; task = j });
        emit (Completed { time = finish; machine = i; task = j })
      end;
      Metrics.incr mc_dispatches;
      if live then busy.(i) <- busy.(i) +. (finish -. time);
      let s = Event_heap.alloc queue in
      queue.Event_heap.times.(s) <- finish;
      queue.Event_heap.machines.(s) <- i;
      queue.Event_heap.classes.(s) <- Event_core.cls_decision;
      Event_heap.sift_up queue s;
      if live then
        Metrics.record_max mg_queue (float_of_int (Event_core.length queue))
    end
  done;
  if !remaining > 0 then begin
    let left = ref [] in
    for j = n - 1 downto 0 do
      if dispatchable.(j) then left := j :: !left
    done;
    raise (Unschedulable !left)
  end;
  if live then begin
    let mk = ref 0.0 in
    Array.iter (fun f -> if f > !mk then mk := f) e_finish;
    Metrics.set mg_makespan !mk;
    for i = 0 to m - 1 do
      Metrics.observe mh_idle (!mk -. busy.(i))
    done
  end;
  Schedule.of_soa ~m ~machines:e_machine ~starts:e_start ~finishes:e_finish

let run ?speeds ?(dispatch = Dispatch.default) ?(metrics = Metrics.disabled)
    instance realization ~placement ~order =
  run_internal ?speeds ~dispatch ~metrics instance realization ~placement
    ~order ~tr:false ~emit:(fun _ -> ())

let sort_events events =
  let time_of = function
    | Arrived { time; _ }
    | Started { time; _ }
    | Completed { time; _ }
    | Killed { time; _ }
    | Cancelled { time; _ }
    | Machine_crashed { time; _ }
    | Machine_down { time; _ }
    | Machine_up { time; _ }
    | Machine_slowed { time; _ }
    | Failure_detected { time; _ }
    | Rereplication_started { time; _ }
    | Rereplication_completed { time; _ }
    | Rereplication_aborted { time; _ }
    | Checkpoint_resumed { time; _ } -> time
  in
  List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) events

let run_traced ?speeds ?(dispatch = Dispatch.default)
    ?(metrics = Metrics.disabled) instance realization ~placement ~order =
  let events = ref [] in
  let schedule =
    run_internal ?speeds ~dispatch ~metrics instance realization ~placement
      ~order ~tr:true ~emit:(fun e -> events := e :: !events)
  in
  (schedule, sort_events (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)
(* ------------------------------------------------------------------ *)

type fate =
  | Finished of Schedule.entry
  | Stranded

type outcome = {
  fates : fate array;
  completed : int;
  stranded : int list;
  makespan : float;
  wasted : float;
  metrics : Metrics.snapshot;
}

let outcome_schedule ~m outcome =
  if outcome.stranded <> [] then None
  else
    Some
      (Schedule.make ~m
         (Array.map
            (function Finished e -> e | Stranded -> assert false)
            outcome.fates))

(* Task status as unboxed small ints — comparing these never calls the
   polymorphic equality the old variant type did. *)
let st_pending = 0
let st_running = 1
let st_done = 2
let st_lost = 3

(* Simulation event payloads; [Event_core] classes rank simultaneous
   events on one machine: faults (and failure detections) strike before
   completions (and data-transfer arrivals), completions before dispatch
   decisions, speculation checks last.

   The per-event integer data rides the heap's [aux]/[aux2] lanes, so
   the hot constructors are constant (no allocation per push):
   [Sim_arrive] carries its task in [aux], [Sim_complete] its generation
   in [aux], [Sim_speculate] its task in [aux] and generation in
   [aux2]. Only the rare setup/recovery events keep boxed payloads. *)
type sim =
  | Sim_fault of Fault.kind
  | Sim_up
  | Sim_detect
  | Sim_arrive  (** task in [aux] *)
  | Sim_complete  (** machine generation in [aux] *)
  | Sim_transfer of { task : int; src : int; dst : int; id : int }
  | Sim_dispatch
  | Sim_speculate  (** task in [aux], task generation in [aux2] *)

(* Remove the first occurrence of machine [i] — machines appear at most
   once in a copies list, so this matches [List.filter ((<>) i)]
   without allocating a closure per call. *)
let rec remove_machine i = function
  | [] -> []
  | k :: rest -> if k = i then rest else k :: remove_machine i rest

let run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
    ~arrivals instance realization ~faults ~placement ~order ~tr ~emit =
  check_inputs ?speeds ~name:"Engine.run_faulty" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  if Trace.m faults <> m then
    invalid_arg "Engine.run_faulty: trace machine count differs from instance";
  (match arrivals with
  | None -> ()
  | Some arr ->
      if Array.length arr <> n then
        invalid_arg "Engine.run_stream: arrivals length differs from instance";
      Array.iter
        (fun t ->
          if not (Float.is_finite t && t >= 0.0) then
            invalid_arg
              "Engine.run_stream: arrival times must be finite and >= 0")
        arr);
  (match speculation with
  | Some beta when not (beta > 0.0) ->
      invalid_arg "Engine.run_faulty: speculation factor must be > 0"
  | _ -> ());
  let spec_on = match speculation with Some _ -> true | None -> false in
  let spec_beta = match speculation with Some b -> b | None -> 0.0 in
  (* [Recovery.none] is recognized physically: the engine then runs the
     exact pre-recovery code path (same branches, same float operations,
     same event sequence numbers), which the golden qcheck property in
     test_recovery checks bit-for-bit against a structurally-neutral
     active policy. *)
  let rec_active = Recovery.is_active recovery in
  let det_latency = recovery.Recovery.detection_latency in
  (* The live-replica target is per task: [Fixed r] heals everything
     toward the same count (constant function — bit-for-bit the old
     fixed-degree arithmetic), [Degree] toward the replication degree
     phase 1 originally gave each task, captured here before any fault
     or transfer mutates the working sets. *)
  let heals = Recovery.heals recovery in
  let target_of =
    match recovery.Recovery.rereplication_target with
    | Recovery.Fixed r -> fun _ -> r
    | Recovery.Degree ->
        let degree = Array.map Bitset.cardinal placement in
        fun j -> degree.(j)
  in
  let ckpt_interval = recovery.Recovery.checkpoint_interval in
  (* Observability: write-only instruments, see [run_internal]. *)
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mc_redispatches = Metrics.counter metrics "engine.redispatches" in
  let mc_spec_starts = Metrics.counter metrics "engine.spec_starts" in
  let mc_spec_cancelled = Metrics.counter metrics "engine.spec_cancelled" in
  let mc_kills = Metrics.counter metrics "engine.kills" in
  let mc_crashes = Metrics.counter metrics "engine.crashes" in
  let mc_outages = Metrics.counter metrics "engine.outages" in
  let mc_slowdowns = Metrics.counter metrics "engine.slowdowns" in
  let mc_completed = Metrics.counter metrics "engine.completed" in
  let mc_stranded = Metrics.counter metrics "engine.stranded" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mg_wasted = Metrics.gauge metrics "engine.wasted_work" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  (* Streaming instruments exist only in streaming runs: handles register
     on creation, so a batch snapshot must never see them. *)
  let streaming = match arrivals with Some _ -> true | None -> false in
  let arr = match arrivals with Some a -> a | None -> [||] in
  let stream_metrics = if streaming then metrics else Metrics.disabled in
  let mc_arrivals = Metrics.counter stream_metrics "engine.arrivals" in
  let mh_latency = Metrics.histogram stream_metrics "engine.latency" in
  let busy = if live then Array.make m 0.0 else [||] in
  (* Bulk copies land in the major heap; per-element [Array.init]
     through a closure would box every returned float. The [est] fill
     inlines to unboxed loads. *)
  let actuals = Realization.actuals realization in
  let ests = Array.make n 0.0 in
  for j = 0 to n - 1 do
    ests.(j) <- Instance.est instance j
  done;
  let sizes = Array.make n 0.0 in
  for j = 0 to n - 1 do
    sizes.(j) <- Instance.size instance j
  done;
  (* Staging: with a topology, the first copy of task j on each machine
     pulls j's data from its home machine [j mod m] before processing
     starts. The pull is charged as extra work on the copy (staging
     time converted to work units at the machine's current speed), so
     all the slowdown-resync and checkpoint arithmetic below stays
     consistent without special cases. [staged.(j)] records which
     machines already hold j's data warm — a checkpoint resume or a
     landed re-replication transfer never pays twice. Without a
     topology every float operation below is exactly the pre-topology
     engine's, and a single-zone topology charges identically zero —
     the golden qcheck pins both. *)
  let topo = Instance.topology instance in
  let staged =
    match topo with
    | None -> [||]
    | Some _ -> Array.init n (fun _ -> Bitset.create m)
  in
  (* The machine lanes, destructured into locals once; every handler
     below indexes them directly. *)
  let st = Machine_state.create ?speeds ~m () in
  let base = st.Machine_state.base in
  let alive = st.Machine_state.alive in
  let down_until = st.Machine_state.down_until in
  let factor = st.Machine_state.factor in
  let gen = st.Machine_state.gen in
  let cur_task = st.Machine_state.cur_task in
  let cur_started = st.Machine_state.cur_started in
  let cur_remaining = st.Machine_state.cur_remaining in
  let cur_last = st.Machine_state.cur_last in
  let cur_base = st.Machine_state.cur_base in
  let orphan = st.Machine_state.orphan in
  let undetected = st.Machine_state.undetected in
  let blinks = st.Machine_state.blinks in
  let trust_after = st.Machine_state.trust_after in
  let ckpt_task = st.Machine_state.ckpt_task in
  let ckpt_work = st.Machine_state.ckpt_work in
  let alive_set = st.Machine_state.alive_set in
  let available ~time i = alive.(i) && down_until.(i) <= time in
  let idle ~time i = available ~time i && cur_task.(i) < 0 in
  let status = Array.make n st_pending in
  (* In a streaming run a task is invisible to the scheduler until its
     arrival fires; batch runs behave as if everything arrived at t=0. *)
  let arrived = Array.make n (not streaming) in
  let dispatchable = Array.make n (not streaming) in
  let set_status j s =
    status.(j) <- s;
    dispatchable.(j) <- (s = st_pending && arrived.(j))
  in
  (* The machines running a copy of each task, newest first, split into
     an unboxed head lane ([-1] = no copies) plus a spill list that is
     only ever non-empty under speculation. The single-copy common case
     therefore never conses. *)
  let copies_head = Array.make n (-1) in
  let copies_tail = Array.make n ([] : int list) in
  let task_gen = Array.make n 0 in
  let spec_ready = Array.make n false in
  (* Who holds each task's data *now*. Under an active policy transfers
     grow these sets mid-run, so they are private copies; under
     [Recovery.none] they are the placement arrays themselves and never
     change. All holder-semantics reads below go through [data]. *)
  let data =
    if rec_active then Array.map Bitset.copy placement else placement
  in
  (* In-flight re-replication per task: (src, dst, id). The id guards
     against stale [Sim_transfer] deliveries after an abort. *)
  let transfer = Array.make n (None : (int * int * int) option) in
  let transfer_none j =
    match transfer.(j) with None -> true | Some _ -> false
  in
  let transfer_id = ref 0 in
  (* Replicas stored on (or reserved for) each machine: the healer's
     least-loaded destination choice. *)
  let replica_load = Array.make m 0 in
  if rec_active then
    Array.iter
      (Bitset.iter (fun i -> replica_load.(i) <- replica_load.(i) + 1))
      data;
  let e_machine = Array.make n 0 in
  let e_start = Array.make n 0.0 in
  let e_finish = Array.make n 0.0 in
  (* One-cell float arrays, not [float ref]s: storing into a float array
     is unboxed, [:=] on a float ref allocates the new box per store. *)
  let wasted = Array.make 1 0.0 in
  let loads = Array.make m 0.0 in
  let now = Array.make 1 0.0 in
  let policy =
    Dispatch.make dispatch
      {
        Dispatch.n;
        m;
        order;
        pos_of = inverse_order ~n order;
        dispatchable;
        holders = data;
        est = ests;
        speed = base;
        load = loads;
        now;
        available = (fun i -> alive.(i) && down_until.(i) <= now.(0));
        holders_stable = not rec_active;
        topology = topo;
        size = sizes;
      }
  in
  let queue = Event_core.create ~dummy:Sim_dispatch () in
  let push ~time ~machine ~cls sim =
    Event_core.push queue ~time ~machine ~cls sim;
    if live then
      Metrics.record_max mg_queue (float_of_int (Event_core.length queue))
  in
  let push_aux ~time ~machine ~cls ~aux ~aux2 sim =
    Event_core.push_aux queue ~time ~machine ~cls ~aux ~aux2 sim;
    if live then
      Metrics.record_max mg_queue (float_of_int (Event_core.length queue))
  in
  for i = 0 to m - 1 do
    push ~time:0.0 ~machine:i ~cls:Event_core.cls_decision Sim_dispatch
  done;
  List.iter
    (fun (e : Fault.event) ->
      push ~time:e.Fault.time ~machine:e.Fault.machine ~cls:Event_core.cls_fault
        (Sim_fault e.Fault.kind))
    (Trace.events faults);
  (* Arrivals ride the virtual source "machine" -1: at an equal instant
     they strike before every per-machine event, so a stream whose
     arrivals all land at t=0 sees the whole workload before the first
     dispatch decision — exactly the batch engine's starting state. *)
  (match arrivals with
  | None -> ()
  | Some a ->
      Array.iteri
        (fun j t ->
          push_aux ~time:t ~machine:(-1) ~cls:Event_core.cls_arrival ~aux:j
            ~aux2:0 Sim_arrive)
        a);
  let wake_idle ~time =
    for i = 0 to m - 1 do
      if idle ~time i then
        push ~time ~machine:i ~cls:Event_core.cls_decision Sim_dispatch
    done
  in
  (* A task arrives: it becomes visible to the scheduler and, if still
     alive (early faults may have stranded it before it even showed up),
     joins the dispatch pool. *)
  let on_arrive ~time j =
    arrived.(j) <- true;
    Metrics.incr mc_arrivals;
    if tr then emit (Arrived { time; task = j });
    if status.(j) = st_pending then begin
      dispatchable.(j) <- true;
      Dispatch.notify_available policy ~task:j;
      wake_idle ~time
    end
  in
  (* Online re-replication: copy every under-replicated task's data from
     its lowest-numbered available holder to the least-loaded available
     non-holder, one transfer per task at a time. Transfers survive
     outages of either endpoint (the stream is buffered; the data lands
     on the destination disk) but abort when an endpoint crashes. The
     transfer time is path-dependent: cross-zone copies add the zone
     link's latency and are capped by its bandwidth ([None]/single-zone
     reduce to the scalar [size / bandwidth], bit-for-bit). *)
  let transfer_duration ~src ~dst j =
    Recovery.transfer_time ?topology:topo recovery ~src ~dst ~size:sizes.(j)
  in
  let heal ~time =
    if heals then
      for j = 0 to n - 1 do
        if status.(j) <= st_running && transfer_none j then begin
          let nlive = Bitset.inter_cardinal alive_set data.(j) in
          if nlive >= 1 && nlive < target_of j then begin
            let src = ref (-1) in
            (try
               Bitset.iter
                 (fun i ->
                   if available ~time i then begin
                     src := i;
                     raise Exit
                   end)
                 data.(j)
             with Exit -> ());
            if !src >= 0 then begin
              let dst = ref (-1) and best = ref max_int in
              for i = 0 to m - 1 do
                if
                  available ~time i
                  && (not (Bitset.mem data.(j) i))
                  && replica_load.(i) < !best
                then begin
                  dst := i;
                  best := replica_load.(i)
                end
              done;
              if !dst >= 0 then begin
                incr transfer_id;
                transfer.(j) <- Some (!src, !dst, !transfer_id);
                replica_load.(!dst) <- replica_load.(!dst) + 1;
                if tr then
                  emit
                    (Rereplication_started
                       { time; task = j; src = !src; dst = !dst });
                push
                  ~time:(time +. transfer_duration ~src:!src ~dst:!dst j)
                  ~machine:!dst ~cls:Event_core.cls_arrival
                  (Sim_transfer
                     { task = j; src = !src; dst = !dst; id = !transfer_id })
              end
            end
          end
        end
      done
  in
  let abort_transfers ~time x =
    for j = 0 to n - 1 do
      match transfer.(j) with
      | Some (src, dst, _) when src = x || dst = x ->
          transfer.(j) <- None;
          replica_load.(dst) <- replica_load.(dst) - 1;
          if tr then emit (Rereplication_aborted { time; task = j; src; dst });
          Metrics.incr (Metrics.counter metrics "engine.transfer_aborts")
      | _ -> ()
    done
  in
  let start_copy ~resume ~banked ~time i j =
    cur_task.(i) <- j;
    cur_started.(i) <- time;
    cur_remaining.(i) <- (if resume then actuals.(j) -. banked else actuals.(j));
    (match topo with
    | None -> ()
    | Some tp ->
        if not (Bitset.mem staged.(j) i) then begin
          Bitset.add staged.(j) i;
          let s = Topology.staging_time tp ~src:(j mod m) ~dst:i ~size:sizes.(j) in
          (* Charged as work at the current speed so a later slowdown
             resync rescales the in-flight pull along with the copy. *)
          if s > 0.0 then
            cur_remaining.(i) <-
              cur_remaining.(i) +. (s *. (base.(i) *. factor.(i)))
        end);
    cur_last.(i) <- time;
    cur_base.(i) <- (if resume then banked else 0.0);
    gen.(i) <- gen.(i) + 1;
    let was_primary = copies_head.(j) < 0 in
    if was_primary then copies_head.(j) <- i
    else begin
      copies_tail.(j) <- copies_head.(j) :: copies_tail.(j);
      copies_head.(j) <- i
    end;
    set_status j st_running;
    loads.(i) <- loads.(i) +. ests.(j);
    Metrics.incr mc_dispatches;
    if was_primary then begin
      if task_gen.(j) > 0 then Metrics.incr mc_redispatches
    end
    else Metrics.incr mc_spec_starts;
    if tr then emit (Started { time; machine = i; task = j });
    if resume then begin
      ckpt_task.(i) <- -1;
      if tr then
        emit
          (Checkpoint_resumed { time; machine = i; task = j; progress = banked });
      Metrics.incr (Metrics.counter metrics "engine.checkpoint_resumes")
    end;
    let finish = time +. (cur_remaining.(i) /. (base.(i) *. factor.(i))) in
    push_aux ~time:finish ~machine:i ~cls:Event_core.cls_arrival
      ~aux:(gen.(i)) ~aux2:0 Sim_complete;
    if spec_on && was_primary then begin
      (* Arm the straggler check from estimates only: the scheduler is
         semi-clairvoyant and must not peek at actual times. *)
      let expected = ests.(j) /. base.(i) in
      push_aux
        ~time:(time +. (spec_beta *. expected))
        ~machine:i ~cls:Event_core.cls_audit ~aux:j
        ~aux2:(task_gen.(j)) Sim_speculate
    end
  in
  (* Return a copy-less task to the scheduler's pool — or declare it
     [Lost] when no live machine holds its data and no transfer is
     carrying it out. Under a detection latency this is what gets
     deferred until the failure becomes known. *)
  let release_task ~time j =
    task_gen.(j) <- task_gen.(j) + 1;
    spec_ready.(j) <- false;
    if Bitset.inter_is_empty alive_set data.(j) && transfer_none j then
      set_status j st_lost
    else begin
      set_status j st_pending;
      Dispatch.notify_available policy ~task:j;
      wake_idle ~time
    end
  in
  (* Kill the in-flight copy of machine [i] (crash or outage): the work
     is lost — except what a checkpoint salvages on an outage — and the
     task returns to the pool (immediately, or at failure detection when
     the policy models a latency). *)
  let kill_current ~salvage ~time i =
    let j = cur_task.(i) in
    if j >= 0 then begin
      let wall = time -. cur_started.(i) in
      let waste =
        if salvage && ckpt_interval > 0.0 then begin
          (* Work processed this attempt, synced exactly as a slowdown
             resync would do it. *)
          let remaining_now =
            Float.max 0.0
              (cur_remaining.(i)
              -. ((time -. cur_last.(i)) *. (base.(i) *. factor.(i))))
          in
          let attempt_total = actuals.(j) -. cur_base.(i) in
          let done_attempt = attempt_total -. remaining_now in
          let total_done = cur_base.(i) +. done_attempt in
          let preserved =
            Float.min total_done
              (Float.floor (total_done /. ckpt_interval) *. ckpt_interval)
          in
          if preserved > 0.0 then begin
            ckpt_task.(i) <- j;
            ckpt_work.(i) <- preserved;
            if done_attempt > 0.0 then begin
              (* Credit the preserved share of this attempt against the
                 waste, pro-rated by wall time so mid-attempt speed
                 changes cannot make the waste negative. *)
              let credit =
                Float.max 0.0
                  (Float.min done_attempt (preserved -. cur_base.(i)))
              in
              wall *. (1.0 -. (credit /. done_attempt))
            end
            else wall
          end
          else wall
        end
        else wall
      in
      wasted.(0) <- wasted.(0) +. waste;
      Metrics.incr mc_kills;
      if live then busy.(i) <- busy.(i) +. wall;
      cur_task.(i) <- -1;
      gen.(i) <- gen.(i) + 1;
      if tr then emit (Killed { time; machine = i; task = j });
      (if copies_head.(j) = i then
         match copies_tail.(j) with
         | [] -> copies_head.(j) <- -1
         | k :: rest ->
             copies_head.(j) <- k;
             copies_tail.(j) <- rest
       else copies_tail.(j) <- remove_machine i copies_tail.(j));
      if copies_head.(j) < 0 then
        if rec_active && det_latency > 0.0 then orphan.(i) <- j
        else release_task ~time j
    end
  in
  (* The disk of a dead machine [i] is gone: strand every waiting task
     whose last replica it held (unless a transfer is carrying a copy
     out, which keeps the task alive until the transfer resolves). *)
  let strand_scan i =
    for j = 0 to n - 1 do
      if
        status.(j) = st_pending
        && Bitset.mem data.(j) i
        && Bitset.inter_is_empty alive_set data.(j)
        && transfer_none j
      then set_status j st_lost
    done
  in
  (* The moment the scheduler learns of machine [i]'s failure — either
     the detector fires [det_latency] after the fault, or the machine
     truthfully reports its own outage when it rejoins, whichever comes
     first. Only then is the orphaned copy released for re-dispatch. *)
  let acknowledge ~time i =
    let t0 = undetected.(i) in
    if not (Float.is_nan t0) then begin
      undetected.(i) <- Float.nan;
      if tr then emit (Failure_detected { time; machine = i });
      Metrics.observe
        (Metrics.histogram metrics "engine.detection_lag")
        (time -. t0);
      let oj = orphan.(i) in
      if oj >= 0 then begin
        orphan.(i) <- -1;
        if status.(oj) = st_running && copies_head.(oj) < 0 then
          release_task ~time oj
      end;
      if not alive.(i) then strand_scan i
    end
  in
  let on_transfer ~time ~task ~src ~dst ~id =
    match transfer.(task) with
    | Some (_, _, id') when id' = id ->
        transfer.(task) <- None;
        Bitset.add data.(task) dst;
        (* The landed replica is warm: a copy started here later must
           not pay the staging pull again. *)
        (match topo with None -> () | Some _ -> Bitset.add staged.(task) dst);
        if tr then emit (Rereplication_completed { time; task; src; dst });
        Metrics.incr (Metrics.counter metrics "engine.rereplications");
        Metrics.observe
          (Metrics.histogram metrics "engine.transfer_time")
          (transfer_duration ~src ~dst task);
        if status.(task) = st_pending then begin
          Dispatch.notify_available policy ~task;
          wake_idle ~time
        end;
        heal ~time
    | _ -> () (* aborted (and possibly re-issued): stale delivery *)
  in
  (* First task in priority order that is running a single overdue copy
     whose data machine [i] also holds. Speculation is a safety
     mechanism, not a placement decision, so it stays with the engine
     rather than the dispatch policy. (Defined once — a per-call
     [let rec] closure would allocate on every idle scan.) *)
  let rec spec_scan i pos =
    if pos >= n then -1
    else
      let j = order.(pos) in
      if
        status.(j) = st_running
        && spec_ready.(j)
        && copies_head.(j) >= 0
        && copies_head.(j) <> i
        && (match copies_tail.(j) with [] -> true | _ -> false)
        && Bitset.mem data.(j) i
      then j
      else spec_scan i (pos + 1)
  in
  let dispatch_machine ~time i =
    if available ~time i && cur_task.(i) < 0 && time >= trust_after.(i) then begin
      (* A machine holding a checkpoint of a waiting task resumes it in
         preference to fresh work: the banked progress makes it the
         cheapest copy anyone can start. *)
      let cj = ckpt_task.(i) in
      if cj >= 0 && status.(cj) = st_pending && Bitset.mem data.(cj) i then
        start_copy ~resume:true ~banked:(ckpt_work.(i)) ~time i cj
      else begin
        let j = Dispatch.select_machine policy ~machine:i in
        if j >= 0 then start_copy ~resume:false ~banked:0.0 ~time i j
        else if spec_on then begin
          let sj = spec_scan i 0 in
          if sj >= 0 then start_copy ~resume:false ~banked:0.0 ~time i sj
          (* else idle; woken again if work returns to the pool *)
        end
      end
    end
  in
  let complete ~time i g =
    (* Stale completions (the copy was killed or cancelled) fail the
       generation check. *)
    if cur_task.(i) >= 0 && g = gen.(i) then begin
      let j = cur_task.(i) in
      let started = cur_started.(i) in
      e_machine.(j) <- i;
      e_start.(j) <- started;
      e_finish.(j) <- time;
      set_status j st_done;
      cur_task.(i) <- -1;
      gen.(i) <- gen.(i) + 1;
      if live then busy.(i) <- busy.(i) +. (time -. started);
      if tr then emit (Completed { time; machine = i; task = j });
      if streaming then Metrics.observe mh_latency (time -. arr.(j));
      if
        copies_head.(j) = i
        && (match copies_tail.(j) with [] -> true | _ -> false)
      then begin
        (* No speculative copies in flight: the freed machine is the only
           one to re-dispatch, so skip the list plumbing entirely. *)
        copies_head.(j) <- -1;
        dispatch_machine ~time i
      end
      else begin
        (* Speculative losers: first copy to finish wins, the rest abort. *)
        let losers =
          List.filter (fun k -> k <> i) (copies_head.(j) :: copies_tail.(j))
        in
        copies_head.(j) <- -1;
        copies_tail.(j) <- [];
        List.iter
          (fun k ->
            assert (cur_task.(k) >= 0);
            wasted.(0) <- wasted.(0) +. (time -. cur_started.(k));
            if live then busy.(k) <- busy.(k) +. (time -. cur_started.(k));
            cur_task.(k) <- -1;
            gen.(k) <- gen.(k) + 1;
            Metrics.incr mc_spec_cancelled;
            if tr then emit (Cancelled { time; machine = k; task = j }))
          losers;
        List.iter (dispatch_machine ~time)
          (Dispatch.redispatch_order policy (i :: losers))
      end
    end
  in
  let on_fault ~time i kind =
    match kind with
    | Fault.Crash ->
        if alive.(i) then begin
          Metrics.incr mc_crashes;
          Machine_state.mark_crashed st i;
          if tr then emit (Machine_crashed { time; machine = i });
          (* Physical consequences are immediate: the disk (and any
             checkpoint on it) is gone, in-flight transfers touching the
             machine die, the running copy dies. *)
          ckpt_task.(i) <- -1;
          if rec_active then abort_transfers ~time i;
          kill_current ~salvage:false ~time i;
          if rec_active && det_latency > 0.0 then begin
            (* The scheduler only reacts once the detector fires. *)
            if Float.is_nan undetected.(i) then undetected.(i) <- time;
            push ~time:(time +. det_latency) ~machine:i
              ~cls:Event_core.cls_fault Sim_detect
          end
          else begin
            (* Strand every waiting task whose last replica the dead disk
               held, then re-replicate whatever it left under target. *)
            strand_scan i;
            if rec_active then heal ~time
          end
        end
    | Fault.Outage until ->
        if alive.(i) then begin
          Metrics.incr mc_outages;
          down_until.(i) <- Float.max down_until.(i) until;
          if tr then
            emit (Machine_down { time; machine = i; until = down_until.(i) });
          kill_current ~salvage:true ~time i;
          if rec_active then begin
            blinks.(i) <- blinks.(i) + 1;
            let b = Recovery.backoff recovery ~blinks:(blinks.(i)) in
            if b > 0.0 then
              trust_after.(i) <- Float.max trust_after.(i) (down_until.(i) +. b);
            (* Detection only matters when a copy was orphaned: the
               outage's other effects wait for the rejoin anyway. *)
            if det_latency > 0.0 && orphan.(i) >= 0 then begin
              if Float.is_nan undetected.(i) then undetected.(i) <- time;
              push ~time:(time +. det_latency) ~machine:i
                ~cls:Event_core.cls_fault Sim_detect
            end
          end;
          push ~time:(down_until.(i)) ~machine:i ~cls:Event_core.cls_fault
            Sim_up
        end
    | Fault.Slowdown f ->
        Metrics.incr mc_slowdowns;
        let old_speed = base.(i) *. factor.(i) in
        factor.(i) <- f;
        if tr then emit (Machine_slowed { time; machine = i; factor = f });
        if cur_task.(i) >= 0 then begin
          cur_remaining.(i) <-
            cur_remaining.(i) -. ((time -. cur_last.(i)) *. old_speed);
          cur_last.(i) <- time;
          gen.(i) <- gen.(i) + 1;
          push_aux
            ~time:(time +. (cur_remaining.(i) /. (base.(i) *. factor.(i))))
            ~machine:i ~cls:Event_core.cls_arrival ~aux:(gen.(i)) ~aux2:0
            Sim_complete
        end
  in
  let on_up ~time i =
    if alive.(i) && time >= down_until.(i) then begin
      if tr then emit (Machine_up { time; machine = i });
      if rec_active then begin
        (* The machine reports its own fate truthfully on rejoin, which
           may beat the detector; its return may also unblock healing
           (as a transfer source or destination). *)
        acknowledge ~time i;
        heal ~time
      end;
      if time >= trust_after.(i) then dispatch_machine ~time i
      else
        (* Backoff: the machine blinked recently, so it only receives
           new work once its distrust window expires. *)
        push ~time:(trust_after.(i)) ~machine:i ~cls:Event_core.cls_decision
          Sim_dispatch
    end
  in
  let on_detect ~time i =
    acknowledge ~time i;
    heal ~time
  in
  let on_speculate ~time task g =
    if
      task_gen.(task) = g
      && status.(task) = st_running
      && copies_head.(task) >= 0
      && (match copies_tail.(task) with [] -> true | _ -> false)
    then begin
      spec_ready.(task) <- true;
      (* Grab an idle surviving holder right now if one exists; otherwise
         the next machine to go idle picks the task up in
         [dispatch_machine]. *)
      let runner = copies_head.(task) in
      let exception Found of int in
      match
        Bitset.iter
          (fun i -> if i <> runner && idle ~time i then raise (Found i))
          data.(task)
      with
      | () -> ()
      | exception Found i -> start_copy ~resume:false ~banked:0.0 ~time i task
    end
  in
  (* An active healer starts working before the first dispatch: a
     placement below the replication target (k = 1, say) is brought up
     to its per-task target from time zero. (Under [Degree] the initial
     placement already meets the target, so this is a no-op there.) *)
  if rec_active then heal ~time:0.0;
  while not (Event_heap.is_empty queue) do
    let time = queue.Event_heap.times.(0) in
    let machine = queue.Event_heap.machines.(0) in
    let a1 = queue.Event_heap.aux.(0) in
    let a2 = queue.Event_heap.aux2.(0) in
    let sim = queue.Event_heap.payloads.(0) in
    Event_heap.remove_min queue;
    Metrics.incr mc_events;
    now.(0) <- time;
    match sim with
    | Sim_fault kind -> on_fault ~time machine kind
    | Sim_up -> on_up ~time machine
    | Sim_detect -> on_detect ~time machine
    | Sim_arrive -> on_arrive ~time a1
    | Sim_complete -> complete ~time machine a1
    | Sim_transfer { task; src; dst; id } ->
        on_transfer ~time ~task ~src ~dst ~id
    | Sim_dispatch -> dispatch_machine ~time machine
    | Sim_speculate -> on_speculate ~time a1 a2
  done;
  let fates =
    Array.init n (fun j ->
        if status.(j) = st_done then
          Finished
            {
              Schedule.machine = e_machine.(j);
              start = e_start.(j);
              finish = e_finish.(j);
            }
        else Stranded)
  in
  let completed = ref 0 and stranded = ref [] in
  let makespan = Array.make 1 0.0 in
  for j = n - 1 downto 0 do
    if status.(j) = st_done then begin
      incr completed;
      makespan.(0) <- Float.max makespan.(0) e_finish.(j)
    end
    else stranded := j :: !stranded
  done;
  if live then begin
    Metrics.add mc_completed !completed;
    Metrics.add mc_stranded (List.length !stranded);
    Metrics.set mg_makespan makespan.(0);
    Metrics.set mg_wasted wasted.(0);
    for i = 0 to m - 1 do
      (* Everything a machine did not spend processing (including
         downtime and its post-crash tail) counts as idle. *)
      Metrics.observe mh_idle (makespan.(0) -. busy.(i))
    done
  end;
  {
    fates;
    completed = !completed;
    stranded = !stranded;
    makespan = makespan.(0);
    wasted = wasted.(0);
    metrics = Metrics.snapshot metrics;
  }

let run_faulty ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) instance
    realization ~faults ~placement ~order =
  run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
    ~arrivals:None instance realization ~faults ~placement ~order ~tr:false
    ~emit:(fun _ -> ())

let run_faulty_traced ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) instance
    realization ~faults ~placement ~order =
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:None instance realization ~faults ~placement ~order ~tr:true
      ~emit:(fun e -> events := e :: !events)
  in
  (outcome, sort_events (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Open-system streaming service mode.                                 *)
(* ------------------------------------------------------------------ *)

type stream_outcome = { outcome : outcome; latencies : float array }

(* Response time of every finished task, in task-id (= admission) order.
   Stranded tasks contribute nothing: their latency is unbounded, and
   averaging an arbitrary sentinel in would poison the quantiles. *)
let stream_latencies ~arrivals outcome =
  let n = Array.length outcome.fates in
  let count = ref 0 in
  for j = 0 to n - 1 do
    match outcome.fates.(j) with
    | Finished _ -> incr count
    | Stranded -> ()
  done;
  let out = Array.make !count 0.0 in
  let k = ref 0 in
  for j = 0 to n - 1 do
    match outcome.fates.(j) with
    | Finished e ->
        out.(!k) <- e.Schedule.finish -. arrivals.(j);
        incr k
    | Stranded -> ()
  done;
  out

let run_stream ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) ?faults instance
    realization ~arrivals ~placement ~order =
  let faults =
    match faults with Some f -> f | None -> Trace.empty ~m:(Instance.m instance)
  in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:(Some arrivals) instance realization ~faults ~placement ~order
      ~tr:false ~emit:(fun _ -> ())
  in
  { outcome; latencies = stream_latencies ~arrivals outcome }

let run_stream_traced ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) ?faults instance
    realization ~arrivals ~placement ~order =
  let faults =
    match faults with Some f -> f | None -> Trace.empty ~m:(Instance.m instance)
  in
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:(Some arrivals) instance realization ~faults ~placement ~order
      ~tr:true ~emit:(fun e -> events := e :: !events)
  in
  ( { outcome; latencies = stream_latencies ~arrivals outcome },
    sort_events (List.rev !events) )

(* ------------------------------------------------------------------ *)
(* JSON serialization of events and outcomes (the trace sink's view).  *)
(* ------------------------------------------------------------------ *)

let event_json e =
  let base kind time fields =
    Json.Obj
      (("type", Json.String "event")
      :: ("kind", Json.String kind)
      :: ("t", Json.float time)
      :: fields)
  in
  match e with
  | Arrived { time; task } -> base "arrived" time [ ("task", Json.Int task) ]
  | Started { time; machine; task } ->
      base "started" time [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Completed { time; machine; task } ->
      base "completed" time
        [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Killed { time; machine; task } ->
      base "killed" time [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Cancelled { time; machine; task } ->
      base "cancelled" time
        [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Machine_crashed { time; machine } ->
      base "machine_crashed" time [ ("machine", Json.Int machine) ]
  | Machine_down { time; machine; until } ->
      base "machine_down" time
        [ ("machine", Json.Int machine); ("until", Json.float until) ]
  | Machine_up { time; machine } ->
      base "machine_up" time [ ("machine", Json.Int machine) ]
  | Machine_slowed { time; machine; factor } ->
      base "machine_slowed" time
        [ ("machine", Json.Int machine); ("factor", Json.float factor) ]
  | Failure_detected { time; machine } ->
      base "failure_detected" time [ ("machine", Json.Int machine) ]
  | Rereplication_started { time; task; src; dst } ->
      base "rereplication_started" time
        [ ("task", Json.Int task); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Rereplication_completed { time; task; src; dst } ->
      base "rereplication_completed" time
        [ ("task", Json.Int task); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Rereplication_aborted { time; task; src; dst } ->
      base "rereplication_aborted" time
        [ ("task", Json.Int task); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Checkpoint_resumed { time; machine; task; progress } ->
      base "checkpoint_resumed" time
        [
          ("machine", Json.Int machine);
          ("task", Json.Int task);
          ("progress", Json.float progress);
        ]

let outcome_json outcome =
  Json.Obj
    [
      ("type", Json.String "outcome");
      ("completed", Json.Int outcome.completed);
      ("stranded", Json.List (List.map (fun j -> Json.Int j) outcome.stranded));
      ("makespan", Json.float outcome.makespan);
      ("wasted", Json.float outcome.wasted);
      ("metrics", Metrics.to_json outcome.metrics);
    ]
