module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type event =
  | Started of { time : float; machine : int; task : int }
  | Completed of { time : float; machine : int; task : int }

let check_inputs ?speeds instance ~placement ~order =
  let n = Instance.n instance and m = Instance.m instance in
  (match speeds with
  | None -> ()
  | Some s ->
      if Array.length s <> m then
        invalid_arg "Engine.run: speeds length differs from machine count";
      Array.iter
        (fun v ->
          if not (v > 0.0) then invalid_arg "Engine.run: speeds must be > 0")
        s);
  if Array.length placement <> n then
    invalid_arg "Engine.run: placement length differs from instance";
  Array.iteri
    (fun j set ->
      if Bitset.capacity set <> m then
        invalid_arg (Printf.sprintf "Engine.run: placement of task %d has wrong capacity" j);
      if Bitset.is_empty set then
        invalid_arg (Printf.sprintf "Engine.run: task %d is placed nowhere" j))
    placement;
  if Array.length order <> n then
    invalid_arg "Engine.run: order length differs from instance";
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg "Engine.run: order is not a permutation of task ids";
      seen.(j) <- true)
    order

(* Events are (idle time, machine id); the id breaks ties deterministically. *)
let compare_idle (ta, ia) (tb, ib) =
  match Float.compare ta tb with 0 -> Int.compare ia ib | c -> c

let run_internal ?speeds instance realization ~placement ~order ~emit =
  check_inputs ?speeds instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  let speed_of i = match speeds with None -> 1.0 | Some s -> s.(i) in
  let scheduled = Array.make n false in
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let remaining = ref n in
  (* cursor.(i): every order position before it is permanently unavailable
     to machine i (already scheduled, or data not on i) — eligibility never
     grows, so cursors only move forward and the total scan is O(m*n). *)
  let cursor = Array.make m 0 in
  let queue = Pqueue.create ~compare:compare_idle () in
  for i = 0 to m - 1 do
    Pqueue.push queue (0.0, i)
  done;
  let find_task i =
    (* The scan is contiguous from the cursor: every skipped position is
       permanently unavailable to i, and the found position becomes
       scheduled, so the cursor always lands just past the last visited
       position. *)
    let rec scan pos =
      if pos >= n then None
      else begin
        cursor.(i) <- pos + 1;
        let j = order.(pos) in
        if (not scheduled.(j)) && Bitset.mem placement.(j) i then Some j
        else scan (pos + 1)
      end
    in
    scan cursor.(i)
  in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (time, i) ->
        (match find_task i with
        | None -> () (* machine i retires: nothing it holds remains *)
        | Some j ->
            let finish = time +. (Realization.actual realization j /. speed_of i) in
            entries.(j) <- { Schedule.machine = i; start = time; finish };
            scheduled.(j) <- true;
            remaining := !remaining - 1;
            emit (Started { time; machine = i; task = j });
            emit (Completed { time = finish; machine = i; task = j });
            Pqueue.push queue (finish, i));
        loop ()
  in
  loop ();
  if !remaining > 0 then failwith "Engine.run: unschedulable tasks remain";
  Schedule.make ~m entries

let run ?speeds instance realization ~placement ~order =
  run_internal ?speeds instance realization ~placement ~order ~emit:(fun _ -> ())

let run_traced ?speeds instance realization ~placement ~order =
  let events = ref [] in
  let schedule =
    run_internal ?speeds instance realization ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  let time_of = function Started { time; _ } | Completed { time; _ } -> time in
  let chronological =
    List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b))
      (List.rev !events)
  in
  (schedule, chronological)
