module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json

type event =
  | Started of { time : float; machine : int; task : int }
  | Completed of { time : float; machine : int; task : int }
  | Killed of { time : float; machine : int; task : int }
  | Cancelled of { time : float; machine : int; task : int }
  | Machine_crashed of { time : float; machine : int }
  | Machine_down of { time : float; machine : int; until : float }
  | Machine_up of { time : float; machine : int }
  | Machine_slowed of { time : float; machine : int; factor : float }

exception Unschedulable of int list

let check_inputs ?speeds ~name instance ~placement ~order =
  let n = Instance.n instance and m = Instance.m instance in
  (match speeds with
  | None -> ()
  | Some s ->
      if Array.length s <> m then
        invalid_arg (Printf.sprintf "%s: speeds length differs from machine count" name);
      Array.iter
        (fun v ->
          if not (v > 0.0) then
            invalid_arg (Printf.sprintf "%s: speeds must be > 0" name))
        s);
  if Array.length placement <> n then
    invalid_arg (Printf.sprintf "%s: placement length differs from instance" name);
  Array.iteri
    (fun j set ->
      if Bitset.capacity set <> m then
        invalid_arg (Printf.sprintf "%s: placement of task %d has wrong capacity" name j);
      if Bitset.is_empty set then
        invalid_arg (Printf.sprintf "%s: task %d is placed nowhere" name j))
    placement;
  if Array.length order <> n then
    invalid_arg (Printf.sprintf "%s: order length differs from instance" name);
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg (Printf.sprintf "%s: order is not a permutation of task ids" name);
      seen.(j) <- true)
    order

(* Events are (idle time, machine id); the id breaks ties deterministically. *)
let compare_idle (ta, ia) (tb, ib) =
  match Float.compare ta tb with 0 -> Int.compare ia ib | c -> c

let run_internal ?speeds ~metrics instance realization ~placement ~order ~emit =
  check_inputs ?speeds ~name:"Engine.run" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  let speed_of i = match speeds with None -> 1.0 | Some s -> s.(i) in
  (* Observability. Every update is guarded (a disabled registry hands
     out no-op instruments), and nothing below reads a metric back, so
     the schedule is bit-for-bit identical with metrics on or off. *)
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  let busy = if live then Array.make m 0.0 else [||] in
  let scheduled = Array.make n false in
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let remaining = ref n in
  (* cursor.(i): every order position before it is permanently unavailable
     to machine i (already scheduled, or data not on i) — eligibility never
     grows, so cursors only move forward and the total scan is O(m*n). *)
  let cursor = Array.make m 0 in
  let queue = Pqueue.create ~compare:compare_idle () in
  for i = 0 to m - 1 do
    Pqueue.push queue (0.0, i)
  done;
  let find_task i =
    (* The scan is contiguous from the cursor: every skipped position is
       permanently unavailable to i, and the found position becomes
       scheduled, so the cursor always lands just past the last visited
       position. *)
    let rec scan pos =
      if pos >= n then None
      else begin
        cursor.(i) <- pos + 1;
        let j = order.(pos) in
        if (not scheduled.(j)) && Bitset.mem placement.(j) i then Some j
        else scan (pos + 1)
      end
    in
    scan cursor.(i)
  in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (time, i) ->
        Metrics.incr mc_events;
        (match find_task i with
        | None -> () (* machine i retires: nothing it holds remains *)
        | Some j ->
            let finish = time +. (Realization.actual realization j /. speed_of i) in
            entries.(j) <- { Schedule.machine = i; start = time; finish };
            scheduled.(j) <- true;
            remaining := !remaining - 1;
            emit (Started { time; machine = i; task = j });
            emit (Completed { time = finish; machine = i; task = j });
            Metrics.incr mc_dispatches;
            if live then busy.(i) <- busy.(i) +. (finish -. time);
            Pqueue.push queue (finish, i);
            if live then
              Metrics.record_max mg_queue (float_of_int (Pqueue.length queue)));
        loop ()
  in
  if live then Metrics.record_max mg_queue (float_of_int (Pqueue.length queue));
  loop ();
  if !remaining > 0 then begin
    let left = ref [] in
    for j = n - 1 downto 0 do
      if not scheduled.(j) then left := j :: !left
    done;
    raise (Unschedulable !left)
  end;
  if live then begin
    let mk = ref 0.0 in
    Array.iter
      (fun e -> if e.Schedule.finish > !mk then mk := e.Schedule.finish)
      entries;
    Metrics.set mg_makespan !mk;
    for i = 0 to m - 1 do
      Metrics.observe mh_idle (!mk -. busy.(i))
    done
  end;
  Schedule.make ~m entries

let run ?speeds ?(metrics = Metrics.disabled) instance realization ~placement
    ~order =
  run_internal ?speeds ~metrics instance realization ~placement ~order
    ~emit:(fun _ -> ())

let sort_events events =
  let time_of = function
    | Started { time; _ }
    | Completed { time; _ }
    | Killed { time; _ }
    | Cancelled { time; _ }
    | Machine_crashed { time; _ }
    | Machine_down { time; _ }
    | Machine_up { time; _ }
    | Machine_slowed { time; _ } -> time
  in
  List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) events

let run_traced ?speeds ?(metrics = Metrics.disabled) instance realization
    ~placement ~order =
  let events = ref [] in
  let schedule =
    run_internal ?speeds ~metrics instance realization ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  (schedule, sort_events (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)
(* ------------------------------------------------------------------ *)

type fate =
  | Finished of Schedule.entry
  | Stranded

type outcome = {
  fates : fate array;
  completed : int;
  stranded : int list;
  makespan : float;
  wasted : float;
  metrics : Metrics.snapshot;
}

let outcome_schedule ~m outcome =
  if outcome.stranded <> [] then None
  else
    Some
      (Schedule.make ~m
         (Array.map
            (function Finished e -> e | Stranded -> assert false)
            outcome.fates))

(* A copy of a task in flight on one machine. [remaining] is re-synced at
   every speed change, so completion predictions stay exact under
   mid-task slowdowns. *)
type copy = {
  c_task : int;
  c_started : float;
  mutable c_remaining : float; (* actual-time units of work left *)
  mutable c_last : float; (* when [c_remaining] was last synced *)
}

type mstate = {
  mutable alive : bool;
  mutable down_until : float; (* unavailable while [now < down_until] *)
  mutable factor : float; (* straggler speed multiplier *)
  mutable gen : int; (* invalidates queued completion events *)
  mutable current : copy option;
}

type tstatus = Pending | Running | Done | Lost

(* Simulation event payloads; class ranks order simultaneous events on
   one machine: faults strike before completions, completions before
   dispatch decisions, speculation checks last. *)
type sim =
  | Sim_fault of Fault.kind
  | Sim_up
  | Sim_complete of { gen : int }
  | Sim_dispatch
  | Sim_speculate of { task : int; gen : int }

type sim_event = { time : float; machine : int; cls : int; seq : int; sim : sim }

let compare_sim a b =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare a.machine b.machine with
      | 0 -> (
          match Int.compare a.cls b.cls with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)
  | c -> c

let run_faulty_internal ?speeds ?speculation ~metrics instance realization
    ~faults ~placement ~order ~emit =
  check_inputs ?speeds ~name:"Engine.run_faulty" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  if Trace.m faults <> m then
    invalid_arg "Engine.run_faulty: trace machine count differs from instance";
  (match speculation with
  | Some beta when not (beta > 0.0) ->
      invalid_arg "Engine.run_faulty: speculation factor must be > 0"
  | _ -> ());
  (* Observability: write-only instruments, see [run_internal]. *)
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mc_redispatches = Metrics.counter metrics "engine.redispatches" in
  let mc_spec_starts = Metrics.counter metrics "engine.spec_starts" in
  let mc_spec_cancelled = Metrics.counter metrics "engine.spec_cancelled" in
  let mc_kills = Metrics.counter metrics "engine.kills" in
  let mc_crashes = Metrics.counter metrics "engine.crashes" in
  let mc_outages = Metrics.counter metrics "engine.outages" in
  let mc_slowdowns = Metrics.counter metrics "engine.slowdowns" in
  let mc_completed = Metrics.counter metrics "engine.completed" in
  let mc_stranded = Metrics.counter metrics "engine.stranded" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mg_wasted = Metrics.gauge metrics "engine.wasted_work" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  let busy = if live then Array.make m 0.0 else [||] in
  let base_speed i = match speeds with None -> 1.0 | Some s -> s.(i) in
  let machines =
    Array.init m (fun _ ->
        { alive = true; down_until = 0.0; factor = 1.0; gen = 0; current = None })
  in
  let eff_speed i = base_speed i *. machines.(i).factor in
  let available ~time i =
    let ms = machines.(i) in
    ms.alive && ms.down_until <= time
  in
  let status = Array.make n Pending in
  let copies = Array.make n ([] : int list) in
  let task_gen = Array.make n 0 in
  let spec_ready = Array.make n false in
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let alive_set = Bitset.full m in
  let wasted = ref 0.0 in
  let pos_of = Array.make n 0 in
  Array.iteri (fun pos j -> pos_of.(j) <- pos) order;
  let cursor = Array.make m 0 in
  let queue = Pqueue.create ~compare:compare_sim () in
  let seq = ref 0 in
  let push ~time ~machine ~cls sim =
    incr seq;
    Pqueue.push queue { time; machine; cls; seq = !seq; sim };
    if live then Metrics.record_max mg_queue (float_of_int (Pqueue.length queue))
  in
  for i = 0 to m - 1 do
    push ~time:0.0 ~machine:i ~cls:2 Sim_dispatch
  done;
  List.iter
    (fun (e : Fault.event) ->
      push ~time:e.Fault.time ~machine:e.Fault.machine ~cls:0
        (Sim_fault e.Fault.kind))
    (Trace.events faults);
  (* Dispatch scan: identical to [run]'s cursor scan, except that tasks
     killed mid-run return to [Pending] and rewind the cursors below. *)
  let find_task i =
    let rec scan pos =
      if pos >= n then None
      else begin
        cursor.(i) <- pos + 1;
        let j = order.(pos) in
        if status.(j) = Pending && Bitset.mem placement.(j) i then Some j
        else scan (pos + 1)
      end
    in
    scan cursor.(i)
  in
  let rewind_cursors j =
    let p = pos_of.(j) in
    for i = 0 to m - 1 do
      if cursor.(i) > p then cursor.(i) <- p
    done
  in
  let wake_idle ~time =
    for i = 0 to m - 1 do
      if available ~time i && machines.(i).current = None then
        push ~time ~machine:i ~cls:2 Sim_dispatch
    done
  in
  let start_copy ~time i j =
    let ms = machines.(i) in
    let c =
      {
        c_task = j;
        c_started = time;
        c_remaining = Realization.actual realization j;
        c_last = time;
      }
    in
    ms.current <- Some c;
    ms.gen <- ms.gen + 1;
    let was_primary = copies.(j) = [] in
    copies.(j) <- i :: copies.(j);
    status.(j) <- Running;
    Metrics.incr mc_dispatches;
    if was_primary then begin
      if task_gen.(j) > 0 then Metrics.incr mc_redispatches
    end
    else Metrics.incr mc_spec_starts;
    emit (Started { time; machine = i; task = j });
    let finish = time +. (c.c_remaining /. eff_speed i) in
    push ~time:finish ~machine:i ~cls:1 (Sim_complete { gen = ms.gen });
    match speculation with
    | Some beta when was_primary ->
        (* Arm the straggler check from estimates only: the scheduler is
           semi-clairvoyant and must not peek at actual times. *)
        let expected = Instance.est instance j /. base_speed i in
        push
          ~time:(time +. (beta *. expected))
          ~machine:i ~cls:3
          (Sim_speculate { task = j; gen = task_gen.(j) })
    | _ -> ()
  in
  (* Kill the in-flight copy of machine [i] (crash or outage): the work is
     lost; the task returns to the pool when no other copy survives, or
     becomes [Lost] when its data has no surviving holder. *)
  let kill_current ~time i =
    let ms = machines.(i) in
    match ms.current with
    | None -> ()
    | Some c ->
        let j = c.c_task in
        wasted := !wasted +. (time -. c.c_started);
        Metrics.incr mc_kills;
        if live then busy.(i) <- busy.(i) +. (time -. c.c_started);
        ms.current <- None;
        ms.gen <- ms.gen + 1;
        emit (Killed { time; machine = i; task = j });
        copies.(j) <- List.filter (fun k -> k <> i) copies.(j);
        if copies.(j) = [] then begin
          task_gen.(j) <- task_gen.(j) + 1;
          spec_ready.(j) <- false;
          if Bitset.is_empty (Bitset.inter alive_set placement.(j)) then
            status.(j) <- Lost
          else begin
            status.(j) <- Pending;
            rewind_cursors j;
            wake_idle ~time
          end
        end
  in
  let find_speculation i =
    (* First task in priority order that is running a single overdue copy
       whose data machine [i] also holds. *)
    let rec scan pos =
      if pos >= n then None
      else
        let j = order.(pos) in
        if
          status.(j) = Running && spec_ready.(j)
          && (match copies.(j) with [ k ] -> k <> i | _ -> false)
          && Bitset.mem placement.(j) i
        then Some j
        else scan (pos + 1)
    in
    if speculation = None then None else scan 0
  in
  let dispatch ~time i =
    if available ~time i && machines.(i).current = None then
      match find_task i with
      | Some j -> start_copy ~time i j
      | None -> (
          match find_speculation i with
          | Some j -> start_copy ~time i j
          | None -> () (* idle; woken again if work returns to the pool *))
  in
  let complete ~time i gen =
    let ms = machines.(i) in
    match ms.current with
    | Some c when gen = ms.gen ->
        let j = c.c_task in
        entries.(j) <- { Schedule.machine = i; start = c.c_started; finish = time };
        status.(j) <- Done;
        ms.current <- None;
        ms.gen <- ms.gen + 1;
        if live then busy.(i) <- busy.(i) +. (time -. c.c_started);
        emit (Completed { time; machine = i; task = j });
        (* Speculative losers: first copy to finish wins, the rest abort. *)
        let losers = List.filter (fun k -> k <> i) copies.(j) in
        copies.(j) <- [];
        List.iter
          (fun k ->
            let mk = machines.(k) in
            (match mk.current with
            | Some ck ->
                wasted := !wasted +. (time -. ck.c_started);
                if live then busy.(k) <- busy.(k) +. (time -. ck.c_started)
            | None -> assert false);
            mk.current <- None;
            mk.gen <- mk.gen + 1;
            Metrics.incr mc_spec_cancelled;
            emit (Cancelled { time; machine = k; task = j }))
          losers;
        List.iter (dispatch ~time) (List.sort Int.compare (i :: losers))
    | _ -> () (* stale completion: the copy was killed or cancelled *)
  in
  let on_fault ~time i kind =
    let ms = machines.(i) in
    match kind with
    | Fault.Crash ->
        if ms.alive then begin
          Metrics.incr mc_crashes;
          ms.alive <- false;
          Bitset.remove alive_set i;
          emit (Machine_crashed { time; machine = i });
          kill_current ~time i;
          (* The disk died with the machine: strand every waiting task
             whose last replica it held. *)
          for j = 0 to n - 1 do
            if
              status.(j) = Pending
              && Bitset.mem placement.(j) i
              && Bitset.is_empty (Bitset.inter alive_set placement.(j))
            then status.(j) <- Lost
          done
        end
    | Fault.Outage until ->
        if ms.alive then begin
          Metrics.incr mc_outages;
          ms.down_until <- Float.max ms.down_until until;
          emit (Machine_down { time; machine = i; until = ms.down_until });
          kill_current ~time i;
          push ~time:ms.down_until ~machine:i ~cls:0 Sim_up
        end
    | Fault.Slowdown factor ->
        Metrics.incr mc_slowdowns;
        let old_speed = eff_speed i in
        ms.factor <- factor;
        emit (Machine_slowed { time; machine = i; factor });
        (match ms.current with
        | Some c ->
            c.c_remaining <- c.c_remaining -. ((time -. c.c_last) *. old_speed);
            c.c_last <- time;
            ms.gen <- ms.gen + 1;
            push
              ~time:(time +. (c.c_remaining /. eff_speed i))
              ~machine:i ~cls:1
              (Sim_complete { gen = ms.gen })
        | None -> ())
  in
  let on_up ~time i =
    let ms = machines.(i) in
    if ms.alive && time >= ms.down_until then begin
      emit (Machine_up { time; machine = i });
      dispatch ~time i
    end
  in
  let on_speculate ~time task gen =
    if
      task_gen.(task) = gen && status.(task) = Running
      && List.length copies.(task) = 1
    then begin
      spec_ready.(task) <- true;
      (* Grab an idle surviving holder right now if one exists; otherwise
         the next machine to go idle picks the task up in [dispatch]. *)
      let runner = List.hd copies.(task) in
      let exception Found of int in
      match
        Bitset.iter
          (fun i ->
            if i <> runner && available ~time i && machines.(i).current = None
            then raise (Found i))
          placement.(task)
      with
      | () -> ()
      | exception Found i -> start_copy ~time i task
    end
  in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some { time; machine; sim; _ } ->
        Metrics.incr mc_events;
        (match sim with
        | Sim_fault kind -> on_fault ~time machine kind
        | Sim_up -> on_up ~time machine
        | Sim_complete { gen } -> complete ~time machine gen
        | Sim_dispatch -> dispatch ~time machine
        | Sim_speculate { task; gen } -> on_speculate ~time task gen);
        loop ()
  in
  loop ();
  let fates =
    Array.init n (fun j ->
        match status.(j) with
        | Done -> Finished entries.(j)
        | Lost | Pending | Running -> Stranded)
  in
  let completed = ref 0 and stranded = ref [] and makespan = ref 0.0 in
  for j = n - 1 downto 0 do
    match fates.(j) with
    | Finished e ->
        incr completed;
        makespan := Float.max !makespan e.Schedule.finish
    | Stranded -> stranded := j :: !stranded
  done;
  if live then begin
    Metrics.add mc_completed !completed;
    Metrics.add mc_stranded (List.length !stranded);
    Metrics.set mg_makespan !makespan;
    Metrics.set mg_wasted !wasted;
    for i = 0 to m - 1 do
      (* Everything a machine did not spend processing (including
         downtime and its post-crash tail) counts as idle. *)
      Metrics.observe mh_idle (!makespan -. busy.(i))
    done
  end;
  {
    fates;
    completed = !completed;
    stranded = !stranded;
    makespan = !makespan;
    wasted = !wasted;
    metrics = Metrics.snapshot metrics;
  }

let run_faulty ?speeds ?speculation ?(metrics = Metrics.disabled) instance
    realization ~faults ~placement ~order =
  run_faulty_internal ?speeds ?speculation ~metrics instance realization
    ~faults ~placement ~order ~emit:(fun _ -> ())

let run_faulty_traced ?speeds ?speculation ?(metrics = Metrics.disabled)
    instance realization ~faults ~placement ~order =
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~metrics instance realization
      ~faults ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  (outcome, sort_events (List.rev !events))

(* ------------------------------------------------------------------ *)
(* JSON serialization of events and outcomes (the trace sink's view).  *)
(* ------------------------------------------------------------------ *)

let event_json e =
  let base kind time fields =
    Json.Obj
      (("type", Json.String "event")
      :: ("kind", Json.String kind)
      :: ("t", Json.float time)
      :: fields)
  in
  match e with
  | Started { time; machine; task } ->
      base "started" time [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Completed { time; machine; task } ->
      base "completed" time
        [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Killed { time; machine; task } ->
      base "killed" time [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Cancelled { time; machine; task } ->
      base "cancelled" time
        [ ("machine", Json.Int machine); ("task", Json.Int task) ]
  | Machine_crashed { time; machine } ->
      base "machine_crashed" time [ ("machine", Json.Int machine) ]
  | Machine_down { time; machine; until } ->
      base "machine_down" time
        [ ("machine", Json.Int machine); ("until", Json.float until) ]
  | Machine_up { time; machine } ->
      base "machine_up" time [ ("machine", Json.Int machine) ]
  | Machine_slowed { time; machine; factor } ->
      base "machine_slowed" time
        [ ("machine", Json.Int machine); ("factor", Json.float factor) ]

let outcome_json outcome =
  Json.Obj
    [
      ("type", Json.String "outcome");
      ("completed", Json.Int outcome.completed);
      ("stranded", Json.List (List.map (fun j -> Json.Int j) outcome.stranded));
      ("makespan", Json.float outcome.makespan);
      ("wasted", Json.float outcome.wasted);
      ("metrics", Metrics.to_json outcome.metrics);
    ]
