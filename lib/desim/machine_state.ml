module Bitset = Usched_model.Bitset

(* Struct-of-arrays machine state. The previous layout — one mutable
   record per machine plus a [copy option] chain — cost an allocation
   for every dispatch (the fresh copy record) and for every recovery
   transition ([Some task], [Some time], [(task, work)] pairs). Flat
   int/float lanes keep every per-machine field unboxed: the in-flight
   copy is the [cur_*] lanes (with [cur_task = -1] meaning idle), the
   recovery options become sentinel values ([orphan = -1],
   [undetected = nan], [ckpt_task = -1]).

   Lanes of length [m] land in the major heap for any non-toy instance,
   so mutating them never touches the minor allocator; the engine
   destructures them into locals at setup and indexes directly. *)

type t = {
  m : int;
  base : float array;  (* configured speed (1.0 when unspecified) *)
  alive : bool array;
  down_until : float array;  (* unavailable while [now < down_until] *)
  factor : float array;  (* straggler speed multiplier *)
  gen : int array;  (* invalidates queued completion events *)
  (* The in-flight copy, one lane per former [copy] field; task = -1
     means the machine holds nothing. *)
  cur_task : int array;
  cur_started : float array;
  cur_remaining : float array;  (* actual-time units of work left *)
  cur_last : float array;  (* when [cur_remaining] was last synced *)
  cur_base : float array;  (* actual-time units resumed from a checkpoint *)
  (* Recovery bookkeeping — initial values throughout under
     [Recovery.none]. *)
  orphan : int array;  (* killed, undetected copy's task; -1 = none *)
  undetected : float array;  (* earliest undetected failure; nan = none *)
  blinks : int array;  (* outages suffered so far, drives backoff *)
  trust_after : float array;  (* no dispatches before this time *)
  ckpt_task : int array;  (* checkpointed task on local disk; -1 = none *)
  ckpt_work : float array;  (* work banked by that checkpoint *)
  alive_set : Bitset.t;
}

let create ?speeds ~m () =
  {
    m;
    base = (match speeds with None -> Array.make m 1.0 | Some s -> Array.copy s);
    alive = Array.make m true;
    down_until = Array.make m 0.0;
    factor = Array.make m 1.0;
    gen = Array.make m 0;
    cur_task = Array.make m (-1);
    cur_started = Array.make m 0.0;
    cur_remaining = Array.make m 0.0;
    cur_last = Array.make m 0.0;
    cur_base = Array.make m 0.0;
    orphan = Array.make m (-1);
    undetected = Array.make m Float.nan;
    blinks = Array.make m 0;
    trust_after = Array.make m 0.0;
    ckpt_task = Array.make m (-1);
    ckpt_work = Array.make m 0.0;
    alive_set = Bitset.full m;
  }

let m t = t.m
let alive_set t = t.alive_set
let base_speed t i = t.base.(i)
let eff_speed t i = t.base.(i) *. t.factor.(i)
let available t ~time i = t.alive.(i) && t.down_until.(i) <= time
let idle t ~time i = available t ~time i && t.cur_task.(i) < 0

let mark_crashed t i =
  t.alive.(i) <- false;
  Bitset.remove t.alive_set i

let start_fresh t i ~task ~time ~work =
  t.cur_task.(i) <- task;
  t.cur_started.(i) <- time;
  t.cur_remaining.(i) <- work;
  t.cur_last.(i) <- time;
  t.cur_base.(i) <- 0.0

let start_resumed t i ~task ~time ~work ~banked =
  t.cur_task.(i) <- task;
  t.cur_started.(i) <- time;
  t.cur_remaining.(i) <- work -. banked;
  t.cur_last.(i) <- time;
  t.cur_base.(i) <- banked

let clear_current t i = t.cur_task.(i) <- -1

let sync_remaining t i ~time ~speed =
  t.cur_remaining.(i) <- t.cur_remaining.(i) -. ((time -. t.cur_last.(i)) *. speed);
  t.cur_last.(i) <- time

let remaining_at t i ~time ~speed =
  Float.max 0.0 (t.cur_remaining.(i) -. ((time -. t.cur_last.(i)) *. speed))
