module Bitset = Usched_model.Bitset

type copy = {
  c_task : int;
  c_started : float;
  mutable c_remaining : float; (* actual-time units of work left *)
  mutable c_last : float; (* when [c_remaining] was last synced *)
  c_base : float; (* actual-time units resumed from a checkpoint *)
}

type machine = {
  mutable alive : bool;
  mutable down_until : float; (* unavailable while [now < down_until] *)
  mutable factor : float; (* straggler speed multiplier *)
  mutable gen : int; (* invalidates queued completion events *)
  mutable current : copy option;
  (* Recovery bookkeeping — all fields stay at their initial value when
     the policy is [Recovery.none]. *)
  mutable orphan : int option;
      (* copy killed by a failure the scheduler has not yet detected *)
  mutable undetected : float option;
      (* earliest failure time awaiting detection *)
  mutable blinks : int; (* outages suffered so far, drives backoff *)
  mutable trust_after : float; (* no dispatches before this time *)
  mutable ckpt : (int * float) option;
      (* task and work preserved on local disk by its last checkpoint *)
}

type t = {
  m : int;
  speeds : float array option;
  machines : machine array;
  alive_set : Bitset.t;
}

let create ?speeds ~m () =
  {
    m;
    speeds;
    machines =
      Array.init m (fun _ ->
          {
            alive = true;
            down_until = 0.0;
            factor = 1.0;
            gen = 0;
            current = None;
            orphan = None;
            undetected = None;
            blinks = 0;
            trust_after = 0.0;
            ckpt = None;
          });
    alive_set = Bitset.full m;
  }

let m t = t.m
let get t i = t.machines.(i)
let alive_set t = t.alive_set
let base_speed t i = match t.speeds with None -> 1.0 | Some s -> s.(i)
let eff_speed t i = base_speed t i *. t.machines.(i).factor

let available t ~time i =
  let ms = t.machines.(i) in
  ms.alive && ms.down_until <= time

let idle t ~time i = available t ~time i && t.machines.(i).current = None

let mark_crashed t i =
  t.machines.(i).alive <- false;
  Bitset.remove t.alive_set i

let fresh_copy ~task ~time ~work =
  { c_task = task; c_started = time; c_remaining = work; c_last = time; c_base = 0.0 }

let resumed_copy ~task ~time ~work ~banked =
  {
    c_task = task;
    c_started = time;
    c_remaining = work -. banked;
    c_last = time;
    c_base = banked;
  }

let sync_remaining c ~time ~speed =
  c.c_remaining <- c.c_remaining -. ((time -. c.c_last) *. speed);
  c.c_last <- time

let remaining_at c ~time ~speed =
  Float.max 0.0 (c.c_remaining -. ((time -. c.c_last) *. speed))
