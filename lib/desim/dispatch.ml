module Bitset = Usched_model.Bitset
module Topology = Usched_model.Topology
module Rng = Usched_prng.Rng

type spec =
  | List_priority
  | Least_loaded_holder
  | Earliest_estimated_completion
  | Locality
  | Random_tiebreak of int

let default = List_priority

let name = function
  | List_priority -> "list-priority"
  | Least_loaded_holder -> "least-loaded"
  | Earliest_estimated_completion -> "earliest-completion"
  | Locality -> "locality"
  | Random_tiebreak seed -> Printf.sprintf "random:%d" seed

let known_names =
  "list-priority | least-loaded | earliest-completion | locality | random:SEED"

let spec_of_string s =
  match String.split_on_char ':' s with
  | [ "list-priority" ] -> Ok List_priority
  | [ "least-loaded" ] -> Ok Least_loaded_holder
  | [ "earliest-completion" ] -> Ok Earliest_estimated_completion
  | [ "locality" ] -> Ok Locality
  | [ "random" ] -> Ok (Random_tiebreak 0)
  | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Random_tiebreak seed)
      | None -> Error (Printf.sprintf "invalid random tie-break seed %S" seed))
  | _ ->
      Error
        (Printf.sprintf "unknown dispatch policy %S (expected %s)" s known_names)

let builtin =
  [
    List_priority;
    Least_loaded_holder;
    Earliest_estimated_completion;
    Locality;
    Random_tiebreak 0;
  ]

type view = {
  n : int;
  m : int;
  order : int array;
  pos_of : int array;
  dispatchable : bool array;
  holders : Bitset.t array;
  est : float array;
  speed : float array;
  load : float array;
  now : float array;
  available : int -> bool;
  holders_stable : bool;
  topology : Topology.t option;
  size : float array;
}

type t = {
  spec : spec;
  select_m : machine:int -> int;
  notify : task:int -> unit;
  now : float array;
}

let spec t = t.spec
let policy_name t = name t.spec

(* The paper's rule, exactly as the monolithic engine implemented it: a
   per-machine cursor over the priority order. Every position skipped by
   the scan is unavailable to this machine at scan time; positions only
   become available again through [notify] (a killed task returning to
   the pool, a streaming arrival, or a re-replication growing a holder
   set), which rewinds every cursor that moved past them. Without such
   notifications the cursors are monotone and the total scan is
   O(m*n). *)
(* Allocation discipline (applies to every scan in this file): inner
   loops carry their state in integer parameters instead of refs and
   live at module level instead of capturing a fresh closure per call —
   a [let rec] inside [select] would allocate a closure on every
   dispatch decision. Selection returns a plain int (-1 = nothing) so
   no [Some j] is boxed on the hot path. *)
let rec lp_scan v cursor i pos =
  if pos >= v.n then -1
  else begin
    cursor.(i) <- pos + 1;
    let j = v.order.(pos) in
    if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then j
    else lp_scan v cursor i (pos + 1)
  end

let make_list_priority_plain v =
  let cursor = Array.make v.m 0 in
  let select_m ~machine:i = lp_scan v cursor i cursor.(i) in
  let notify ~task =
    let p = v.pos_of.(task) in
    for i = 0 to v.m - 1 do
      if cursor.(i) > p then cursor.(i) <- p
    done
  in
  { spec = List_priority; select_m; notify; now = v.now }

(* Bucketed list-priority for large instances: tasks sharing a holder
   set (physically — group placements share the bitset across the
   group's tasks) form a bucket whose members are listed in priority
   order, with ONE cursor per bucket instead of one per machine. A
   machine scans only the few buckets whose holder set contains it and
   takes the best bucket head — O(#buckets) per decision instead of
   O(n), which is what makes n=10⁶ dispatch feasible (the per-machine
   cursors would re-scan millions of already-dispatched positions after
   every rewind).

   Equivalence with the per-machine cursors: both return the minimum
   global position over dispatchable tasks holding machine [i].
   Advancing a bucket cursor past a non-dispatchable member is a global
   skip, valid because eligibility ([dispatchable] && static holder
   membership) does not depend on the asking machine; members turn
   dispatchable again only through [notify], which rewinds the bucket
   cursor just as the plain variant rewinds machine cursors. Requires
   [holders_stable] (sets never grow mid-run) — the engine clears it
   when online re-replication is active, and [make] falls back to the
   plain variant then, or when there are more than [max_lp_buckets]
   distinct sets (physical identity only: equal-but-distinct sets land
   in separate buckets, which is still correct — the head minimum just
   ranges over more buckets). *)
let max_lp_buckets = 64

type lp_state = {
  lp_pos_of : int array;
  lp_dispatchable : bool array;
  members : int array array;  (* bucket -> member tasks, priority order *)
  cursor : int array;  (* bucket -> index of its next candidate *)
  idx_in : int array;  (* task -> its index in members.(bucket) *)
  task_bucket : int array;  (* task -> bucket *)
  machine_buckets : int array array;  (* machine -> buckets holding it *)
}

let rec lpb_find reps count (set : Bitset.t) k =
  if k >= count then -1 else if reps.(k) == set then k else lpb_find reps count set (k + 1)

(* Advance bucket [b]'s cursor to its first dispatchable member; return
   that member or -1 when the bucket is exhausted. *)
let rec lpb_adv s b =
  let ms = s.members.(b) in
  let c = s.cursor.(b) in
  if c >= Array.length ms then -1
  else
    let j = ms.(c) in
    if s.lp_dispatchable.(j) then j
    else begin
      s.cursor.(b) <- c + 1;
      lpb_adv s b
    end

let rec lpb_best s bs k best best_pos =
  if k >= Array.length bs then best
  else
    let j = lpb_adv s bs.(k) in
    if j >= 0 && s.lp_pos_of.(j) < best_pos then
      lpb_best s bs (k + 1) j s.lp_pos_of.(j)
    else lpb_best s bs (k + 1) best best_pos

let make_list_priority_bucketed v task_bucket buckets =
  let sizes = Array.make buckets 0 in
  Array.iter (fun b -> sizes.(b) <- sizes.(b) + 1) task_bucket;
  let members = Array.init buckets (fun b -> Array.make sizes.(b) 0) in
  let idx_in = Array.make v.n 0 in
  let fill = Array.make buckets 0 in
  (* Walk the priority order so each bucket's members come out sorted by
     position. *)
  Array.iter
    (fun j ->
      let b = task_bucket.(j) in
      members.(b).(fill.(b)) <- j;
      idx_in.(j) <- fill.(b);
      fill.(b) <- fill.(b) + 1)
    v.order;
  let machine_lists = Array.make v.m [] in
  for j = v.n - 1 downto 0 do
    (* The first member of each bucket visits its holder set once. *)
    if idx_in.(j) = 0 then
      Bitset.iter
        (fun i -> machine_lists.(i) <- task_bucket.(j) :: machine_lists.(i))
        v.holders.(j)
  done;
  let machine_buckets = Array.map Array.of_list machine_lists in
  let s =
    {
      lp_pos_of = v.pos_of;
      lp_dispatchable = v.dispatchable;
      members;
      cursor = Array.make buckets 0;
      idx_in;
      task_bucket;
      machine_buckets;
    }
  in
  let select_m ~machine:i = lpb_best s s.machine_buckets.(i) 0 (-1) max_int in
  let notify ~task =
    let b = s.task_bucket.(task) in
    let ix = s.idx_in.(task) in
    if s.cursor.(b) > ix then s.cursor.(b) <- ix
  in
  { spec = List_priority; select_m; notify; now = v.now }

let make_list_priority v =
  if not v.holders_stable then make_list_priority_plain v
  else begin
    (* Group by physical holder-set identity, capped. *)
    let reps = Array.make max_lp_buckets (Bitset.create 0) in
    let task_bucket = Array.make v.n (-1) in
    let count = ref 0 in
    let overflow = ref false in
    (try
       for j = 0 to v.n - 1 do
         let set = v.holders.(j) in
         let b = lpb_find reps !count set 0 in
         let b =
           if b >= 0 then b
           else if !count = max_lp_buckets then raise Exit
           else begin
             reps.(!count) <- set;
             incr count;
             !count - 1
           end
         in
         task_bucket.(j) <- b
       done
     with Exit -> overflow := true);
    if !overflow || !count = 0 then make_list_priority_plain v
    else make_list_priority_bucketed v task_bucket !count
  end

(* Locality/load-aware rule: the idle machine takes the highest-priority
   eligible task for which it is a least-loaded available holder — no
   other available holder of the task's data has strictly smaller
   dispatched load. A machine thus defers work that a less-loaded
   replica holder could take, and grabs first the tasks it is the best
   (or only) home for. Falls back to the highest-priority eligible task
   when no task prefers this machine, so the rule stays
   work-conserving. [ll_better] is [Bitset.iter] over the holder set
   unrolled to an index scan (the two are defined to visit the same
   indices), with the original early exit kept as short-circuiting. *)
let rec ll_better v j i k =
  k < v.m
  && ((k <> i
      && Bitset.mem v.holders.(j) k
      && v.available k
      && v.load.(k) < v.load.(i))
     || ll_better v j i (k + 1))

let rec ll_scan v i ~fallback pos =
  if pos >= v.n then fallback
  else
    let j = v.order.(pos) in
    if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then
      let fallback = if fallback < 0 then j else fallback in
      if ll_better v j i 0 then ll_scan v i ~fallback (pos + 1) else j
    else ll_scan v i ~fallback (pos + 1)

let make_least_loaded v =
  let select_m ~machine:i = ll_scan v i ~fallback:(-1) 0 in
  { spec = Least_loaded_holder; select_m; notify = (fun ~task:_ -> ()); now = v.now }

(* Shortest-estimated-processing-time on this machine: take the eligible
   task minimizing est(j) / speed(i) — the copy this machine can finish
   earliest, by estimates only (the scheduler is semi-clairvoyant and
   never sees actuals). Ties resolve to the priority order. The scan
   carries only the best task id and recomputes both divisions at each
   comparison: the quotients live in compare position so they stay
   unboxed, where a float parameter or ref would box on every step.
   (The divisions must both be taken — [e1/s < e2/s] is not [e1 < e2]
   in floating point, and the reference qcheck in test_dispatch pins
   the division-based tie behaviour.) *)
let rec ec_scan v i pos best =
  if pos >= v.n then best
  else
    let j = v.order.(pos) in
    let best =
      if
        v.dispatchable.(j)
        && Bitset.mem v.holders.(j) i
        && (best < 0 || v.est.(j) /. v.speed.(i) < v.est.(best) /. v.speed.(i))
      then j
      else best
    in
    ec_scan v i (pos + 1) best

let make_earliest_completion v =
  let select_m ~machine:i = ec_scan v i 0 (-1) in
  { spec = Earliest_estimated_completion; select_m; notify = (fun ~task:_ -> ()); now = v.now }

(* Locality-aware least-loaded: the deferral rule of [Least_loaded_holder]
   with each candidate holder's load inflated by the staging time it
   would pay to pull the task's data across zones from its home machine
   [j mod m] (holders already in the home zone stage for free). A
   machine grabs first the tasks it is the cheapest home for — counting
   both queue length and data movement — and defers work that a
   holder with a strictly smaller load-plus-staging total could take,
   falling back to plain priority order so the rule stays
   work-conserving. Without a topology the penalty is identically zero
   and the policy IS [make_least_loaded] (same scans, zero-alloc). *)
let rec loc_better v topo j i k =
  k < v.m
  && ((k <> i
      && Bitset.mem v.holders.(j) k
      && v.available k
      && v.load.(k)
         +. Topology.staging_time topo ~src:(j mod v.m) ~dst:k ~size:v.size.(j)
         < v.load.(i)
           +. Topology.staging_time topo ~src:(j mod v.m) ~dst:i
                ~size:v.size.(j))
     || loc_better v topo j i (k + 1))

let rec loc_scan v topo i ~fallback pos =
  if pos >= v.n then fallback
  else
    let j = v.order.(pos) in
    if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then
      let fallback = if fallback < 0 then j else fallback in
      if loc_better v topo j i 0 then loc_scan v topo i ~fallback (pos + 1)
      else j
    else loc_scan v topo i ~fallback (pos + 1)

let make_locality v =
  match v.topology with
  | None -> { (make_least_loaded v) with spec = Locality }
  | Some topo ->
      let select_m ~machine:i = loc_scan v topo i ~fallback:(-1) 0 in
      { spec = Locality; select_m; notify = (fun ~task:_ -> ()); now = v.now }

(* List priority with seeded random resolution of genuine priority ties:
   among the eligible tasks whose estimate equals the highest-priority
   eligible one's, pick uniformly. With all-distinct estimates this
   coincides with [List_priority]; on identical- or few-valued workloads
   it randomizes the order within each tie class. Deterministic given
   the seed (one RNG draw per tied decision). *)
let make_random_tiebreak seed v =
  let rng = Rng.create ~seed () in
  let candidates = Array.make (Stdlib.max 1 v.n) 0 in
  let select_m ~machine:i =
    let rec first pos =
      if pos >= v.n then -1
      else
        let j = v.order.(pos) in
        if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then pos
        else first (pos + 1)
    in
    let pos0 = first 0 in
    if pos0 < 0 then -1
    else begin
      let j0 = v.order.(pos0) in
      let e0 = v.est.(j0) in
      let count = ref 0 in
      for pos = pos0 to v.n - 1 do
        let j = v.order.(pos) in
        if v.dispatchable.(j) && Bitset.mem v.holders.(j) i && v.est.(j) = e0
        then begin
          candidates.(!count) <- j;
          incr count
        end
      done;
      if !count <= 1 then j0 else candidates.(Rng.int rng !count)
    end
  in
  { spec = Random_tiebreak seed; select_m; notify = (fun ~task:_ -> ()); now = v.now }

let make spec v =
  if v.n <> Array.length v.order || v.n <> Array.length v.pos_of then
    invalid_arg "Dispatch.make: order/pos_of length differs from task count";
  if v.n <> Array.length v.est then
    invalid_arg "Dispatch.make: est length differs from task count";
  if v.m <> Array.length v.speed then
    invalid_arg "Dispatch.make: speed length differs from machine count";
  if Array.length v.now <> 1 then invalid_arg "Dispatch.make: now must have length 1";
  (match v.topology with
  | Some _ when v.n <> Array.length v.size ->
      invalid_arg
        "Dispatch.make: size length differs from task count (required with a \
         topology)"
  | _ -> ());
  match spec with
  | List_priority -> make_list_priority v
  | Least_loaded_holder -> make_least_loaded v
  | Earliest_estimated_completion -> make_earliest_completion v
  | Locality -> make_locality v
  | Random_tiebreak seed -> make_random_tiebreak seed v

let select_machine t ~machine = t.select_m ~machine

let select t ~time ~machine =
  t.now.(0) <- time;
  match t.select_m ~machine with -1 -> None | j -> Some j

let notify_available t ~task = t.notify ~task

(* THE re-dispatch determinism contract, in exactly one place: machines
   freed at the same instant (a speculative race ending, say) look for
   new work in increasing machine id. Documented in the engine's
   interface; pinned by test_dispatch. *)
let redispatch_order _t machines = List.sort Int.compare machines
