module Bitset = Usched_model.Bitset
module Rng = Usched_prng.Rng

type spec =
  | List_priority
  | Least_loaded_holder
  | Earliest_estimated_completion
  | Random_tiebreak of int

let default = List_priority

let name = function
  | List_priority -> "list-priority"
  | Least_loaded_holder -> "least-loaded"
  | Earliest_estimated_completion -> "earliest-completion"
  | Random_tiebreak seed -> Printf.sprintf "random:%d" seed

let known_names = "list-priority | least-loaded | earliest-completion | random:SEED"

let spec_of_string s =
  match String.split_on_char ':' s with
  | [ "list-priority" ] -> Ok List_priority
  | [ "least-loaded" ] -> Ok Least_loaded_holder
  | [ "earliest-completion" ] -> Ok Earliest_estimated_completion
  | [ "random" ] -> Ok (Random_tiebreak 0)
  | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Random_tiebreak seed)
      | None -> Error (Printf.sprintf "invalid random tie-break seed %S" seed))
  | _ ->
      Error
        (Printf.sprintf "unknown dispatch policy %S (expected %s)" s known_names)

let builtin = [ List_priority; Least_loaded_holder; Earliest_estimated_completion; Random_tiebreak 0 ]

type view = {
  n : int;
  m : int;
  order : int array;
  pos_of : int array;
  dispatchable : bool array;
  holders : Bitset.t array;
  est : int -> float;
  speed : int -> float;
  load : float array;
  available : time:float -> int -> bool;
}

type t = {
  spec : spec;
  select : time:float -> machine:int -> int option;
  notify : task:int -> unit;
}

let spec t = t.spec
let policy_name t = name t.spec

(* The paper's rule, exactly as the monolithic engine implemented it: a
   per-machine cursor over the priority order. Every position skipped by
   the scan is unavailable to this machine at scan time; positions only
   become available again through [notify] (a killed task returning to
   the pool, or a re-replication growing a holder set), which rewinds
   every cursor that moved past them. Without such notifications the
   cursors are monotone and the total scan is O(m*n). *)
let make_list_priority v =
  let cursor = Array.make v.m 0 in
  let select ~time:_ ~machine:i =
    let rec scan pos =
      if pos >= v.n then None
      else begin
        cursor.(i) <- pos + 1;
        let j = v.order.(pos) in
        if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then Some j
        else scan (pos + 1)
      end
    in
    scan cursor.(i)
  in
  let notify ~task =
    let p = v.pos_of.(task) in
    for i = 0 to v.m - 1 do
      if cursor.(i) > p then cursor.(i) <- p
    done
  in
  { spec = List_priority; select; notify }

(* Locality/load-aware rule: the idle machine takes the highest-priority
   eligible task for which it is a least-loaded available holder — no
   other available holder of the task's data has strictly smaller
   dispatched load. A machine thus defers work that a less-loaded
   replica holder could take, and grabs first the tasks it is the best
   (or only) home for. Falls back to the highest-priority eligible task
   when no task prefers this machine, so the rule stays
   work-conserving. *)
(* Allocation discipline: these loops are the inner loop of every
   faulty-engine replay, so they carry their state in integer parameters
   instead of refs, and live at module level instead of capturing a
   fresh closure per call. [ll_better] is [Bitset.iter] over the holder
   set unrolled to an index scan (the two are defined to visit the same
   indices), with the original early exit kept as short-circuiting. *)
let rec ll_better v ~time j i k =
  k < v.m
  && ((k <> i
      && Bitset.mem v.holders.(j) k
      && v.available ~time k
      && v.load.(k) < v.load.(i))
     || ll_better v ~time j i (k + 1))

let rec ll_scan v ~time i ~fallback pos =
  if pos >= v.n then if fallback >= 0 then Some fallback else None
  else
    let j = v.order.(pos) in
    if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then
      let fallback = if fallback < 0 then j else fallback in
      if ll_better v ~time j i 0 then ll_scan v ~time i ~fallback (pos + 1)
      else Some j
    else ll_scan v ~time i ~fallback (pos + 1)

let make_least_loaded v =
  let select ~time ~machine:i = ll_scan v ~time i ~fallback:(-1) 0 in
  { spec = Least_loaded_holder; select; notify = (fun ~task:_ -> ()) }

(* Shortest-estimated-processing-time on this machine: take the eligible
   task minimizing est(j) / speed(i) — the copy this machine can finish
   earliest, by estimates only (the scheduler is semi-clairvoyant and
   never sees actuals). Ties resolve to the priority order. *)
let make_earliest_completion v =
  let select ~time:_ ~machine:i =
    let best = ref (-1) and best_cost = ref infinity in
    for pos = 0 to v.n - 1 do
      let j = v.order.(pos) in
      if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then begin
        let cost = v.est j /. v.speed i in
        if cost < !best_cost then begin
          best := j;
          best_cost := cost
        end
      end
    done;
    if !best >= 0 then Some !best else None
  in
  { spec = Earliest_estimated_completion; select; notify = (fun ~task:_ -> ()) }

(* List priority with seeded random resolution of genuine priority ties:
   among the eligible tasks whose estimate equals the highest-priority
   eligible one's, pick uniformly. With all-distinct estimates this
   coincides with [List_priority]; on identical- or few-valued workloads
   it randomizes the order within each tie class. Deterministic given
   the seed (one RNG draw per tied decision). *)
let make_random_tiebreak seed v =
  let rng = Rng.create ~seed () in
  let candidates = Array.make v.n 0 in
  let select ~time:_ ~machine:i =
    let rec first pos =
      if pos >= v.n then None
      else
        let j = v.order.(pos) in
        if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then Some (pos, j)
        else first (pos + 1)
    in
    match first 0 with
    | None -> None
    | Some (pos0, j0) ->
        let e0 = v.est j0 in
        let count = ref 0 in
        for pos = pos0 to v.n - 1 do
          let j = v.order.(pos) in
          if v.dispatchable.(j) && Bitset.mem v.holders.(j) i && v.est j = e0
          then begin
            candidates.(!count) <- j;
            incr count
          end
        done;
        if !count <= 1 then Some j0
        else Some candidates.(Rng.int rng !count)
  in
  { spec = Random_tiebreak seed; select; notify = (fun ~task:_ -> ()) }

let make spec v =
  (match v.n with
  | n when n <> Array.length v.order || n <> Array.length v.pos_of ->
      invalid_arg "Dispatch.make: order/pos_of length differs from task count"
  | _ -> ());
  match spec with
  | List_priority -> make_list_priority v
  | Least_loaded_holder -> make_least_loaded v
  | Earliest_estimated_completion -> make_earliest_completion v
  | Random_tiebreak seed -> make_random_tiebreak seed v

let select t ~time ~machine = t.select ~time ~machine
let notify_available t ~task = t.notify ~task

(* THE re-dispatch determinism contract, in exactly one place: machines
   freed at the same instant (a speculative race ending, say) look for
   new work in increasing machine id. Documented in the engine's
   interface; pinned by test_dispatch. *)
let redispatch_order _t machines = List.sort Int.compare machines
