type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~compare () = { compare; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  if t.size = Array.length t.data then begin
    let capacity = Stdlib.max 8 (2 * Array.length t.data) in
    (* Fill value: the current root when one exists (it is live in the
       heap anyway, so the spare slots retain nothing extra), otherwise
       the element being pushed (about to become live in slot 0). *)
    let fill = if t.size > 0 then t.data.(0) else x in
    let data = Array.make capacity fill in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.compare t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.size && t.compare t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Clear the vacated slot by aliasing the element just moved to
         the root: without this the slot keeps the old last element (and
         transitively popped payloads) reachable for the heap's
         lifetime — a real leak once the engine streams millions of
         events through one queue. Aliasing a live element costs nothing
         and retains nothing extra. *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end
    else
      (* Drained: drop the storage outright so an empty queue holds no
         payload references at all (spare capacity is rebuilt by the
         next push). *)
      t.data <- [||];
    Some root
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Pqueue.pop_exn: empty heap"

let of_array ~compare a =
  let t = { compare; data = Array.copy a; size = Array.length a } in
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let drain t =
  let rec loop acc = match pop t with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []
