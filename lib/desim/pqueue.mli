(** Array-based binary min-heap.

    The event queue of the simulation engine. Generic over the element
    type with an explicit comparison, so deterministic tie-breaking (time,
    then machine id) is part of the comparison rather than ad hoc. *)

type 'a t

val create : compare:('a -> 'a -> int) -> unit -> 'a t
(** An empty heap ordered by [compare] (smallest element first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the smallest element. The vacated slot is cleared
    (spare slots only ever alias elements still in the heap, and a
    drained heap releases its storage), so popped payloads become
    garbage immediately — the queue never retains them for its own
    lifetime. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}; raises [Invalid_argument] on the empty heap. *)

val peek : 'a t -> 'a option

val of_array : compare:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify an array in O(n). *)

val drain : 'a t -> 'a list
(** Pop everything; returns elements in ascending order, emptying the
    heap. *)
