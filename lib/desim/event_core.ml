type 'a event = {
  time : float;
  machine : int;
  cls : int;
  seq : int;
  payload : 'a;
}

let cls_fault = 0
let cls_arrival = 1
let cls_decision = 2
let cls_audit = 3

(* Total order on simultaneous events: time, then machine id, then
   class, then insertion order. This is THE tie-break rule of the
   simulation — every determinism statement in the engine docs reduces
   to this comparator plus [Dispatch.redispatch_order]. The heap
   implements it natively over its lanes ([Event_heap.lt]); this record
   form and comparator remain for callers that work with whole
   events. *)
let compare_event a b =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare a.machine b.machine with
      | 0 -> (
          match Int.compare a.cls b.cls with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)
  | c -> c

type 'a t = 'a Event_heap.t

let create ?capacity ~dummy () = Event_heap.create ?capacity ~dummy ()
let push t ~time ~machine ~cls payload = Event_heap.push t ~time ~machine ~cls payload

let push_aux t ~time ~machine ~cls ~aux ~aux2 payload =
  Event_heap.push_aux t ~time ~machine ~cls ~aux ~aux2 payload

let length = Event_heap.length

let drain t ~handle =
  while not (Event_heap.is_empty t) do
    let time = t.Event_heap.times.(0) in
    let machine = t.Event_heap.machines.(0) in
    let payload = t.Event_heap.payloads.(0) in
    Event_heap.remove_min t;
    handle ~time ~machine payload
  done
