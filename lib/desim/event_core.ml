type 'a event = {
  time : float;
  machine : int;
  cls : int;
  seq : int;
  payload : 'a;
}

let cls_fault = 0
let cls_arrival = 1
let cls_decision = 2
let cls_audit = 3

(* Total order on simultaneous events: time, then machine id, then
   class, then insertion order. This is THE tie-break rule of the
   simulation — every determinism statement in the engine docs reduces
   to this comparator plus [Dispatch.redispatch_order]. *)
let compare_event a b =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare a.machine b.machine with
      | 0 -> (
          match Int.compare a.cls b.cls with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)
  | c -> c

type 'a t = { queue : 'a event Pqueue.t; mutable seq : int }

let create () = { queue = Pqueue.create ~compare:compare_event (); seq = 0 }

let push t ~time ~machine ~cls payload =
  t.seq <- t.seq + 1;
  Pqueue.push t.queue { time; machine; cls; seq = t.seq; payload }

let length t = Pqueue.length t.queue

let drain t ~handle =
  let rec loop () =
    match Pqueue.pop t.queue with
    | None -> ()
    | Some { time; machine; payload; _ } ->
        handle ~time ~machine payload;
        loop ()
  in
  loop ()
