(** The typed event loop at the bottom of the desim stack.

    A single priority queue of timestamped events, each addressed to a
    machine and carrying an arbitrary payload. The engine's whole
    determinism story lives in the comparator here: simultaneous events
    fire ordered by machine id, then by {e class} (faults and failure
    detections strike before completions and data-transfer arrivals,
    completions before dispatch decisions, speculation audits last),
    then by insertion order. Handlers may push further events while the
    queue drains.

    Backed by {!Event_heap} — an allocation-free struct-of-arrays
    4-ary heap whose lane order implements the same total order. The
    concrete equality [type 'a t = 'a Event_heap.t] is exposed so the
    engine's hot loops can push and pop through direct lane access;
    everyone else should stay on this interface. *)

type 'a event = {
  time : float;
  machine : int;
  cls : int;
  seq : int;  (** Insertion order, assigned by {!push}. *)
  payload : 'a;
}

val compare_event : 'a event -> 'a event -> int
(** The total event order [(time, machine, cls, seq)] on record-form
    events, e.g. for sorting externally collected streams. *)

(** {2 Event classes}

    Ranks for simultaneous events on one machine, smallest first. *)

val cls_fault : int
(** Faults, machine rejoins, failure detections. *)

val cls_arrival : int
(** Copy completions, data-transfer arrivals, and task arrivals in the
    streaming service mode (the latter addressed to the virtual source
    machine [-1], so they strike before every per-machine event of the
    same instant). *)

val cls_decision : int
(** Dispatch decisions (a machine looks for work). *)

val cls_audit : int
(** Speculation checks — run after every state change of the instant. *)

type 'a t = 'a Event_heap.t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills vacated payload slots so popped payloads are not
    retained after a drain. *)

val push : 'a t -> time:float -> machine:int -> cls:int -> 'a -> unit
(** Enqueue an event; insertion order within equal (time, machine, cls)
    is preserved. *)

val push_aux :
  'a t -> time:float -> machine:int -> cls:int -> aux:int -> aux2:int -> 'a -> unit
(** {!push} that also sets the slot's two integer payload words (read
    back via the heap's [aux]/[aux2] lanes; {!push} zeroes them). *)

val length : 'a t -> int
(** Current queue depth (the engine's high-water gauge reads this). *)

val drain : 'a t -> handle:(time:float -> machine:int -> 'a -> unit) -> unit
(** Pop-and-handle until the queue is empty. The handler may push.
    Note: record-form handler — the engine's metrics-off loops bypass
    this and read heap lanes directly to avoid boxing [time]. *)
