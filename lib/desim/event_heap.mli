(** Allocation-free 4-ary min-heap specialized to simulation events.

    Slots live in parallel struct-of-arrays lanes — an unboxed float
    lane for timestamps, int lanes for machine / class / sequence
    number plus two generic integer payload words, and one polymorphic
    lane for the payload proper. Push and pop allocate nothing once
    capacity is reached, and capacity is retained across drains.

    Ordering is the engine's total event order: [(time, machine, cls,
    seq)] with [seq] assigned uniquely per push, so the pop sequence is
    independent of heap arity and internal layout. *)

type 'a t = {
  dummy : 'a;
  mutable size : int;
  mutable next_seq : int;
  mutable times : float array;
  mutable machines : int array;
  mutable classes : int array;
  mutable seqs : int array;
  mutable aux : int array;
  mutable aux2 : int array;
  mutable payloads : 'a array;
}
(** Exposed concretely so the engine's hot loop can write lanes of a
    freshly {!alloc}ed slot directly (avoiding boxed float arguments)
    and read the root's lanes without an accessor call. Treat as
    read-only outside that pattern; [size] elements of each lane are
    live, a heap-ordered prefix. *)

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty heap. [dummy] fills vacated
    payload slots so popped payloads are not retained. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val alloc : 'a t -> int
(** Reserve the next free slot: bumps [size], assigns a fresh sequence
    number, resets the slot's [aux]/[aux2]/payload lanes. The caller
    must fill [times]/[machines]/[classes] (and optionally
    [aux]/[aux2]/[payloads]) of the returned slot and then call
    {!sift_up} on it. *)

val sift_up : 'a t -> int -> unit
(** Restore heap order after {!alloc} + direct lane writes. *)

val push : 'a t -> time:float -> machine:int -> cls:int -> 'a -> unit
(** [alloc] + lane writes + [sift_up] in one call (convenience path;
    boxes [time] when not inlined — hot loops use the {!alloc}
    pattern). *)

val push_aux :
  'a t -> time:float -> machine:int -> cls:int -> aux:int -> aux2:int -> 'a -> unit
(** {!push} that also sets the two integer payload words. *)

val min_time : 'a t -> float
val min_machine : 'a t -> int
val min_cls : 'a t -> int
val min_aux : 'a t -> int
val min_aux2 : 'a t -> int

val min_payload : 'a t -> 'a
(** Root accessors; raise [Invalid_argument] on an empty heap. *)

val remove_min : 'a t -> unit
(** Drop the root. The vacated payload slot is overwritten with [dummy];
    capacity is retained. Raises [Invalid_argument] on an empty heap. *)
