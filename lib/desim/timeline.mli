(** Event timelines and machine utilization statistics.

    Post-processing of engine traces and schedules: a textual event log
    (one line per start/completion, chronological) and per-machine
    utilization figures (busy fraction, idle gaps, finish time). Used by
    examples and experiments to explain {e why} a schedule has the
    makespan it has — e.g. that a static placement strands machines idle
    while one machine grinds through inflated tasks. *)

type machine_stats = {
  machine : int;
  busy : float;  (** Total processing time executed. *)
  finish : float;  (** Completion of the machine's last task (0 if none). *)
  tasks : int;
  idle_before_finish : float;
      (** Idle time between 0 and [finish] (gaps while waiting). *)
}

val machine_stats : Schedule.t -> machine_stats array
(** Per-machine statistics, indexed by machine id. *)

val utilization : Schedule.t -> float
(** Aggregate busy time divided by [m * makespan]; 1.0 means no machine
    ever idles before the makespan. 0 on empty schedules. *)

val render_events : Engine.event list -> string
(** One line per event: [t=12.50 m3 start task 7]. *)

val render_stats : Schedule.t -> string
(** A small table of {!machine_stats} plus the aggregate utilization. *)
