(** Arrival processes for the open-system (streaming) service mode.

    A batch run answers "how fast does this placement clear a fixed
    workload"; a service answers "what response times does it sustain
    when tasks keep arriving". This module supplies the arrival side:
    validated stochastic processes (Poisson, Markov-modulated Poisson)
    and trace-driven arrival sequences, generated through
    [Usched_prng.Rng] so one integer seed reproduces the full arrival
    history — and so arrival sequences are paired across the strategies
    of a sweep, exactly like fault traces.

    Drain conditions: a streaming run is bounded either by task count
    ({!generate}) or by time horizon ({!generate_until}); the engine
    then simulates until every admitted task is resolved. *)

type t =
  | Poisson of { rate : float }
      (** Memoryless arrivals: i.i.d. exponential inter-arrival times
          with mean [1/rate]. *)
  | Mmpp of { rates : float array; switch : float }
      (** Markov-modulated Poisson process: the process cycles through
          [rates] states (Poisson rate [rates.(s)] while in state [s],
          starting in state 0), holding each state for an exponential
          sojourn with mean [switch]. A state with rate 0 is a silence
          period — the canonical bursty-traffic model. *)
  | Trace of float array
      (** Explicit arrival instants, non-decreasing, starting at or
          after 0 — replay of a recorded workload. *)

val poisson : rate:float -> t
(** Raises [Invalid_argument] unless [rate] is finite and > 0. *)

val mmpp : rates:float array -> switch:float -> t
(** Raises [Invalid_argument] unless every rate is finite and >= 0, at
    least one rate is > 0, and [switch] is finite and > 0. *)

val trace : float array -> t
(** Validates the instants (finite, >= 0, non-decreasing; the array is
    copied). Raises [Invalid_argument] otherwise. *)

val mean_rate : t -> float
(** Long-run arrivals per time unit: [rate] for Poisson, the average of
    [rates] for MMPP (states have equal mean sojourn), and count/span
    for a trace (0 for a degenerate span). Offered load against a
    service capacity [c] is [mean_rate t /. c]. *)

val generate : t -> Usched_prng.Rng.t -> count:int -> float array
(** The first [count] arrival instants, non-decreasing, starting from
    time 0. Deterministic given the generator state; [Trace] ignores the
    generator. Raises [Invalid_argument] if [count < 0] or a trace holds
    fewer than [count] instants. *)

val generate_until : t -> Usched_prng.Rng.t -> horizon:float -> float array
(** Every arrival instant strictly before [horizon] (a time-bounded
    drain condition). Raises [Invalid_argument] unless [horizon] is
    finite and > 0. *)

val describe : t -> string
(** Human/trace-meta rendering: ["poisson:2.5"], ["mmpp:4,0:10"],
    ["trace:<5 arrivals>"]. *)

val of_string : string -> (t, string) result
(** CLI grammar, surfaced by [solve --arrival]:
    ["rate:L"] (alias ["poisson:L"]) — Poisson with rate [L];
    ["mmpp:R1,R2,...:S"] — MMPP over the comma-separated rates with mean
    sojourn [S]; ["trace:FILE"] — one arrival instant per line of
    [FILE] (blank lines and [#] comments skipped). Every parameter is
    validated (NaN, non-positive rates, unsorted traces, unreadable
    files are errors); the error message carries the grammar. *)

val grammar : string
(** One-line summary of the accepted specs, for usage strings. *)
