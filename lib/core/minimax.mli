(** Exact minimax values for the no-replication game (open problem 1).

    The paper's conclusion asks for better lower bounds on what any
    unreplicated algorithm can guarantee. On the identical-task family
    used in Theorem 1 the full game can be solved {e exactly} for finite
    sizes, against the two-point adversary (every factor in
    [{1/α, α}] — the adversary class used in all the paper's proofs):

    - a placement of [n] identical tasks on [m] machines is, up to
      symmetry, a partition [b_1 >= b_2 >= ... >= b_m] of [n];
    - against a fixed partition, the worst two-point realization makes
      some machine [i] run [h] inflated and [b_i - h] deflated tasks
      while every other task deflates (more inflation elsewhere only
      helps the optimum), so the adversary's value has a closed scan;
    - the optimum of a realization with [h] highs and [n-h] lows is
      computed exactly by branch and bound.

    Minimizing over partitions yields the exact guarantee achievable by
    {e any} phase-1 placement on that instance — a finite-size analogue
    of Theorem 1's bound, and an upper bound on any lower-bound
    construction restricted to this family and adversary class. *)

type result = {
  value : float;  (** The minimax competitive ratio. *)
  partition : int array;  (** An optimal placement (tasks per machine). *)
}

val optimum_two_point : m:int -> alpha:float -> highs:int -> lows:int -> float
(** Exact optimal makespan of [highs] tasks of length [α] and [lows]
    tasks of length [1/α] on [m] machines. *)

val partition_value : m:int -> alpha:float -> int array -> float
(** Worst-case ratio of the given partition (tasks per machine, any
    order) under the two-point adversary, with exact optima. Raises
    [Invalid_argument] on negative counts or more parts than [m]. *)

val identical_minimax : m:int -> n:int -> alpha:float -> result
(** Minimum of {!partition_value} over all partitions of [n] into at
    most [m] parts. Feasible for [n] up to a few dozen. *)

val partitions : n:int -> parts:int -> int list list
(** All partitions of [n] into at most [parts] non-increasing positive
    parts (padded with zeros by callers as needed). Exposed for tests. *)
