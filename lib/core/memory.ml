module Instance = Usched_model.Instance

let pi1 instance =
  Assign.lpt ~m:(Instance.m instance) ~weights:(Instance.ests instance)

let pi2 instance =
  Assign.lpt ~m:(Instance.m instance) ~weights:(Instance.sizes instance)

let lower_bound ~m ~sizes =
  if m < 1 then invalid_arg "Memory.lower_bound: m must be >= 1";
  let total = Array.fold_left ( +. ) 0.0 sizes in
  let largest = Array.fold_left Float.max 0.0 sizes in
  Float.max (total /. float_of_int m) largest

let of_placement instance placement =
  Placement.memory_max placement ~sizes:(Instance.sizes instance)
