module Instance = Usched_model.Instance

type split = {
  delta : float;
  time_intensive : bool array;
  pi1 : Assign.result;
  pi2 : Assign.result;
  c_pi1 : float;
  mem_pi2 : float;
}

let split ~delta instance =
  if not (delta > 0.0) then invalid_arg "Sbo.split: delta must be > 0";
  let pi1 = Memory.pi1 instance in
  let pi2 = Memory.pi2 instance in
  let c_pi1 = Assign.makespan pi1 in
  let mem_pi2 = Assign.makespan pi2 in
  let time_intensive =
    Array.init (Instance.n instance) (fun j ->
        if mem_pi2 <= 0.0 then true
        else
          let time_demand = Instance.est instance j /. c_pi1 in
          let mem_demand = Instance.size instance j /. mem_pi2 in
          time_demand > delta *. mem_demand)
  in
  { delta; time_intensive; pi1; pi2; c_pi1; mem_pi2 }

let assignment s =
  Array.mapi
    (fun j in_s1 ->
      if in_s1 then s.pi1.Assign.assignment.(j) else s.pi2.Assign.assignment.(j))
    s.time_intensive

let tasks_where predicate s =
  let acc = ref [] in
  Array.iteri (fun j in_s1 -> if predicate in_s1 then acc := j :: !acc) s.time_intensive;
  List.rev !acc

let s1_tasks s = tasks_where (fun in_s1 -> in_s1) s
let s2_tasks s = tasks_where (fun in_s1 -> not in_s1) s
