(** Zone-aware replication: placements that price data movement.

    Both builders read the instance's cluster topology
    ({!Usched_model.Instance.topology_or_uniform} — a topology-free
    instance behaves as one zone) and treat task [j]'s data as born on
    its home machine [j mod m], so a replica inside the home zone is
    free while a cross-zone replica pays
    [Topology.zone_cost ~src:home ~dst:zone ~size] in transfer cost
    (exactly the quantity {!Placement.replication_cost} accounts).

    - [zonegroup:K] spreads each task over the [K] cheapest zones from
      its home (home zone first — its copy is free), one replica per
      zone on the least-loaded machine there. Fault domains are zones:
      the placement survives any [K - 1] whole-zone outages (when the
      topology has at least [K] zones) at a transfer cost of only the
      [K - 1] cheapest links, where full replication pays every link
      for every task.
    - [localbudget:B] caps each task's transfer spend at [B] times its
      data size: the home zone is always covered (degree >= 1, free),
      then further zones join cheapest-first while the cumulative
      staging cost stays within [B * size_j]. [B = 0] degenerates to
      home-zone-only placement; large [B] converges to one replica in
      every zone.

    Both run phase 2 as online LPT over the replica sets
    ({!Two_phase.lpt_order_phase2}); within a zone, machine choice is
    greedy least-est-loaded in LPT order, charging the expected share
    [est / degree] like the speed-robust builder. *)

val zone_group_placement : k:int -> Usched_model.Instance.t -> Placement.t
(** One replica in each of the [K] cheapest zones from the task's home
    zone (clamped to the topology's zone count — on a uniform topology
    every task gets exactly one replica). Raises [Invalid_argument] if
    [k < 1]. *)

val local_budget_placement :
  budget:float -> Usched_model.Instance.t -> Placement.t
(** Cheapest replica zones under the per-task transfer budget
    [budget * size_j]. Raises [Invalid_argument] when [budget] is NaN,
    infinite, or negative. *)

val zone_group : k:int -> Two_phase.t
(** [zonegroup:K] as a two-phase algorithm (phase 2: online LPT). *)

val local_budget : budget:float -> Two_phase.t
(** [localbudget:B] as a two-phase algorithm (phase 2: online LPT). *)
