module Instance = Usched_model.Instance
module Failure = Usched_model.Failure
module Bitset = Usched_model.Bitset

exception Infeasible of string

let check_target target =
  if Float.is_nan target || not (target > 0.0 && target < 1.0) then
    invalid_arg
      (Printf.sprintf "Reliability: target %g must be in (0, 1)" target)

let per_task_bound ~target ~n =
  check_target target;
  if n < 1 then invalid_arg "Reliability.per_task_bound: n < 1";
  (1.0 -. target) /. float_of_int n

let placement ?budget ~target instance =
  check_target target;
  (match budget with
  | Some b when Float.is_nan b || not (b > 0.0 && Float.is_finite b) ->
      invalid_arg
        (Printf.sprintf "Reliability: budget %g must be positive and finite" b)
  | _ -> ());
  let n = Instance.n instance and m = Instance.m instance in
  let profile = Instance.failure_or_default instance in
  let log_eps =
    if n = 0 then 0.0
    else Float.log ((1.0 -. target) /. float_of_int n)
  in
  (match budget with
  | Some b when Instance.max_size instance > b +. 1e-9 ->
      raise (Infeasible "a single task exceeds the per-machine budget")
  | _ -> ());
  let loads = Array.make m 0.0 in
  let mem = Array.make m 0.0 in
  let sets = Array.make n (Bitset.create m) in
  let fits =
    match budget with
    | None -> fun _ ~size:_ -> true
    | Some b -> fun i ~size -> mem.(i) +. size <= b +. 1e-9
  in
  Array.iter
    (fun j ->
      let size = Instance.size instance j in
      (* Primary on the least estimated-loaded machine with headroom
         (ties by id): reliability decides the set's size, load balance
         its anchor, so makespans stay close to Budgeted's. *)
      let primary = ref (-1) in
      for i = 0 to m - 1 do
        if fits i ~size && (!primary < 0 || loads.(i) < loads.(!primary)) then
          primary := i
      done;
      if !primary < 0 then
        raise
          (Infeasible
             (Printf.sprintf
                "no machine has %g memory headroom left for task %d" size j));
      let set = Bitset.create m in
      Bitset.add set !primary;
      loads.(!primary) <- loads.(!primary) +. Instance.est instance j;
      mem.(!primary) <- mem.(!primary) +. size;
      let loss = ref (Failure.log_loss profile !primary) in
      (* Grow by the most reliable remaining machine (ties by memory
         load, then id) until the task's loss probability fits its
         budget share; sums of logs stand in for products of p's. *)
      while !loss > log_eps do
        let next = ref (-1) in
        for i = 0 to m - 1 do
          if (not (Bitset.mem set i)) && fits i ~size then
            if !next < 0 then next := i
            else
              let pi = Failure.p profile i and pb = Failure.p profile !next in
              if pi < pb || (Float.equal pi pb && mem.(i) < mem.(!next)) then
                next := i
        done;
        if !next < 0 || Failure.p profile !next >= 1.0 then
          raise
            (Infeasible
               (Printf.sprintf
                  "task %d cannot reach P(all replicas lost) <= %g: no usable \
                   machine left to add"
                  j (Float.exp log_eps)));
        Bitset.add set !next;
        mem.(!next) <- mem.(!next) +. size;
        loss := !loss +. Failure.log_loss profile !next
      done;
      sets.(j) <- set)
    (Instance.lpt_order instance);
  Placement.of_sets ~m sets

let name ?budget ~target () =
  match budget with
  | None -> Printf.sprintf "Reliability(target=%g)" target
  | Some b -> Printf.sprintf "Reliability(target=%g, B=%g)" target b

let algorithm ?budget ~target () =
  check_target target;
  {
    Two_phase.name = name ?budget ~target ();
    phase1 = (fun instance -> placement ?budget ~target instance);
    phase2 = Two_phase.lpt_order_phase2;
  }

let stranding_bound instance placement =
  let profile = Instance.failure_or_default instance in
  let total = ref 0.0 in
  for j = 0 to Placement.n placement - 1 do
    total := !total +. Failure.prob_all_lost profile (Placement.set placement j)
  done;
  !total

let survival_bound instance placement =
  Float.max 0.0 (1.0 -. stranding_bound instance placement)
