module Instance = Usched_model.Instance
module Bitset = Usched_model.Bitset

let placement_of_split instance split =
  let m = Instance.m instance in
  let sets =
    Array.mapi
      (fun j in_s1 ->
        if in_s1 then Bitset.full m
        else Bitset.singleton m split.Sbo.pi2.Assign.assignment.(j))
      split.Sbo.time_intensive
  in
  Placement.of_sets ~m sets

let placement ~delta instance =
  placement_of_split instance (Sbo.split ~delta instance)

let phase2_order split =
  Array.of_list (Sbo.s2_tasks split @ Sbo.s1_tasks split)

let algorithm ~delta =
  {
    Two_phase.name = Printf.sprintf "ABO(delta=%g)" delta;
    phase1 = (fun instance -> placement ~delta instance);
    phase2 =
      (fun instance placement realization ->
        let split = Sbo.split ~delta instance in
        Usched_desim.Engine.run instance realization
          ~placement:(Placement.sets placement)
          ~order:(phase2_order split));
  }
