module Instance = Usched_model.Instance

let split ~delta instance = Sbo.split ~delta instance

let placement ~delta instance =
  Placement.singletons ~m:(Instance.m instance)
    (Sbo.assignment (split ~delta instance))

let algorithm ~delta =
  {
    Two_phase.name = Printf.sprintf "SABO(delta=%g)" delta;
    phase1 = (fun instance -> placement ~delta instance);
    phase2 = Two_phase.lpt_order_phase2;
  }
