(** Uniform (related) machines: heterogeneity as an extension.

    The paper studies identical machines; real clusters (its MapReduce
    motivation) mix fast and slow nodes, and machine heterogeneity is one
    of the reasons estimates miss. This extension gives every machine a
    speed [s_i] — a task with processing requirement [p] occupies machine
    [i] for [p / s_i] — and ports the paper's two-phase pipeline:

    - phase 1: earliest-completion-time LPT on the estimates (the
      uniform-machines analogue of Graham's LPT);
    - phase 2: the desim engine with speeds — an idle machine grabs the
      highest-priority eligible task, so faster machines naturally serve
      more work.

    No competitive-ratio theorems are claimed here (the paper's proofs
    are for identical machines); the [hetero] experiment measures the
    ratios empirically against {!lower_bound}. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule

val check_speeds : m:int -> float array -> unit
(** Raises [Invalid_argument] unless there are exactly [m] strictly
    positive finite speeds. *)

val lpt_assignment : speeds:float array -> Instance.t -> Assign.result
(** Offline ECT-LPT on estimates: tasks in decreasing estimate order,
    each to the machine that would finish it earliest. [loads] are
    per-machine {e finish times} (work divided by speed). *)

val lower_bound : speeds:float array -> float array -> float
(** Sound lower bound on the optimal uniform-machines makespan:
    max over [k] of (sum of the [k] largest tasks) / (sum of the [k]
    largest speeds), with [k] up to [m] — for [k = m] this is total work
    over total speed; for [k = 1] the largest task on the fastest
    machine. *)

val lpt_no_choice : speeds:float array -> Two_phase.t
(** Strategy 1 on uniform machines: ECT-LPT placement, pinned
    execution. *)

val lpt_no_restriction : speeds:float array -> Two_phase.t
(** Strategy 2 on uniform machines: replicate everywhere, online LPT
    with speeds. *)

val ls_group : speeds:float array -> k:int -> Two_phase.t
(** Strategy 3 on uniform machines: contiguous machine groups, phase-1
    greedy over groups weighted by group speed, online LS inside groups
    with speeds. *)
