type order = Lpt | Ls
type uniform_variant = U_no_choice | U_no_restriction | U_group of int

type t =
  | No_replication of order
  | Full_replication of order
  | Group of { order : order; k : int }
  | Budgeted of int
  | Proportional of float
  | Selective of int
  | Sabo of float
  | Abo of float
  | Memory_budget of float
  | Reliability of { target : float; budget : float option }
  | Uniform of { variant : uniform_variant; speeds : float array }
  | Speed_robust of { k : int }
  | Zone_group of int
  | Local_budget of float

(* Domain checks independent of m. Group counts against m and speeds
   length are deferred to [build]/[check], which know m. *)

let positive_finite label x =
  if Float.is_nan x then Error (Printf.sprintf "%s must not be NaN" label)
  else if not (Float.is_finite x) then
    Error (Printf.sprintf "%s must be finite, got %g" label x)
  else if x <= 0.0 then
    Error (Printf.sprintf "%s must be > 0, got %g" label x)
  else Ok ()

let validate = function
  | No_replication _ | Full_replication _ -> Ok ()
  | Group { k; _ } ->
      if k >= 1 then Ok ()
      else Error (Printf.sprintf "group count must be >= 1, got %d" k)
  | Budgeted k ->
      if k >= 1 then Ok ()
      else Error (Printf.sprintf "replication budget must be >= 1, got %d" k)
  | Proportional f ->
      if Float.is_nan f then Error "fraction must not be NaN"
      else if not (Float.is_finite f) then
        Error (Printf.sprintf "fraction must be finite, got %g" f)
      else if f < 0.0 || f > 1.0 then
        Error (Printf.sprintf "fraction must be in [0, 1], got %g" f)
      else Ok ()
  | Selective count ->
      if count >= 0 then Ok ()
      else Error (Printf.sprintf "selective count must be >= 0, got %d" count)
  | Speed_robust { k } ->
      if k >= 1 then Ok ()
      else Error (Printf.sprintf "speed class count must be >= 1, got %d" k)
  | Zone_group k ->
      if k >= 1 then Ok ()
      else Error (Printf.sprintf "zone count must be >= 1, got %d" k)
  | Local_budget b ->
      if Float.is_nan b then Error "transfer budget must not be NaN"
      else if not (Float.is_finite b) then
        Error (Printf.sprintf "transfer budget must be finite, got %g" b)
      else if b < 0.0 then
        Error (Printf.sprintf "transfer budget must be >= 0, got %g" b)
      else Ok ()
  | Sabo delta -> positive_finite "delta" delta
  | Abo delta -> positive_finite "delta" delta
  | Memory_budget budget -> positive_finite "memory budget" budget
  | Reliability { target; budget } -> (
      if Float.is_nan target then Error "reliability target must not be NaN"
      else if not (target > 0.0 && target < 1.0) then
        Error
          (Printf.sprintf
             "reliability target must be a probability in (0, 1), got %g"
             target)
      else
        match budget with
        | None -> Ok ()
        | Some b -> positive_finite "memory budget" b)
  | Uniform { variant; speeds } -> (
      let speeds_ok () =
        if Array.length speeds = 0 then Error "speeds must be non-empty"
        else
          let bad = ref None in
          Array.iter
            (fun s ->
              if !bad = None && (Float.is_nan s || not (Float.is_finite s) || s <= 0.0)
              then bad := Some s)
            speeds;
          match !bad with
          | Some s ->
              Error
                (Printf.sprintf "every speed must be finite and > 0, got %g" s)
          | None -> Ok ()
      in
      match variant with
      | U_no_choice | U_no_restriction -> speeds_ok ()
      | U_group k ->
          if k < 1 then
            Error (Printf.sprintf "group count must be >= 1, got %d" k)
          else speeds_ok ())

let checked spec =
  match validate spec with
  | Ok () -> spec
  | Error msg -> invalid_arg (Printf.sprintf "Strategy: %s" msg)

let no_replication order = No_replication order
let full_replication order = Full_replication order
let group ~order ~k = checked (Group { order; k })
let budgeted ~k = checked (Budgeted k)
let proportional ~fraction = checked (Proportional fraction)
let selective ~count = checked (Selective count)
let sabo ~delta = checked (Sabo delta)
let abo ~delta = checked (Abo delta)
let memory_budget ~budget = checked (Memory_budget budget)
let reliability ~target ~budget = checked (Reliability { target; budget })
let uniform ~variant ~speeds = checked (Uniform { variant; speeds })
let speed_robust ~k = checked (Speed_robust { k })
let zone_group ~k = checked (Zone_group k)
let local_budget ~budget = checked (Local_budget budget)

(* Floats must survive print -> parse exactly for the round-trip law.
   %.12g covers every float people actually write; fall back to %.17g
   (always exact) for the rest. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let speeds_str speeds =
  String.concat "," (List.map float_str (Array.to_list speeds))

let to_string = function
  | No_replication Lpt -> "lpt-no-choice"
  | No_replication Ls -> "ls-no-choice"
  | Full_replication Lpt -> "lpt-no-restriction"
  | Full_replication Ls -> "ls-no-restriction"
  | Group { order = Ls; k } -> Printf.sprintf "ls-group:%d" k
  | Group { order = Lpt; k } -> Printf.sprintf "lpt-group:%d" k
  | Budgeted k -> Printf.sprintf "budgeted:%d" k
  | Proportional f -> Printf.sprintf "proportional:%s" (float_str f)
  | Selective count -> Printf.sprintf "selective:%d" count
  | Sabo delta -> Printf.sprintf "sabo:%s" (float_str delta)
  | Abo delta -> Printf.sprintf "abo:%s" (float_str delta)
  | Memory_budget budget -> Printf.sprintf "memory:%s" (float_str budget)
  | Reliability { target; budget = None } ->
      Printf.sprintf "reliability:%s" (float_str target)
  | Reliability { target; budget = Some b } ->
      Printf.sprintf "reliability:%s:budget:%s" (float_str target) (float_str b)
  | Uniform { variant = U_no_choice; speeds } ->
      Printf.sprintf "uniform-lpt-no-choice:%s" (speeds_str speeds)
  | Uniform { variant = U_no_restriction; speeds } ->
      Printf.sprintf "uniform-lpt-no-restriction:%s" (speeds_str speeds)
  | Uniform { variant = U_group k; speeds } ->
      Printf.sprintf "uniform-ls-group:%d:%s" k (speeds_str speeds)
  | Speed_robust { k } -> Printf.sprintf "speedrobust:%d" k
  | Zone_group k -> Printf.sprintf "zonegroup:%d" k
  | Local_budget b -> Printf.sprintf "localbudget:%s" (float_str b)

let name = function
  | No_replication Lpt -> "LPT-No Choice"
  | No_replication Ls -> "LS-No Choice"
  | Full_replication Lpt -> "LPT-No Restriction"
  | Full_replication Ls -> "LS-No Restriction"
  | Group { order = Ls; k } -> Printf.sprintf "LS-Group(k=%d)" k
  | Group { order = Lpt; k } -> Printf.sprintf "LPT-Group(k=%d)" k
  | Budgeted k -> Printf.sprintf "Budgeted(k=%d)" k
  | Proportional f -> Printf.sprintf "Budgeted(top %g%% full)" (100.0 *. f)
  | Selective count -> Printf.sprintf "Selective(top=%d)" count
  | Sabo delta -> Printf.sprintf "SABO(delta=%g)" delta
  | Abo delta -> Printf.sprintf "ABO(delta=%g)" delta
  | Memory_budget budget -> Printf.sprintf "MemBudget(B=%g)" budget
  | Reliability { target; budget = None } ->
      Printf.sprintf "Reliability(target=%g)" target
  | Reliability { target; budget = Some b } ->
      Printf.sprintf "Reliability(target=%g, B=%g)" target b
  | Uniform { variant = U_no_choice; _ } -> "Uniform LPT-No Choice"
  | Uniform { variant = U_no_restriction; _ } -> "Uniform LPT-No Restriction"
  | Uniform { variant = U_group k; _ } ->
      Printf.sprintf "Uniform LS-Group(k=%d)" k
  | Speed_robust { k } -> Printf.sprintf "SpeedRobust(k=%d)" k
  | Zone_group k -> Printf.sprintf "ZoneGroup(k=%d)" k
  | Local_budget b -> Printf.sprintf "LocalBudget(B=%g)" b

(* Parsing ------------------------------------------------------------ *)

let int_param keyword s =
  match int_of_string_opt s with
  | Some k -> Ok k
  | None ->
      Error (Printf.sprintf "%s: expected an integer parameter, got %S" keyword s)

let float_param keyword s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None ->
      Error (Printf.sprintf "%s: expected a numeric parameter, got %S" keyword s)

let speeds_param keyword s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | p :: rest -> (
        match float_of_string_opt p with
        | Some f -> go (f :: acc) rest
        | None ->
            Error
              (Printf.sprintf "%s: expected comma-separated speeds, got %S"
                 keyword p))
  in
  go [] parts

let ( let* ) = Result.bind

let finish spec =
  let* () =
    Result.map_error
      (fun msg -> Printf.sprintf "%s: %s" (to_string spec) msg)
      (validate spec)
  in
  Ok spec

type entry = {
  keyword : string;
  params : string;
  doc : string;
  example : m:int -> t;
  portfolio : m:int -> t list;
}

let no_param keyword spec = function
  | [] -> finish spec
  | _ :: _ -> Error (Printf.sprintf "%s takes no parameter" keyword)

let one_int keyword mk = function
  | [ p ] ->
      let* k = int_param keyword p in
      finish (mk k)
  | [] -> Error (Printf.sprintf "%s needs a parameter, e.g. %s:2" keyword keyword)
  | _ -> Error (Printf.sprintf "%s takes exactly one parameter" keyword)

let one_float keyword example mk = function
  | [ p ] ->
      let* f = float_param keyword p in
      finish (mk f)
  | [] ->
      Error
        (Printf.sprintf "%s needs a parameter, e.g. %s:%s" keyword keyword
           example)
  | _ -> Error (Printf.sprintf "%s takes exactly one parameter" keyword)

let speeds_only keyword variant = function
  | [ p ] ->
      let* speeds = speeds_param keyword p in
      finish (Uniform { variant; speeds })
  | [] ->
      Error
        (Printf.sprintf "%s needs a speeds list, e.g. %s:2,1,1,0.5" keyword
           keyword)
  | _ -> Error (Printf.sprintf "%s takes exactly one speeds list" keyword)

(* A spread of speeds for examples/benches: fast, normal, slow nodes. *)
let example_speeds m =
  Array.init m (fun i ->
      match i mod 4 with 0 -> 2.0 | 3 -> 0.5 | _ -> 1.0)

let divisors ~m = List.filter (fun k -> k > 1 && k < m && m mod k = 0)
    (List.init (max m 1) (fun i -> i + 1))

let all =
  [
    {
      keyword = "lpt-no-choice";
      params = "";
      doc = "no replication, LPT on estimates, pinned execution (Thm 2)";
      example = (fun ~m:_ -> No_replication Lpt);
      portfolio = (fun ~m:_ -> [ No_replication Lpt ]);
    };
    {
      keyword = "ls-no-choice";
      params = "";
      doc = "no replication, List Scheduling in submission order (ablation)";
      example = (fun ~m:_ -> No_replication Ls);
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "ls-group";
      params = ":K";
      doc = "K machine groups, LS over groups then LS inside (Thm 4)";
      example = (fun ~m -> Group { order = Ls; k = max 1 (m / 7) });
      portfolio =
        (fun ~m -> List.map (fun k -> Group { order = Ls; k }) (divisors ~m));
    };
    {
      keyword = "lpt-group";
      params = ":K";
      doc = "K machine groups with LPT order in both phases (ablation)";
      example = (fun ~m -> Group { order = Lpt; k = max 1 (m / 7) });
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "budgeted";
      params = ":K";
      doc = "data on the K least-loaded machines per task (overlapping sets)";
      example = (fun ~m -> Budgeted (max 2 (m / 2)));
      portfolio = (fun ~m -> [ Budgeted (max 2 (m / 2)) ]);
    };
    {
      keyword = "proportional";
      params = ":F";
      doc = "largest fraction F of tasks replicated everywhere, rest pinned";
      example = (fun ~m:_ -> Proportional 0.25);
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "selective";
      params = ":COUNT";
      doc = "COUNT largest estimates replicated everywhere, rest pinned";
      example = (fun ~m -> Selective (max 1 (m / 2)));
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "memory";
      params = ":BUDGET";
      doc = "greedy replication under a hard per-machine memory budget";
      example = (fun ~m -> Memory_budget (float_of_int m));
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "reliability";
      params = ":TARGET[:budget:B]";
      doc = "smallest replica sets with P(no stranded task) >= TARGET";
      example = (fun ~m:_ -> Reliability { target = 0.99; budget = None });
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "sabo";
      params = ":DELTA";
      doc = "SABO_D: SBO split, both sides pinned, no replication (Thm 5-6)";
      example = (fun ~m:_ -> Sabo 1.0);
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "abo";
      params = ":DELTA";
      doc = "ABO_D: memory-heavy tasks pinned, time-heavy replicated (Thm 7-8)";
      example = (fun ~m:_ -> Abo 1.0);
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "speedrobust";
      params = ":K";
      doc = "replicas hedged across K machine speed classes (speed bands)";
      example = (fun ~m -> Speed_robust { k = Stdlib.min 2 m });
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "zonegroup";
      params = ":K";
      doc = "one replica in each of the K cheapest zones from the task's home";
      example = (fun ~m -> Zone_group (Stdlib.min 2 m));
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "localbudget";
      params = ":B";
      doc = "cheapest replica zones under transfer budget B x data size";
      example = (fun ~m:_ -> Local_budget 1.0);
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "lpt-no-restriction";
      params = "";
      doc = "replicate everywhere, online LPT in phase 2 (Thm 3)";
      example = (fun ~m:_ -> Full_replication Lpt);
      portfolio = (fun ~m:_ -> [ Full_replication Lpt ]);
    };
    {
      keyword = "ls-no-restriction";
      params = "";
      doc = "replicate everywhere, Graham's online List Scheduling";
      example = (fun ~m:_ -> Full_replication Ls);
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "uniform-lpt-no-choice";
      params = ":SPEEDS";
      doc = "related machines: ECT-LPT on estimates, pinned execution";
      example =
        (fun ~m -> Uniform { variant = U_no_choice; speeds = example_speeds m });
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "uniform-lpt-no-restriction";
      params = ":SPEEDS";
      doc = "related machines: replicate everywhere, online LPT with speeds";
      example =
        (fun ~m ->
          Uniform { variant = U_no_restriction; speeds = example_speeds m });
      portfolio = (fun ~m:_ -> []);
    };
    {
      keyword = "uniform-ls-group";
      params = ":K:SPEEDS";
      doc = "related machines: groups weighted by group speed";
      example =
        (fun ~m ->
          Uniform { variant = U_group (max 1 (m / 7)); speeds = example_speeds m });
      portfolio = (fun ~m:_ -> []);
    };
  ]

let find keyword =
  let keyword = if keyword = "group" then "ls-group" else keyword in
  List.find_opt (fun e -> e.keyword = keyword) all

let grammar =
  let lines =
    List.map
      (fun e -> Printf.sprintf "  %-32s %s" (e.keyword ^ e.params) e.doc)
      all
  in
  String.concat "\n"
    (("accepted --algo specs (K, COUNT integers; DELTA, BUDGET, F floats; \
       TARGET a probability in (0, 1); SPEEDS comma-separated floats):"
     :: lines)
    @ [ "  group:K                          alias for ls-group:K" ])

(* Nearest registry keyword within a small edit distance, for "did you
   mean" hints on unknown names. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) (fun j -> j) in
  for i = 1 to la do
    let diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let prev = row.(j) in
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      row.(j) <- min (min (row.(j) + 1) (row.(j - 1) + 1)) (!diag + cost);
      diag := prev
    done
  done;
  row.(lb)

let suggest keyword =
  let best =
    List.fold_left
      (fun acc e ->
        let d = levenshtein keyword e.keyword in
        match acc with
        | Some (_, best_d) when best_d <= d -> acc
        | _ when d <= 3 -> Some (e.keyword, d)
        | _ -> acc)
      None all
  in
  match best with
  | Some (k, _) -> Printf.sprintf " (did you mean %s?)" k
  | None -> ""

let of_string s =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error (Printf.sprintf "empty algorithm spec\n%s" grammar)
  | [ "help" ] -> Error grammar
  | keyword :: params -> (
      match keyword with
      | "lpt-no-choice" -> no_param keyword (No_replication Lpt) params
      | "ls-no-choice" -> no_param keyword (No_replication Ls) params
      | "lpt-no-restriction" -> no_param keyword (Full_replication Lpt) params
      | "ls-no-restriction" -> no_param keyword (Full_replication Ls) params
      | "ls-group" | "group" ->
          one_int keyword (fun k -> Group { order = Ls; k }) params
      | "lpt-group" -> one_int keyword (fun k -> Group { order = Lpt; k }) params
      | "budgeted" -> one_int keyword (fun k -> Budgeted k) params
      | "proportional" -> one_float keyword "0.25" (fun f -> Proportional f) params
      | "selective" -> one_int keyword (fun c -> Selective c) params
      | "sabo" -> one_float keyword "0.5" (fun d -> Sabo d) params
      | "abo" -> one_float keyword "0.5" (fun d -> Abo d) params
      | "memory" -> one_float keyword "16" (fun b -> Memory_budget b) params
      | "reliability" -> (
          match params with
          | [ t ] ->
              let* target = float_param keyword t in
              finish (Reliability { target; budget = None })
          | [ t; "budget"; b ] ->
              let* target = float_param keyword t in
              let* budget = float_param keyword b in
              finish (Reliability { target; budget = Some budget })
          | _ ->
              Error
                (Printf.sprintf
                   "%s takes TARGET[:budget:B], e.g. %s:0.999 or \
                    %s:0.99:budget:16"
                   keyword keyword keyword))
      | "speedrobust" ->
          one_int keyword (fun k -> Speed_robust { k }) params
      | "zonegroup" -> one_int keyword (fun k -> Zone_group k) params
      | "localbudget" ->
          one_float keyword "1.5" (fun b -> Local_budget b) params
      | "uniform-lpt-no-choice" -> speeds_only keyword U_no_choice params
      | "uniform-lpt-no-restriction" ->
          speeds_only keyword U_no_restriction params
      | "uniform-ls-group" -> (
          match params with
          | [ kp; sp ] ->
              let* k = int_param keyword kp in
              let* speeds = speeds_param keyword sp in
              finish (Uniform { variant = U_group k; speeds })
          | _ ->
              Error
                (Printf.sprintf
                   "%s needs a group count and a speeds list, e.g. \
                    %s:2:2,1,1,0.5"
                   keyword keyword))
      | _ ->
          Error
            (Printf.sprintf "unknown algorithm %S%s\n%s" keyword
               (suggest keyword) grammar))

(* Building ----------------------------------------------------------- *)

let check spec ~m =
  let* () = validate spec in
  match spec with
  | Group { k; _ } when k > m ->
      Error
        (Printf.sprintf "group count %d exceeds machine count %d" k m)
  | Speed_robust { k } when k > m ->
      Error
        (Printf.sprintf "speed class count %d exceeds machine count %d" k m)
  | Uniform { variant; speeds } -> (
      if Array.length speeds <> m then
        Error
          (Printf.sprintf "speeds list has %d entries for %d machines"
             (Array.length speeds) m)
      else
        match variant with
        | U_group k when k > m ->
            Error
              (Printf.sprintf "group count %d exceeds machine count %d" k m)
        | _ -> Ok ())
  | _ -> Ok ()

let build spec ~m =
  (match check spec ~m with
  | Ok () -> ()
  | Error msg ->
      invalid_arg (Printf.sprintf "Strategy.build %s: %s" (to_string spec) msg));
  match spec with
  | No_replication Lpt -> No_replication.lpt_no_choice
  | No_replication Ls -> No_replication.ls_no_choice
  | Full_replication Lpt -> Full_replication.lpt_no_restriction
  | Full_replication Ls -> Full_replication.ls_no_restriction
  | Group { order = Ls; k } -> Group_replication.ls_group ~k
  | Group { order = Lpt; k } -> Group_replication.lpt_group ~k
  | Budgeted k -> Budgeted.uniform ~k
  | Proportional fraction -> Budgeted.proportional ~fraction
  | Selective count -> Selective.algorithm ~count
  | Sabo delta -> Sabo.algorithm ~delta
  | Abo delta -> Abo.algorithm ~delta
  | Memory_budget budget -> Memory_budget.algorithm ~budget
  | Reliability { target; budget } -> Reliability.algorithm ?budget ~target ()
  | Uniform { variant = U_no_choice; speeds } -> Uniform.lpt_no_choice ~speeds
  | Uniform { variant = U_no_restriction; speeds } ->
      Uniform.lpt_no_restriction ~speeds
  | Uniform { variant = U_group k; speeds } -> Uniform.ls_group ~speeds ~k
  | Speed_robust { k } -> Speed_robust.algorithm ~k
  | Zone_group k -> Zone_placement.zone_group ~k
  | Local_budget budget -> Zone_placement.local_budget ~budget

let default_portfolio ~m =
  List.concat_map (fun e -> e.portfolio ~m) all
