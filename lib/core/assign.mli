(** Offline greedy assignment machinery.

    List scheduling as an {e assignment} procedure: take items one at a
    time in a given order and put each on the currently least-loaded
    machine. Phase 1 of every algorithm in the paper is an instance of
    this, over different weights (estimated times, or memory sizes) and
    orders (submission order for LS, decreasing order for LPT). *)

type result = { assignment : int array; loads : float array }
(** [assignment.(j)] is the machine of item [j]; [loads.(i)] the final
    total weight on machine [i]. *)

val list_assign : m:int -> weights:float array -> order:int array -> result
(** Greedy assignment in the given order. Ties on load go to the smallest
    machine id. Raises [Invalid_argument] if [m < 1], weights are
    negative, or [order] is not a permutation of the item ids. *)

val ls : m:int -> weights:float array -> result
(** {!list_assign} in submission order — Graham's List Scheduling. *)

val lpt : m:int -> weights:float array -> result
(** {!list_assign} in non-increasing weight order (ties by id) — Graham's
    Largest Processing Time rule. *)

val makespan : result -> float
(** Largest machine load of an assignment. *)

val decreasing_order : float array -> int array
(** Item ids sorted by decreasing weight, ties by id. *)
