(** Strategy 2: replicate everywhere ([|M_j| = m], Section 5.2).

    Phase 1 copies every task's data to every machine; all scheduling
    freedom is kept for phase 2. *)

val lpt_no_restriction : Two_phase.t
(** The paper's {b LPT-No Restriction}: online LPT by estimated times
    (Theorem 3: [1 + (m-1)/m · α²/2]-competitive; combined with Graham's
    argument, [min(1 + (m-1)/m · α²/2, 2 - 1/m)]). *)

val ls_no_restriction : Two_phase.t
(** Graham's online List Scheduling in submission order
    ([2 - 1/m]-competitive regardless of estimates). *)
