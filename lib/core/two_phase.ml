module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine

type t = {
  name : string;
  phase1 : Instance.t -> Placement.t;
  phase2 : Instance.t -> Placement.t -> Realization.t -> Schedule.t;
}

let run_full t instance realization =
  let placement = t.phase1 instance in
  let schedule = t.phase2 instance placement realization in
  (placement, schedule)

let run t instance realization = snd (run_full t instance realization)

let makespan t instance realization =
  Schedule.makespan (run t instance realization)

let engine_phase2 ?dispatch ~order instance placement realization =
  Engine.run ?dispatch instance realization
    ~placement:(Placement.sets placement) ~order:(order instance)

let dispatch_phase2 ~dispatch ~order instance placement realization =
  engine_phase2 ~dispatch ~order instance placement realization

let lpt_order_phase2 instance placement realization =
  engine_phase2 ~order:Instance.lpt_order instance placement realization

let submission_order_phase2 instance placement realization =
  engine_phase2
    ~order:(fun inst -> Array.init (Instance.n inst) (fun j -> j))
    instance placement realization
