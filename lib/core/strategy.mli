(** The strategy catalog: every phase-1 placement algorithm in the repo
    as a first-class, typed, parseable value.

    PR 4 made phase-2 dispatch a value ({!Usched_desim.Dispatch.spec});
    this module does the same for phase 1. A {!t} is a {e spec} — a pure
    description of an algorithm and its parameters, validated at
    construction (bad parameters are rejected here, not deep inside
    phase 1), printable to a stable grammar ([ls-group:4], [sabo:0.5])
    and parseable back. {!build} turns a spec into the corresponding
    {!Two_phase.t}; the {!all} registry enumerates every family with a
    one-line doc, and {!default_portfolio} derives the scenario-selection
    portfolio from it.

    Information flow: a spec describes only estimate-driven phase-1
    behaviour (plus the fixed phase-2 rule of its family). Specs never
    carry realization data, so recording a spec string in a trace or
    manifest is enough to replay the placement decision by name. *)

type order = Lpt | Ls
(** Priority order of a family's list phase: estimate-descending ([Lpt])
    or submission / task-id ([Ls]). *)

type uniform_variant =
  | U_no_choice  (** ECT-LPT placement, pinned execution. *)
  | U_no_restriction  (** Replicate everywhere, online LPT with speeds. *)
  | U_group of int  (** Contiguous groups weighted by group speed. *)

type t =
  | No_replication of order
      (** [|M_j| = 1] (Section 5.1): all decisions in phase 1. *)
  | Full_replication of order
      (** [|M_j| = m] (Section 5.2): all freedom kept for phase 2. *)
  | Group of { order : order; k : int }
      (** [k] machine groups (Section 5.3), [|M_j| = m/k] when [k | m]. *)
  | Budgeted of int
      (** Every task's data on the [k] least-loaded machines (overlapping
          sets, the conclusion's cost model). *)
  | Proportional of float
      (** The largest [fraction] of tasks get budget [m], the rest 1. *)
  | Selective of int
      (** The [count] largest estimates replicated everywhere. *)
  | Sabo of float  (** SABO_Δ (Section 6.1): SBO split, no replication. *)
  | Abo of float
      (** ABO_Δ (Section 6.2): S2 pinned, S1 replicated everywhere. *)
  | Memory_budget of float
      (** Greedy replication under a hard per-machine memory budget. *)
  | Reliability of { target : float; budget : float option }
      (** Per-task smallest replica sets with
          [P(all replicas lost) <= (1 - target) / n] from the machine
          failure profile (so [P(no stranded task) >= target] by union
          bound); [budget], when given, additionally caps each machine's
          replica memory. See {!Reliability}. *)
  | Uniform of { variant : uniform_variant; speeds : float array }
      (** Related-machines extension; [speeds] must have length [m]. *)
  | Speed_robust of { k : int }
      (** Replicas hedged across [k] machine speed classes built from the
          instance's speed band (pessimistic in-band speed, fastest class
          first) — one replica per class. See {!Speed_robust}. *)
  | Zone_group of int
      (** One replica in each of the [k] cheapest zones from the task's
          home zone (clamped to the topology's zone count). See
          {!Zone_placement}. *)
  | Local_budget of float
      (** Cheapest replica zones while the per-task transfer cost stays
          within [budget * size_j]; home zone always covered. See
          {!Zone_placement}. *)

(** {1 Validated smart constructors}

    Each rejects out-of-domain parameters with [Invalid_argument] at
    construction time: non-positive [k], [delta]/[budget] that are NaN,
    infinite, zero or negative, fractions outside [0, 1], negative
    counts, speeds that are not all finite and positive. Constraints
    that need [m] (group count vs machine count, speeds length) are
    checked by {!build}. *)

val no_replication : order -> t
val full_replication : order -> t
val group : order:order -> k:int -> t
val budgeted : k:int -> t
val proportional : fraction:float -> t
val selective : count:int -> t
val sabo : delta:float -> t
val abo : delta:float -> t
val memory_budget : budget:float -> t
val reliability : target:float -> budget:float option -> t
val uniform : variant:uniform_variant -> speeds:float array -> t
val speed_robust : k:int -> t
val zone_group : k:int -> t
val local_budget : budget:float -> t

val validate : t -> (unit, string) result
(** The m-independent domain checks behind the smart constructors, for
    specs built directly from the ADT (e.g. by a parser or a test
    generator). [Ok ()] iff every parameter is in domain. *)

(** {1 Grammar} *)

val to_string : t -> string
(** Stable spec string: [lpt-no-choice], [ls-no-restriction],
    [ls-group:K], [lpt-group:K], [budgeted:K], [proportional:F],
    [selective:COUNT], [sabo:DELTA], [abo:DELTA], [memory:BUDGET],
    [reliability:TARGET] / [reliability:TARGET:budget:B],
    [uniform-lpt-no-choice:SPEEDS], [uniform-lpt-no-restriction:SPEEDS],
    [uniform-ls-group:K:SPEEDS] with SPEEDS comma-separated,
    [speedrobust:K], [zonegroup:K], and [localbudget:B]. Floats are
    printed so they parse back to the identical value —
    [of_string (to_string s) = Ok s] for every valid spec. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. Also accepts the alias [group:K] for
    [ls-group:K], and the pseudo-spec [help], which always returns
    [Error] carrying the full grammar listing (so [--algo help] prints
    it). Unknown names, missing/extra parameters, and out-of-domain
    values (NaN or negative delta, [k = 0], reliability targets outside
    (0, 1), ...) are [Error] with a usage message; unknown names include
    the full grammar, plus a "did you mean" hint when a registry keyword
    is within edit distance 3. *)

val name : t -> string
(** The human-readable [Two_phase.name] this spec builds to (e.g.
    ["LS-Group(k=4)"]), without constructing the algorithm. *)

(** {1 Building} *)

val build : t -> m:int -> Two_phase.t
(** Construct the algorithm for an [m]-machine instance. Raises
    [Invalid_argument] when the spec is out of domain ({!validate}), when
    a group count exceeds [m], or when a speeds array does not have
    length [m] — at build time, not deep inside phase 1. The returned
    value is constructed by the same module entry points the pre-catalog
    call sites used, so placements and schedules are bit-for-bit
    identical (pinned by the golden property in [test_strategy]). *)

val check : t -> m:int -> (unit, string) result
(** What {!build} would reject, as a result — for CLI-style callers. *)

(** {1 Registry} *)

type entry = {
  keyword : string;  (** grammar keyword, e.g. ["ls-group"] *)
  params : string;  (** parameter suffix for usage lines, e.g. [":K"] *)
  doc : string;  (** one-line description *)
  example : m:int -> t;  (** a representative spec (benches, smoke tests) *)
  portfolio : m:int -> t list;
      (** members this family contributes to {!default_portfolio} *)
}

val all : entry list
(** Every family, in presentation order: replication degree ascending
    (no-choice, groups, budgeted, selective, memory-aware, no
    restriction), then the related-machines extensions. *)

val find : string -> entry option
(** Look up a family by grammar keyword (aliases included). *)

val grammar : string
(** Human-readable listing of every accepted spec form with its
    one-line doc — what [usched strategies] and parse errors print. *)

val default_portfolio : m:int -> t list
(** The scenario-selection portfolio, derived from the registry: each
    entry contributes its [portfolio ~m] members in registry order. For
    the paper's families this is no replication, LS-Group at every
    proper divisor k of [m], one budgeted overlap, and full
    replication — identical to the portfolio {!Scenarios} hardcoded
    before the catalog existed. *)
