(** Memory accounting for the memory-aware model (Section 6).

    Each replica of task [j] occupies [s_j] memory on its machine;
    [Mem_max] is the most occupied machine. This module builds the two
    reference schedules combined by the bi-objective algorithms — [π1]
    (makespan-driven) and [π2] (memory-driven) — and the memory lower
    bounds used to report approximation ratios. *)

module Instance = Usched_model.Instance

val pi1 : Instance.t -> Assign.result
(** Makespan-oriented reference schedule: LPT on estimated times
    ([ρ1 = 4/3 - 1/(3m)]). *)

val pi2 : Instance.t -> Assign.result
(** Memory-oriented reference schedule: LPT on sizes
    ([ρ2 = 4/3 - 1/(3m)], memory being makespan-like). *)

val lower_bound : m:int -> sizes:float array -> float
(** [Mem* >= max(Σs/m, max s)]. *)

val of_placement : Instance.t -> Placement.t -> float
(** [Mem_max] of a placement under the instance's sizes. *)
