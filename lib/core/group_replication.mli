(** Strategy 3: replication in groups ([|M_j| = m/k], Section 5.3).

    Machines are partitioned into [k] groups; phase 1 assigns each task's
    data to all machines of one group with List Scheduling over groups;
    phase 2 runs List Scheduling online inside each group. *)

module Instance = Usched_model.Instance

val machine_groups : m:int -> k:int -> int array array
(** Partition [0..m-1] into [k] contiguous groups. When [k] divides [m]
    all groups have [m/k] machines (the paper's setting); otherwise the
    first [m mod k] groups get one extra machine (our extension). Raises
    [Invalid_argument] unless [1 <= k <= m]. *)

val group_assignment :
  order:[ `Submission | `Lpt ] -> k:int -> Instance.t -> int array
(** Phase-1 group index per task: greedy assignment of estimated times to
    the [k] groups, each group weighted by its machine count (equal
    weights in the paper's divisible case). *)

val ls_group : k:int -> Two_phase.t
(** The paper's {b LS-Group} with [k] groups (Theorem 4). *)

val lpt_group : k:int -> Two_phase.t
(** Ablation variant: LPT order in both phases (the paper argues this
    should not have a much better guarantee — §5.3 closing remark). *)
