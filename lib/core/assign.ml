type result = { assignment : int array; loads : float array }

let check_order n order =
  if Array.length order <> n then
    invalid_arg "Assign: order length differs from weights";
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg "Assign: order is not a permutation";
      seen.(j) <- true)
    order

(* Min-heap over (load, machine id) gives O(n log m) assignment. *)
let compare_load (la, ia) (lb, ib) =
  match Float.compare la lb with 0 -> Int.compare ia ib | c -> c

let list_assign ~m ~weights ~order =
  if m < 1 then invalid_arg "Assign: m must be >= 1";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Assign: negative weight")
    weights;
  let n = Array.length weights in
  check_order n order;
  let heap =
    Usched_desim.Pqueue.of_array ~compare:compare_load
      (Array.init m (fun i -> (0.0, i)))
  in
  let assignment = Array.make n 0 in
  let loads = Array.make m 0.0 in
  Array.iter
    (fun j ->
      let load, i = Usched_desim.Pqueue.pop_exn heap in
      assignment.(j) <- i;
      let load = load +. weights.(j) in
      loads.(i) <- load;
      Usched_desim.Pqueue.push heap (load, i))
    order;
  { assignment; loads }

let ls ~m ~weights =
  list_assign ~m ~weights ~order:(Array.init (Array.length weights) (fun j -> j))

let decreasing_order weights =
  let order = Array.init (Array.length weights) (fun j -> j) in
  Array.sort
    (fun a b ->
      match Float.compare weights.(b) weights.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  order

let lpt ~m ~weights = list_assign ~m ~weights ~order:(decreasing_order weights)

let makespan result = Array.fold_left Float.max 0.0 result.loads
