type result = { assignment : int array; loads : float array }

let check_order n order =
  if Array.length order <> n then
    invalid_arg "Assign: order length differs from weights";
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg "Assign: order is not a permutation";
      seen.(j) <- true)
    order

(* Min-heap over (load, machine id) gives O(n log m) assignment. The
   heap is two flat lanes — a float lane of loads and an int lane of
   machine ids — and every step replaces the root in place and sifts
   down, so the loop allocates nothing (the old boxed-pair queue consed
   a tuple per pop and per push). Keys are unique (ties on load break
   by id), so extracting the multiset minimum at each step is
   layout-independent: the assignment sequence is identical to the
   pop/push original. *)
(* The [float array] annotation matters: without it the function is
   polymorphic, every [hload.(_)] is a generic get that boxes the
   element, and the "allocation-free" loop allocates on every
   comparison. *)
let rec sift_down (hload : float array) hid size i =
  let l = (2 * i) + 1 in
  if l < size then begin
    let r = l + 1 in
    let c =
      if
        r < size
        && (hload.(r) < hload.(l) || (hload.(r) = hload.(l) && hid.(r) < hid.(l)))
      then r
      else l
    in
    if hload.(c) < hload.(i) || (hload.(c) = hload.(i) && hid.(c) < hid.(i))
    then begin
      let tl = hload.(i) in
      hload.(i) <- hload.(c);
      hload.(c) <- tl;
      let ti = hid.(i) in
      hid.(i) <- hid.(c);
      hid.(c) <- ti;
      sift_down hload hid size c
    end
  end

let list_assign ~m ~(weights : float array) ~order =
  if m < 1 then invalid_arg "Assign: m must be >= 1";
  (* for-loop, not [Array.iter]: the generic iterator boxes every float
     element it passes to the closure. *)
  for k = 0 to Array.length weights - 1 do
    if weights.(k) < 0.0 then invalid_arg "Assign: negative weight"
  done;
  let n = Array.length weights in
  check_order n order;
  (* All-zero loads with ids in increasing order is already a valid
     heap. *)
  let hload = Array.make m 0.0 in
  let hid = Array.init m (fun i -> i) in
  let assignment = Array.make n 0 in
  let loads = Array.make m 0.0 in
  Array.iter
    (fun j ->
      let i = hid.(0) in
      assignment.(j) <- i;
      let load = hload.(0) +. weights.(j) in
      loads.(i) <- load;
      hload.(0) <- load;
      sift_down hload hid m 0)
    order;
  { assignment; loads }

let ls ~m ~weights =
  list_assign ~m ~weights ~order:(Array.init (Array.length weights) (fun j -> j))

let decreasing_order weights =
  let order = Array.init (Array.length weights) (fun j -> j) in
  Array.sort
    (fun a b ->
      match Float.compare weights.(b) weights.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  order

let lpt ~m ~weights = list_assign ~m ~weights ~order:(decreasing_order weights)

let makespan result = Array.fold_left Float.max 0.0 result.loads
