let check_m m = if m < 1 then invalid_arg "Guarantees: m must be >= 1"

let check_alpha alpha =
  if not (Float.is_finite alpha) || alpha < 1.0 then
    invalid_arg "Guarantees: alpha must be >= 1"

let check_delta delta =
  if not (delta > 0.0) then invalid_arg "Guarantees: delta must be > 0"

let check_rho rho = if rho < 1.0 then invalid_arg "Guarantees: rho must be >= 1"

let no_replication_lower_bound ~m ~alpha =
  check_m m;
  check_alpha alpha;
  let a2 = alpha *. alpha and mf = float_of_int m in
  a2 *. mf /. (a2 +. mf -. 1.0)

let no_replication_lower_bound_limit ~alpha =
  check_alpha alpha;
  alpha *. alpha

let lpt_no_choice ~m ~alpha =
  check_m m;
  check_alpha alpha;
  let a2 = alpha *. alpha and mf = float_of_int m in
  2.0 *. a2 *. mf /. ((2.0 *. a2) +. mf -. 1.0)

let lpt_no_restriction ~m ~alpha =
  check_m m;
  check_alpha alpha;
  let a2 = alpha *. alpha and mf = float_of_int m in
  1.0 +. ((mf -. 1.0) /. mf *. (a2 /. 2.0))

let list_scheduling ~m =
  check_m m;
  2.0 -. (1.0 /. float_of_int m)

let full_replication ~m ~alpha =
  Float.min (lpt_no_restriction ~m ~alpha) (list_scheduling ~m)

let ls_group ~m ~k ~alpha =
  check_m m;
  check_alpha alpha;
  if k < 1 || k > m then invalid_arg "Guarantees.ls_group: need 1 <= k <= m";
  let a2 = alpha *. alpha and mf = float_of_int m and kf = float_of_int k in
  (kf *. a2 /. (a2 +. kf -. 1.0) *. (1.0 +. ((kf -. 1.0) /. mf)))
  +. ((mf -. kf) /. mf)

let replication_of_groups ~m ~k =
  check_m m;
  if k < 1 || k > m || m mod k <> 0 then
    invalid_arg "Guarantees.replication_of_groups: k must divide m";
  m / k

let lpt_offline ~m =
  check_m m;
  (4.0 /. 3.0) -. (1.0 /. (3.0 *. float_of_int m))

let multifit ~iterations =
  if iterations < 0 then invalid_arg "Guarantees.multifit: negative iterations";
  (13.0 /. 11.0) +. (2.0 ** float_of_int (-iterations))

let sabo_makespan ~alpha ~delta ~rho1 =
  check_alpha alpha;
  check_delta delta;
  check_rho rho1;
  (1.0 +. delta) *. alpha *. alpha *. rho1

let sabo_memory ~delta ~rho2 =
  check_delta delta;
  check_rho rho2;
  (1.0 +. (1.0 /. delta)) *. rho2

let abo_makespan ~m ~alpha ~delta ~rho1 =
  check_m m;
  check_alpha alpha;
  check_delta delta;
  check_rho rho1;
  2.0 -. (1.0 /. float_of_int m) +. (delta *. alpha *. alpha *. rho1)

let abo_memory ~m ~delta ~rho2 =
  check_m m;
  check_delta delta;
  check_rho rho2;
  (1.0 +. (float_of_int m /. delta)) *. rho2

let check_staging s =
  if Float.is_nan s || not (Float.is_finite s) || s < 0.0 then
    invalid_arg "Guarantees: staging term must be finite and >= 0"

let check_opt opt =
  if Float.is_nan opt || not (Float.is_finite opt) || opt < 0.0 then
    invalid_arg "Guarantees: opt must be finite and >= 0"

(* Staging-aware makespan bounds. Staging occupies the executing machine
   exactly like processing, so a ratio-[rho] list bound degrades to the
   additive form [rho * opt + s_max]: the final task's machine pays at
   most its own staging on top of a schedule the ratio already covers.
   These return executable upper bounds (absolute makespans, not
   ratios) — on the uniform topology [s_max = 0] and they collapse to
   [rho * opt]. *)
let list_scheduling_staged ~m ~s_max ~opt =
  check_staging s_max;
  check_opt opt;
  (list_scheduling ~m *. opt) +. s_max

let full_replication_staged ~m ~alpha ~s_max ~opt =
  check_staging s_max;
  check_opt opt;
  (full_replication ~m ~alpha *. opt) +. s_max

let tradeoff_impossibility ~makespan_ratio =
  if makespan_ratio <= 1.0 then
    invalid_arg "Guarantees.tradeoff_impossibility: ratio must be > 1";
  1.0 +. (1.0 /. (makespan_ratio -. 1.0))

let abo_beats_sabo_on_makespan ~alpha ~rho1 =
  check_alpha alpha;
  check_rho rho1;
  alpha *. rho1 >= 2.0
