(** Strategy 1: no replication ([|M_j| = 1], Section 5.1).

    All decisions happen in phase 1; phase 2 merely executes each task on
    its unique machine. *)

module Instance = Usched_model.Instance

val lpt_assignment : Instance.t -> Assign.result
(** LPT on the estimated times — the phase-1 rule of LPT-No Choice. *)

val lpt_no_choice : Two_phase.t
(** The paper's {b LPT-No Choice} algorithm (Theorem 2:
    [2α²m/(2α²+m-1)]-competitive). *)

val ls_no_choice : Two_phase.t
(** Baseline variant: phase 1 uses List Scheduling in submission order
    instead of LPT. Not analyzed in the paper; used in ablations. *)
