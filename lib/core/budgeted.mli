(** Per-task replication budgets (the paper's future-work cost model).

    The conclusion proposes charging each replica and letting every task
    have its own replication allowance. This module implements the
    natural greedy policy for that model: tasks are placed in LPT order,
    and task [j] puts its data on the [k_j] machines that currently have
    the least estimated load — its primary copy on the least-loaded one,
    the remaining [k_j - 1] replicas on the next-least-loaded machines.
    Phase 2 is online LPT restricted to each task's machine set.

    The policy interpolates the paper's regimes exactly: all budgets 1
    is LPT-No Choice; all budgets [m] is LPT-No Restriction. Unlike
    LS-Group, the machine sets of different tasks overlap freely, so a
    replication factor that does not divide [m] is meaningful — one of
    the "more general replication policies" the paper calls for. *)

module Instance = Usched_model.Instance

val placement : budgets:int array -> Instance.t -> Placement.t
(** [placement ~budgets instance] builds the greedy placement. Each
    budget is clamped to [1..m]. Raises [Invalid_argument] if the budget
    array's length differs from the instance. *)

val algorithm : budgets:int array -> Two_phase.t
(** Two-phase algorithm over {!placement}. *)

val uniform : k:int -> Two_phase.t
(** Every task gets the same budget [k] (clamped to [1..m]). *)

val proportional : fraction:float -> Two_phase.t
(** Budget scaled by estimate rank: the largest [fraction] of tasks (by
    estimate) get budget [m], the rest budget 1 — the "replicate only
    critical tasks" policy with an explicit cost knob. *)
