(** Adversaries: worst-case realizations chosen after phase 1.

    The paper's lower bound (Theorem 1) is proved with an adversary that
    inspects the placement and then inflates the tasks of an overloaded
    machine by [α] while deflating everything else by [1/α]. This module
    makes that adversary — and stronger search-based ones — executable, so
    lower-bound constructions and worst-case ratio measurements run as
    experiments. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule

val theorem1 : Instance.t -> Placement.t -> Realization.t
(** The Theorem-1 adversary, generalized to arbitrary placements: find the
    machine with the largest estimated load of {e pinned} tasks (tasks
    with [|M_j| = 1]); inflate those tasks to [α·p̃], deflate every other
    task to [p̃/α]. On a replication-free placement of identical tasks it
    is exactly the proof's construction. *)

val inflate_machine : int -> Instance.t -> Placement.t -> Realization.t
(** Inflate every task placed (possibly among others) on the given
    machine; deflate the rest. *)

val greedy_flip :
  ?sweeps:int ->
  run:(Realization.t -> Schedule.t) ->
  opt:(float array -> float) ->
  Instance.t ->
  Realization.t
(** Local search over extreme realizations: starting from all-deflated,
    repeatedly flip single task factors between [1/α] and [α], keeping a
    flip when it increases [C_max / opt(actuals)]. [run] re-executes the
    algorithm's phase 2 against a candidate realization; [opt] evaluates
    (or bounds) the clairvoyant optimum. [sweeps] full passes (default 3).

    Only extreme factors are explored; by the convexity of the makespan
    in each single task's time this loses nothing against static
    policies, and is a strong heuristic against online ones. *)

val exhaustive :
  run:(Realization.t -> Schedule.t) ->
  opt:(float array -> float) ->
  Instance.t ->
  Realization.t * float
(** Enumerate all [2^n] extreme realizations and return the worst one with
    its ratio. Raises [Invalid_argument] for [n > 20]. *)

val ratio :
  run:(Realization.t -> Schedule.t) ->
  opt:(float array -> float) ->
  Realization.t ->
  float
(** [C_max(run r) / opt(actuals r)] — the quantity adversaries maximize. *)
