module Instance = Usched_model.Instance
module Bitset = Usched_model.Bitset

let placement ~budgets instance =
  let n = Instance.n instance and m = Instance.m instance in
  if Array.length budgets <> n then
    invalid_arg "Budgeted.placement: budgets length differs from instance";
  let loads = Array.make m 0.0 in
  let sets = Array.make n (Bitset.create m) in
  let order = Instance.lpt_order instance in
  (* Only one machine's load changes per task, so a single insertion pass
     keeps [by_load] sorted by (estimated load, id) in O(m) per task
     instead of re-sorting. *)
  let by_load = Array.init m (fun i -> i) in
  let resort_first () =
    let moved = by_load.(0) in
    let precedes a b =
      loads.(a) < loads.(b) || (Float.equal loads.(a) loads.(b) && a < b)
    in
    let pos = ref 0 in
    while !pos + 1 < m && precedes by_load.(!pos + 1) moved do
      by_load.(!pos) <- by_load.(!pos + 1);
      incr pos
    done;
    by_load.(!pos) <- moved
  in
  Array.iter
    (fun j ->
      let budget = Stdlib.max 1 (Stdlib.min m budgets.(j)) in
      (* The first [budget] machines by load hold the replicas; the very
         first runs the primary copy. *)
      let set = Bitset.create m in
      for rank = 0 to budget - 1 do
        Bitset.add set by_load.(rank)
      done;
      sets.(j) <- set;
      loads.(by_load.(0)) <- loads.(by_load.(0)) +. Instance.est instance j;
      resort_first ())
    order;
  Placement.of_sets ~m sets

let algorithm ~budgets =
  {
    Two_phase.name = "Budgeted";
    phase1 = (fun instance -> placement ~budgets instance);
    phase2 = Two_phase.lpt_order_phase2;
  }

let uniform ~k =
  {
    Two_phase.name = Printf.sprintf "Budgeted(k=%d)" k;
    phase1 =
      (fun instance ->
        placement ~budgets:(Array.make (Instance.n instance) k) instance);
    phase2 = Two_phase.lpt_order_phase2;
  }

let proportional ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Budgeted.proportional: fraction out of [0, 1]";
  {
    Two_phase.name = Printf.sprintf "Budgeted(top %g%% full)" (100.0 *. fraction);
    phase1 =
      (fun instance ->
        let n = Instance.n instance and m = Instance.m instance in
        let critical = int_of_float (Float.round (fraction *. float_of_int n)) in
        let order = Instance.lpt_order instance in
        let budgets = Array.make n 1 in
        for rank = 0 to Stdlib.min critical n - 1 do
          budgets.(order.(rank)) <- m
        done;
        placement ~budgets instance);
    phase2 = Two_phase.lpt_order_phase2;
  }
