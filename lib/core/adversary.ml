module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset

let extreme_realization instance highs =
  let a = Instance.alpha_value instance in
  Realization.of_factors instance
    (Array.map (fun high -> if high then a else 1.0 /. a) highs)

let inflate_machine machine instance placement =
  let n = Instance.n instance in
  let highs =
    Array.init n (fun j -> Placement.allowed placement ~task:j ~machine)
  in
  extreme_realization instance highs

let theorem1 instance placement =
  let m = Instance.m instance and n = Instance.n instance in
  (* Estimated load of tasks pinned to each machine. *)
  let pinned_load = Array.make m 0.0 in
  for j = 0 to n - 1 do
    if Placement.replication placement j = 1 then begin
      let i = Bitset.choose (Placement.set placement j) in
      pinned_load.(i) <- pinned_load.(i) +. Instance.est instance j
    end
  done;
  let target = ref 0 in
  for i = 1 to m - 1 do
    if pinned_load.(i) > pinned_load.(!target) then target := i
  done;
  let highs =
    Array.init n (fun j ->
        Placement.replication placement j = 1
        && Placement.allowed placement ~task:j ~machine:!target)
  in
  extreme_realization instance highs

let ratio ~run ~opt realization =
  let makespan = Schedule.makespan (run realization) in
  let optimum = opt (Realization.actuals realization) in
  if optimum <= 0.0 then invalid_arg "Adversary.ratio: non-positive optimum";
  makespan /. optimum

let greedy_flip ?(sweeps = 3) ~run ~opt instance =
  let n = Instance.n instance in
  let highs = Array.make n false in
  let best = ref (ratio ~run ~opt (extreme_realization instance highs)) in
  for _ = 1 to sweeps do
    for j = 0 to n - 1 do
      highs.(j) <- not highs.(j);
      let candidate = ratio ~run ~opt (extreme_realization instance highs) in
      if candidate > !best then best := candidate
      else highs.(j) <- not highs.(j)
    done
  done;
  extreme_realization instance highs

let exhaustive ~run ~opt instance =
  let n = Instance.n instance in
  if n > 20 then invalid_arg "Adversary.exhaustive: instance too large";
  let best_ratio = ref neg_infinity in
  let best_mask = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let highs = Array.init n (fun j -> mask land (1 lsl j) <> 0) in
    let candidate = ratio ~run ~opt (extreme_realization instance highs) in
    if candidate > !best_ratio then begin
      best_ratio := candidate;
      best_mask := mask
    end
  done;
  let highs = Array.init n (fun j -> !best_mask land (1 lsl j) <> 0) in
  (extreme_realization instance highs, !best_ratio)
