module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule
module Pool = Usched_parallel.Pool

type t = Realization.t list

let sample ~count ~realize ~rng instance =
  if count < 1 then invalid_arg "Scenarios.sample: count < 1";
  List.init count (fun _ -> realize instance rng)

type evaluation = {
  algorithm : Two_phase.t;
  worst : float;
  mean : float;
  per_scenario : float array;
}

let evaluate ?(domains = 1) algorithm instance scenarios =
  if scenarios = [] then invalid_arg "Scenarios.evaluate: empty scenario set";
  let placement = algorithm.Two_phase.phase1 instance in
  (* Phase 2 replays are independent reads of the committed placement,
     so scenarios shard across domains; [per_scenario.(i)] is the same
     value at any domain count. *)
  let scen = Array.of_list scenarios in
  let per_scenario =
    Pool.parallel_init ~domains (Array.length scen) (fun i ->
        Schedule.makespan
          (algorithm.Two_phase.phase2 instance placement scen.(i)))
  in
  let worst = Array.fold_left Float.max neg_infinity per_scenario in
  let mean =
    Array.fold_left ( +. ) 0.0 per_scenario
    /. float_of_int (Array.length per_scenario)
  in
  { algorithm; worst; mean; per_scenario }

type criterion = Minimize_worst | Minimize_mean

let score criterion evaluation =
  match criterion with
  | Minimize_worst -> evaluation.worst
  | Minimize_mean -> evaluation.mean

let select ?domains criterion ~portfolio instance scenarios =
  match portfolio with
  | [] -> invalid_arg "Scenarios.select: empty portfolio"
  | first :: rest ->
      List.fold_left
        (fun best algorithm ->
          let candidate = evaluate ?domains algorithm instance scenarios in
          if score criterion candidate < score criterion best then candidate
          else best)
        (evaluate ?domains first instance scenarios)
        rest

let default_portfolio ~m =
  List.map (fun spec -> Strategy.build spec ~m) (Strategy.default_portfolio ~m)
