type result = { value : float; optimal : bool; nodes : int }

let solve ?(node_limit = 10_000_000) ~m p =
  if m < 1 then invalid_arg "Opt.solve: m must be >= 1";
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Opt.solve: negative time") p;
  let n = Array.length p in
  let sorted = Array.copy p in
  Array.sort (fun a b -> Float.compare b a) sorted;
  (* suffix.(t) = total work of tasks t..n-1 (still unassigned). *)
  let suffix = Array.make (n + 1) 0.0 in
  for t = n - 1 downto 0 do
    suffix.(t) <- suffix.(t + 1) +. sorted.(t)
  done;
  let trivial_lb =
    Float.max (Lower_bounds.average ~m sorted) (Lower_bounds.largest sorted)
  in
  let lb = Float.max trivial_lb (Lower_bounds.packing ~m sorted) in
  (* Incumbent from LPT; epsilon below guards float equality on the
     optimality test. *)
  let best = ref (Assign.makespan (Assign.lpt ~m ~weights:sorted)) in
  let eps = 1e-12 *. Float.max 1.0 !best in
  let loads = Array.make m 0.0 in
  let nodes = ref 0 in
  let exceeded = ref false in
  let rec branch t current_max =
    if !exceeded then ()
    else begin
      incr nodes;
      if !nodes > node_limit then exceeded := true
      else if t = n then begin
        if current_max < !best then best := current_max
      end
      else begin
        (* Bound: even perfect balancing of the remaining work cannot
           beat the incumbent, and the largest remaining task must land
           on some machine (at best the least loaded one). *)
        let min_load = Array.fold_left Float.min infinity loads in
        let remaining_avg =
          (Array.fold_left ( +. ) 0.0 loads +. suffix.(t)) /. float_of_int m
        in
        let lower =
          Float.max current_max (Float.max remaining_avg (min_load +. sorted.(t)))
        in
        if lower < !best -. eps && !best > lb +. eps then begin
          let w = sorted.(t) in
          (* Symmetry: never try two machines with equal loads. *)
          let tried = ref [] in
          let rec try_machines i =
            if i >= m || !exceeded then ()
            else begin
              let load = loads.(i) in
              if (not (List.exists (fun l -> Float.equal l load) !tried))
                 && load +. w < !best -. eps
              then begin
                tried := load :: !tried;
                loads.(i) <- load +. w;
                branch (t + 1) (Float.max current_max (load +. w));
                loads.(i) <- load
              end;
              try_machines (i + 1)
            end
          in
          try_machines 0
        end
      end
    end
  in
  branch 0 0.0;
  { value = !best; optimal = not !exceeded; nodes = !nodes }

let makespan ~m p =
  let r = solve ~m p in
  if not r.optimal then failwith "Opt.makespan: node limit reached";
  r.value
