module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine

let check_speeds ~m speeds =
  if Array.length speeds <> m then
    invalid_arg "Uniform: speeds length differs from machine count";
  Array.iter
    (fun s ->
      if not (Float.is_finite s && s > 0.0) then
        invalid_arg "Uniform: speeds must be finite and > 0")
    speeds

let lpt_assignment ~speeds instance =
  let m = Instance.m instance in
  check_speeds ~m speeds;
  let finish = Array.make m 0.0 in
  let assignment = Array.make (Instance.n instance) 0 in
  Array.iter
    (fun j ->
      let est = Instance.est instance j in
      let best = ref 0 in
      let best_finish = ref infinity in
      for i = 0 to m - 1 do
        let candidate = finish.(i) +. (est /. speeds.(i)) in
        if candidate < !best_finish then begin
          best := i;
          best_finish := candidate
        end
      done;
      assignment.(j) <- !best;
      finish.(!best) <- !best_finish)
    (Instance.lpt_order instance);
  { Assign.assignment; loads = finish }

let lower_bound ~speeds p =
  let m = Array.length speeds in
  check_speeds ~m speeds;
  Array.iter
    (fun x -> if x < 0.0 then invalid_arg "Uniform.lower_bound: negative time")
    p;
  let sorted_p = Array.copy p in
  Array.sort (fun a b -> Float.compare b a) sorted_p;
  let sorted_s = Array.copy speeds in
  Array.sort (fun a b -> Float.compare b a) sorted_s;
  let bound = ref 0.0 in
  let work = ref 0.0 and speed = ref 0.0 in
  for k = 0 to Stdlib.min m (Array.length p) - 1 do
    work := !work +. sorted_p.(k);
    speed := !speed +. sorted_s.(k);
    (* The k+1 largest tasks can at best share the k+1 fastest machines. *)
    if !speed > 0.0 then bound := Float.max !bound (!work /. !speed)
  done;
  (* All the work on all the machines. *)
  let total = Array.fold_left ( +. ) 0.0 p in
  let total_speed = Array.fold_left ( +. ) 0.0 speeds in
  Float.max !bound (total /. total_speed)

let engine_phase2 ~speeds ~order instance placement realization =
  Engine.run ~speeds instance realization
    ~placement:(Placement.sets placement)
    ~order:(order instance)

let lpt_no_choice ~speeds =
  {
    Two_phase.name = "Uniform LPT-No Choice";
    phase1 =
      (fun instance ->
        Placement.singletons ~m:(Instance.m instance)
          (lpt_assignment ~speeds instance).Assign.assignment);
    phase2 = engine_phase2 ~speeds ~order:Instance.lpt_order;
  }

let lpt_no_restriction ~speeds =
  {
    Two_phase.name = "Uniform LPT-No Restriction";
    phase1 =
      (fun instance ->
        check_speeds ~m:(Instance.m instance) speeds;
        Placement.full ~m:(Instance.m instance) ~n:(Instance.n instance));
    phase2 = engine_phase2 ~speeds ~order:Instance.lpt_order;
  }

let ls_group ~speeds ~k =
  {
    Two_phase.name = Printf.sprintf "Uniform LS-Group(k=%d)" k;
    phase1 =
      (fun instance ->
        let m = Instance.m instance in
        check_speeds ~m speeds;
        let groups = Group_replication.machine_groups ~m ~k in
        let group_speed =
          Array.map
            (fun machines ->
              Array.fold_left (fun acc i -> acc +. speeds.(i)) 0.0 machines)
            groups
        in
        (* Greedy over groups: place each task where its estimated
           finish (group load / group speed) stays smallest. *)
        let loads = Array.make k 0.0 in
        let assignment = Array.make (Instance.n instance) 0 in
        Array.iteri
          (fun j _ ->
            let est = Instance.est instance j in
            let best = ref 0 and best_cost = ref infinity in
            for g = 0 to k - 1 do
              let cost = (loads.(g) +. est) /. group_speed.(g) in
              if cost < !best_cost then begin
                best := g;
                best_cost := cost
              end
            done;
            assignment.(j) <- !best;
            loads.(!best) <- loads.(!best) +. est)
          (Instance.tasks instance);
        Placement.of_group_assignment ~m ~groups assignment);
    phase2 =
      engine_phase2 ~speeds ~order:(fun inst ->
          Array.init (Instance.n inst) (fun j -> j));
  }
