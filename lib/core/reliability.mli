(** Reliability-targeted replication: solve for {e how much} to
    replicate, not just where.

    The paper fixes the replication degree [k] as an input; this family
    sizes each task's replica set against an explicit survival target
    instead, the way replicated storage systems pick [(N, K)] against a
    reliability threshold from per-node failure probabilities. Given a
    per-machine failure profile ({!Usched_model.Failure.t}, attached to
    the instance or the documented uniform default) and a target
    [T ∈ (0, 1)], the solver guarantees

    {v P(no task is stranded) >= T v}

    under the static independent-failure model — a task is stranded
    when every machine in its replica set fails. It splits the failure
    budget [1 - T] evenly over the [n] tasks (a union bound, so the
    guarantee is conservative) and solves each task greedily: primary on
    the least estimated-loaded machine (LPT order, the {!Budgeted}
    idiom, so makespans stay competitive), then the most reliable
    remaining machines until [P(all replicas lost) <= (1 - T) / n],
    accumulated in log space. Replication degrees therefore vary per
    task with the profile — reliable clusters get singletons, flaky
    ones replicate more — which is what the variable-degree engine
    plumbing ([Placement.degrees], [Recovery.Degree]) exists for.

    The memory-budget-constrained variant restricts every choice to
    machines with at least the task's size of headroom left under a
    per-machine budget [B], and raises {!Infeasible} when the target and
    the budget cannot both be met. *)

module Instance = Usched_model.Instance

exception Infeasible of string
(** The target cannot be met: every candidate machine is exhausted (all
    already hold the task, fail with probability 1, or lack memory
    headroom under the budget) while the task's loss probability still
    exceeds its share of the failure budget. *)

val per_task_bound : target:float -> n:int -> float
(** [(1 - target) / n]: the per-task loss-probability budget the union
    bound allots. Raises [Invalid_argument] unless [target ∈ (0, 1)]
    and [n >= 1]. *)

val placement : ?budget:float -> target:float -> Instance.t -> Placement.t
(** The greedy cheapest replica-set solve described above. Uses the
    instance's failure profile, or [Failure.default_p] uniformly when it
    has none. Raises [Invalid_argument] unless [target ∈ (0, 1)] (NaN
    rejected) and [budget], when given, is positive and finite; raises
    {!Infeasible} when the target is unreachable. *)

val algorithm : ?budget:float -> target:float -> unit -> Two_phase.t
(** {!placement} as phase 1 with the standard LPT-order phase 2. Named
    [Reliability(target=T)] / [Reliability(target=T, B=B)]. *)

val stranding_bound : Instance.t -> Placement.t -> float
(** The union bound [Σ_j P(all of M_j fail)] on the probability that
    some task strands, from the instance's (or default) profile —
    uncapped, so it can exceed 1 for hopeless placements. *)

val survival_bound : Instance.t -> Placement.t -> float
(** [max 0 (1 - stranding_bound)]: the analytic lower bound on
    [P(no stranded task)] that solver placements hold at [>= target]. *)
