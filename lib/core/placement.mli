(** Placements: the output of phase 1.

    A placement gives, for every task [j], the set of machines [M_j] whose
    local storage holds a replica of the task's input data. Phase 2 may
    execute a task only on a machine in its set. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Topology = Usched_model.Topology

type t

val of_sets : m:int -> Bitset.t array -> t
(** Wraps explicit machine sets. Raises [Invalid_argument] if any set is
    empty or has a capacity other than [m]. The array is copied (sets are
    shared). *)

val singletons : m:int -> int array -> t
(** From a phase-1 assignment: task [j] placed only on machine
    [assignment.(j)] (the [|M_j| = 1] regime). *)

val full : m:int -> n:int -> t
(** Every task on every machine (the [|M_j| = m] regime). *)

val of_group_assignment : m:int -> groups:int array array -> int array -> t
(** [of_group_assignment ~m ~groups assignment]: task [j] is replicated on
    all machines of [groups.(assignment.(j))] (the [|M_j| = m/k]
    regime). *)

val n : t -> int
val m : t -> int
val set : t -> int -> Bitset.t
(** The machine set of a task (shared, do not mutate). *)

val sets : t -> Bitset.t array
(** Fresh array of the (shared) per-task sets — the representation used
    by the desim engine. *)

val allowed : t -> task:int -> machine:int -> bool

val replication : t -> int -> int
(** [|M_j|] of a task. *)

val max_replication : t -> int
(** The paper's replication bound [k = max_j |M_j|]. *)

val degrees : t -> int array
(** Fresh array of per-task replication degrees [|M_j|] — the quantity
    the variable-degree engine plumbing (reliability solver placements,
    [Recovery.Degree] healing) works in. A uniform-degree placement has
    [degrees] constantly equal to {!max_replication}. *)

val total_replicas : t -> int
(** Sum over tasks of [|M_j|]: the global storage cost in replica count. *)

val memory_loads : t -> sizes:float array -> float array
(** [Mem_i = Σ_{j : i ∈ M_j} s_j] for every machine — each replica
    occupies memory on its machine (memory-aware model). *)

val memory_max : t -> sizes:float array -> float
(** [Mem_max = max_i Mem_i]. *)

val replication_costs : t -> topology:Topology.t -> sizes:float array -> float array
(** Per-task data-movement cost of realizing the placement: task [j]'s
    data is born on its home machine [j mod m] and must be staged onto
    every other machine of [M_j], paying
    [Topology.staging_time topology ~src:(j mod m) ~dst:i ~size:s_j] per
    replica. Intra-zone copies (and the home replica itself) cost [0],
    so every placement is free on the uniform topology. Raises
    [Invalid_argument] on a [sizes] length or topology machine-count
    mismatch. *)

val replication_cost : t -> topology:Topology.t -> sizes:float array -> float
(** Total transfer cost: sum of {!replication_costs} over all tasks —
    the x-axis of the replication-cost vs. robustness frontier. *)

val without_machine : t -> int -> t option
(** [without_machine t i] is the placement after machine [i] fails: [i]
    is removed from every task's machine set (the data on the lost disk
    is gone). [None] if some task kept its data only on [i] — the
    workload can no longer complete. The machine count is unchanged;
    the failed machine simply holds nothing. This is the fault-tolerance
    reading of replication from the paper's introduction (HDFS keeps
    replicas to survive exactly this event). *)

val without_machines : t -> int list -> t option
(** {!without_machine} generalized to a set of simultaneous failures:
    the surviving placement after every listed machine is lost, or
    [None] when some task's data lived only on lost machines. Raises
    [Invalid_argument] on out-of-range machine ids. *)

val with_replica : t -> task:int -> machine:int -> t
(** The placement after re-replication lands a copy of [task]'s data on
    [machine] — the static view of what the recovery engine's healer
    does mid-run. Returns [t] itself when the machine already holds the
    task; otherwise the changed set is replaced by a fresh copy (other
    tasks keep sharing their sets). Raises [Invalid_argument] on
    out-of-range ids. *)

val under_replicated : t -> r:int -> alive:Bitset.t -> int list
(** Tasks (ascending) with fewer than [r] live replica holders — the
    healer's work queue under re-replication target [r]. Raises
    [Invalid_argument] when [r < 0] or [alive] has the wrong
    capacity. *)

val machine_loads : t -> int array
(** Per-machine replica count [|{j : i ∈ M_j}|] — the uniform-size
    specialization of {!memory_loads}, and the load the healer's
    least-loaded destination choice minimizes. *)

val survivors : t -> task:int -> alive:Bitset.t -> int
(** Number of machines still holding a replica of [task] given the set
    of machines currently alive — the quantity the fault-injected
    phase-2 engine consults on every crash. Raises [Invalid_argument]
    if [alive] has the wrong capacity. *)

val min_replication : t -> int
(** [min_j |M_j|]: the weakest task's replica count, which bounds how
    many simultaneous crashes the workload is guaranteed to survive. *)

val survives_any_failure : t -> bool
(** Whether every single-machine failure leaves the workload completable
    (every task has at least two replicas, or [m = 1] trivially never
    survives). *)

val survives_failures : t -> f:int -> bool
(** Whether {e any} [f] simultaneous machine failures leave the workload
    completable: true iff [f < min_replication t] (and [f < m]). The
    [f = 1] case is {!survives_any_failure}. Raises [Invalid_argument]
    if [f < 0]. *)

val pp : Format.formatter -> t -> unit
