(** Placements: the output of phase 1.

    A placement gives, for every task [j], the set of machines [M_j] whose
    local storage holds a replica of the task's input data. Phase 2 may
    execute a task only on a machine in its set. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance

type t

val of_sets : m:int -> Bitset.t array -> t
(** Wraps explicit machine sets. Raises [Invalid_argument] if any set is
    empty or has a capacity other than [m]. The array is copied (sets are
    shared). *)

val singletons : m:int -> int array -> t
(** From a phase-1 assignment: task [j] placed only on machine
    [assignment.(j)] (the [|M_j| = 1] regime). *)

val full : m:int -> n:int -> t
(** Every task on every machine (the [|M_j| = m] regime). *)

val of_group_assignment : m:int -> groups:int array array -> int array -> t
(** [of_group_assignment ~m ~groups assignment]: task [j] is replicated on
    all machines of [groups.(assignment.(j))] (the [|M_j| = m/k]
    regime). *)

val n : t -> int
val m : t -> int
val set : t -> int -> Bitset.t
(** The machine set of a task (shared, do not mutate). *)

val sets : t -> Bitset.t array
(** Fresh array of the (shared) per-task sets — the representation used
    by the desim engine. *)

val allowed : t -> task:int -> machine:int -> bool

val replication : t -> int -> int
(** [|M_j|] of a task. *)

val max_replication : t -> int
(** The paper's replication bound [k = max_j |M_j|]. *)

val total_replicas : t -> int
(** Sum over tasks of [|M_j|]: the global storage cost in replica count. *)

val memory_loads : t -> sizes:float array -> float array
(** [Mem_i = Σ_{j : i ∈ M_j} s_j] for every machine — each replica
    occupies memory on its machine (memory-aware model). *)

val memory_max : t -> sizes:float array -> float
(** [Mem_max = max_i Mem_i]. *)

val without_machine : t -> int -> t option
(** [without_machine t i] is the placement after machine [i] fails: [i]
    is removed from every task's machine set (the data on the lost disk
    is gone). [None] if some task kept its data only on [i] — the
    workload can no longer complete. The machine count is unchanged;
    the failed machine simply holds nothing. This is the fault-tolerance
    reading of replication from the paper's introduction (HDFS keeps
    replicas to survive exactly this event). *)

val survives_any_failure : t -> bool
(** Whether every single-machine failure leaves the workload completable
    (every task has at least two replicas, or [m = 1] trivially never
    survives). *)

val pp : Format.formatter -> t -> unit
