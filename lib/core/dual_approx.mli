(** Dual approximation scheme for makespan (Hochbaum & Shmoys 1987).

    The paper cites the existence of an "arbitrarily good approximation
    algorithm ... with a dual approximation algorithm" for the offline
    problem; this module implements it. For any [epsilon > 0] it returns
    a schedule within [(1+epsilon)] of the optimal makespan:

    - binary-search a target makespan [t];
    - jobs larger than [epsilon*t] ("big") are rounded down to multiples
      of [epsilon^2*t], leaving at most [~1/epsilon^2] distinct sizes and
      at most [1/epsilon] big jobs per machine; the rounded big jobs are
      packed exactly into bins of capacity [t] by a memoized
      bin-completion search over size-class configurations;
    - small jobs are added greedily to any machine below [t].

    If the procedure fails at target [t], then [OPT > t] (a {e dual}
    certificate); if it succeeds, every load is at most [(1+epsilon)*t].
    The search therefore converges to a schedule of makespan at most
    [(1+epsilon)*OPT] (up to binary-search precision).

    Complexity is polynomial for fixed [epsilon] but grows steeply as
    [epsilon] shrinks; intended for [epsilon >= 0.2] and a few hundred
    jobs, where it beats MULTIFIT's 13/11 guarantee. *)

type result = {
  assignment : Assign.result;
  target : float;  (** Final accepted target [t]. *)
  epsilon : float;
}

val schedule : ?epsilon:float -> ?search_steps:int -> m:int -> float array -> result
(** [schedule ~epsilon ~m p] runs the full scheme (default
    [epsilon = 1/3], 40 binary-search steps). Raises [Invalid_argument]
    if [m < 1], a time is negative, or [epsilon] is outside (0, 1]. *)

val makespan : ?epsilon:float -> ?search_steps:int -> m:int -> float array -> float
(** Makespan of {!schedule} — at most [(1+epsilon)·OPT]. *)

val feasible_at : epsilon:float -> t:float -> m:int -> float array -> Assign.result option
(** One dual test at target [t]: [Some assignment] with every load at
    most [(1+epsilon)·t], or [None] certifying [OPT > t]. Exposed for
    tests and for callers that already know a target. *)
