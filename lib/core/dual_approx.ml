type result = {
  assignment : Assign.result;
  target : float;
  epsilon : float;
}

(* ------------------------------------------------------------------ *)
(* The dual test at a fixed target t.                                  *)
(* ------------------------------------------------------------------ *)

(* Pack the big jobs (rounded to size classes) into at most [m] bins of
   capacity [t] with a memoized minimum-bin search. Returns the list of
   bins, each a list of class indices, or None if more than [m] bins are
   needed. *)
let pack_big_classes ~m ~t ~class_sizes counts =
  let n_classes = Array.length class_sizes in
  let key state = String.concat "," (List.map string_of_int (Array.to_list state)) in
  (* memo: state -> (bins needed, config used for the first bin) *)
  let memo : (string, int * int array option) Hashtbl.t = Hashtbl.create 256 in
  let eps_cap = 1e-9 *. t in
  (* Budget on distinct states: beyond it the test gives up and reports
     infeasible, degrading the overall guarantee gracefully toward the
     LPT incumbent instead of hanging on adversarial inputs. *)
  let state_budget = 200_000 in
  let exception Budget in
  let rec min_bins state =
    if Array.for_all (fun c -> c = 0) state then (0, None)
    else begin
      let k = key state in
      match Hashtbl.find_opt memo k with
      | Some cached -> cached
      | None ->
          let best = ref (max_int, None) in
          let config = Array.make n_classes 0 in
          (* DFS over one bin's content, classes in increasing index to
             avoid permutations; [from] is the smallest class allowed. *)
          let rec fill from capacity any_added =
            (* Maximality pruning: only recurse on the remainder when no
               further item fits (a fuller bin never increases the
               optimal bin count, by monotonicity of min_bins). *)
            let can_extend = ref false in
            for c = from to n_classes - 1 do
              if state.(c) - config.(c) > 0 && class_sizes.(c) <= capacity +. eps_cap
              then can_extend := true
            done;
            if (not !can_extend) && any_added then begin
              let remaining =
                Array.init n_classes (fun c -> state.(c) - config.(c))
              in
              let sub, _ = min_bins remaining in
              if sub <> max_int && sub + 1 < fst !best then
                best := (sub + 1, Some (Array.copy config))
            end
            else
              for c = from to n_classes - 1 do
                if state.(c) - config.(c) > 0
                   && class_sizes.(c) <= capacity +. eps_cap
                then begin
                  config.(c) <- config.(c) + 1;
                  fill c (capacity -. class_sizes.(c)) true;
                  config.(c) <- config.(c) - 1
                end
              done
          in
          fill 0 t false;
          (* Bound the search: more bins than m is as good as failure. *)
          let result = if fst !best > m then (max_int, None) else !best in
          if Hashtbl.length memo >= state_budget then raise Budget;
          Hashtbl.add memo k result;
          result
    end
  in
  let initial = Array.copy counts in
  let bins_needed, _ = try min_bins initial with Budget -> (max_int, None) in
  if bins_needed = max_int || bins_needed > m then None
  else begin
    (* Reconstruct bin contents by following the memoized choices. *)
    let bins = ref [] in
    let state = Array.copy counts in
    let continue = ref (not (Array.for_all (fun c -> c = 0) state)) in
    while !continue do
      match min_bins (Array.copy state) with
      | _, Some config ->
          bins := config :: !bins;
          Array.iteri (fun c used -> state.(c) <- state.(c) - used) config;
          if Array.for_all (fun c -> c = 0) state then continue := false
      | _, None -> continue := false
    done;
    Some !bins
  end

let feasible_at ~epsilon ~t ~m p =
  let n = Array.length p in
  if Array.exists (fun x -> x > t *. (1.0 +. 1e-12)) p then None
  else begin
    let threshold = epsilon *. t in
    let quantum = epsilon *. epsilon *. t in
    let big = ref [] and small = ref [] in
    Array.iteri
      (fun j x -> if x > threshold then big := j :: !big else small := j :: !small)
      p;
    let big = Array.of_list (List.rev !big) in
    (* Class of a big job: floor(p / quantum); its rounded size is
       class * quantum <= p. Map classes to a dense index range. *)
    let class_of j = int_of_float (floor (p.(j) /. quantum)) in
    let class_table = Hashtbl.create 32 in
    Array.iter
      (fun j ->
        let c = class_of j in
        let members =
          match Hashtbl.find_opt class_table c with Some l -> l | None -> []
        in
        Hashtbl.replace class_table c (j :: members))
      big;
    let classes =
      List.sort Int.compare
        (Hashtbl.fold (fun c _ acc -> c :: acc) class_table [])
    in
    let class_sizes =
      Array.of_list (List.map (fun c -> float_of_int c *. quantum) classes)
    in
    let counts =
      Array.of_list
        (List.map (fun c -> List.length (Hashtbl.find class_table c)) classes)
    in
    let members =
      Array.of_list (List.map (fun c -> ref (Hashtbl.find class_table c)) classes)
    in
    match
      if Array.length big = 0 then Some []
      else pack_big_classes ~m ~t ~class_sizes counts
    with
    | None -> None
    | Some bins ->
        let assignment = Array.make n 0 in
        let loads = Array.make m 0.0 in
        List.iteri
          (fun machine config ->
            Array.iteri
              (fun c used ->
                for _ = 1 to used do
                  match !(members.(c)) with
                  | j :: rest ->
                      members.(c) := rest;
                      assignment.(j) <- machine;
                      loads.(machine) <- loads.(machine) +. p.(j)
                  | [] -> assert false
                done)
              config)
          bins;
        (* Greedily place small jobs on any machine still below t; if no
           machine is below t while jobs remain, total work exceeds m*t,
           certifying OPT > t. *)
        let exception Overfull in
        (try
           List.iter
             (fun j ->
               (* Least-loaded machine keeps the final loads balanced. *)
               let target_machine = ref (-1) in
               for i = 0 to m - 1 do
                 if loads.(i) < t
                    && (!target_machine < 0
                       || loads.(i) < loads.(!target_machine))
                 then target_machine := i
               done;
               if !target_machine < 0 then raise Overfull;
               assignment.(j) <- !target_machine;
               loads.(!target_machine) <- loads.(!target_machine) +. p.(j))
             (List.rev !small);
           ()
         with Overfull -> raise Not_found);
        Some { Assign.assignment; loads }
  end

let feasible_at ~epsilon ~t ~m p =
  try feasible_at ~epsilon ~t ~m p with Not_found -> None

(* ------------------------------------------------------------------ *)
(* Binary search over targets.                                        *)
(* ------------------------------------------------------------------ *)

let schedule ?(epsilon = 1.0 /. 3.0) ?(search_steps = 40) ~m p =
  if m < 1 then invalid_arg "Dual_approx: m must be >= 1";
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Dual_approx: negative time") p;
  if not (epsilon > 0.0 && epsilon <= 1.0) then
    invalid_arg "Dual_approx: epsilon must be in (0, 1]";
  if Array.length p = 0 then
    {
      assignment = { Assign.assignment = [||]; loads = Array.make m 0.0 };
      target = 0.0;
      epsilon;
    }
  else begin
    let lpt = Assign.lpt ~m ~weights:p in
    let lo = ref (Float.max 1e-300 (Lower_bounds.best ~m p)) in
    let hi = ref (Assign.makespan lpt) in
    (* The LPT makespan is always a feasible target (LPT witnesses it).
       Keep whichever feasible assignment has the smallest realized
       makespan — a successful probe guarantees only (1+eps)*t, which
       near the end of the search can exceed an earlier incumbent. *)
    let best = ref (lpt, !hi) in
    let consider assignment target =
      if Assign.makespan assignment < Assign.makespan (fst !best) then
        best := (assignment, target)
    in
    for _ = 1 to search_steps do
      let t = 0.5 *. (!lo +. !hi) in
      match feasible_at ~epsilon ~t ~m p with
      | Some assignment ->
          consider assignment t;
          hi := t
      | None -> lo := t
    done;
    let assignment, target = !best in
    { assignment; target; epsilon }
  end

let makespan ?epsilon ?search_steps ~m p =
  Assign.makespan (schedule ?epsilon ?search_steps ~m p).assignment
