module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Topology = Usched_model.Topology

type t = { m : int; sets : Bitset.t array }

let of_sets ~m sets =
  Array.iteri
    (fun j set ->
      if Bitset.capacity set <> m then
        invalid_arg
          (Printf.sprintf "Placement.of_sets: task %d capacity mismatch" j);
      if Bitset.is_empty set then
        invalid_arg (Printf.sprintf "Placement.of_sets: task %d placed nowhere" j))
    sets;
  { m; sets = Array.copy sets }

let singletons ~m assignment =
  of_sets ~m (Array.map (fun i -> Bitset.singleton m i) assignment)

let full ~m ~n = of_sets ~m (Array.init n (fun _ -> Bitset.full m))

let of_group_assignment ~m ~groups assignment =
  let group_sets =
    Array.map (fun machines -> Bitset.of_list m (Array.to_list machines)) groups
  in
  of_sets ~m (Array.map (fun g -> group_sets.(g)) assignment)

let n t = Array.length t.sets
let m t = t.m
let set t j = t.sets.(j)
let sets t = Array.copy t.sets
let allowed t ~task ~machine = Bitset.mem t.sets.(task) machine
let replication t j = Bitset.cardinal t.sets.(j)

let max_replication t =
  Array.fold_left (fun acc set -> Stdlib.max acc (Bitset.cardinal set)) 0 t.sets

let degrees t = Array.map Bitset.cardinal t.sets

let total_replicas t =
  Array.fold_left (fun acc set -> acc + Bitset.cardinal set) 0 t.sets

let memory_loads t ~sizes =
  if Array.length sizes <> Array.length t.sets then
    invalid_arg "Placement.memory_loads: sizes length mismatch";
  let loads = Array.make t.m 0.0 in
  Array.iteri
    (fun j set ->
      Bitset.iter (fun i -> loads.(i) <- loads.(i) +. sizes.(j)) set)
    t.sets;
  loads

let memory_max t ~sizes =
  Array.fold_left Float.max 0.0 (memory_loads t ~sizes)

let replication_costs t ~topology ~sizes =
  if Array.length sizes <> Array.length t.sets then
    invalid_arg "Placement.replication_costs: sizes length mismatch";
  if Topology.m topology <> t.m then
    invalid_arg
      (Printf.sprintf
         "Placement.replication_costs: topology covers %d machines, placement \
          has %d"
         (Topology.m topology) t.m);
  Array.mapi
    (fun j set ->
      let home = j mod t.m in
      let acc = Array.make 1 0.0 in
      Bitset.iter
        (fun i ->
          acc.(0) <-
            acc.(0) +. Topology.staging_time topology ~src:home ~dst:i
                         ~size:sizes.(j))
        set;
      acc.(0))
    t.sets

let replication_cost t ~topology ~sizes =
  Array.fold_left ( +. ) 0.0 (replication_costs t ~topology ~sizes)

let without_machines t lost =
  List.iter
    (fun i ->
      if i < 0 || i >= t.m then
        invalid_arg "Placement.without_machines: machine id")
    lost;
  let exception Lost in
  try
    let sets =
      Array.map
        (fun set ->
          let set = Bitset.copy set in
          List.iter (Bitset.remove set) lost;
          if Bitset.is_empty set then raise Lost;
          set)
        t.sets
    in
    Some { m = t.m; sets }
  with Lost -> None

let without_machine t i =
  if i < 0 || i >= t.m then invalid_arg "Placement.without_machine: machine id";
  without_machines t [ i ]

let with_replica t ~task ~machine =
  if task < 0 || task >= Array.length t.sets then
    invalid_arg "Placement.with_replica: task id";
  if machine < 0 || machine >= t.m then
    invalid_arg "Placement.with_replica: machine id";
  if Bitset.mem t.sets.(task) machine then t
  else begin
    let sets = Array.copy t.sets in
    let set = Bitset.copy sets.(task) in
    Bitset.add set machine;
    sets.(task) <- set;
    { m = t.m; sets }
  end

let under_replicated t ~r ~alive =
  if r < 0 then invalid_arg "Placement.under_replicated: r < 0";
  if Bitset.capacity alive <> t.m then
    invalid_arg "Placement.under_replicated: alive set capacity mismatch";
  let acc = ref [] in
  for j = Array.length t.sets - 1 downto 0 do
    if Bitset.cardinal (Bitset.inter t.sets.(j) alive) < r then acc := j :: !acc
  done;
  !acc

let machine_loads t =
  let loads = Array.make t.m 0 in
  Array.iter (Bitset.iter (fun i -> loads.(i) <- loads.(i) + 1)) t.sets;
  loads

let survivors t ~task ~alive =
  if Bitset.capacity alive <> t.m then
    invalid_arg "Placement.survivors: alive set capacity mismatch";
  Bitset.cardinal (Bitset.inter t.sets.(task) alive)

let min_replication t =
  Array.fold_left
    (fun acc set -> Stdlib.min acc (Bitset.cardinal set))
    t.m t.sets

let survives_failures t ~f =
  if f < 0 then invalid_arg "Placement.survives_failures: f < 0";
  f < min_replication t && f < t.m

let survives_any_failure t = survives_failures t ~f:1

let pp ppf t =
  Format.fprintf ppf "placement(n=%d, m=%d, max_replication=%d)" (n t) t.m
    (max_replication t)
