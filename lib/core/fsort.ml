(* In-place descending heapsort specialized to float arrays.

   [Array.sort] with a [fun a b -> Float.compare b a] comparator boxes
   both floats at every comparison (the closure call is a generic
   two-argument application); on the million-task instances phase 1
   sorts, that is tens of megabytes of minor garbage per sort. The
   specialized sift loop below compares unboxed array reads directly
   and allocates nothing.

   A *min*-heap extracting to the back of the array yields descending
   order. [Float.compare] (not [<]) keeps the order total: NaNs sort
   below every number, exactly where the generic comparator put them,
   so callers see bit-for-bit the array [Array.sort] would have
   produced (equal floats are indistinguishable, so instability is
   unobservable). *)

let rec sift_down a size i =
  let l = (2 * i) + 1 in
  if l < size then begin
    let r = l + 1 in
    let c = if r < size && Float.compare a.(r) a.(l) < 0 then r else l in
    if Float.compare a.(c) a.(i) < 0 then begin
      let t = a.(i) in
      a.(i) <- a.(c);
      a.(c) <- t;
      sift_down a size c
    end
  end

let descending a =
  let n = Array.length a in
  for i = (n / 2) - 1 downto 0 do
    sift_down a n i
  done;
  for last = n - 1 downto 1 do
    let t = a.(0) in
    a.(0) <- a.(last);
    a.(last) <- t;
    sift_down a last 0
  done
