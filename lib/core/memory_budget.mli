(** Replication under a hard per-machine memory capacity.

    The memory-aware section of the paper treats [Mem_max] as an
    objective; real systems more often have a hard per-machine budget.
    This module turns the paper's insight around: start from an
    unreplicated LPT placement (repaired to fit the budget if needed),
    then spend whatever memory headroom remains on replicas of the most
    processing-time-critical tasks, largest first, round-robin, until no
    replica fits. The result interpolates between LPT-No Choice (tight
    budget) and LPT-No Restriction (ample budget), with [Mem_i <= budget]
    guaranteed on every machine. *)

module Instance = Usched_model.Instance

exception Infeasible of string
(** Raised when even an unreplicated placement cannot fit: a single task
    larger than the budget, or total size above [m * budget]. *)

val placement : budget:float -> Instance.t -> Placement.t
(** Greedy budget-constrained placement. Raises {!Infeasible} when no
    replica-free placement fits, [Invalid_argument] if [budget <= 0]. *)

val algorithm : budget:float -> Two_phase.t
(** Two-phase algorithm over {!placement}, online LPT in phase 2. *)

val max_memory_load : Instance.t -> Placement.t -> float
(** Convenience re-export of the placement's memory high-water mark. *)
