module Instance = Usched_model.Instance

let machine_groups ~m ~k =
  if k < 1 || k > m then invalid_arg "Group_replication: need 1 <= k <= m";
  let base = m / k and extra = m mod k in
  let start = ref 0 in
  Array.init k (fun g ->
      let count = base + if g < extra then 1 else 0 in
      let machines = Array.init count (fun i -> !start + i) in
      start := !start + count;
      machines)

let group_assignment ~order ~k instance =
  let m = Instance.m instance in
  let groups = machine_groups ~m ~k in
  let counts = Array.map Array.length groups in
  let weights = Instance.ests instance in
  let task_order =
    match order with
    | `Submission -> Array.init (Instance.n instance) (fun j -> j)
    | `Lpt -> Instance.lpt_order instance
  in
  let loads = Array.make k 0.0 in
  let assignment = Array.make (Instance.n instance) 0 in
  (* Greedy: place on the group whose per-machine load after placement is
     smallest. With k | m all groups have equal size and this is exactly
     the paper's List Scheduling over groups. *)
  Array.iter
    (fun j ->
      let best = ref 0 in
      let best_cost = ref infinity in
      for g = 0 to k - 1 do
        let cost = (loads.(g) +. weights.(j)) /. float_of_int counts.(g) in
        if cost < !best_cost then begin
          best := g;
          best_cost := cost
        end
      done;
      assignment.(j) <- !best;
      loads.(!best) <- loads.(!best) +. weights.(j))
    task_order;
  assignment

let phase1 ~order ~k instance =
  let m = Instance.m instance in
  let groups = machine_groups ~m ~k in
  let assignment = group_assignment ~order ~k instance in
  Placement.of_group_assignment ~m ~groups assignment

let ls_group ~k =
  {
    Two_phase.name = Printf.sprintf "LS-Group(k=%d)" k;
    phase1 = phase1 ~order:`Submission ~k;
    phase2 = Two_phase.submission_order_phase2;
  }

let lpt_group ~k =
  {
    Two_phase.name = Printf.sprintf "LPT-Group(k=%d)" k;
    phase1 = phase1 ~order:`Lpt ~k;
    phase2 = Two_phase.lpt_order_phase2;
  }
