(** The SBO_Δ split (from the paper's reference [IPDPS 2008]).

    SBO_Δ combines a makespan-approximated schedule [π1] and a
    memory-approximated schedule [π2]: a task follows [π2] when its
    processing-time demand (relative to [π1]'s makespan) is at most [Δ]
    times its memory demand (relative to [π2]'s memory), and follows [π1]
    otherwise. Both SABO_Δ and ABO_Δ reuse this classification of tasks
    into the time-intensive set [S1] and the memory-intensive set [S2]. *)

module Instance = Usched_model.Instance

type split = {
  delta : float;
  time_intensive : bool array;  (** [true] = task in [S1] (follows π1). *)
  pi1 : Assign.result;
  pi2 : Assign.result;
  c_pi1 : float;  (** Estimated makespan of π1 ([C̃^π1_max]). *)
  mem_pi2 : float;  (** Memory of the most occupied machine under π2. *)
}

val split : delta:float -> Instance.t -> split
(** Classify every task. A task [j] joins [S2] iff
    [p̃_j / C̃^π1 <= Δ · s_j / Mem^π2]. If every task has zero size the
    memory objective is trivial and everything joins [S1]. Raises
    [Invalid_argument] if [delta <= 0]. *)

val assignment : split -> int array
(** The combined SBO_Δ assignment: [π2]'s machine for [S2] tasks, [π1]'s
    machine for [S1] tasks. *)

val s1_tasks : split -> int list
val s2_tasks : split -> int list
