(** The SABO_Δ algorithm (static asymmetric bi-objective, Section 6.1).

    Phase 1 applies the {!Sbo} split and pins every task to the machine
    its side of the split dictates — no replication. Phase 2 executes the
    static assignment. Guarantees (Theorems 5-6):
    [(1+Δ)·α²·ρ1] on makespan and [(1+1/Δ)·ρ2] on memory. *)

module Instance = Usched_model.Instance

val algorithm : delta:float -> Two_phase.t
(** The two-phase SABO_Δ algorithm. *)

val placement : delta:float -> Instance.t -> Placement.t
(** Its phase-1 placement (singletons), exposed for memory accounting. *)

val split : delta:float -> Instance.t -> Sbo.split
(** The underlying SBO split (same as {!Sbo.split}). *)
