(* for-loops throughout, not [Array.iter]/[fold_left]: the generic
   combinators box every float element they hand to the closure, and
   these run over million-task arrays inside the multifit bisection. *)
let check m (p : float array) =
  if m < 1 then invalid_arg "Lower_bounds: m must be >= 1";
  for k = 0 to Array.length p - 1 do
    if p.(k) < 0.0 then invalid_arg "Lower_bounds: negative time"
  done

let average ~m (p : float array) =
  check m p;
  let sum = Array.make 1 0.0 in
  for k = 0 to Array.length p - 1 do
    sum.(0) <- sum.(0) +. p.(k)
  done;
  sum.(0) /. float_of_int m

let largest (p : float array) =
  let best = Array.make 1 0.0 in
  for k = 0 to Array.length p - 1 do
    if p.(k) > best.(0) then best.(0) <- p.(k)
  done;
  best.(0)

let packing ~m p =
  check m p;
  let n = Array.length p in
  if n <= m then 0.0
  else begin
    let sorted = Array.copy p in
    Fsort.descending sorted;
    (* prefix.(i) = sum of the i largest tasks. *)
    let prefix = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) +. sorted.(i)
    done;
    let bound = ref 0.0 in
    let k = ref 1 in
    while (!k * m) + 1 <= n do
      let top = (!k * m) + 1 in
      (* Sum of the (k+1) smallest among the top largest. *)
      let candidate = prefix.(top) -. prefix.(top - (!k + 1)) in
      if candidate > !bound then bound := candidate;
      incr k
    done;
    !bound
  end

let best ~m p =
  check m p;
  Float.max (average ~m p) (Float.max (largest p) (packing ~m p))

(* Staging-aware bound: before any copy of task [j] can start, the
   machine running it must hold the data, so the schedule pays at least
   the cheapest staging from the home machine [j mod m] to some holder
   on top of [p_j]. Inflating each task by that unavoidable minimum
   keeps all three bounds valid (staging occupies the machine exactly
   like processing does). On the uniform topology every staging time is
   0 and this collapses to [best]. *)
let staged ~topology ~sizes ~sets ~m (p : float array) =
  check m p;
  let n = Array.length p in
  if Array.length sizes <> n then
    invalid_arg "Lower_bounds.staged: sizes length mismatch";
  if Array.length sets <> n then
    invalid_arg "Lower_bounds.staged: sets length mismatch";
  if Usched_model.Topology.m topology <> m then
    invalid_arg "Lower_bounds.staged: topology machine count mismatch";
  let inflated = Array.make n 0.0 in
  for j = 0 to n - 1 do
    let cheapest = Array.make 1 infinity in
    Usched_model.Bitset.iter
      (fun i ->
        let s =
          Usched_model.Topology.staging_time topology ~src:(j mod m) ~dst:i
            ~size:sizes.(j)
        in
        if s < cheapest.(0) then cheapest.(0) <- s)
      sets.(j);
    let extra = if cheapest.(0) = infinity then 0.0 else cheapest.(0) in
    inflated.(j) <- p.(j) +. extra
  done;
  best ~m inflated
