let check m p =
  if m < 1 then invalid_arg "Lower_bounds: m must be >= 1";
  Array.iter
    (fun x -> if x < 0.0 then invalid_arg "Lower_bounds: negative time")
    p

let average ~m p =
  check m p;
  Array.fold_left ( +. ) 0.0 p /. float_of_int m

let largest p = Array.fold_left Float.max 0.0 p

let packing ~m p =
  check m p;
  let n = Array.length p in
  if n <= m then 0.0
  else begin
    let sorted = Array.copy p in
    Array.sort (fun a b -> Float.compare b a) sorted;
    (* prefix.(i) = sum of the i largest tasks. *)
    let prefix = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) +. sorted.(i)
    done;
    let bound = ref 0.0 in
    let k = ref 1 in
    while (!k * m) + 1 <= n do
      let top = (!k * m) + 1 in
      (* Sum of the (k+1) smallest among the top largest. *)
      let candidate = prefix.(top) -. prefix.(top - (!k + 1)) in
      if candidate > !bound then bound := candidate;
      incr k
    done;
    !bound
  end

let best ~m p =
  check m p;
  Float.max (average ~m p) (Float.max (largest p) (packing ~m p))
