(** Robustness measures for two-phase algorithms.

    The related-work section contrasts the paper's worst-case analysis
    with sensitivity-based robustness metrics (Canon & Jeannot). This
    module provides those complementary measures so experiments can
    report both: how much a fixed placement's makespan degrades across
    sampled realizations, relative to (a) the undisturbed run and (b)
    the clairvoyant optimum of each realization. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type profile = {
  degradation : Usched_stats.Summary.t;
      (** [C_max(realization) / C_max(estimates exact)] across samples —
          sensitivity of the committed placement to perturbations. *)
  ratio : Usched_stats.Summary.t;
      (** [C_max(realization) / LB(realization)] across samples — an
          upper bound on the per-realization competitive ratio. *)
  worst_ratio : float;
}

val profile :
  ?samples:int ->
  realize:(Instance.t -> Usched_prng.Rng.t -> Realization.t) ->
  rng:Usched_prng.Rng.t ->
  Two_phase.t ->
  Instance.t ->
  profile
(** [profile ~samples ~realize ~rng algo instance] commits phase 1 once
    and replays phase 2 against [samples] sampled realizations (default
    100). *)

val price_of_robustness :
  ?samples:int ->
  realize:(Instance.t -> Usched_prng.Rng.t -> Realization.t) ->
  rng:Usched_prng.Rng.t ->
  baseline:Two_phase.t ->
  Two_phase.t ->
  Instance.t ->
  float
(** Mean ratio between the algorithm's and the baseline's makespans over
    shared realizations: below 1 means the algorithm is more robust than
    the baseline on this instance. Both algorithms see the exact same
    realization sequence. *)
