module Instance = Usched_model.Instance
module Bitset = Usched_model.Bitset

let placement ~count instance =
  let m = Instance.m instance and n = Instance.n instance in
  let count = Stdlib.max 0 (Stdlib.min n count) in
  let order = Instance.lpt_order instance in
  let replicated = Array.make n false in
  for rank = 0 to count - 1 do
    replicated.(order.(rank)) <- true
  done;
  let lpt = No_replication.lpt_assignment instance in
  let sets =
    Array.init n (fun j ->
        if replicated.(j) then Bitset.full m
        else Bitset.singleton m lpt.Assign.assignment.(j))
  in
  Placement.of_sets ~m sets

let algorithm ~count =
  {
    Two_phase.name = Printf.sprintf "Selective(top=%d)" count;
    phase1 = (fun instance -> placement ~count instance);
    phase2 = Two_phase.lpt_order_phase2;
  }
