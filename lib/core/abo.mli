(** The ABO_Δ algorithm (asymmetric bi-objective, Section 6.2).

    Phase 1 applies the {!Sbo} split: memory-intensive tasks ([S2]) are
    pinned to their [π2] machine, while processing-time-intensive tasks
    ([S1]) are replicated on {e every} machine. Phase 2 loads the [S2]
    tasks first, then dispatches the replicated [S1] tasks with Graham's
    online List Scheduling as machines drain their pinned work.
    Guarantees (Theorems 7-8): [2 - 1/m + Δ·α²·ρ1] on makespan and
    [(1 + m/Δ)·ρ2] on memory. *)

module Instance = Usched_model.Instance

val algorithm : delta:float -> Two_phase.t
(** The two-phase ABO_Δ algorithm. *)

val placement : delta:float -> Instance.t -> Placement.t
(** Its phase-1 placement: singleton sets for [S2], full sets for [S1]. *)

val phase2_order : Sbo.split -> int array
(** The phase-2 priority order: all [S2] tasks (in id order), then all
    [S1] tasks (in id order, Graham's list). *)
