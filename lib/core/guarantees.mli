(** Closed-form guarantees of the paper, as executable formulas.

    Each function evaluates one theorem's competitive/approximation ratio.
    These drive the regeneration of Table 1, Table 2, Figure 3 and
    Figure 6, and the test suite checks every measured schedule against
    them.

    All [alpha] arguments are plain floats [>= 1]; all functions raise
    [Invalid_argument] on out-of-domain parameters. *)

(** {1 The replication bound model (Sections 4-5)} *)

val no_replication_lower_bound : m:int -> alpha:float -> float
(** Theorem 1: no online algorithm with [|M_j| = 1] beats
    [α²m / (α² + m - 1)]. *)

val no_replication_lower_bound_limit : alpha:float -> float
(** Corollary 1: the [m → ∞] limit, [α²]. *)

val lpt_no_choice : m:int -> alpha:float -> float
(** Theorem 2: LPT-No Choice is [2α²m / (2α² + m - 1)]-competitive. *)

val lpt_no_restriction : m:int -> alpha:float -> float
(** Theorem 3: LPT-No Restriction is
    [1 + ((m-1)/m)·α²/2]-competitive. *)

val list_scheduling : m:int -> float
(** Graham's bound [2 - 1/m] (valid regardless of estimates, since list
    scheduling never idles a machine with eligible work). *)

val full_replication : m:int -> alpha:float -> float
(** Best of {!lpt_no_restriction} and {!list_scheduling}, as discussed
    after Theorem 3: [min(1 + (m-1)/m·α²/2, 2 - 1/m)]. *)

val ls_group : m:int -> k:int -> alpha:float -> float
(** Theorem 4: LS-Group with [k] groups is
    [kα²/(α²+k-1) · (1 + (k-1)/m) + (m-k)/m]-competitive. Requires
    [1 <= k <= m]. *)

val replication_of_groups : m:int -> k:int -> int
(** [m/k], the number of replicas per task under LS-Group — the x axis of
    Figure 3. Requires [k] divides [m]. *)

(** {1 Classical offline baselines (Section 2 of Related Work)} *)

val lpt_offline : m:int -> float
(** Graham 1969: [4/3 - 1/(3m)] for LPT with exact processing times. *)

val multifit : iterations:int -> float
(** Coffman-Garey-Johnson: [13/11 + 2^-iterations] for MULTIFIT. *)

(** {1 The memory-aware model (Section 6)} *)

val sabo_makespan : alpha:float -> delta:float -> rho1:float -> float
(** Theorem 5: SABO_Δ is [(1+Δ)·α²·ρ1]-approximate on makespan. *)

val sabo_memory : delta:float -> rho2:float -> float
(** Theorem 6: SABO_Δ is [(1+1/Δ)·ρ2]-approximate on memory. *)

val abo_makespan : m:int -> alpha:float -> delta:float -> rho1:float -> float
(** Theorem 7: ABO_Δ is [(2 - 1/m + Δ·α²·ρ1)]-approximate on makespan. *)

val abo_memory : m:int -> delta:float -> rho2:float -> float
(** Theorem 8: ABO_Δ is [(1 + m/Δ)·ρ2]-approximate on memory. *)

(** {1 Staging-aware bounds (topology extension)}

    When the instance carries a topology, a machine pays a staging time
    before its first copy of a task may start. Staging occupies the
    machine like processing, so a ratio-[ρ] list bound degrades to the
    additive form [ρ·C* + s_max], where [s_max] bounds any single
    task's staging (e.g. the largest entry the placement's cheapest
    holder admits). Both functions return an {e absolute} makespan
    bound, not a ratio; with [s_max = 0] (uniform topology) they are
    exactly [ρ·opt]. Raise [Invalid_argument] when [s_max] or [opt] is
    NaN, infinite, or negative. *)

val list_scheduling_staged : m:int -> s_max:float -> opt:float -> float
(** [(2 - 1/m)·opt + s_max]. *)

val full_replication_staged :
  m:int -> alpha:float -> s_max:float -> opt:float -> float
(** [{!full_replication}·opt + s_max]. *)

val tradeoff_impossibility : makespan_ratio:float -> float
(** The bold impossibility line of Figure 6: an algorithm that combines a
    makespan-optimal and a memory-optimal schedule and guarantees a
    makespan ratio [x > 1] cannot guarantee a memory ratio below
    [1 + 1/(x - 1)] (the tightness hyperbola of SBO_Δ, discussed in the
    paper via its reference [IPDPS 2008]). Requires [x > 1]. *)

val abo_beats_sabo_on_makespan : alpha:float -> rho1:float -> bool
(** The paper's selection rule: for [α·ρ1 >= 2], ABO_Δ always has the
    better makespan guarantee. *)
