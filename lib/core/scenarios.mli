(** Scenario-based robust selection (related-work bridge).

    The robust-scheduling literature the paper builds on (Daniels &
    Kouvelis; Canon & Jeannot) structures uncertainty as a finite set of
    {e scenarios}. This module provides that complementary machinery on
    top of the two-phase framework: sample a scenario set once, evaluate
    any algorithm's committed placement against every scenario, and pick
    from a portfolio of algorithms the one with the best worst-case (or
    best average) makespan over the set.

    This is decision support, not a new guarantee: the paper's theorems
    bound all realizations; scenario selection tunes the knobs (k, Δ,
    replication counts) for the realizations one actually expects. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization

type t = Realization.t list
(** A non-empty scenario set over one instance. *)

val sample :
  count:int ->
  realize:(Instance.t -> Usched_prng.Rng.t -> Realization.t) ->
  rng:Usched_prng.Rng.t ->
  Instance.t ->
  t
(** [count] independent scenario draws. Raises [Invalid_argument] if
    [count < 1]. *)

type evaluation = {
  algorithm : Two_phase.t;
  worst : float;  (** Worst makespan over the set. *)
  mean : float;
  per_scenario : float array;
}

val evaluate : ?domains:int -> Two_phase.t -> Instance.t -> t -> evaluation
(** Commit phase 1 once, replay phase 2 on every scenario. [domains]
    (default 1) shards the scenario replays over that many domains; the
    evaluation is bit-identical at any domain count (each scenario's
    makespan is an independent pure replay). *)

type criterion = Minimize_worst | Minimize_mean

val select :
  ?domains:int ->
  criterion ->
  portfolio:Two_phase.t list ->
  Instance.t ->
  t ->
  evaluation
(** Evaluate every portfolio member and return the best under the
    criterion (ties broken by portfolio order, independent of
    [domains]). Raises [Invalid_argument] on an empty portfolio or
    empty scenario set. *)

val default_portfolio : m:int -> Two_phase.t list
(** A sensible spread over the paper's strategies: no replication,
    groups at several k (divisors of [m]), budgeted overlap, and full
    replication. Derived from the {!Strategy} registry
    ([Strategy.default_portfolio] built at [m]). *)
