(* Zone-aware phase-1 placements. See zone_placement.mli. *)

module Instance = Usched_model.Instance
module Topology = Usched_model.Topology
module Bitset = Usched_model.Bitset

(* Machines of each zone, ascending ids (ties in the least-loaded scans
   below resolve to the lowest id because members are scanned in
   order). *)
let zone_machines topo =
  let m = Topology.m topo in
  let z = Topology.zones topo in
  let counts = Array.make z 0 in
  for i = 0 to m - 1 do
    let zi = Topology.zone topo i in
    counts.(zi) <- counts.(zi) + 1
  done;
  let members = Array.init z (fun zi -> Array.make counts.(zi) 0) in
  let fill = Array.make z 0 in
  for i = 0 to m - 1 do
    let zi = Topology.zone topo i in
    members.(zi).(fill.(zi)) <- i;
    fill.(zi) <- fill.(zi) + 1
  done;
  members

(* Zones ordered by the cost of staging [size] data units out of [home]:
   the home zone first (its copy is free — the data is born there), then
   cheapest links first, ids breaking ties. *)
let zones_by_cost topo ~home ~size =
  let order = Array.init (Topology.zones topo) (fun zi -> zi) in
  Array.sort
    (fun a b ->
      if a = home then -1
      else if b = home then 1
      else
        match
          Float.compare
            (Topology.zone_cost topo ~src:home ~dst:a ~size)
            (Topology.zone_cost topo ~src:home ~dst:b ~size)
        with
        | 0 -> Int.compare a b
        | c -> c)
    order;
  order

let least_loaded (loads : float array) members =
  let best = ref members.(0) in
  Array.iter (fun i -> if loads.(i) < loads.(!best) then best := i) members;
  !best

(* Shared greedy core: in LPT order, [pick_zones] chooses which zones
   get a replica of each task; within every chosen zone the replica
   lands on the least est-loaded machine, which is then charged the
   expected execution share [est / degree] (only one replica runs the
   task — mirroring the speed-robust builder's accounting). *)
let greedy ~pick_zones instance =
  let n = Instance.n instance and m = Instance.m instance in
  let topo = Instance.topology_or_uniform instance in
  let members = zone_machines topo in
  let loads = Array.make m 0.0 in
  let sets = Array.make n (Bitset.create m) in
  Array.iter
    (fun j ->
      let est = Instance.est instance j in
      let size = Instance.size instance j in
      let home = Topology.zone topo (j mod m) in
      let zorder = zones_by_cost topo ~home ~size in
      let chosen = pick_zones topo ~home ~size zorder in
      let deg = Array.length chosen in
      let share = est /. float_of_int deg in
      let set = Bitset.create m in
      Array.iter
        (fun zi ->
          let i = least_loaded loads members.(zi) in
          Bitset.add set i;
          loads.(i) <- loads.(i) +. share)
        chosen;
      sets.(j) <- set)
    (Instance.lpt_order instance);
  Placement.of_sets ~m sets

let zone_group_placement ~k instance =
  if k < 1 then
    invalid_arg
      (Printf.sprintf "Zone_placement.zone_group_placement: k=%d must be >= 1"
         k);
  greedy instance
    ~pick_zones:(fun _topo ~home:_ ~size:_ zorder ->
      Array.sub zorder 0 (Stdlib.min k (Array.length zorder)))

let local_budget_placement ~budget instance =
  if Float.is_nan budget || not (Float.is_finite budget) || budget < 0.0 then
    invalid_arg
      (Printf.sprintf
         "Zone_placement.local_budget_placement: budget %g must be finite and \
          >= 0"
         budget);
  greedy instance
    ~pick_zones:(fun topo ~home ~size zorder ->
      let cap = budget *. size in
      let chosen = Array.make (Array.length zorder) (-1) in
      let deg = ref 0 and spent = ref 0.0 in
      Array.iter
        (fun zi ->
          let cost =
            if zi = home then 0.0
            else Topology.zone_cost topo ~src:home ~dst:zi ~size
          in
          (* The home zone is always in (degree >= 1, and its copy is
             free); other zones join cheapest-first while the cumulative
             transfer cost stays within [budget * size]. *)
          if zi = home || !spent +. cost <= cap then begin
            chosen.(!deg) <- zi;
            incr deg;
            spent := !spent +. cost
          end)
        zorder;
      Array.sub chosen 0 !deg)

let zone_group ~k =
  {
    Two_phase.name = Printf.sprintf "ZoneGroup(k=%d)" k;
    phase1 = (fun instance -> zone_group_placement ~k instance);
    phase2 = Two_phase.lpt_order_phase2;
  }

let local_budget ~budget =
  {
    Two_phase.name = Printf.sprintf "LocalBudget(B=%g)" budget;
    phase1 = (fun instance -> local_budget_placement ~budget instance);
    phase2 = Two_phase.lpt_order_phase2;
  }
