let ffd_fits ~capacity ~m p =
  let sorted = Array.copy p in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let eps = 1e-12 *. Float.max 1.0 capacity in
  let bins = Array.make m 0.0 in
  let fits w =
    let rec first i =
      if i >= m then None
      else if bins.(i) +. w <= capacity +. eps then Some i
      else first (i + 1)
    in
    first 0
  in
  Array.for_all
    (fun w ->
      match fits w with
      | None -> false
      | Some i ->
          bins.(i) <- bins.(i) +. w;
          true)
    sorted

(* Assignment realizing a feasible FFD packing at the given capacity. *)
let ffd_assign ~capacity ~m p =
  let order = Assign.decreasing_order p in
  let eps = 1e-12 *. Float.max 1.0 capacity in
  let bins = Array.make m 0.0 in
  let assignment = Array.make (Array.length p) 0 in
  let ok =
    Array.for_all
      (fun j ->
        let w = p.(j) in
        let rec first i =
          if i >= m then false
          else if bins.(i) +. w <= capacity +. eps then begin
            bins.(i) <- bins.(i) +. w;
            assignment.(j) <- i;
            true
          end
          else first (i + 1)
        in
        first 0)
      order
  in
  if ok then Some { Assign.assignment; loads = bins } else None

let schedule ?(iterations = 20) ~m p =
  if m < 1 then invalid_arg "Multifit: m must be >= 1";
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Multifit: negative time") p;
  if Array.length p = 0 then { Assign.assignment = [||]; loads = Array.make m 0.0 }
  else begin
    let lo = ref (Float.max (Lower_bounds.average ~m p) (Lower_bounds.largest p)) in
    let lpt = Assign.lpt ~m ~weights:p in
    let hi = ref (Assign.makespan lpt) in
    let found = ref None in
    for _ = 1 to iterations do
      let capacity = 0.5 *. (!lo +. !hi) in
      if ffd_fits ~capacity ~m p then begin
        (match ffd_assign ~capacity ~m p with
        | Some r -> found := Some r
        | None -> ());
        hi := capacity
      end
      else lo := capacity
    done;
    match !found with Some r -> r | None -> lpt
  end

let makespan ?iterations ~m p = Assign.makespan (schedule ?iterations ~m p)
