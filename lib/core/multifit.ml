(* First-fit-decreasing feasibility, driven by a segment tree of bin
   minima instead of a linear scan: the leftmost bin that admits a task
   is found in O(log m), so one FFD pass costs O(n log m) rather than
   O(n·m), and the packing state is flat float arrays reused across the
   bisection iterations (no per-pass allocation beyond the first).

   Exactness: the descent test [subtree_min +. w <= limit] decides
   "some bin in this subtree fits" — IEEE [+.] is monotone in its first
   argument, so the subtree minimum fits iff any leaf does — and taking
   the left child whenever it fits reproduces the linear first-fit
   choice bit for bit, including the accumulated bin loads (same
   additions in the same order).

   Allocation discipline: the descent and the path-min rebuild are
   written inline in their callers, walking the tree through one int
   ref hoisted outside the scan loop — as standalone helpers they would
   re-box the float arguments and allocate a fresh ref on every task. *)

let eps_for capacity = 1e-12 *. Float.max 1.0 capacity

let pow2_ge m =
  let rec go k = if k >= m then k else go (2 * k) in
  go 1

(* tree.(1) is the min load over all bins; bin i's leaf is
   tree.(msize + i); padding leaves are +inf so they never admit work. *)
let tree_reset (tree : float array) msize m =
  for i = 0 to m - 1 do
    tree.(msize + i) <- 0.0
  done;
  for i = m to msize - 1 do
    tree.(msize + i) <- infinity
  done;
  for i = msize - 1 downto 1 do
    tree.(i) <- Float.min tree.(2 * i) tree.((2 * i) + 1)
  done

(* One FFD pass over [sorted] at [limit]: find each task's leftmost
   admitting bin, add it there, optionally record the choice. Returns
   true when everything fit. [cur] is the caller's scratch cursor. *)
let ffd_pass (tree : float array) msize ~limit ~(sorted : float array) ~cur
    ~record =
  let n = Array.length sorted in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let w = sorted.(!k) in
    (* leftmost-fit descent *)
    if not (tree.(1) +. w <= limit) then ok := false
    else begin
      cur := 1;
      while !cur < msize do
        let l = 2 * !cur in
        cur := if tree.(l) +. w <= limit then l else l + 1
      done;
      let bin = !cur - msize in
      record !k bin;
      (* leaf update + path-min rebuild *)
      tree.(!cur) <- tree.(!cur) +. w;
      while !cur > 1 do
        cur := !cur / 2;
        tree.(!cur) <- Float.min tree.(2 * !cur) tree.((2 * !cur) + 1)
      done
    end;
    incr k
  done;
  !ok

let no_record _ _ = ()

let ffd_fits ~capacity ~m p =
  let sorted = Array.copy p in
  Fsort.descending sorted;
  let limit = capacity +. eps_for capacity in
  let msize = pow2_ge m in
  let tree = Array.make (2 * msize) 0.0 in
  tree_reset tree msize m;
  ffd_pass tree msize ~limit ~sorted ~cur:(ref 0) ~record:no_record

let schedule ?(iterations = 20) ~m (p : float array) =
  if m < 1 then invalid_arg "Multifit: m must be >= 1";
  for k = 0 to Array.length p - 1 do
    if p.(k) < 0.0 then invalid_arg "Multifit: negative time"
  done;
  if Array.length p = 0 then
    { Assign.assignment = [||]; loads = Array.make m 0.0 }
  else begin
    let n = Array.length p in
    let lo = ref (Float.max (Lower_bounds.average ~m p) (Lower_bounds.largest p)) in
    (* Sorted once; every bisection iteration replays the same decreasing
       order (ties by id, exactly [Assign.decreasing_order]), testing
       feasibility and recording the packing in a single pass. The LPT
       fallback shares the same order rather than re-sorting. *)
    let order = Assign.decreasing_order p in
    let lpt = Assign.list_assign ~m ~weights:p ~order in
    let hi = ref (Assign.makespan lpt) in
    let sorted = Array.make n 0.0 in
    for k = 0 to n - 1 do
      sorted.(k) <- p.(order.(k))
    done;
    let msize = pow2_ge m in
    let tree = Array.make (2 * msize) 0.0 in
    let assignment = Array.make n 0 in
    let best_assignment = Array.make n 0 in
    let best_loads = Array.make m 0.0 in
    let found = ref false in
    let cur = ref 0 in
    let record k bin = assignment.(order.(k)) <- bin in
    for _ = 1 to iterations do
      let capacity = 0.5 *. (!lo +. !hi) in
      let limit = capacity +. eps_for capacity in
      tree_reset tree msize m;
      if ffd_pass tree msize ~limit ~sorted ~cur ~record then begin
        found := true;
        Array.blit assignment 0 best_assignment 0 n;
        for i = 0 to m - 1 do
          best_loads.(i) <- tree.(msize + i)
        done;
        hi := capacity
      end
      else lo := capacity
    done;
    if !found then { Assign.assignment = best_assignment; loads = best_loads }
    else lpt
  end

let makespan ?iterations ~m p = Assign.makespan (schedule ?iterations ~m p)
