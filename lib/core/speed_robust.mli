(** Speed-robust placement: hedge each task's replicas across machine
    speed classes.

    The speed-uncertain model (Eberle et al., see
    [Usched_model.Speed_band]) commits the placement before machine
    speeds are revealed inside their bands. A placement that stacks all
    of a task's replicas on machines that can end up equally slow has no
    hedge; this family partitions the machines into [k] {e speed
    classes} (by pessimistic in-band speed, fastest class first) and
    gives every task exactly one replica per class, choosing inside each
    class the machine with the earliest pessimistic completion. However
    the adversary splits the bands, every task keeps a replica on a
    machine from every speed tier, and phase 2's list scheduling picks
    whichever revealed speed serves it first.

    With no band attached (or a uniform band), classes degenerate to a
    plain least-loaded partition and the family behaves like [budgeted]
    replication with class-disjoint replicas — still a hedge, just an
    undirected one. *)

module Instance = Usched_model.Instance

val classes : k:int -> Instance.t -> int array array
(** The machine partition the placement hedges across: machines sorted
    by decreasing pessimistic band speed (ties by id), split into [k]
    contiguous classes of near-equal size, fastest first. Raises
    [Invalid_argument] unless [1 <= k <= m]. *)

val placement : k:int -> Instance.t -> Placement.t
(** One replica per class for every task, greedily balancing estimated
    pessimistic finish times inside each class, tasks in LPT order. *)

val algorithm : k:int -> Two_phase.t
(** The catalog entry point ([speedrobust:K]): {!placement} as phase 1,
    LPT-order engine phase 2. *)
