(** Lower bounds on the optimal makespan [C*_max].

    The competitive ratios reported by the experiment harness divide a
    measured makespan by a bound on the clairvoyant optimum. Using a lower
    bound makes every reported ratio an {e upper} bound on the true ratio,
    so the paper's guarantees can be checked soundly even when the exact
    optimum is out of reach. *)

val average : m:int -> float array -> float
(** [Σp/m]: total work spread perfectly. *)

val largest : float array -> float
(** [max_j p_j]: the longest task must run somewhere. *)

val packing : m:int -> float array -> float
(** The counting bound: for every [k >= 1] with [n >= k·m + 1], some
    machine receives at least [k+1] of the [k·m + 1] largest tasks, so
    [C* >= ] the sum of the [k+1] smallest of them. Maximized over [k].
    Returns 0 when [n <= m]. *)

val best : m:int -> float array -> float
(** Max of all bounds above. Raises [Invalid_argument] if [m < 1] or a
    processing time is negative. *)

val staged :
  topology:Usched_model.Topology.t ->
  sizes:float array ->
  sets:Usched_model.Bitset.t array ->
  m:int ->
  float array ->
  float
(** {!best} with the unavoidable staging term: whichever holder runs
    task [j], it first stages the data from the home machine [j mod m],
    so [p_j] is inflated by the cheapest staging time over [j]'s holder
    set before the bounds are taken. Equals [best ~m p] on the uniform
    topology (all staging times are 0). Raises [Invalid_argument] on a
    length or machine-count mismatch, or as {!best} does. *)
