(** Allocation-free in-place sorting of float arrays.

    The phase-1 algorithms sort task weights on every call; the generic
    [Array.sort] comparator boxes two floats per comparison. This
    specialized heapsort compares unboxed array reads and allocates
    nothing, at the same O(n log n) cost. *)

val descending : float array -> unit
(** Sort in place into non-increasing order under [Float.compare]'s
    total order (NaNs last). Observationally identical to
    [Array.sort (fun a b -> Float.compare b a)]. *)
