module Instance = Usched_model.Instance
module Speed_band = Usched_model.Speed_band
module Pool = Usched_parallel.Pool

let critical_load instance placement =
  let m = Instance.m instance and n = Instance.n instance in
  let load = Array.make m 0.0 in
  for j = 0 to n - 1 do
    let share =
      Instance.est instance j
      /. float_of_int (Placement.replication placement j)
    in
    for i = 0 to m - 1 do
      if Placement.allowed placement ~task:j ~machine:i then
        load.(i) <- load.(i) +. share
    done
  done;
  load

let better ((_, mk_a) as a) ((_, mk_b) as b) = if mk_b > mk_a then b else a

let exhaustive ?(domains = 1) ~run band =
  let m = Speed_band.m band in
  if m > 16 then invalid_arg "Speed_adversary.exhaustive: too many machines";
  let corners = 1 lsl m in
  (* Corners shard across domains; the sequential fold below visits them
     in mask order, so the reported worst corner — [better] keeps the
     first maximum — is bit-identical at any domain count. *)
  let measured =
    Pool.parallel_init ~domains corners (fun mask ->
        let speeds =
          Array.init m (fun i ->
              if mask land (1 lsl i) <> 0 then Speed_band.lo band i
              else Speed_band.hi band i)
        in
        (speeds, run speeds))
  in
  let best = ref ([||], neg_infinity) in
  for mask = 0 to corners - 1 do
    best := better !best measured.(mask)
  done;
  !best

let greedy ?(sweeps = 2) ~run ~order band =
  let m = Speed_band.m band in
  if Array.length order <> m then
    invalid_arg "Speed_adversary.greedy: order must list every machine";
  let speeds = Speed_band.his band in
  let best = ref (run speeds) in
  for _ = 1 to sweeps do
    Array.iter
      (fun i ->
        let saved = speeds.(i) in
        let flipped =
          if saved = Speed_band.lo band i then Speed_band.hi band i
          else Speed_band.lo band i
        in
        if flipped <> saved then begin
          speeds.(i) <- flipped;
          let candidate = run speeds in
          if candidate > !best then best := candidate
          else speeds.(i) <- saved
        end)
      order
  done;
  (speeds, !best)

let worst_case ?(exact_limit = 10) ?(candidates = []) ?domains ~run instance
    placement band =
  let m = Speed_band.m band in
  if Instance.m instance <> m then
    invalid_arg "Speed_adversary.worst_case: machine counts disagree";
  if Speed_band.is_degenerate band then begin
    let speeds = Speed_band.los band in
    (speeds, run speeds)
  end
  else begin
    let consider acc speeds =
      if not (Speed_band.contains band speeds) then
        invalid_arg "Speed_adversary.worst_case: candidate outside its band";
      better acc (Array.copy speeds, run speeds)
    in
    let searched =
      if m <= exact_limit then exhaustive ?domains ~run band
      else begin
        let crit = critical_load instance placement in
        let order = Array.init m (fun i -> i) in
        Array.sort
          (fun a b ->
            match Float.compare crit.(b) crit.(a) with
            | 0 -> Int.compare a b
            | c -> c)
          order;
        greedy ~run ~order band
      end
    in
    List.fold_left consider searched
      ([ Speed_band.los band; Speed_band.his band; Speed_band.mids band ]
      @ candidates)
  end

let lower_bound band actuals =
  Uniform.lower_bound ~speeds:(Speed_band.los band) actuals
