module Instance = Usched_model.Instance

let lpt_assignment instance =
  Assign.lpt ~m:(Instance.m instance) ~weights:(Instance.ests instance)

let singleton_phase1 assign instance =
  let result = assign instance in
  Placement.singletons ~m:(Instance.m instance) result.Assign.assignment

let lpt_no_choice =
  {
    Two_phase.name = "LPT-No Choice";
    phase1 = singleton_phase1 lpt_assignment;
    phase2 = Two_phase.lpt_order_phase2;
  }

let ls_no_choice =
  {
    Two_phase.name = "LS-No Choice";
    phase1 =
      singleton_phase1 (fun instance ->
          Assign.ls ~m:(Instance.m instance) ~weights:(Instance.ests instance));
    phase2 = Two_phase.submission_order_phase2;
  }
