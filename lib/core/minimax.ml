type result = { value : float; partition : int array }

let optimum_two_point ~m ~alpha ~highs ~lows =
  if highs < 0 || lows < 0 then invalid_arg "Minimax: negative counts";
  let p =
    Array.append
      (Array.make highs alpha)
      (Array.make lows (1.0 /. alpha))
  in
  if Array.length p = 0 then 0.0 else Opt.makespan ~m p

let partition_value ~m ~alpha counts =
  if Array.length counts > m then invalid_arg "Minimax: more parts than machines";
  Array.iter (fun c -> if c < 0 then invalid_arg "Minimax: negative count") counts;
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then 1.0
  else begin
    (* Adversary: pick a machine with b pinned tasks, inflate h of them
       and deflate everything else. Cache optima by h (they do not
       depend on which machine was hit). *)
    let opt_cache = Hashtbl.create 16 in
    let opt h =
      match Hashtbl.find_opt opt_cache h with
      | Some v -> v
      | None ->
          let v = optimum_two_point ~m ~alpha ~highs:h ~lows:(n - h) in
          Hashtbl.add opt_cache h v;
          v
    in
    let distinct = List.sort_uniq Int.compare (Array.to_list counts) in
    List.fold_left
      (fun acc b ->
        if b = 0 then acc
        else begin
          let best_for_b = ref acc in
          for h = 0 to b do
            let load =
              (float_of_int h *. alpha)
              +. (float_of_int (b - h) /. alpha)
            in
            let ratio = load /. opt h in
            if ratio > !best_for_b then best_for_b := ratio
          done;
          !best_for_b
        end)
      1.0 distinct
  end

let partitions ~n ~parts =
  (* Non-increasing positive parts, at most [parts] of them. *)
  let rec go remaining max_part slots =
    if remaining = 0 then [ [] ]
    else if slots = 0 then []
    else begin
      let upper = Stdlib.min remaining max_part in
      List.concat_map
        (fun part ->
          List.map (fun rest -> part :: rest)
            (go (remaining - part) part (slots - 1)))
        (List.init upper (fun i -> upper - i))
    end
  in
  go n n parts

let identical_minimax ~m ~n ~alpha =
  if m < 1 then invalid_arg "Minimax: m must be >= 1";
  if n < 0 then invalid_arg "Minimax: negative n";
  if alpha < 1.0 then invalid_arg "Minimax: alpha must be >= 1";
  if n = 0 then { value = 1.0; partition = Array.make m 0 }
  else begin
    let best = ref { value = infinity; partition = [||] } in
    List.iter
      (fun parts ->
        let counts = Array.make m 0 in
        List.iteri (fun i c -> counts.(i) <- c) parts;
        let value = partition_value ~m ~alpha counts in
        if value < !best.value then best := { value; partition = counts })
      (partitions ~n ~parts:m);
    !best
  end
