module Instance = Usched_model.Instance

let full_phase1 instance =
  Placement.full ~m:(Instance.m instance) ~n:(Instance.n instance)

let lpt_no_restriction =
  {
    Two_phase.name = "LPT-No Restriction";
    phase1 = full_phase1;
    phase2 = Two_phase.lpt_order_phase2;
  }

let ls_no_restriction =
  {
    Two_phase.name = "LS-No Restriction";
    phase1 = full_phase1;
    phase2 = Two_phase.submission_order_phase2;
  }
