module Instance = Usched_model.Instance
module Speed_band = Usched_model.Speed_band
module Bitset = Usched_model.Bitset

let classes ~k instance =
  let m = Instance.m instance in
  if k < 1 || k > m then
    invalid_arg
      (Printf.sprintf "Speed_robust.classes: k=%d outside [1, %d]" k m);
  let band = Instance.speed_band_or_nominal instance in
  let by_speed = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare (Speed_band.lo band b) (Speed_band.lo band a) with
      | 0 -> Int.compare a b
      | c -> c)
    by_speed;
  Array.init k (fun c ->
      let start = c * m / k and stop = (c + 1) * m / k in
      Array.sub by_speed start (stop - start))

let placement ~k instance =
  let n = Instance.n instance and m = Instance.m instance in
  let band = Instance.speed_band_or_nominal instance in
  let groups = classes ~k instance in
  (* Pessimistic finish times: work already charged divided by the
     slowest in-band speed — the schedule the adversary would force. *)
  let loads = Array.make m 0.0 in
  let sets = Array.make n (Bitset.create m) in
  let order = Instance.lpt_order instance in
  Array.iter
    (fun j ->
      let est = Instance.est instance j in
      let set = Bitset.create m in
      Array.iter
        (fun group ->
          let best = ref group.(0) and best_finish = ref infinity in
          Array.iter
            (fun i ->
              let finish = loads.(i) +. (est /. Speed_band.lo band i) in
              if finish < !best_finish then begin
                best := i;
                best_finish := finish
              end)
            group;
          Bitset.add set !best;
          (* Only one of the k replicas will execute the task; charge the
             expected share so classes stay balanced rather than every
             class paying the full estimate. *)
          loads.(!best) <-
            loads.(!best) +. (est /. float_of_int k /. Speed_band.lo band !best))
        groups;
      sets.(j) <- set)
    order;
  Placement.of_sets ~m sets

let algorithm ~k =
  {
    Two_phase.name = Printf.sprintf "SpeedRobust(k=%d)" k;
    phase1 = (fun instance -> placement ~k instance);
    phase2 = Two_phase.lpt_order_phase2;
  }
