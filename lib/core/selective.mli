(** Selective replication (the paper's future-work cost model).

    The conclusion suggests replicating "only some critical tasks" to
    limit memory usage. This extension replicates the [count] largest
    estimated tasks everywhere and pins the rest with LPT — the critical
    tasks are exactly the ones whose misestimation hurts the makespan
    most, while the memory overhead stays [count · s] instead of
    [n · s]. *)

module Instance = Usched_model.Instance

val placement : count:int -> Instance.t -> Placement.t
(** Full sets for the [count] largest estimates, LPT singletons for the
    others. [count] is clamped to [0..n]. *)

val algorithm : count:int -> Two_phase.t
(** Two-phase algorithm with the above placement and online LPT in phase
    2. [count = 0] degenerates to LPT-No Choice; [count >= n] to LPT-No
    Restriction. *)
