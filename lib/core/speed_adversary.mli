(** The adversarial speed revelator: worst-case in-band machine speeds
    against a committed placement.

    The dual of {!Adversary}: there the adversary picks task actuals
    inside [[p̃/alpha, alpha·p̃]] after seeing the placement; here it
    picks machine speeds inside their bands ([Usched_model.Speed_band]).
    The same structure carries over — the worst case is at an extreme
    point (makespan is monotone in each machine's speed only through the
    schedule, but slowing a machine never helps it, so the interesting
    corners are [{lo_i, hi_i}^m]) — and so does the search recipe:
    exhaustive corner enumeration for small [m], a greedy
    slow-the-critical-replica-holders descent beyond that.

    Every entry point takes the measurement as a closure
    [run : speeds -> makespan] (typically the desim engine replaying the
    placement under those speeds), so the adversary composes with any
    dispatch policy, realization, or fault trace the caller bakes in. *)

module Instance = Usched_model.Instance
module Speed_band = Usched_model.Speed_band

val critical_load : Instance.t -> Placement.t -> float array
(** Per-machine estimated replica load: [sum est(j) / |M_j|] over the
    tasks [j] whose replica set contains the machine — the share of work
    the machine is expected to carry, the greedy adversary's slowdown
    priority. *)

val exhaustive :
  ?domains:int ->
  run:(float array -> float) ->
  Speed_band.t ->
  float array * float
(** The exact worst corner: every machine at [lo] or [hi], all [2^m]
    combinations, returning the speeds and makespan of the worst.
    [domains] (default 1) shards the corner evaluations over that many
    domains; [run] must then be safe to call concurrently on disjoint
    speed arrays (the engine replays used in practice are). The result
    is bit-identical at any domain count. Raises [Invalid_argument]
    for [m > 16]. *)

val greedy :
  ?sweeps:int ->
  run:(float array -> float) ->
  order:int array ->
  Speed_band.t ->
  float array * float
(** Start with every machine fast ([hi]); in [order] (typically
    decreasing {!critical_load}), slow each machine to its [lo] and keep
    the flip iff the makespan grows. [sweeps] (default 2) passes over
    the machines. *)

val worst_case :
  ?exact_limit:int ->
  ?candidates:float array list ->
  ?domains:int ->
  run:(float array -> float) ->
  Instance.t ->
  Placement.t ->
  Speed_band.t ->
  float array * float
(** The composite adversary: exhaustive corners when
    [m <= exact_limit] (default 10, parallelized over [domains] as in
    {!exhaustive}), the greedy descent in decreasing
    {!critical_load} order otherwise, plus the all-slow, all-fast and
    midpoint revelations and every extra [candidates] entry (e.g. the
    Monte-Carlo draws of a paired experiment — folding them in makes the
    adversarial makespan dominate every sampled one by construction).
    Returns the worst (speeds, makespan). On a degenerate band the only
    revelation is the band itself. Raises [Invalid_argument] when a
    candidate leaves the band or machine counts disagree. *)

val lower_bound : Speed_band.t -> float array -> float
(** Sound lower bound on the optimal makespan under the worst in-band
    revelation: {!Uniform.lower_bound} at the pessimistic (all-[lo])
    speeds. On a degenerate band this {e is} the uniform-machines lower
    bound at the known speeds (the reduction pinned by qcheck). *)
