module Instance = Usched_model.Instance
module Bitset = Usched_model.Bitset

exception Infeasible of string

(* Repair an assignment whose memory exceeds the budget somewhere: move
   the smallest-estimate tasks off over-budget machines onto machines
   with enough slack (first-fit by decreasing slack). *)
let repair_to_budget ~budget instance assignment =
  let n = Instance.n instance and m = Instance.m instance in
  let mem = Array.make m 0.0 in
  for j = 0 to n - 1 do
    mem.(assignment.(j)) <- mem.(assignment.(j)) +. Instance.size instance j
  done;
  let moved = ref true in
  while Array.exists (fun x -> x > budget +. 1e-9) mem && !moved do
    moved := false;
    for i = 0 to m - 1 do
      if mem.(i) > budget +. 1e-9 then begin
        (* Candidate tasks on i, smallest estimate first (cheapest to
           displace for the makespan). *)
        let candidates = ref [] in
        for j = 0 to n - 1 do
          if assignment.(j) = i then candidates := j :: !candidates
        done;
        let candidates =
          List.sort
            (fun a b ->
              Float.compare (Instance.est instance a) (Instance.est instance b))
            !candidates
        in
        let try_move j =
          let size = Instance.size instance j in
          let target = ref (-1) in
          for i' = 0 to m - 1 do
            if i' <> i
               && mem.(i') +. size <= budget +. 1e-9
               && (!target < 0 || mem.(i') < mem.(!target))
            then target := i'
          done;
          if !target >= 0 then begin
            assignment.(j) <- !target;
            mem.(i) <- mem.(i) -. size;
            mem.(!target) <- mem.(!target) +. size;
            moved := true;
            true
          end
          else false
        in
        let rec shed = function
          | [] -> ()
          | j :: rest ->
              if mem.(i) > budget +. 1e-9 then begin
                ignore (try_move j);
                shed rest
              end
        in
        shed candidates
      end
    done
  done;
  if Array.exists (fun x -> x > budget +. 1e-9) mem then
    raise
      (Infeasible
         "memory budget too small for any replica-free placement of this instance")

let placement ~budget instance =
  if not (budget > 0.0) then invalid_arg "Memory_budget: budget must be > 0";
  let n = Instance.n instance and m = Instance.m instance in
  if Instance.max_size instance > budget +. 1e-9 then
    raise (Infeasible "a single task exceeds the per-machine budget");
  if Instance.total_size instance > (float_of_int m *. budget) +. 1e-9 then
    raise (Infeasible "total data exceeds aggregate memory");
  let base = No_replication.lpt_assignment instance in
  let assignment = Array.copy base.Assign.assignment in
  repair_to_budget ~budget instance assignment;
  let sets = Array.init n (fun j -> Bitset.singleton m assignment.(j)) in
  let mem = Array.make m 0.0 in
  Array.iteri
    (fun j i -> mem.(i) <- mem.(i) +. Instance.size instance j)
    assignment;
  (* Spend the remaining headroom: rounds over tasks in decreasing
     estimate order, each round granting at most one extra replica per
     task, placed on the machine with the most slack. *)
  let order = Instance.lpt_order instance in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun j ->
        let size = Instance.size instance j in
        if Bitset.cardinal sets.(j) < m then begin
          let target = ref (-1) in
          for i = 0 to m - 1 do
            if (not (Bitset.mem sets.(j) i))
               && mem.(i) +. size <= budget +. 1e-9
               && (!target < 0 || mem.(i) < mem.(!target))
            then target := i
          done;
          if !target >= 0 then begin
            Bitset.add sets.(j) !target;
            mem.(!target) <- mem.(!target) +. size;
            progress := true
          end
        end)
      order
  done;
  Placement.of_sets ~m sets

let algorithm ~budget =
  {
    Two_phase.name = Printf.sprintf "MemBudget(B=%g)" budget;
    phase1 = (fun instance -> placement ~budget instance);
    phase2 = Two_phase.lpt_order_phase2;
  }

let max_memory_load instance placement =
  Placement.memory_max placement ~sizes:(Instance.sizes instance)
