(** The two-phase algorithm framework of the paper.

    Phase 1 (offline) sees only estimates and produces a {!Placement.t};
    phase 2 (online, semi-clairvoyant) executes against the realized
    actual times, restricted to the placement. The framework enforces the
    information flow: phase 1 never sees a {!Realization.t}. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule

type t = {
  name : string;
  phase1 : Instance.t -> Placement.t;
  phase2 : Instance.t -> Placement.t -> Realization.t -> Schedule.t;
}

val run : t -> Instance.t -> Realization.t -> Schedule.t
(** Both phases in sequence. *)

val run_full : t -> Instance.t -> Realization.t -> Placement.t * Schedule.t
(** Like {!run}, also exposing the placement (for memory accounting and
    adversaries). *)

val makespan : t -> Instance.t -> Realization.t -> float

val engine_phase2 :
  ?dispatch:Usched_desim.Dispatch.spec ->
  order:(Instance.t -> int array) ->
  Instance.t ->
  Placement.t ->
  Realization.t ->
  Schedule.t
(** A phase 2 that feeds the desim engine with the given task priority
    order — the building block of every algorithm in the paper.
    [dispatch] (default [Dispatch.List_priority]) selects the engine's
    idle-machine rule; phase 1 stays oblivious to it, preserving the
    framework's information flow. *)

val dispatch_phase2 :
  dispatch:Usched_desim.Dispatch.spec ->
  order:(Instance.t -> int array) ->
  Instance.t ->
  Placement.t ->
  Realization.t ->
  Schedule.t
(** {!engine_phase2} with an explicit, required dispatch policy — the
    phase 2 that policy sweeps build their algorithm variants from. *)

val lpt_order_phase2 : Instance.t -> Placement.t -> Realization.t -> Schedule.t
(** {!engine_phase2} with the estimate-descending (LPT) order. *)

val submission_order_phase2 : Instance.t -> Placement.t -> Realization.t -> Schedule.t
(** {!engine_phase2} with the task-id (submission / list scheduling)
    order. *)
