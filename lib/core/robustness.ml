module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Schedule = Usched_desim.Schedule
module Summary = Usched_stats.Summary
module Rng = Usched_prng.Rng

type profile = {
  degradation : Summary.t;
  ratio : Summary.t;
  worst_ratio : float;
}

let profile ?(samples = 100) ~realize ~rng algo instance =
  let placement = algo.Two_phase.phase1 instance in
  let run realization = algo.Two_phase.phase2 instance placement realization in
  let baseline = Schedule.makespan (run (Realization.exact instance)) in
  let degradation = Summary.create () and ratio = Summary.create () in
  for _ = 1 to samples do
    let realization = realize instance rng in
    let makespan = Schedule.makespan (run realization) in
    Summary.add degradation (makespan /. baseline);
    let lb =
      Lower_bounds.best ~m:(Instance.m instance) (Realization.actuals realization)
    in
    Summary.add ratio (makespan /. lb)
  done;
  { degradation; ratio; worst_ratio = Summary.max ratio }

let price_of_robustness ?(samples = 100) ~realize ~rng ~baseline algo instance =
  let placement = algo.Two_phase.phase1 instance in
  let baseline_placement = baseline.Two_phase.phase1 instance in
  let total = ref 0.0 in
  for _ = 1 to samples do
    let realization = realize instance rng in
    let ours =
      Schedule.makespan (algo.Two_phase.phase2 instance placement realization)
    in
    let theirs =
      Schedule.makespan
        (baseline.Two_phase.phase2 instance baseline_placement realization)
    in
    total := !total +. (ours /. theirs)
  done;
  !total /. float_of_int samples
