(** Exact makespan minimization by branch and bound.

    Computes the clairvoyant optimum [C*_max] appearing in every
    competitive ratio of the paper. Intended for the small instances used
    by the test suite and the adversary searches; for larger instances
    use {!Lower_bounds} or {!Multifit}.

    Tasks are assigned in decreasing-size order; the search prunes with
    the average-load bound and breaks machine symmetry (identical empty
    machines, identical loads), which solves instances up to roughly
    [n = 30] quickly. *)

type result = {
  value : float;  (** Best makespan found. *)
  optimal : bool;  (** Whether the search ran to completion. *)
  nodes : int;  (** Search nodes visited. *)
}

val solve : ?node_limit:int -> m:int -> float array -> result
(** [solve ~m p] minimizes the makespan of the [p] on [m] identical
    machines. [node_limit] (default [10_000_000]) caps the search; when
    hit, [optimal = false] and [value] is the best incumbent (an upper
    bound on the optimum). Raises [Invalid_argument] if [m < 1] or a time
    is negative. *)

val makespan : m:int -> float array -> float
(** [solve] and return the value; raises [Failure] if the node limit was
    reached without proving optimality. *)
