(** The MULTIFIT algorithm (Coffman, Garey & Johnson 1978).

    A strong offline baseline: binary-search the machine capacity and test
    feasibility with first-fit-decreasing bin packing. With [k] iterations
    the makespan is within [13/11 + 2^-k] of optimal. The paper cites the
    existence of arbitrarily good offline algorithms (dual approximation);
    MULTIFIT plays that role in our measured baselines. *)

val ffd_fits : capacity:float -> m:int -> float array -> bool
(** Whether first-fit-decreasing packs all tasks into [m] bins of the
    given capacity. *)

val schedule : ?iterations:int -> m:int -> float array -> Assign.result
(** Assignment produced by MULTIFIT with [iterations] (default 20) binary
    search steps; falls back to LPT's assignment if FFD never fits (FFD
    feasibility is not monotone-complete, so this guards pathological
    cases). Raises [Invalid_argument] if [m < 1] or a time is negative. *)

val makespan : ?iterations:int -> m:int -> float array -> float
(** Makespan of {!schedule}. *)
