(* Words are OCaml native ints used as 62-bit vectors (the top bit of the
   63-bit int is left unused to keep all arithmetic positive). *)
let bits_per_word = 62

type t = { len : int; words : int array }

let word_count len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative capacity";
  { len; words = Array.make (word_count len) 0 }

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: element out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let full len =
  let t = create len in
  for i = 0 to len - 1 do
    add t i
  done;
  t

let singleton len i =
  let t = create len in
  add t i;
  t

let of_list len l =
  let t = create len in
  List.iter (add t) l;
  t

let capacity t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

(* Kernighan's bit-clear loop: one iteration per set bit, not per bit
   position. *)
let popcount word =
  let rec loop acc w = if w = 0 then acc else loop (acc + 1) (w land (w - 1)) in
  loop 0 word

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

(* Module-level recursion instead of [Array.for_all] with a lambda —
   the closure allocated per call showed up in the engine's
   validate-every-placement loop. *)
let rec words_zero words k =
  k >= Array.length words || (words.(k) = 0 && words_zero words (k + 1))

let is_empty t = words_zero t.words 0

let iter f t =
  for i = 0 to t.len - 1 do
    if mem t i then f i
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    raise Not_found
  with Found i -> i

let check_same_capacity a b =
  if a.len <> b.len then invalid_arg "Bitset: capacity mismatch"

let union a b =
  check_same_capacity a b;
  { len = a.len; words = Array.map2 ( lor ) a.words b.words }

let inter a b =
  check_same_capacity a b;
  { len = a.len; words = Array.map2 ( land ) a.words b.words }

(* Word-level intersection queries, allocation-free (no intermediate
   set) — the engine's strand scans and the healer's degree checks call
   these per task per event. *)
let rec words_disjoint aw bw k =
  k >= Array.length aw || (aw.(k) land bw.(k) = 0 && words_disjoint aw bw (k + 1))

let inter_is_empty a b =
  check_same_capacity a b;
  words_disjoint a.words b.words 0

let rec words_inter_count aw bw k acc =
  if k >= Array.length aw then acc
  else words_inter_count aw bw (k + 1) (acc + popcount (aw.(k) land bw.(k)))

let inter_cardinal a b =
  check_same_capacity a b;
  words_inter_count a.words b.words 0 0

let equal a b = a.len = b.len && a.words = b.words

let subset a b =
  check_same_capacity a b;
  Array.for_all2 (fun wa wb -> wa land lnot wb = 0) a.words b.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list t)
