(* Machines partitioned into zones with a symmetric zone-by-zone
   bandwidth/latency matrix. Intra-zone transfers are free — the
   diagonal is pinned to (infinite bandwidth, zero latency) so every
   path lookup has a fast same-zone branch and the uniform (single-zone)
   topology is exactly the "transfers are free" model the rest of the
   system assumed before topologies existed. *)

type t = {
  zone_of : int array;  (* machine -> zone *)
  zones : int;
  bandwidth : float array array;  (* zone x zone, data units / time *)
  latency : float array array;  (* zone x zone, time units *)
}

let bad fmt = Format.kasprintf invalid_arg fmt

let valid_bandwidth x = (not (Float.is_nan x)) && x > 0.0
let valid_latency x = Float.is_finite x && x >= 0.0

let check_matrix ~what ~zones ~diagonal ~valid ~describe matrix =
  if Array.length matrix <> zones then
    bad "Topology.make: %s matrix has %d rows, need %d" what
      (Array.length matrix) zones;
  Array.iteri
    (fun r row ->
      if Array.length row <> zones then
        bad "Topology.make: %s row %d has %d entries, need %d" what r
          (Array.length row) zones;
      Array.iteri
        (fun c x ->
          if r = c then begin
            if x <> diagonal then
              bad "Topology.make: %s diagonal entry %d must be %g (got %g)"
                what r diagonal x
          end
          else if not (valid x) then
            bad "Topology.make: %s[%d][%d] = %g must be %s" what r c x describe)
        row)
    matrix;
  for r = 0 to zones - 1 do
    for c = r + 1 to zones - 1 do
      if matrix.(r).(c) <> matrix.(c).(r) then
        bad "Topology.make: %s matrix is not symmetric at [%d][%d]" what r c
    done
  done

let make ~zone_of ~bandwidth ~latency =
  let m = Array.length zone_of in
  if m < 1 then bad "Topology.make: need at least one machine";
  let zones = 1 + Array.fold_left Stdlib.max (-1) zone_of in
  Array.iteri
    (fun i z ->
      if z < 0 then bad "Topology.make: machine %d has negative zone %d" i z)
    zone_of;
  let seen = Array.make zones false in
  Array.iter (fun z -> seen.(z) <- true) zone_of;
  Array.iteri
    (fun z occupied ->
      if not occupied then
        bad "Topology.make: zone ids must be contiguous (zone %d is empty)" z)
    seen;
  check_matrix ~what:"bandwidth" ~zones ~diagonal:infinity
    ~valid:valid_bandwidth ~describe:"> 0 (NaN rejected)" bandwidth;
  check_matrix ~what:"latency" ~zones ~diagonal:0.0 ~valid:valid_latency
    ~describe:"finite and >= 0" latency;
  {
    zone_of = Array.copy zone_of;
    zones;
    bandwidth = Array.map Array.copy bandwidth;
    latency = Array.map Array.copy latency;
  }

let uniform ~m =
  if m < 1 then invalid_arg "Topology.uniform: need at least one machine";
  {
    zone_of = Array.make m 0;
    zones = 1;
    bandwidth = [| [| infinity |] |];
    latency = [| [| 0.0 |] |];
  }

let zoned ?(latency = 0.0) ~m ~zones ~bandwidth () =
  if m < 1 then invalid_arg "Topology.zoned: need at least one machine";
  if zones < 1 || zones > m then
    bad "Topology.zoned: zones=%d outside [1, %d]" zones m;
  if not (valid_bandwidth bandwidth) then
    bad "Topology.zoned: cross-zone bandwidth %g must be > 0 (NaN rejected)"
      bandwidth;
  if not (valid_latency latency) then
    bad "Topology.zoned: cross-zone latency %g must be finite and >= 0" latency;
  (* Same contiguous balanced split as the speed classes: machine i sits
     in zone i*zones/m, every zone nonempty for zones <= m. *)
  let zone_of = Array.init m (fun i -> i * zones / m) in
  let bw =
    Array.init zones (fun r ->
        Array.init zones (fun c -> if r = c then infinity else bandwidth))
  in
  let lat =
    Array.init zones (fun r ->
        Array.init zones (fun c -> if r = c then 0.0 else latency))
  in
  { zone_of; zones; bandwidth = bw; latency = lat }

let m t = Array.length t.zone_of
let zones t = t.zones
let zone t i = t.zone_of.(i)
let is_uniform t = t.zones = 1
let same_zone t i k = t.zone_of.(i) = t.zone_of.(k)

let zone_bandwidth t ~src ~dst =
  if src = dst then infinity else t.bandwidth.(src).(dst)

let zone_latency t ~src ~dst = if src = dst then 0.0 else t.latency.(src).(dst)

let path_bandwidth t ~src ~dst =
  zone_bandwidth t ~src:t.zone_of.(src) ~dst:t.zone_of.(dst)

let path_latency t ~src ~dst =
  zone_latency t ~src:t.zone_of.(src) ~dst:t.zone_of.(dst)

let zone_cost t ~src ~dst ~size =
  if src = dst then 0.0
  else t.latency.(src).(dst) +. (size /. t.bandwidth.(src).(dst))

let staging_time t ~src ~dst ~size =
  let zs = t.zone_of.(src) and zd = t.zone_of.(dst) in
  if zs = zd then 0.0 else t.latency.(zs).(zd) +. (size /. t.bandwidth.(zs).(zd))

let float_array_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if not (Float.equal x b.(i)) then ok := false) a;
       !ok
     end

let matrix_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i row -> if not (float_array_equal row b.(i)) then ok := false)
         a;
       !ok
     end

let equal a b =
  a.zones = b.zones && a.zone_of = b.zone_of
  && matrix_equal a.bandwidth b.bandwidth
  && matrix_equal a.latency b.latency

(* Bit-exact floats for the header round trip, same scheme as
   [Speed_band.float_str]. [%g] renders infinity as "inf", which
   [float_of_string] reads back. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let matrix_str matrix =
  String.concat ":"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat "," (Array.to_list (Array.map float_str row)))
          matrix))

(* [ZONES|BWROWS|LATROWS]: zone ids comma-separated, matrix rows
   colon-separated with comma-separated entries. No spaces anywhere, so
   the value survives the space-split instance header. *)
let to_string t =
  Printf.sprintf "%s|%s|%s"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.zone_of)))
    (matrix_str t.bandwidth)
    (matrix_str t.latency)

let parse_matrix ~what raw =
  let rows = String.split_on_char ':' raw in
  let parse_row row =
    let entries = String.split_on_char ',' row in
    let out = Array.make (List.length entries) 0.0 in
    List.iteri
      (fun c e ->
        match float_of_string_opt (String.trim e) with
        | Some x -> out.(c) <- x
        | None -> failwith (Printf.sprintf "bad %s entry %S" what e))
      entries;
    out
  in
  Array.of_list (List.map parse_row rows)

let of_string text =
  match String.split_on_char '|' text with
  | [ zones_raw; bw_raw; lat_raw ] -> (
      let parse () =
        let zone_entries = String.split_on_char ',' zones_raw in
        let zone_of = Array.make (List.length zone_entries) 0 in
        List.iteri
          (fun i e ->
            match int_of_string_opt (String.trim e) with
            | Some z -> zone_of.(i) <- z
            | None -> failwith (Printf.sprintf "bad zone id %S" e))
          zone_entries;
        let bandwidth = parse_matrix ~what:"bandwidth" bw_raw in
        let latency = parse_matrix ~what:"latency" lat_raw in
        make ~zone_of ~bandwidth ~latency
      in
      match parse () with
      | t -> Ok t
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg)
  | _ ->
      Error
        (Printf.sprintf
           "bad topology %S (expected ZONES|BWROWS|LATROWS with 2 '|' \
            separators)"
           text)

let spec_grammar =
  "expected uniform (one zone, free transfers), zones:Z:BW[:LAT] (Z \
   contiguous equal zones, cross-zone bandwidth BW > 0, cross-zone latency \
   LAT >= 0, default 0), or a serialized ZONES|BWROWS|LATROWS topology"

let of_spec ~m:mm text =
  let with_grammar = function
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s; %s" msg spec_grammar)
  in
  match String.split_on_char ':' text with
  | [ "uniform" ] -> Ok (uniform ~m:mm)
  | "zones" :: rest ->
      with_grammar
        (let parse_float what raw =
           match float_of_string_opt raw with
           | Some x -> Ok x
           | None -> Error (Printf.sprintf "bad %s %S" what raw)
         in
         let build ~zones ~bandwidth ~latency =
           match zoned ~latency ~m:mm ~zones ~bandwidth () with
           | t -> Ok t
           | exception Invalid_argument msg -> Error msg
         in
         match rest with
         | [ z_raw; bw_raw ] | [ z_raw; bw_raw; _ ] -> (
             match int_of_string_opt z_raw with
             | None -> Error (Printf.sprintf "bad zone count %S" z_raw)
             | Some zones -> (
                 match parse_float "cross-zone bandwidth" bw_raw with
                 | Error _ as e -> e
                 | Ok bandwidth -> (
                     match rest with
                     | [ _; _ ] -> build ~zones ~bandwidth ~latency:0.0
                     | [ _; _; lat_raw ] -> (
                         match parse_float "cross-zone latency" lat_raw with
                         | Error _ as e -> e
                         | Ok latency -> build ~zones ~bandwidth ~latency)
                     | _ -> assert false)))
         | _ -> Error (Printf.sprintf "bad zones spec %S" text))
  | _ ->
      with_grammar
        (match of_string text with
        | Ok t when m t = mm -> Ok t
        | Ok t ->
            Error
              (Printf.sprintf "topology covers %d machines, instance has %d"
                 (m t) mm)
        | Error _ as e -> e)

let pp ppf t =
  if is_uniform t then Format.fprintf ppf "topology(uniform, m=%d)" (m t)
  else begin
    Format.fprintf ppf "topology(m=%d, zones=%d" (m t) t.zones;
    for r = 0 to t.zones - 1 do
      for c = r + 1 to t.zones - 1 do
        Format.fprintf ppf ", %d<->%d bw=%g lat=%g" r c t.bandwidth.(r).(c)
          t.latency.(r).(c)
      done
    done;
    Format.fprintf ppf ")"
  end
