module Rng = Usched_prng.Rng

type t = { lo : float array; hi : float array }

let valid_speed x = Float.is_finite x && x > 0.0

let make bands =
  if Array.length bands = 0 then
    invalid_arg "Speed_band.make: need at least one machine";
  Array.iteri
    (fun i (lo, hi) ->
      if not (valid_speed lo && valid_speed hi) then
        invalid_arg
          (Printf.sprintf
             "Speed_band.make: machine %d band [%g, %g] must be finite and > 0"
             i lo hi);
      if lo > hi then
        invalid_arg
          (Printf.sprintf "Speed_band.make: machine %d band has lo %g > hi %g"
             i lo hi))
    bands;
  { lo = Array.map fst bands; hi = Array.map snd bands }

let uniform ~m ~lo ~hi =
  if m < 1 then invalid_arg "Speed_band.uniform: need at least one machine";
  make (Array.make m (lo, hi))

let degenerate speeds = make (Array.map (fun s -> (s, s)) speeds)
let nominal ~m = uniform ~m ~lo:1.0 ~hi:1.0

let tiered ?(fast = 2.0) ?(slow = 0.5) ~m () =
  if m < 1 then invalid_arg "Speed_band.tiered: need at least one machine";
  let quarter = m / 4 in
  degenerate
    (Array.init m (fun i ->
         if i < quarter then fast else if i >= m - quarter then slow else 1.0))

let widen t ~spread =
  if not (Float.is_finite spread && spread >= 1.0) then
    invalid_arg "Speed_band.widen: spread must be finite and >= 1";
  make
    (Array.init (Array.length t.lo) (fun i ->
         (t.lo.(i) /. spread, t.hi.(i) *. spread)))

let m t = Array.length t.lo
let lo t i = t.lo.(i)
let hi t i = t.hi.(i)
let los t = Array.copy t.lo
let his t = Array.copy t.hi
let mids t = Array.init (m t) (fun i -> 0.5 *. (t.lo.(i) +. t.hi.(i)))

let is_degenerate t =
  let ok = ref true in
  for i = 0 to m t - 1 do
    if t.lo.(i) <> t.hi.(i) then ok := false
  done;
  !ok

let contains t speeds =
  Array.length speeds = m t
  && begin
       let ok = ref true in
       Array.iteri
         (fun i s -> if not (t.lo.(i) <= s && s <= t.hi.(i)) then ok := false)
         speeds;
       !ok
     end

let sample t rng =
  Array.init (m t) (fun i ->
      (* Unconditional draw keeps one variate per machine, so equal seeds
         pair revelations across bands; a degenerate machine returns its
         exact bound (float_range could perturb it). *)
      let draw = Rng.float_range rng ~lo:t.lo.(i) ~hi:t.hi.(i) in
      if t.lo.(i) = t.hi.(i) then t.lo.(i) else draw)

let equal a b = a.lo = b.lo && a.hi = b.hi

(* Bit-exact floats for the header round trip, same scheme as
   [Strategy.float_str]. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string t =
  String.concat ","
    (List.init (m t) (fun i ->
         if t.lo.(i) = t.hi.(i) then float_str t.lo.(i)
         else Printf.sprintf "%s:%s" (float_str t.lo.(i)) (float_str t.hi.(i))))

let of_string text =
  let parse_bound raw =
    match float_of_string_opt (String.trim raw) with
    | Some x when valid_speed x -> Ok x
    | Some x -> Error (Printf.sprintf "speed %g must be finite and > 0" x)
    | None -> Error (Printf.sprintf "bad speed %S" raw)
  in
  let parse_entry raw =
    match String.split_on_char ':' raw with
    | [ s ] -> Result.map (fun v -> (v, v)) (parse_bound s)
    | [ l; h ] -> (
        match (parse_bound l, parse_bound h) with
        | Ok lo, Ok hi ->
            if lo > hi then
              Error (Printf.sprintf "band %S has lo > hi" raw)
            else Ok (lo, hi)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
    | _ -> Error (Printf.sprintf "bad band %S (expected LO:HI or S)" raw)
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        match parse_entry raw with
        | Ok band -> parse (band :: acc) rest
        | Error _ as e -> e)
  in
  match parse [] (String.split_on_char ',' text) with
  | Error _ as e -> e
  | Ok [] -> Error "empty speed band"
  | Ok bands ->
      let bands = Array.of_list bands in
      Ok { lo = Array.map fst bands; hi = Array.map snd bands }

let spec_grammar =
  "expected uniform:LO:HI (same band on every machine) or M comma-separated \
   LO:HI or S entries, all speeds finite and > 0 with LO <= HI"

let of_spec ~m:mm text =
  let with_grammar = function
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s; %s" msg spec_grammar)
  in
  match String.split_on_char ':' text with
  | [ "uniform"; lo_raw; hi_raw ] ->
      with_grammar
        (match (float_of_string_opt lo_raw, float_of_string_opt hi_raw) with
        | Some lo, Some hi -> (
            match uniform ~m:mm ~lo ~hi with
            | t -> Ok t
            | exception Invalid_argument msg -> Error msg)
        | _ -> Error (Printf.sprintf "bad uniform band %S" text))
  | _ ->
      with_grammar
        (match of_string text with
        | Ok t when m t = mm -> Ok t
        | Ok t ->
            Error
              (Printf.sprintf "speed band lists %d machines, instance has %d"
                 (m t) mm)
        | Error _ as e -> e)

let pp ppf t =
  Format.fprintf ppf "speed-band[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf i ->
         if t.lo.(i) = t.hi.(i) then Format.fprintf ppf "%g" t.lo.(i)
         else Format.fprintf ppf "%g..%g" t.lo.(i) t.hi.(i)))
    (List.init (m t) Fun.id)
