let parse_error line_number message =
  failwith (Printf.sprintf "Io: line %d: %s" line_number message)

let header_line ~kind instance =
  let failp =
    match Instance.failure instance with
    | None -> ""
    | Some f -> " failp=" ^ Failure.to_string f
  in
  let speedband =
    match Instance.speed_band instance with
    | None -> ""
    | Some b -> " speedband=" ^ Speed_band.to_string b
  in
  let topology =
    match Instance.topology instance with
    | None -> ""
    | Some tp -> " topology=" ^ Topology.to_string tp
  in
  Printf.sprintf "# usched-%s m=%d alpha=%.17g%s%s%s" kind (Instance.m instance)
    (Instance.alpha_value instance) failp speedband topology

let parse_header ~kind line =
  let prefix = Printf.sprintf "# usched-%s " kind in
  let plen = String.length prefix in
  if String.length line < plen || String.sub line 0 plen <> prefix then
    parse_error 1 (Printf.sprintf "expected a '%s' header" prefix);
  let fields =
    String.split_on_char ' ' (String.sub line plen (String.length line - plen))
  in
  let lookup_opt key =
    let key_eq = key ^ "=" in
    match
      List.find_opt
        (fun f ->
          String.length f > String.length key_eq
          && String.sub f 0 (String.length key_eq) = key_eq)
        fields
    with
    | Some f ->
        Some
          (String.sub f (String.length key_eq)
             (String.length f - String.length key_eq))
    | None -> None
  in
  let lookup key =
    match lookup_opt key with
    | Some v -> v
    | None -> parse_error 1 (Printf.sprintf "missing %s= in header" key)
  in
  let m = int_of_string (lookup "m") in
  let alpha = float_of_string (lookup "alpha") in
  let failure =
    match lookup_opt "failp" with
    | None -> None
    | Some raw -> (
        match Failure.of_string raw with
        | Ok f -> Some f
        | Error msg -> parse_error 1 (Printf.sprintf "bad failp=: %s" msg))
  in
  let speed_band =
    match lookup_opt "speedband" with
    | None -> None
    | Some raw -> (
        match Speed_band.of_string raw with
        | Ok b -> Some b
        | Error msg -> parse_error 1 (Printf.sprintf "bad speedband=: %s" msg))
  in
  let topology =
    match lookup_opt "topology" with
    | None -> None
    | Some raw -> (
        match Topology.of_string raw with
        | Ok tp -> Some tp
        | Error msg -> parse_error 1 (Printf.sprintf "bad topology=: %s" msg))
  in
  (m, Uncertainty.alpha alpha, failure, speed_band, topology)

let body_lines text =
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i >= 2) (* header + column line *)
  |> List.filter (fun l -> String.trim l <> "")

let instance_to_string instance =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (header_line ~kind:"instance" instance);
  Buffer.add_string buffer "\nid,est,size\n";
  Array.iter
    (fun task ->
      Buffer.add_string buffer
        (Printf.sprintf "%d,%.17g,%.17g\n" (Task.id task) (Task.est task)
           (Task.size task)))
    (Instance.tasks instance);
  Buffer.contents buffer

let split3 line_number line =
  match String.split_on_char ',' line with
  | [ a; b; c ] -> (a, b, c)
  | _ -> parse_error line_number "expected 3 comma-separated fields"

let split4 line_number line =
  match String.split_on_char ',' line with
  | [ a; b; c; d ] -> (a, b, c, d)
  | _ -> parse_error line_number "expected 4 comma-separated fields"

let float_field line_number name raw =
  match float_of_string_opt raw with
  | Some v -> v
  | None -> parse_error line_number (Printf.sprintf "bad %s %S" name raw)

let instance_of_string text =
  match String.split_on_char '\n' text with
  | [] -> parse_error 1 "empty input"
  | header :: _ ->
      let m, alpha, failure, speed_band, topology =
        parse_header ~kind:"instance" header
      in
      let tasks =
        List.mapi
          (fun i line ->
            let line_number = i + 3 in
            let id_raw, est_raw, size_raw = split3 line_number line in
            let id =
              match int_of_string_opt id_raw with
              | Some v -> v
              | None -> parse_error line_number (Printf.sprintf "bad id %S" id_raw)
            in
            Task.make ~id
              ~est:(float_field line_number "estimate" est_raw)
              ~size:(float_field line_number "size" size_raw)
              ())
          (body_lines text)
      in
      Instance.make ?failure ?speed_band ?topology ~m ~alpha
        (Array.of_list tasks)

let realization_to_string realization =
  let instance = Realization.instance realization in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (header_line ~kind:"realization" instance);
  Buffer.add_string buffer "\nid,est,size,actual\n";
  Array.iter
    (fun task ->
      Buffer.add_string buffer
        (Printf.sprintf "%d,%.17g,%.17g,%.17g\n" (Task.id task) (Task.est task)
           (Task.size task)
           (Realization.actual realization (Task.id task))))
    (Instance.tasks instance);
  Buffer.contents buffer

let realization_of_string text =
  match String.split_on_char '\n' text with
  | [] -> parse_error 1 "empty input"
  | header :: _ ->
      let m, alpha, failure, speed_band, topology =
        parse_header ~kind:"realization" header
      in
      let rows =
        List.mapi
          (fun i line ->
            let line_number = i + 3 in
            let id_raw, est_raw, size_raw, actual_raw = split4 line_number line in
            let id =
              match int_of_string_opt id_raw with
              | Some v -> v
              | None -> parse_error line_number (Printf.sprintf "bad id %S" id_raw)
            in
            ( Task.make ~id
                ~est:(float_field line_number "estimate" est_raw)
                ~size:(float_field line_number "size" size_raw)
                (),
              float_field line_number "actual" actual_raw ))
          (body_lines text)
      in
      let instance =
        Instance.make ?failure ?speed_band ?topology ~m ~alpha
          (Array.of_list (List.map fst rows))
      in
      Realization.of_actuals instance (Array.of_list (List.map snd rows))

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_instance ~path instance = write_file path (instance_to_string instance)
let load_instance ~path = instance_of_string (read_file path)

let save_realization ~path realization =
  write_file path (realization_to_string realization)

let load_realization ~path = realization_of_string (read_file path)
