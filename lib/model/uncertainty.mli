(** The bounded multiplicative uncertainty model of the paper.

    The scheduler knows an estimate [p̃_j] and a factor [α >= 1] such that
    the actual time satisfies [p̃_j/α <= p_j <= α·p̃_j] (Equation 1 of the
    paper). This module makes [α] an abstract validated type so an invalid
    factor can never enter an instance. *)

type alpha
(** An uncertainty factor, guaranteed [>= 1]. *)

val alpha : float -> alpha
(** Validates and wraps a factor. Raises [Invalid_argument] when [< 1]
    or not finite. *)

val alpha_exact : alpha
(** [α = 1]: estimates are exact (the classical offline problem). *)

val to_float : alpha -> float

val interval : alpha -> est:float -> float * float
(** [(p̃/α, α·p̃)], the admissible range of the actual time. *)

val admissible : alpha -> est:float -> actual:float -> bool
(** Whether an actual time is consistent with Equation 1 (with a 1e-9
    relative tolerance for float round-off). *)

val clamp : alpha -> est:float -> float -> float
(** Project a value onto the admissible interval. *)

val pp : Format.formatter -> alpha -> unit
