module Rng = Usched_prng.Rng
module Dist = Usched_prng.Dist

type spec =
  | Identical of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { shape : float; scale : float; cap : float }
  | Bimodal of { p_long : float; short_mean : float; long_mean : float }
  | Lpt_adversarial of { m : int }
  | Sand of { total : float }
  | Bricks of { size : float }
  | Rocks of { lo : float; hi : float }

type size_spec =
  | Unit_sizes
  | Proportional of float
  | Inverse of float
  | Uniform_sizes of { lo : float; hi : float }

let draw_est spec rng =
  match spec with
  | Identical v ->
      if v <= 0.0 then invalid_arg "Workload: identical estimate must be > 0";
      v
  | Uniform { lo; hi } ->
      if lo <= 0.0 || lo > hi then invalid_arg "Workload: bad uniform range";
      Dist.uniform rng ~lo ~hi
  | Exponential { mean } ->
      (* Shift away from zero: estimates must be strictly positive. *)
      Float.max 1e-9 (Dist.exponential rng ~mean)
  | Pareto { shape; scale; cap } ->
      if cap < scale then invalid_arg "Workload: pareto cap below scale";
      Float.min cap (Dist.pareto rng ~shape ~scale)
  | Bimodal { p_long; short_mean; long_mean } ->
      Float.max 1e-9
        (Dist.bimodal rng ~p_long
           ~short:(fun rng -> Dist.exponential rng ~mean:short_mean)
           ~long:(fun rng -> Dist.exponential rng ~mean:long_mean))
  | Rocks { lo; hi } ->
      if lo <= 0.0 || lo > hi then invalid_arg "Workload: bad rocks range";
      Dist.uniform rng ~lo ~hi
  | Lpt_adversarial _ | Sand _ | Bricks _ ->
      assert false (* handled structurally in [generate] *)

let draw_size size_spec ~est rng =
  match size_spec with
  | Unit_sizes -> 1.0
  | Proportional c ->
      if c <= 0.0 then invalid_arg "Workload: proportionality must be > 0";
      c *. est
  | Inverse c ->
      if c <= 0.0 then invalid_arg "Workload: inverse factor must be > 0";
      c /. est
  | Uniform_sizes { lo; hi } ->
      if lo < 0.0 || lo > hi then invalid_arg "Workload: bad size range";
      Dist.uniform rng ~lo ~hi

(* The classical LPT lower-bound family: three tasks of each length
   2m-1, 2m-2, ..., m+1 would overshoot; the standard instance is
   2 tasks of each length in {2m-1, ..., m+1} plus one task of length m
   ... there are several variants; we use the textbook one:
   tasks {2m-1, 2m-1, 2m-2, 2m-2, ..., m+1, m+1, m, m, m}. *)
let lpt_adversarial_ests m =
  if m < 2 then invalid_arg "Workload: LPT adversarial family needs m >= 2";
  let pairs =
    List.concat_map
      (fun v -> [ float_of_int v; float_of_int v ])
      (List.init (m - 1) (fun i -> (2 * m) - 1 - i))
  in
  Array.of_list (pairs @ [ float_of_int m; float_of_int m; float_of_int m ])

let generate spec ?(size_spec = Unit_sizes) ~n ~m ~alpha rng =
  if n < 0 then invalid_arg "Workload.generate: negative n";
  let ests =
    match spec with
    | Lpt_adversarial { m = m' } -> lpt_adversarial_ests m'
    | Sand { total } ->
        if total <= 0.0 || not (Float.is_finite total) then
          invalid_arg "Workload: sand total must be finite and > 0";
        if n < 1 then invalid_arg "Workload: sand needs at least one grain";
        Array.make n (total /. float_of_int n)
    | Bricks { size } ->
        if size <= 0.0 || not (Float.is_finite size) then
          invalid_arg "Workload: brick size must be finite and > 0";
        Array.make n size
    | _ -> Array.init n (fun _ -> draw_est spec rng)
  in
  let sizes = Array.map (fun est -> draw_size size_spec ~est rng) ests in
  Instance.of_ests ~m ~alpha ~sizes ests

let spec_name = function
  | Identical _ -> "identical"
  | Uniform _ -> "uniform"
  | Exponential _ -> "exponential"
  | Pareto _ -> "pareto"
  | Bimodal _ -> "bimodal"
  | Lpt_adversarial _ -> "lpt-adversarial"
  | Sand _ -> "sand"
  | Bricks _ -> "bricks"
  | Rocks _ -> "rocks"

let size_spec_name = function
  | Unit_sizes -> "unit"
  | Proportional _ -> "proportional"
  | Inverse _ -> "inverse"
  | Uniform_sizes _ -> "uniform"

let standard_suite ~m =
  [
    ("identical", Identical 1.0);
    ("uniform", Uniform { lo = 1.0; hi = 100.0 });
    ("exponential", Exponential { mean = 10.0 });
    ("pareto", Pareto { shape = 1.5; scale = 1.0; cap = 1000.0 });
    ( "bimodal",
      Bimodal { p_long = 0.1; short_mean = 1.0; long_mean = 50.0 } );
    ("lpt-adversarial", Lpt_adversarial { m });
  ]

let speed_robust_suite ~m =
  [
    (* Total work scales with m so every class keeps all machines busy. *)
    ("sand", Sand { total = 8.0 *. float_of_int m });
    ("bricks", Bricks { size = 1.0 });
    ("rocks", Rocks { lo = 1.0; hi = 12.0 });
  ]
