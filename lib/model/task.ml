type t = { id : int; est : float; size : float }

let make ~id ~est ?(size = 1.0) () =
  if id < 0 then invalid_arg "Task.make: negative id";
  if not (est > 0.0) then invalid_arg "Task.make: estimate must be > 0";
  if size < 0.0 then invalid_arg "Task.make: negative size";
  { id; est; size }

let id t = t.id
let est t = t.est
let size t = t.size

let compare_est_desc a b =
  match Float.compare b.est a.est with 0 -> Int.compare a.id b.id | c -> c

let compare_id a b = Int.compare a.id b.id

let equal a b = a.id = b.id && a.est = b.est && a.size = b.size

let pp ppf t = Format.fprintf ppf "task#%d(est=%g, size=%g)" t.id t.est t.size
