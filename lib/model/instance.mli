(** A problem instance: tasks, machine count, uncertainty factor.

    This is the complete offline input of phase 1 (the paper's
    [p̃_j, m, α]). Task ids always equal their array index, which the rest
    of the system relies on. *)

type t

val make :
  ?failure:Failure.t ->
  ?speed_band:Speed_band.t ->
  ?topology:Topology.t ->
  m:int ->
  alpha:Uncertainty.alpha ->
  Task.t array ->
  t
(** Validates and builds an instance. Raises [Invalid_argument] if
    [m < 1], task ids are not exactly [0 .. n-1] in order, or the
    optional failure profile / speed band / topology does not cover
    exactly [m] machines. The task array is copied. *)

val of_ests :
  ?failure:Failure.t ->
  ?speed_band:Speed_band.t ->
  ?topology:Topology.t ->
  m:int ->
  alpha:Uncertainty.alpha ->
  ?sizes:float array ->
  float array ->
  t
(** Convenience constructor from raw estimate values (and optional sizes;
    defaults to all-1). Ids are assigned in order. *)

val n : t -> int
(** Number of tasks. *)

val m : t -> int
(** Number of machines. *)

val alpha : t -> Uncertainty.alpha
val alpha_value : t -> float
(** [alpha] as a float, for formulas. *)

val tasks : t -> Task.t array
(** A copy of the task array. *)

val task : t -> int -> Task.t
val est : t -> int -> float
val size : t -> int -> float

val ests : t -> float array
(** Fresh array of all estimates, indexed by task id. *)

val sizes : t -> float array

val failure : t -> Failure.t option
(** The per-machine failure profile attached to this instance, if any.
    Reliability-aware algorithms that need one unconditionally should
    use {!failure_or_default}. *)

val failure_or_default : t -> Failure.t
(** The attached profile, or the uniform [Failure.default_p] profile
    when the instance carries none. *)

val with_failure : t -> Failure.t option -> t
(** Same instance with the failure profile replaced (or removed).
    Raises [Invalid_argument] when the profile's machine count differs
    from [m]. *)

val speed_band : t -> Speed_band.t option
(** The per-machine speed uncertainty band attached to this instance,
    if any. Speed-robust algorithms that need one unconditionally
    should use {!speed_band_or_nominal}. *)

val speed_band_or_nominal : t -> Speed_band.t
(** The attached band, or the degenerate all-1 band (identical
    machines, no uncertainty) when the instance carries none. *)

val with_speed_band : t -> Speed_band.t option -> t
(** Same instance with the speed band replaced (or removed). Raises
    [Invalid_argument] when the band's machine count differs from
    [m]. *)

val topology : t -> Topology.t option
(** The cluster topology attached to this instance, if any. [None]
    means transfers are free — the pre-topology model. Zone-aware
    algorithms that need one unconditionally should use
    {!topology_or_uniform}. *)

val topology_or_uniform : t -> Topology.t
(** The attached topology, or the single-zone uniform topology (all
    transfers free) when the instance carries none. *)

val with_topology : t -> Topology.t option -> t
(** Same instance with the topology replaced (or removed). Raises
    [Invalid_argument] when the topology's machine count differs from
    [m]. *)

val total_est : t -> float
val max_est : t -> float
val total_size : t -> float
val max_size : t -> float

val lpt_order : t -> int array
(** Task ids sorted by decreasing estimate (ties by id) — the order used
    by every LPT-based algorithm of the paper. *)

val pp : Format.formatter -> t -> unit
