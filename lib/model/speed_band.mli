(** Per-machine speed uncertainty bands — the speed-robust dual of the
    paper's processing-time uncertainty.

    The paper's model reveals {e task} actuals within
    [[p̃/alpha, alpha·p̃]] after placement; Eberle et al. ("Speed-Robust
    Scheduling — Sand, Bricks, and Rocks") study the dual in which the
    {e machines} are uncertain: placement commits first, then every
    machine's speed is revealed inside a known band [[lo_i, hi_i]]. A
    {!t} carries one band per machine and is attached to an instance
    (see [Instance.speed_band]); revelation is either stochastic
    ({!sample}, drawn through [Usched_prng] so draws pair across
    strategies) or adversarial ([Usched_core.Speed_adversary]).

    A band with [lo_i = hi_i] for every machine is {e degenerate}: there
    is no uncertainty and every consumer must reduce exactly to the
    fixed-speeds engine (pinned bit-for-bit by the golden test). *)

type t

val make : (float * float) array -> t
(** One [(lo, hi)] band per machine. Raises [Invalid_argument] when the
    array is empty or any bound is NaN, non-finite, [<= 0], or has
    [lo > hi]. The array is copied. *)

val uniform : m:int -> lo:float -> hi:float -> t
(** The same band on all [m] machines. *)

val degenerate : float array -> t
(** Known speeds, zero uncertainty: [lo_i = hi_i = speeds.(i)]. *)

val nominal : m:int -> t
(** [degenerate [|1; ...; 1|]]: the identical-machines default. *)

val tiered : ?fast:float -> ?slow:float -> m:int -> unit -> t
(** The heterogeneous-cluster shape used by the [hetero] experiment:
    the first [m/4] machines run at [fast] (default 2), the last [m/4]
    at [slow] (default 0.5), the middle half at 1 — all degenerate
    (known speeds). [tiered ~m:8 ()] is exactly the
    [[|2;2;1;1;1;1;0.5;0.5|]] array the experiment used to hardcode. *)

val widen : t -> spread:float -> t
(** Uncertainty around known speeds: each band becomes
    [[lo/spread, hi*spread]]. [spread >= 1] required. *)

val m : t -> int
val lo : t -> int -> float
val hi : t -> int -> float

val los : t -> float array
(** Fresh array of the pessimistic (slowest in-band) speeds. *)

val his : t -> float array
(** Fresh array of the optimistic (fastest in-band) speeds. *)

val mids : t -> float array
(** Fresh array of the band midpoints — the nominal planning speeds. *)

val is_degenerate : t -> bool
(** [lo_i = hi_i] on every machine: no uncertainty at all. *)

val contains : t -> float array -> bool
(** Every [speeds.(i)] lies in [[lo_i, hi_i]] (length must match). *)

val sample : t -> Usched_prng.Rng.t -> float array
(** One in-band revelation: machine [i]'s speed uniform in
    [[lo_i, hi_i]]. Draws one variate per machine {e unconditionally}
    (degenerate machines included, where the draw is discarded and the
    exact bound returned), so equal seeds give paired revelations across
    bands of the same [m] — the same discipline as the fault-trace
    generators. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Comma-separated [LO:HI] pairs (a degenerate machine prints as the
    single speed), printed so parsing returns the bit-identical band —
    the instance-header wire format ([speedband=]). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. Each comma-separated entry is [LO:HI] or a
    single speed [S] (meaning [S:S]). *)

val spec_grammar : string
(** One-line grammar of {!of_spec} for CLI usage errors. *)

val of_spec : m:int -> string -> (t, string) result
(** The CLI grammar behind [--speed-band]: [uniform:LO:HI] (the same
    band on every machine) or [M] comma-separated [LO:HI] / [S] entries.
    Errors carry {!spec_grammar}. *)

val pp : Format.formatter -> t -> unit
