(** Plain-text persistence of instances and realizations.

    Experiments can save generated workloads and adversarial realizations
    to CSV-like files and reload them later, so any single run is
    shareable and replayable. Format (header line included):

    {v
    # usched-instance m=<m> alpha=<alpha>[ failp=<p0>,...][ speedband=<b0>,...][ topology=<zones|bw|lat>]
    id,est,size
    0,9.5,1
    ...
    v}

    The optional [failp=] field carries the per-machine failure profile
    ({!Failure.t}), comma-separated with one probability per machine;
    the optional [speedband=] field carries the per-machine speed
    uncertainty band ({!Speed_band.t}) as comma-separated [lo:hi] pairs
    (a single value for a known speed); the optional [topology=] field
    carries the cluster topology ({!Topology.t}) in its space-free
    [ZONES|BWROWS|LATROWS] form. All three round-trip bit-exactly;
    files written before any of the fields existed parse to instances
    without them. Realizations append an [actual] column and reference
    the instance parameters in the header. *)

val instance_to_string : Instance.t -> string
val instance_of_string : string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save_instance : path:string -> Instance.t -> unit
val load_instance : path:string -> Instance.t

val realization_to_string : Realization.t -> string
val realization_of_string : string -> Realization.t
(** Rebuilds both the instance and its actual times; validates
    admissibility via [Realization.of_actuals]. *)

val save_realization : path:string -> Realization.t -> unit
val load_realization : path:string -> Realization.t
