let default_p = 0.05

type t = { p : float array }

let valid_prob x = (not (Float.is_nan x)) && x >= 0.0 && x <= 1.0

let make p =
  if Array.length p = 0 then
    invalid_arg "Failure.make: need at least one machine";
  Array.iteri
    (fun i x ->
      if not (valid_prob x) then
        invalid_arg
          (Printf.sprintf
             "Failure.make: machine %d probability %g not in [0, 1]" i x))
    p;
  { p = Array.copy p }

let uniform ~m ~p =
  if m < 1 then invalid_arg "Failure.uniform: need at least one machine";
  make (Array.make m p)

let m t = Array.length t.p
let p t i = t.p.(i)
let to_array t = Array.copy t.p
let log_loss t i = Float.log t.p.(i)

let prob_all_lost t set =
  let log_sum = Bitset.fold (fun acc i -> acc +. log_loss t i) 0.0 set in
  Float.exp log_sum

let equal a b = a.p = b.p

let to_string t =
  String.concat ","
    (Array.to_list (Array.map (Printf.sprintf "%.17g") t.p))

let of_string text =
  let fields = String.split_on_char ',' text in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        match float_of_string_opt (String.trim raw) with
        | Some x when valid_prob x -> parse (x :: acc) rest
        | Some x ->
            Error (Printf.sprintf "failure probability %g not in [0, 1]" x)
        | None -> Error (Printf.sprintf "bad failure probability %S" raw))
  in
  match parse [] fields with
  | Error _ as e -> e
  | Ok [] -> Error "empty failure profile"
  | Ok probs -> Ok { p = Array.of_list probs }

let pp ppf t =
  Format.fprintf ppf "failure-profile[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list t.p)
