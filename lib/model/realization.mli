(** Realizations: the actual processing times of an instance's tasks.

    A realization is what the adversary — or nature — picks inside the
    admissible intervals after phase 1 commits to a placement. The online
    phase-2 scheduler only learns [actual t j] when task [j] completes. *)

type t
(** Actual processing times, indexed by task id. *)

val of_actuals : Instance.t -> float array -> t
(** Wraps explicit actual times. Raises [Invalid_argument] if the length
    differs from the instance or any value violates Equation 1. *)

val of_factors : Instance.t -> float array -> t
(** [of_factors inst f] sets [actual j = f.(j) * est j]. Each factor must
    lie in [[1/α, α]]. *)

val exact : Instance.t -> t
(** Actual = estimate for every task (no perturbation). *)

val actual : t -> int -> float
val actuals : t -> float array
(** Fresh copy of all actual times. *)

val total : t -> float
val max_actual : t -> float

val instance : t -> Instance.t
(** The instance this realization belongs to. *)

(** {1 Random realization models}

    Oblivious stochastic adversaries: they draw actual times independently
    of the placement. The paper's worst cases are placement-aware; those
    live in [Usched_core.Adversary]. *)

val uniform_factor : Instance.t -> Usched_prng.Rng.t -> t
(** Each factor drawn uniformly from [[1/α, α]]. *)

val log_uniform_factor : Instance.t -> Usched_prng.Rng.t -> t
(** Each factor drawn log-uniformly from [[1/α, α]] (symmetric in the
    multiplicative sense: under- and over-estimation equally likely). *)

val extremes : p_high:float -> Instance.t -> Usched_prng.Rng.t -> t
(** Each task is inflated to [α·p̃] with probability [p_high], deflated to
    [p̃/α] otherwise — the two-point distribution used in all the paper's
    proofs. *)

val biased : factor:float -> Instance.t -> t
(** Systematic estimation bias: every task's actual time is
    [factor · p̃]. Raises [Invalid_argument] if [factor] lies outside
    [[1/α, α]]. Makespans simply rescale under this model, so
    competitive ratios are invariant — a useful engine property. *)

val clustered : clusters:int -> Instance.t -> Usched_prng.Rng.t -> t
(** Correlated errors: tasks are binned into [clusters] groups by id and
    every group shares one log-uniform factor — e.g. all tasks of one
    job class being mis-modelled the same way. [clusters >= 1]. *)

val pp : Format.formatter -> t -> unit
