type alpha = float

let alpha a =
  if not (Float.is_finite a) || a < 1.0 then
    invalid_arg "Uncertainty.alpha: factor must be finite and >= 1";
  a

let alpha_exact = 1.0

let to_float a = a

let interval a ~est = (est /. a, est *. a)

let admissible a ~est ~actual =
  let lo, hi = interval a ~est in
  let tol = 1e-9 *. Float.max 1.0 hi in
  actual >= lo -. tol && actual <= hi +. tol

let clamp a ~est v =
  let lo, hi = interval a ~est in
  Float.min hi (Float.max lo v)

let pp ppf a = Format.fprintf ppf "alpha=%g" a
