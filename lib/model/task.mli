(** Tasks (jobs) of the scheduling problem.

    A task carries the information the scheduler knows {e offline}: an
    estimated processing time [est] (written [p̃_j] in the paper) and a
    memory size [size] (written [s_j], used by the memory-aware model).
    The actual processing time is part of a {!Realization}, never of the
    task itself, mirroring the paper's information model. *)

type t = { id : int; est : float; size : float }

val make : id:int -> est:float -> ?size:float -> unit -> t
(** [make ~id ~est ~size ()] builds a task. [size] defaults to [1.0].
    Raises [Invalid_argument] if [est <= 0], [size < 0] or [id < 0]. *)

val id : t -> int
val est : t -> float
val size : t -> float

val compare_est_desc : t -> t -> int
(** Orders by decreasing estimate, ties broken by increasing id — the LPT
    order used throughout the paper. *)

val compare_id : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
