(** Synthetic workload generators.

    The paper motivates the model with out-of-core sparse linear algebra
    and Hadoop/MapReduce workloads; these generators produce the estimate
    and size mixes characteristic of those settings, plus the structured
    instances used in the paper's proofs (equal tasks, LPT worst cases).

    A {!spec} describes the distribution of estimated processing times; a
    {!size_spec} describes the memory sizes relative to the estimates.
    Generation is deterministic given the {!Usched_prng.Rng.t}. *)

type spec =
  | Identical of float  (** Every task has this estimate (Theorem 1's instance). *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { shape : float; scale : float; cap : float }
      (** Heavy-tailed, truncated at [cap] to keep instances finite. *)
  | Bimodal of { p_long : float; short_mean : float; long_mean : float }
      (** Exponential short tasks with a fraction of long stragglers. *)
  | Lpt_adversarial of { m : int }
      (** The classical instance on which LPT attains 4/3 - 1/(3m):
          tasks 2m-1..m+1 duplicated plus m tasks of length m
          (scaled to floats). The [n] argument of {!generate} is ignored
          in favour of the canonical 2m+1 tasks. *)
  | Sand of { total : float }
      (** [n] identical grains of [total / n] each — infinitely divisible
          load in the limit. The easiest speed-robust class of Eberle et
          al.: any placement can rebalance grain by grain. *)
  | Bricks of { size : float }
      (** [n] identical unit bricks — equal jobs, where the granularity
          (not the mix) limits rebalancing under revealed speeds. *)
  | Rocks of { lo : float; hi : float }
      (** Uniform heterogeneous rocks — arbitrary job sizes, the hardest
          speed-robust class: one big rock stuck on a slow machine
          dominates the makespan. *)

type size_spec =
  | Unit_sizes  (** Every task has size 1. *)
  | Proportional of float  (** [size = c * est]: big tasks have big data. *)
  | Inverse of float
      (** [size = c / est]: small tasks have big data — the adversarial mix
          for memory-aware scheduling. *)
  | Uniform_sizes of { lo : float; hi : float }  (** Independent of estimates. *)

val generate :
  spec ->
  ?size_spec:size_spec ->
  n:int ->
  m:int ->
  alpha:Uncertainty.alpha ->
  Usched_prng.Rng.t ->
  Instance.t
(** Build an instance of [n] tasks on [m] machines. Raises
    [Invalid_argument] on nonsensical parameters ([n < 0], bad
    distribution parameters). *)

val spec_name : spec -> string
val size_spec_name : size_spec -> string

val standard_suite : m:int -> (string * spec) list
(** The named workload families exercised by the experiment harness. *)

val speed_robust_suite : m:int -> (string * spec) list
(** The sand / bricks / rocks instance classes of the speed-robust
    model (Eberle et al.), sized to keep [m] machines busy — what the
    [speed-robust] experiment crosses with the strategy catalog. *)
