type t = { instance : Instance.t; actuals : float array }

let of_actuals instance actuals =
  if Array.length actuals <> Instance.n instance then
    invalid_arg "Realization.of_actuals: length mismatch";
  let alpha = Instance.alpha instance in
  Array.iteri
    (fun j actual ->
      if not (Uncertainty.admissible alpha ~est:(Instance.est instance j) ~actual)
      then
        invalid_arg
          (Printf.sprintf
             "Realization.of_actuals: task %d actual %g violates the alpha \
              interval of estimate %g"
             j actual (Instance.est instance j)))
    actuals;
  { instance; actuals = Array.copy actuals }

let of_factors instance factors =
  if Array.length factors <> Instance.n instance then
    invalid_arg "Realization.of_factors: length mismatch";
  of_actuals instance
    (Array.mapi (fun j f -> f *. Instance.est instance j) factors)

let exact instance = of_actuals instance (Instance.ests instance)

let[@inline] actual t j = t.actuals.(j)
let actuals t = Array.copy t.actuals
let total t = Array.fold_left ( +. ) 0.0 t.actuals
let max_actual t = Array.fold_left Float.max 0.0 t.actuals
let instance t = t.instance

let random_factors instance draw rng =
  let a = Instance.alpha_value instance in
  Array.init (Instance.n instance) (fun _ -> draw a rng)

let uniform_factor instance rng =
  of_factors instance
    (random_factors instance
       (fun a rng -> Usched_prng.Rng.float_range rng ~lo:(1.0 /. a) ~hi:a)
       rng)

let log_uniform_factor instance rng =
  of_factors instance
    (random_factors instance
       (fun a rng ->
         if a = 1.0 then 1.0
         else Usched_prng.Dist.log_uniform rng ~lo:(1.0 /. a) ~hi:a)
       rng)

let extremes ~p_high instance rng =
  if p_high < 0.0 || p_high > 1.0 then
    invalid_arg "Realization.extremes: p_high out of [0, 1]";
  of_factors instance
    (random_factors instance
       (fun a rng -> if Usched_prng.Rng.bernoulli rng ~p:p_high then a else 1.0 /. a)
       rng)

let biased ~factor instance =
  let a = Instance.alpha_value instance in
  if factor < (1.0 /. a) -. 1e-12 || factor > a +. 1e-12 then
    invalid_arg "Realization.biased: factor outside [1/alpha, alpha]";
  of_factors instance (Array.make (Instance.n instance) factor)

let clustered ~clusters instance rng =
  if clusters < 1 then invalid_arg "Realization.clustered: clusters < 1";
  let a = Instance.alpha_value instance in
  let cluster_factor =
    Array.init clusters (fun _ ->
        if a = 1.0 then 1.0
        else Usched_prng.Dist.log_uniform rng ~lo:(1.0 /. a) ~hi:a)
  in
  of_factors instance
    (Array.init (Instance.n instance) (fun j -> cluster_factor.(j mod clusters)))

let pp ppf t =
  Format.fprintf ppf "realization(n=%d, total=%g)" (Array.length t.actuals)
    (total t)
