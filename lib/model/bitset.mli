(** Fixed-capacity bit sets over [0 .. len-1].

    Machine sets [M_j] (the set of machines holding a replica of task [j])
    are the central combinatorial object of the paper; this compact
    representation makes placements with hundreds of machines cheap to
    store per task and fast to query in the phase-2 engine. *)

type t
(** A mutable set of integers in [[0, capacity t)]. *)

val create : int -> t
(** [create n] is the empty set with capacity [n] ([n >= 0]). *)

val full : int -> t
(** [full n] contains every element of [[0, n)]. *)

val singleton : int -> int -> t
(** [singleton n i] has capacity [n] and contains exactly [i]. *)

val of_list : int -> int list -> t
(** Set with capacity [n] containing the listed elements. *)

val capacity : t -> int
(** Capacity fixed at creation. *)

val copy : t -> t

val add : t -> int -> unit
(** Raises [Invalid_argument] when out of range. *)

val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list

val choose : t -> int
(** Smallest member. Raises [Not_found] on the empty set. *)

val union : t -> t -> t
(** Functional union of two sets of equal capacity. *)

val inter : t -> t -> t
(** Functional intersection of two sets of equal capacity. *)

val inter_is_empty : t -> t -> bool
(** [inter_is_empty a b = is_empty (inter a b)] without allocating the
    intermediate set. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b = cardinal (inter a b)] without allocating the
    intermediate set. *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as [{0, 3, 5}]. *)
