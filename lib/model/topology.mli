(** Cluster topology: machines partitioned into zones with a symmetric
    zone-by-zone transfer-cost matrix.

    The paper treats replication as free and instantaneous; real
    clusters pay for every byte a replica crosses. A topology makes
    that cost a first-class model input: each machine belongs to one
    {e zone} (a rack, a datacenter, a cloud region), and moving [size]
    data units from zone [a] to zone [b] takes
    [latency(a,b) + size / bandwidth(a,b)] time units. Transfers {e
    within} a zone are free — the matrix diagonal is pinned to
    (infinite bandwidth, zero latency), so every path lookup has an
    intra-zone fast path and the single-zone {!uniform} topology is
    bit-for-bit the "transfers are free" model the engine, the
    placement algorithms, and the recovery layer assumed before
    topologies existed. That identity is the refactor's safety
    contract, pinned by the golden qcheck in [test_golden_engine].

    A task's data is born on its {e home} machine [j mod m] (the
    submitting client's local node); the placement layer charges
    [staging_time] from the home zone for every cross-zone replica, and
    the engine makes a machine's first copy of a task wait for exactly
    that staging time. *)

type t

val make :
  zone_of:int array ->
  bandwidth:float array array ->
  latency:float array array ->
  t
(** [make ~zone_of ~bandwidth ~latency] builds a topology for
    [Array.length zone_of] machines. [zone_of.(i)] is machine [i]'s
    zone; ids must be contiguous [0 .. zones-1] with every zone
    nonempty. Both matrices are [zones x zones] and symmetric;
    bandwidth entries must be [> 0] (NaN rejected, [infinity] allowed)
    with an all-[infinity] diagonal, latency entries finite and [>= 0]
    with an all-zero diagonal. Raises [Invalid_argument] otherwise.
    All arrays are copied. *)

val uniform : m:int -> t
(** The single-zone topology: every transfer is free. The neutral
    element of the whole refactor — attaching it to an instance changes
    nothing, bit-for-bit. *)

val zoned : ?latency:float -> m:int -> zones:int -> bandwidth:float -> unit -> t
(** [zones] contiguous balanced zones (machine [i] in zone
    [i*zones/m], the speed-class split), every cross-zone edge sharing
    one [bandwidth] ([> 0]) and one [latency] ([>= 0], default [0]).
    Raises [Invalid_argument] unless [1 <= zones <= m]. *)

val m : t -> int
(** Number of machines. *)

val zones : t -> int
(** Number of zones, [>= 1]. *)

val zone : t -> int -> int
(** [zone t i] is machine [i]'s zone. *)

val is_uniform : t -> bool
(** Exactly one zone: all transfers free. *)

val same_zone : t -> int -> int -> bool

val zone_bandwidth : t -> src:int -> dst:int -> float
(** Bandwidth between two {e zones}; [infinity] when [src = dst]. *)

val zone_latency : t -> src:int -> dst:int -> float
(** Latency between two {e zones}; [0] when [src = dst]. *)

val path_bandwidth : t -> src:int -> dst:int -> float
(** Bandwidth of the path between two {e machines} — [infinity] within
    a zone. *)

val path_latency : t -> src:int -> dst:int -> float
(** Latency of the path between two {e machines} — [0] within a
    zone. *)

val zone_cost : t -> src:int -> dst:int -> size:float -> float
(** Time to move [size] data units between two {e zones}:
    [0] when [src = dst], else [latency + size / bandwidth]. *)

val staging_time : t -> src:int -> dst:int -> size:float -> float
(** Time to move [size] data units between two {e machines}: [0]
    within a zone, else the zone path's [latency + size / bandwidth].
    This is the cost the placement layer charges per cross-zone replica
    and the delay the engine imposes before a machine's first copy of a
    task may start. *)

val equal : t -> t -> bool
(** Structural equality (zone map and both matrices). *)

val to_string : t -> string
(** Serialized form [ZONES|BWROWS|LATROWS]: zone ids comma-separated,
    matrix rows colon-separated with comma-separated bit-exact entries
    ([infinity] renders as [inf]). Contains no spaces, so it embeds in
    the space-split [topology=] instance-header field. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; validates like {!make}. *)

val spec_grammar : string
(** Human-readable description of the {!of_spec} grammar, embedded in
    every [of_spec] error. *)

val of_spec : m:int -> string -> (t, string) result
(** The CLI grammar behind [--topology]: [uniform], [zones:Z:BW[:LAT]]
    (Z balanced contiguous zones, one cross-zone bandwidth/latency), or
    the serialized {!to_string} form. The machine count must match
    [m]. *)

val pp : Format.formatter -> t -> unit
