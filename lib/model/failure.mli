(** Per-machine failure-probability profiles.

    The paper treats machines as reliable; the replication literature it
    cites (and ROADMAP item 5) asks the dual robustness question — how
    much to replicate so that data survives. A profile attaches to each
    machine [i] the probability [p i] that it fails (permanently loses
    its disk) during a run. Profiles are validated at construction:
    every probability must be a real number in [[0, 1]].

    Probabilities compose in log space ({!log_loss},
    {!prob_all_lost}) so that products over large replica sets neither
    underflow nor lose precision, and so the reliability solver can
    compare candidate sets by summing logs. *)

type t
(** An immutable profile over [m] machines. *)

val make : float array -> t
(** [make p] validates and copies [p]. Raises [Invalid_argument] when
    the array is empty or any entry is NaN or outside [[0, 1]]. *)

val uniform : m:int -> p:float -> t
(** All [m] machines fail independently with probability [p]. *)

val default_p : float
(** The conventional per-machine failure probability ([0.05]) assumed
    when an instance carries no profile — documented wherever it is
    used so results remain interpretable. *)

val m : t -> int
(** Number of machines. *)

val p : t -> int -> float
(** [p t i] is machine [i]'s failure probability. *)

val to_array : t -> float array
(** Fresh array of all probabilities, indexed by machine. *)

val log_loss : t -> int -> float
(** [log_loss t i] is [log (p t i)]: [neg_infinity] when the machine
    never fails, [0.] when it always does. *)

val prob_all_lost : t -> Bitset.t -> float
(** [prob_all_lost t set] is the probability that {e every} machine in
    [set] fails, assuming independence: [exp (sum of log_loss)]. An
    empty set has lost all of its (zero) members with certainty, so the
    result is [1.] — an empty replica set never protects anything. *)

val equal : t -> t -> bool
(** Pointwise equality (same [m], identical probabilities). *)

val to_string : t -> string
(** Comma-separated probabilities, round-trip precise ([%.17g]) —
    the wire form used by the [failp=] instance-header field. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}: comma-separated probabilities, one per
    machine. Returns [Error] with a human-readable message on malformed
    input (bad float, out-of-range probability, empty list). *)

val pp : Format.formatter -> t -> unit
