type t = {
  m : int;
  alpha : Uncertainty.alpha;
  tasks : Task.t array;
  failure : Failure.t option;
  speed_band : Speed_band.t option;
  topology : Topology.t option;
}

let make ?failure ?speed_band ?topology ~m ~alpha tasks =
  if m < 1 then invalid_arg "Instance.make: need at least one machine";
  Array.iteri
    (fun i task ->
      if Task.id task <> i then
        invalid_arg "Instance.make: task ids must be 0..n-1 in order")
    tasks;
  (match failure with
  | Some f when Failure.m f <> m ->
      invalid_arg
        (Printf.sprintf
           "Instance.make: failure profile covers %d machines, instance has %d"
           (Failure.m f) m)
  | _ -> ());
  (match speed_band with
  | Some b when Speed_band.m b <> m ->
      invalid_arg
        (Printf.sprintf
           "Instance.make: speed band covers %d machines, instance has %d"
           (Speed_band.m b) m)
  | _ -> ());
  (match topology with
  | Some tp when Topology.m tp <> m ->
      invalid_arg
        (Printf.sprintf
           "Instance.make: topology covers %d machines, instance has %d"
           (Topology.m tp) m)
  | _ -> ());
  { m; alpha; tasks = Array.copy tasks; failure; speed_band; topology }

let of_ests ?failure ?speed_band ?topology ~m ~alpha ?sizes ests =
  let n = Array.length ests in
  (match sizes with
  | Some s when Array.length s <> n ->
      invalid_arg "Instance.of_ests: sizes length mismatch"
  | _ -> ());
  let size_of i = match sizes with None -> 1.0 | Some s -> s.(i) in
  let tasks =
    Array.init n (fun i -> Task.make ~id:i ~est:ests.(i) ~size:(size_of i) ())
  in
  make ?failure ?speed_band ?topology ~m ~alpha tasks

let n t = Array.length t.tasks
let m t = t.m
let alpha t = t.alpha
let alpha_value t = Uncertainty.to_float t.alpha
let tasks t = Array.copy t.tasks
let task t j = t.tasks.(j)
let est t j = Task.est t.tasks.(j)
let size t j = Task.size t.tasks.(j)
let ests t = Array.map Task.est t.tasks
let sizes t = Array.map Task.size t.tasks
let failure t = t.failure

let failure_or_default t =
  match t.failure with
  | Some f -> f
  | None -> Failure.uniform ~m:t.m ~p:Failure.default_p

let with_failure t failure =
  make ?failure ?speed_band:t.speed_band ?topology:t.topology ~m:t.m
    ~alpha:t.alpha t.tasks

let speed_band t = t.speed_band

let speed_band_or_nominal t =
  match t.speed_band with
  | Some b -> b
  | None -> Speed_band.nominal ~m:t.m

let with_speed_band t speed_band =
  make ?failure:t.failure ?speed_band ?topology:t.topology ~m:t.m ~alpha:t.alpha
    t.tasks

let topology t = t.topology

let topology_or_uniform t =
  match t.topology with Some tp -> tp | None -> Topology.uniform ~m:t.m

let with_topology t topology =
  make ?failure:t.failure ?speed_band:t.speed_band ?topology ~m:t.m
    ~alpha:t.alpha t.tasks

let total_est t = Array.fold_left (fun acc task -> acc +. Task.est task) 0.0 t.tasks

let max_est t =
  Array.fold_left (fun acc task -> Float.max acc (Task.est task)) 0.0 t.tasks

let total_size t =
  Array.fold_left (fun acc task -> acc +. Task.size task) 0.0 t.tasks

let max_size t =
  Array.fold_left (fun acc task -> Float.max acc (Task.size task)) 0.0 t.tasks

let lpt_order t =
  let order = Array.init (n t) (fun j -> j) in
  Array.sort (fun a b -> Task.compare_est_desc t.tasks.(a) t.tasks.(b)) order;
  order

let pp ppf t =
  Format.fprintf ppf "instance(n=%d, m=%d, %a%t%t%t)" (n t) t.m Uncertainty.pp
    t.alpha
    (fun ppf ->
      match t.failure with
      | None -> ()
      | Some f -> Format.fprintf ppf ", %a" Failure.pp f)
    (fun ppf ->
      match t.speed_band with
      | None -> ()
      | Some b -> Format.fprintf ppf ", %a" Speed_band.pp b)
    (fun ppf ->
      match t.topology with
      | None -> ()
      | Some tp -> Format.fprintf ppf ", %a" Topology.pp tp)
