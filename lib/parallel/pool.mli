(** Chunked parallel iteration over OCaml 5 domains.

    Experiment sweeps (hundreds of independent instance × realization
    runs) are embarrassingly parallel; this module fans them out over
    domains with a simple static chunking, which is the right shape for
    uniform workloads on a laptop-scale machine. All work functions must
    be pure or operate on disjoint state — nothing here synchronizes
    user data.

    [domains = 1] degenerates to sequential execution with no domain
    spawned, so library code can use these unconditionally. *)

val recommended_domains : unit -> int
(** [max 1 (cpu cores - 1)], capped at 8 — unless the [USCHED_DOMAINS]
    environment variable holds a positive integer, which overrides both
    the count and the cap (so many-core machines aren't silently
    throttled). Experiment configs ([Runner.config.domains], the CLI's
    [--domains]) take this as their default and may override it again. *)

val parallel_init : domains:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~domains n f] is [Array.init n f] computed with up to
    [domains] domains. [f] runs on arbitrary domains in arbitrary order.
    Exceptions in [f] are re-raised (one representative). Raises
    [Invalid_argument] if [domains < 1] or [n < 0]. *)

val parallel_map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with the same contract as {!parallel_init}. *)

val parallel_for : domains:int -> int -> (int -> unit) -> unit
(** Parallel side-effecting loop over [0 .. n-1]; the callback must touch
    only index-disjoint state. *)
