let env_override () =
  match Sys.getenv_opt "USCHED_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | Some _ | None -> None)

let recommended_domains () =
  match env_override () with
  | Some v -> v
  | None -> Stdlib.min 8 (Stdlib.max 1 (Domain.recommended_domain_count () - 1))

let parallel_init ~domains n f =
  if domains < 1 then invalid_arg "Pool.parallel_init: domains < 1";
  if n < 0 then invalid_arg "Pool.parallel_init: negative n";
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.init n f
  else begin
    (* Element 0 is computed up front on the calling domain and doubles
       as the array's fill witness: the result lane is a plain
       ['a array] instead of an ['a option array], so no [Some] box is
       allocated per element and float results stay unboxed. Safe
       because every index in [1, n) is claimed by exactly one chunk
       and written before the joins complete. *)
    let first = f 0 in
    let results = Array.make n first in
    let error = Atomic.make None in
    let next = Atomic.make 1 in
    let chunk = Stdlib.max 1 (n / (domains * 4)) in
    let failed () =
      match Atomic.get error with Some _ -> true | None -> false
    in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n && not (failed ()) then begin
          let stop = Stdlib.min n (start + chunk) in
          (try
             for i = start to stop - 1 do
               results.(i) <- f i
             done
           with e ->
             (* Capture the backtrace with the exception so the re-raise
                below points at the worker's failure site, not here. *)
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (Stdlib.min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    results
  end

let parallel_map ~domains f a =
  parallel_init ~domains (Array.length a) (fun i -> f a.(i))

let parallel_for ~domains n f =
  ignore (parallel_init ~domains n (fun i -> f i))
