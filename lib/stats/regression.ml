type fit = { slope : float; intercept : float; r2 : float }

let ols ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.ols: length mismatch";
  if n < 2 then invalid_arg "Regression.ols: need at least 2 points";
  let fn = float_of_int n in
  let sum = Array.fold_left ( +. ) 0.0 in
  let mean_x = sum xs /. fn and mean_y = sum ys /. fn in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mean_x and dy = ys.(i) -. mean_y in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Regression.ols: degenerate x values";
  let slope = !sxy /. !sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let predict fit x = (fit.slope *. x) +. fit.intercept

let crossover a b =
  if Float.abs (a.slope -. b.slope) < 1e-12 then None
  else Some ((b.intercept -. a.intercept) /. (a.slope -. b.slope))
