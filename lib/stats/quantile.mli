(** Quantiles of finite samples.

    All functions work on a copy of the input, so callers' arrays are never
    reordered. Quantiles use linear interpolation between order statistics
    (type-7 estimator, the R/NumPy default). Samples are sorted with
    [Float.compare]; NaN inputs are rejected with [Invalid_argument]
    rather than silently poisoning the order statistics. *)

val quantile : float array -> q:float -> float
(** [quantile a ~q] with [0 <= q <= 1]. Raises [Invalid_argument] on an
    empty array, out-of-range [q], or a NaN sample. *)

val median : float array -> float
(** [quantile ~q:0.5]. *)

val quartiles : float array -> float * float * float
(** [(q1, median, q3)]. *)

val iqr : float array -> float
(** Interquartile range [q3 - q1]. *)

val quantiles : float array -> qs:float array -> float array
(** Batched {!quantile}, sorting the input only once. *)
