(** Bootstrap confidence intervals.

    Nonparametric percentile-bootstrap intervals for statistics whose
    sampling distribution is awkward (e.g. the {e maximum} measured
    ratio of an experiment sweep, where the normal approximation of
    {!Ci} does not apply). *)

type interval = { lo : float; hi : float; point : float }

val interval :
  ?resamples:int ->
  ?confidence:float ->
  statistic:(float array -> float) ->
  rng:Usched_prng.Rng.t ->
  float array ->
  interval
(** [interval ~statistic ~rng data] draws [resamples] (default 1000)
    bootstrap resamples with replacement, evaluates [statistic] on each,
    and returns the percentile interval at [confidence] (default 0.95)
    along with the point estimate on the original data. Raises
    [Invalid_argument] on empty data or a confidence outside (0, 1). *)

val mean_interval :
  ?resamples:int -> ?confidence:float -> rng:Usched_prng.Rng.t -> float array -> interval
(** {!interval} with the sample mean. *)
