let interpolate sorted q =
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let check_q q =
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile: q out of [0, 1]"

(* NaN-checked sorted copy. Polymorphic [compare] would box every
   element and order NaN inconsistently; [Float.compare] keeps the sort
   unboxed, and rejecting NaN up front keeps interpolation total. *)
let sorted_copy a =
  if Array.length a = 0 then invalid_arg "Quantile: empty sample";
  Array.iter
    (fun v -> if Float.is_nan v then invalid_arg "Quantile: NaN in sample")
    a;
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  sorted

let quantile a ~q =
  check_q q;
  interpolate (sorted_copy a) q

let quantiles a ~qs =
  Array.iter check_q qs;
  let sorted = sorted_copy a in
  Array.map (fun q -> interpolate sorted q) qs

let median a = quantile a ~q:0.5

let quartiles a =
  match quantiles a ~qs:[| 0.25; 0.5; 0.75 |] with
  | [| q1; q2; q3 |] -> (q1, q2, q3)
  | _ -> assert false

let iqr a =
  let q1, _, q3 = quartiles a in
  q3 -. q1
