(** Fixed-bin histograms with a terminal rendering.

    Used by experiment reports to show the empirical distribution of
    measured competitive ratios. *)

type t
(** An immutable histogram over [[lo, hi]] with equal-width bins. *)

val create : ?bins:int -> lo:float -> hi:float -> float array -> t
(** [create ~bins ~lo ~hi data] counts each datum into one of [bins]
    equal-width bins (default 10). Data outside [[lo, hi]] land in the
    first/last bin. Raises [Invalid_argument] if [bins <= 0] or
    [lo >= hi]. *)

val of_data : ?bins:int -> float array -> t
(** Like {!create} with [lo]/[hi] taken from the data (empty data yields
    the range [[0, 1]]). *)

val bins : t -> int
val counts : t -> int array
val total : t -> int

val bin_range : t -> int -> float * float
(** Inclusive-exclusive range covered by bin [i]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line bar rendering. *)
