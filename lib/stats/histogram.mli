(** Fixed-bin histograms with a terminal rendering.

    Used by experiment reports to show the empirical distribution of
    measured competitive ratios, and by the streaming service mode for
    per-task latency distributions. *)

type t
(** An immutable histogram over [[lo, hi]] with equal-width bins, plus
    out-of-range tallies. *)

val create : ?bins:int -> lo:float -> hi:float -> float array -> t
(** [create ~bins ~lo ~hi data] counts each datum into one of [bins]
    equal-width bins (default 10). [hi] itself lands in the last bin;
    data strictly outside [[lo, hi]] is tallied in {!underflow} /
    {!overflow} rather than silently folded into the edge bins (folding
    misreports exactly the tails a latency distribution is measured
    for). Raises [Invalid_argument] if [bins <= 0], [lo >= hi], or any
    of [lo], [hi], or the samples is NaN. *)

val of_data : ?bins:int -> float array -> t
(** Like {!create} with [lo]/[hi] taken from the data (empty data yields
    the range [[0, 1]]; all-equal data the range [[x, x + 1]]).
    Raises [Invalid_argument] on NaN samples — a NaN range would
    otherwise slip past {!create}'s [lo >= hi] guard and produce garbage
    bins. *)

val bins : t -> int
val counts : t -> int array

val total : t -> int
(** In-range samples only; [total t + underflow t + overflow t] is the
    input length. *)

val underflow : t -> int
(** Samples strictly below [lo]. Always 0 for {!of_data}. *)

val overflow : t -> int
(** Samples strictly above [hi]. Always 0 for {!of_data}. *)

val bin_range : t -> int -> float * float
(** Inclusive-exclusive range covered by bin [i] (the last bin also
    includes [hi]). *)

val pp : Format.formatter -> t -> unit
(** Multi-line bar rendering; appends an out-of-range line when
    underflow/overflow is non-zero. *)
