(** Ordinary least squares on paired samples.

    Used to detect crossover points between guarantee curves and to check
    scaling trends in benchmarks. *)

type fit = { slope : float; intercept : float; r2 : float }

val ols : xs:float array -> ys:float array -> fit
(** Least-squares line through the points. Raises [Invalid_argument] if
    the arrays differ in length or contain fewer than 2 points, or if all
    x values coincide. *)

val predict : fit -> float -> float
(** Evaluate the fitted line. *)

val crossover : fit -> fit -> float option
(** X coordinate where two fitted lines intersect, if their slopes
    differ. *)
