module Rng = Usched_prng.Rng

type interval = { lo : float; hi : float; point : float }

let interval ?(resamples = 1000) ?(confidence = 0.95) ~statistic ~rng data =
  let n = Array.length data in
  if n = 0 then invalid_arg "Bootstrap.interval: empty data";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap.interval: confidence out of (0, 1)";
  if resamples < 1 then invalid_arg "Bootstrap.interval: resamples < 1";
  let stats =
    Array.init resamples (fun _ ->
        let resample = Array.init n (fun _ -> data.(Rng.int rng n)) in
        statistic resample)
  in
  let tail = (1.0 -. confidence) /. 2.0 in
  let lo = Quantile.quantile stats ~q:tail in
  let hi = Quantile.quantile stats ~q:(1.0 -. tail) in
  { lo; hi; point = statistic data }

let mean_interval ?resamples ?confidence ~rng data =
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  interval ?resamples ?confidence ~statistic:mean ~rng data
