(** Online descriptive statistics (Welford's algorithm).

    Accumulates count, mean, variance, min and max in a single pass with
    numerically stable updates. Used by experiment runners to summarize
    measured ratios across many random repetitions. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** An empty accumulator. *)

val add : t -> float -> unit
(** Fold one observation in. *)

val add_array : t -> float array -> unit
(** Fold every element of the array in. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] for fewer than two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min : t -> float
(** Smallest observation; [infinity] when empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val sum : t -> float
(** Sum of all observations. *)

val merge : t -> t -> t
(** [merge a b] summarizes the union of both observation streams
    (parallel-reduction friendly). Neither input is mutated. *)

val of_array : float array -> t
(** Summary of an array in one call. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering. *)
