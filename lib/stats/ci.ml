type interval = { lo : float; hi : float; half_width : float }

let z_value confidence =
  match confidence with
  | 0.90 -> 1.6449
  | 0.95 -> 1.9600
  | 0.99 -> 2.5758
  | _ -> invalid_arg "Ci.z_value: supported levels are 0.90, 0.95, 0.99"

(* Multiplicative widening approximating t_{n-1}/z for small n. *)
let small_sample_factor n =
  if n >= 30 then 1.0
  else
    (* t/z ratio is roughly 1 + 1/(2(n-1)) + ... ; this simple surrogate is
       within a few percent of the exact ratio for n >= 5. *)
    1.0 +. (1.5 /. float_of_int (n - 1))

let mean_ci ?(confidence = 0.95) summary =
  let n = Summary.count summary in
  if n < 2 then invalid_arg "Ci.mean_ci: need at least 2 observations";
  let z = z_value confidence in
  let se = Summary.stddev summary /. sqrt (float_of_int n) in
  let half_width = z *. se *. small_sample_factor n in
  let mean = Summary.mean summary in
  { lo = mean -. half_width; hi = mean +. half_width; half_width }
