(** Confidence intervals for sample means.

    Normal-approximation intervals, adequate for the experiment repetition
    counts used in this repository (dozens to thousands of repetitions).
    For tiny samples the half-width is widened with a small-sample
    correction factor approximating the Student t quantile. *)

type interval = { lo : float; hi : float; half_width : float }

val mean_ci : ?confidence:float -> Summary.t -> interval
(** [mean_ci ~confidence s] is a confidence interval for the population
    mean from summary [s]. [confidence] is one of the supported levels
    0.90, 0.95 (default) or 0.99. Raises [Invalid_argument] on other
    levels or on summaries with fewer than 2 observations. *)

val z_value : float -> float
(** Standard normal two-sided critical value for a supported confidence
    level. *)
