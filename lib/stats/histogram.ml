type t = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

(* NaN anywhere poisons the whole histogram silently: [of_data] folds it
   into [lo]/[hi] (NaN range sails past the [lo >= hi] guard because
   every NaN comparison is false) and [bin_of]'s [int_of_float nan] is 0,
   so NaN samples land in bin 0 as if they were data. Reject it up
   front, same idiom as [Quantile]. *)
let check_bound name v =
  if Float.is_nan v then invalid_arg ("Histogram.create: " ^ name ^ " is NaN")

let create ?(bins = 10) ~lo ~hi data =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  check_bound "lo" lo;
  check_bound "hi" hi;
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let underflow = ref 0 and overflow = ref 0 in
  let observe x =
    if Float.is_nan x then invalid_arg "Histogram.create: NaN sample"
    else if x < lo then incr underflow
    else if x > hi then incr overflow
    else begin
      (* x in [lo, hi]: the quotient is mathematically < bins except at
         x = hi; clamp covers both the endpoint and float round-up. *)
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1
    end
  in
  Array.iter observe data;
  { lo; hi; counts; underflow = !underflow; overflow = !overflow }

let of_data ?(bins = 10) data =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Histogram.of_data: NaN sample")
    data;
  if Array.length data = 0 then create ~bins ~lo:0.0 ~hi:1.0 data
  else begin
    let lo = Array.fold_left Float.min infinity data in
    let hi = Array.fold_left Float.max neg_infinity data in
    let hi = if hi > lo then hi else lo +. 1.0 in
    create ~bins ~lo ~hi data
  end

let bins t = Array.length t.counts
let counts t = Array.copy t.counts
let total t = Array.fold_left ( + ) 0 t.counts
let underflow t = t.underflow
let overflow t = t.overflow

let bin_range t i =
  let n = bins t in
  if i < 0 || i >= n then invalid_arg "Histogram.bin_range: index";
  let width = (t.hi -. t.lo) /. float_of_int n in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let pp ppf t =
  let widest = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range t i in
      let bar = String.make (c * 40 / widest) '#' in
      Format.fprintf ppf "[%10.4g, %10.4g) %6d %s@." lo hi c bar)
    t.counts;
  if t.underflow > 0 || t.overflow > 0 then
    Format.fprintf ppf "out of range: %d below, %d above@." t.underflow
      t.overflow
