type t = { lo : float; hi : float; counts : int array }

let create ?(bins = 10) ~lo ~hi data =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bin_of x =
    let i = int_of_float ((x -. lo) /. width) in
    if i < 0 then 0 else if i >= bins then bins - 1 else i
  in
  Array.iter (fun x -> counts.(bin_of x) <- counts.(bin_of x) + 1) data;
  { lo; hi; counts }

let of_data ?(bins = 10) data =
  if Array.length data = 0 then create ~bins ~lo:0.0 ~hi:1.0 data
  else begin
    let lo = Array.fold_left Float.min infinity data in
    let hi = Array.fold_left Float.max neg_infinity data in
    let hi = if hi > lo then hi else lo +. 1.0 in
    create ~bins ~lo ~hi data
  end

let bins t = Array.length t.counts
let counts t = Array.copy t.counts
let total t = Array.fold_left ( + ) 0 t.counts

let bin_range t i =
  let n = bins t in
  if i < 0 || i >= n then invalid_arg "Histogram.bin_range: index";
  let width = (t.hi -. t.lo) /. float_of_int n in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let pp ppf t =
  let widest = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range t i in
      let bar = String.make (c * 40 / widest) '#' in
      Format.fprintf ppf "[%10.4g, %10.4g) %6d %s@." lo hi c bar)
    t.counts
