module Rng = Usched_prng.Rng

type t = { m : int; events : Fault.event list }

let of_events ~m events =
  if m < 1 then invalid_arg "Trace.of_events: m < 1";
  List.iter (Fault.check ~m) events;
  let events =
    List.stable_sort
      (fun (a : Fault.event) (b : Fault.event) ->
        match Float.compare a.time b.time with
        | 0 -> Int.compare a.machine b.machine
        | c -> c)
      events
  in
  { m; events }

let empty ~m = of_events ~m []

let m t = t.m
let events t = t.events
let is_empty t = t.events = []
let length t = List.length t.events

let crash_time t machine =
  (* Events are chronological, so the first match is the earliest. *)
  List.find_map
    (fun (e : Fault.event) ->
      match e.kind with
      | Fault.Crash when e.machine = machine -> Some e.time
      | _ -> None)
    t.events

let crashed t =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun (e : Fault.event) ->
         match e.kind with Fault.Crash -> Some e.machine | _ -> None)
       t.events)

let outages t machine =
  List.filter_map
    (fun (e : Fault.event) ->
      match e.kind with
      | Fault.Outage until when e.machine = machine -> Some (e.time, until)
      | _ -> None)
    t.events

let merge a b =
  if a.m <> b.m then invalid_arg "Trace.merge: machine counts differ";
  of_events ~m:a.m (a.events @ b.events)

let check_gen ~p ~horizon name =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Trace.%s: p=%g outside [0, 1]" name p);
  if not (horizon > 0.0 && Float.is_finite horizon) then
    invalid_arg (Printf.sprintf "Trace.%s: horizon %g must be positive" name horizon)

let per_machine rng ~m ~p ~horizon ~name make =
  check_gen ~p ~horizon name;
  let events = ref [] in
  for machine = 0 to m - 1 do
    (* Draw both variates unconditionally so the stream consumed per
       machine is fixed: traces at different rates from equal seeds share
       their failure times, and a machine's fate never depends on the
       draws of lower-numbered machines' extra parameters. *)
    let hit = Rng.bernoulli rng ~p in
    let time = Rng.float_range rng ~lo:0.0 ~hi:horizon in
    let event = make machine ~time in
    if hit then events := event :: !events
  done;
  of_events ~m !events

let random_crashes rng ~m ~p ~horizon =
  per_machine rng ~m ~p ~horizon ~name:"random_crashes" (fun machine ~time ->
      { Fault.machine; time; kind = Fault.Crash })

let profile_crashes rng ~profile ~horizon =
  let module Failure = Usched_model.Failure in
  if not (horizon > 0.0 && Float.is_finite horizon) then
    invalid_arg
      (Printf.sprintf "Trace.profile_crashes: horizon %g must be positive"
         horizon);
  let m = Failure.m profile in
  let events = ref [] in
  for machine = 0 to m - 1 do
    (* Same unconditional two-draw structure as [per_machine]: equal
       seeds give paired failure times across profiles, and machine i's
       fate is a function of draws 2i and 2i+1 alone. *)
    let hit = Rng.bernoulli rng ~p:(Failure.p profile machine) in
    let time = Rng.float_range rng ~lo:0.0 ~hi:horizon in
    if hit then events := { Fault.machine; time; kind = Fault.Crash } :: !events
  done;
  of_events ~m !events

let random_outages rng ~m ~p ~horizon ~duration:(lo, hi) =
  if not (0.0 < lo && lo <= hi) then
    invalid_arg "Trace.random_outages: duration range must satisfy 0 < lo <= hi";
  per_machine rng ~m ~p ~horizon ~name:"random_outages" (fun machine ~time ->
      let d = Rng.float_range rng ~lo ~hi in
      { Fault.machine; time; kind = Fault.Outage (time +. d) })

let random_slowdowns rng ~m ~p ~horizon ~factor:(lo, hi) =
  if not (0.0 < lo && lo <= hi && Float.is_finite hi) then
    invalid_arg
      "Trace.random_slowdowns: factor range must satisfy 0 < lo <= hi, finite";
  per_machine rng ~m ~p ~horizon ~name:"random_slowdowns" (fun machine ~time ->
      let f = Rng.float_range rng ~lo ~hi in
      { Fault.machine; time; kind = Fault.Slowdown f })

let revelation ~m ~at factors =
  if Array.length factors <> m then
    invalid_arg
      (Printf.sprintf "Trace.revelation: %d factors for %d machines"
         (Array.length factors) m);
  let events = ref [] in
  for machine = m - 1 downto 0 do
    (* A factor of exactly 1.0 is a no-op; emitting it anyway would
       perturb in-flight completion re-prediction (float resync), so the
       degenerate band would no longer reproduce the plain engine
       bit-for-bit. Skip it. *)
    if factors.(machine) <> 1.0 then
      events :=
        { Fault.machine; time = at; kind = Fault.Slowdown factors.(machine) }
        :: !events
  done;
  of_events ~m !events

let pp ppf t =
  Format.fprintf ppf "trace(m=%d, %d events:@ " t.m (length t);
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    Fault.pp ppf t.events;
  Format.fprintf ppf ")"
