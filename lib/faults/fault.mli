(** Machine failure models.

    The paper motivates replication with Hadoop-style fault tolerance:
    replicas exist so that work can continue when hardware dies mid-run.
    This module gives that motivation an executable form — the failure
    events a fault-injectable phase-2 engine consumes (see
    [Usched_desim.Engine.run_faulty]).

    Three models, all anchored at a wall-clock time of the simulation:

    - {b permanent crash}: the machine stops forever at [time]; its
      in-flight work is lost and so is its locally stored data (the
      HDFS "lost disk" event — eligibility sets shrink);
    - {b transient outage}: the machine is unavailable on
      [[time, until)]; in-flight work is lost (unless a {!Recovery}
      policy checkpoints it) but the data on disk survives, so the
      machine rejoins at [until];
    - {b speed change}: from [time] on, the machine runs at [factor]
      times its configured speed — a [factor < 1] is the MapReduce
      straggler that speculation exists to beat, a [factor > 1] a
      speed-up (an in-band speed revelation can go either way, see
      [Usched_model.Speed_band]). *)

type kind =
  | Crash  (** Permanent: machine and its stored data are gone. *)
  | Outage of float
      (** [Outage until]: unavailable on [[time, until)], data survives. *)
  | Slowdown of float
      (** [Slowdown factor]: speed multiplied by [factor] (any finite
          positive value; [> 1] speeds the machine up) from [time] on; a
          later slowdown replaces the factor. *)

type event = { machine : int; time : float; kind : kind }

val check : m:int -> event -> unit
(** Raises [Invalid_argument] unless [machine] is in [[0, m)], [time] is
    finite and non-negative, outages end strictly after they start, and
    speed factors are finite and strictly positive. The message names
    the offending event via {!pp}. *)

val pp : Format.formatter -> event -> unit
(** Renders as [crash(m2 @ 3.5)], [outage(m0 @ 1 until 4)],
    [slowdown(m1 @ 2 x0.5)] ([speedup(...)] when the factor
    exceeds 1). *)
