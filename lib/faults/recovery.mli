(** Recovery policies: how the scheduler reacts to failures.

    PR 1 made failures executable but left the engine only {e passively}
    robust: killed work is re-dispatched to pre-placed replicas, and a
    task whose last replica holder dies is irrecoverably stranded. A
    recovery policy makes the engine {e heal} (the HDFS/MapReduce story
    from the paper's introduction, taken one step further):

    - {b failure detection}: a machine's crash or outage becomes known
      to the scheduler only after [detection_latency] simulated time
      units. Until then the victim's in-flight task is believed to still
      be running — its re-dispatch (and any re-replication triggered by
      the failure) waits for detection. Machines report their own state
      truthfully on rejoin, so an outage shorter than the latency is
      detected at rejoin time at the latest.
    - {b online re-replication}: whenever a task's live replica count
      drops below its target, its data is copied from a surviving holder
      to the least-loaded healthy machine, paying [size / bandwidth]
      time for the transfer ({!transfer_time} — path-dependent when the
      instance carries a topology, with cross-zone latency and the
      zone link's bandwidth capping the rate). Eligibility sets grow back mid-run; a task
      strands only when its last holder dies before any copy completes
      or transfers out. The target is a {!target}: either the same fixed
      count [Fixed r] for every task (the PR 3 behaviour, [Fixed 0] =
      off), or [Degree] — heal each task back toward the replication
      degree its phase-1 placement originally gave it, so
      variable-degree placements (the reliability solver's) keep their
      per-task protection levels instead of being flattened to one
      global [r].
    - {b checkpoint/resume}: with [checkpoint_interval = c > 0], a copy
      checkpoints every [c] units of {e processed work} to its machine's
      local disk. A copy killed by an outage resumes from the last
      checkpoint when the machine rejoins (crashes destroy the disk and
      the checkpoints with it).
    - {b capped-backoff retry}: with [max_retries > 0], a machine that
      just blinked is not trusted with new work immediately: after its
      [b]-th outage it only receives dispatches
      [detection_latency * 2^(min (b-1) (max_retries-1))] time units
      after rejoining. It still serves data transfers meanwhile.

    {!none} disables all four mechanisms and is recognized {e
    physically} ([==]) by the engine, which then takes exactly the
    pre-recovery code path — [Engine.run_faulty] with the default policy
    is bit-for-bit the engine of PR 1. A policy built by [make ()] with
    all defaults is {e structurally} neutral but still exercises the
    recovery machinery; the golden qcheck property in [test_recovery]
    proves both produce identical schedules, events, outcomes, and
    metrics. *)

type target =
  | Fixed of int
      (** Heal every task back up to this many live replicas; [0] = off. *)
  | Degree
      (** Heal each task back up to its initial phase-1 replication
          degree (computed by the engine at run start). *)

type t = private {
  detection_latency : float;  (** Failure-to-knowledge lag, [>= 0]. *)
  rereplication_target : target;
      (** Per-task live-replica target; [Fixed 0] = off. *)
  bandwidth : float;
      (** Data units copied per time unit, [> 0]; [infinity] makes
          transfers instantaneous. *)
  checkpoint_interval : float;
      (** Units of processed work between checkpoints; [0] = off. *)
  max_retries : int;
      (** Number of distinct backoff levels for blinking machines;
          [0] = no backoff. *)
}

val none : t
(** No detection latency, no re-replication, no checkpointing, no
    backoff: the engine's default, bit-for-bit identical to the
    pre-recovery fault engine. *)

val make :
  ?detection_latency:float ->
  ?rereplication_target:target ->
  ?bandwidth:float ->
  ?checkpoint_interval:float ->
  ?max_retries:int ->
  unit ->
  t
(** Validated constructor; every omitted field defaults to its {!none}
    value. Raises [Invalid_argument] when [detection_latency] or
    [checkpoint_interval] is negative, NaN, or infinite, when
    [bandwidth] is not [> 0] (NaN rejected; [infinity] allowed), or
    when [Fixed] [rereplication_target] or [max_retries] is negative. *)

val is_none : t -> bool
(** Physical equality with {!none}: true only for the shared constant,
    so [make ()] — structurally equal — still drives the engine through
    the (behaviour-neutral) recovery code path. *)

val is_active : t -> bool
(** [not (is_none t)]. *)

val heals : t -> bool
(** Whether re-replication is on at all: [Fixed r] with [r > 0], or
    [Degree]. *)

val target_for : t -> degree:int -> int
(** The live-replica target for a task whose initial phase-1 replication
    degree was [degree]: [r] under [Fixed r], [degree] under [Degree]. *)

val target_to_string : target -> string
(** ["0"], ["2"], ... for [Fixed]; ["degree"]. *)

val target_of_string : string -> (target, string) result
(** Inverse of {!target_to_string} — a nonnegative count or the word
    ["degree"] (case-insensitive). The CLI [--recover] converter. *)

val transfer_time :
  ?topology:Usched_model.Topology.t -> t -> src:int -> dst:int -> size:float -> float
(** Time for a re-replication of [size] data units from machine [src]
    to machine [dst]. Without a topology (or within one zone) this is
    the scalar policy: [size / bandwidth] — bit-for-bit the arithmetic
    the engine used before topologies existed. Across zones the path's
    latency is added and the effective rate is
    [min bandwidth (path bandwidth)]: the copy is bounded by both the
    policy's re-replication pipeline and the inter-zone link. *)

val backoff : t -> blinks:int -> float
(** Extra distrust delay after a machine's [blinks]-th outage
    ([blinks >= 1]):
    [detection_latency * 2^(min (blinks-1) (max_retries-1))], or [0]
    when [max_retries = 0] or [detection_latency = 0]. *)

val pp : Format.formatter -> t -> unit
(** Renders as [recovery(none)] or
    [recovery(detect=0.5, target=2, bw=4, ckpt=1, retries=3)]. *)
