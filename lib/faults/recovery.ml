(* Recovery policies. See recovery.mli for the model description.

   [none] must stay a single shared constant: the engine recognizes it
   physically ([==]) to take the exact pre-recovery code path, while a
   structurally-equal policy built by [make ()] exercises the recovery
   machinery (the golden test relies on that distinction). *)

type target = Fixed of int | Degree

type t = {
  detection_latency : float;
  rereplication_target : target;
  bandwidth : float;
  checkpoint_interval : float;
  max_retries : int;
}

let none =
  {
    detection_latency = 0.0;
    rereplication_target = Fixed 0;
    bandwidth = infinity;
    checkpoint_interval = 0.0;
    max_retries = 0;
  }

let bad fmt = Format.kasprintf invalid_arg fmt

let check_finite_nonneg ~what x =
  if Float.is_nan x then bad "Recovery.make: %s is NaN" what;
  if x < 0.0 then bad "Recovery.make: negative %s (%g)" what x;
  if x = infinity then bad "Recovery.make: infinite %s" what

let make ?(detection_latency = 0.0) ?(rereplication_target = Fixed 0)
    ?(bandwidth = infinity) ?(checkpoint_interval = 0.0) ?(max_retries = 0) ()
    =
  check_finite_nonneg ~what:"detection latency" detection_latency;
  check_finite_nonneg ~what:"checkpoint interval" checkpoint_interval;
  if Float.is_nan bandwidth then bad "Recovery.make: bandwidth is NaN";
  if not (bandwidth > 0.0) then
    bad "Recovery.make: bandwidth must be > 0 (got %g)" bandwidth;
  (match rereplication_target with
  | Fixed r when r < 0 ->
      bad "Recovery.make: negative re-replication target (%d)" r
  | Fixed _ | Degree -> ());
  if max_retries < 0 then
    bad "Recovery.make: negative max retries (%d)" max_retries;
  { detection_latency; rereplication_target; bandwidth; checkpoint_interval;
    max_retries }

let is_none t = t == none
let is_active t = not (is_none t)

let heals t = match t.rereplication_target with Fixed r -> r > 0 | Degree -> true
let target_for t ~degree =
  match t.rereplication_target with Fixed r -> r | Degree -> degree

let target_to_string = function
  | Fixed r -> string_of_int r
  | Degree -> "degree"

let target_of_string raw =
  match String.lowercase_ascii (String.trim raw) with
  | "degree" -> Ok Degree
  | s -> (
      match int_of_string_opt s with
      | Some r when r >= 0 -> Ok (Fixed r)
      | Some r -> Error (Printf.sprintf "negative re-replication target %d" r)
      | None ->
          Error
            (Printf.sprintf
               "bad re-replication target %S (want a count or \"degree\")" raw))

(* Path-dependent transfer time. Without a topology this is exactly the
   scalar-bandwidth arithmetic the engine hard-coded ([size / bandwidth]
   — the same float operations, so the refactor is bit-for-bit
   invisible); with one, the path adds its latency and the effective
   rate is the slower of the policy's pipeline and the zone link.
   Intra-zone paths have infinite link bandwidth and zero latency, so a
   uniform (single-zone) topology reproduces the scalar policy
   bit-for-bit too — [Float.min bw infinity = bw] and [0.0 +. x = x]
   for the nonnegative durations involved. *)
let transfer_time ?topology t ~src ~dst ~size =
  match topology with
  | None -> size /. t.bandwidth
  | Some topo ->
      if Usched_model.Topology.same_zone topo src dst then size /. t.bandwidth
      else
        Usched_model.Topology.path_latency topo ~src ~dst
        +. (size
           /. Float.min t.bandwidth
                (Usched_model.Topology.path_bandwidth topo ~src ~dst))

let backoff t ~blinks =
  if t.max_retries = 0 || t.detection_latency <= 0.0 || blinks <= 0 then 0.0
  else
    t.detection_latency
    *. Float.pow 2.0 (float_of_int (min (blinks - 1) (t.max_retries - 1)))

let pp ppf t =
  if is_none t then Format.fprintf ppf "recovery(none)"
  else
    Format.fprintf ppf
      "recovery(detect=%g, target=%s, bw=%g, ckpt=%g, retries=%d)"
      t.detection_latency
      (target_to_string t.rereplication_target)
      t.bandwidth t.checkpoint_interval t.max_retries
