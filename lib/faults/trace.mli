(** Failure traces: the full fault history of one simulated run.

    A trace is a validated, chronologically sorted list of {!Fault.event}s
    against a fixed machine count. The empty trace makes
    [Engine.run_faulty] coincide exactly with [Engine.run]; random traces
    (driven by [Usched_prng]) turn every experiment into a fault-injection
    study. Generators draw per-machine, so a trace built from one seed is
    identical no matter which placement strategy later consumes it —
    comparisons across strategies are paired by construction. *)

type t

val empty : m:int -> t
(** No failures ever. Raises [Invalid_argument] if [m < 1]. *)

val of_events : m:int -> Fault.event list -> t
(** Validates every event (see {!Fault.check}) and sorts them by time,
    then machine id, then listing order. *)

val m : t -> int
val events : t -> Fault.event list
(** Chronological (time, then machine id) order. *)

val is_empty : t -> bool
val length : t -> int

val crash_time : t -> int -> float option
(** Earliest permanent crash of a machine, if any. *)

val crashed : t -> int list
(** Machines with at least one [Crash] event, ascending. *)

val outages : t -> int -> (float * float) list
(** [(from, until)] outage intervals of a machine, chronological. *)

val merge : t -> t -> t
(** Union of two traces over the same machine count. *)

(** {1 Random trace generators}

    All draw through [Usched_prng.Rng], so a single integer seed
    reproduces the full fault history. [horizon] is the time window in
    which failures begin (typically the no-fault makespan); it must be
    positive. [p] is the independent per-machine probability of
    suffering the event at all. *)

val random_crashes :
  Usched_prng.Rng.t -> m:int -> p:float -> horizon:float -> t
(** Each machine crashes with probability [p], at a time uniform in
    [(0, horizon)]. *)

val profile_crashes :
  Usched_prng.Rng.t ->
  profile:Usched_model.Failure.t -> horizon:float -> t
(** {!random_crashes} with a heterogeneous per-machine probability:
    machine [i] crashes with probability [Failure.p profile i], at a
    time uniform in [(0, horizon)]. Injected crash frequencies therefore
    match the profile the reliability solver plans against — the
    convergence property is pinned by a qcheck test. Draws two variates
    per machine unconditionally, like every generator here, so traces
    from equal seeds are paired across profiles. *)

val random_outages :
  Usched_prng.Rng.t ->
  m:int -> p:float -> horizon:float -> duration:float * float -> t
(** Each machine suffers with probability [p] one outage starting
    uniformly in [(0, horizon)] and lasting uniform-[duration] time. *)

val random_slowdowns :
  Usched_prng.Rng.t ->
  m:int -> p:float -> horizon:float -> factor:float * float -> t
(** Each machine changes speed with probability [p] from a time uniform
    in [(0, horizon)] to a factor uniform in [factor] — any finite range
    with [0 < lo <= hi]. Sub-unit ranges model classical stragglers;
    ranges above 1 model speed-ups. *)

val revelation : m:int -> at:float -> float array -> t
(** A mid-run speed revelation as a fault trace: at time [at], machine
    [i]'s speed is multiplied by [factors.(i)] (one [Fault.Slowdown]
    event per machine, relative to the engine's configured base speeds).
    Factors of exactly 1.0 are skipped — they are semantic no-ops, and
    omitting them keeps a degenerate revelation bit-identical to no
    revelation at all. Composes with every other trace via {!merge} and
    runs under [run_faulty]/[run_stream] with recovery and dispatch
    unchanged. Raises [Invalid_argument] when [factors] does not have
    length [m] or an entry is not finite and positive. *)

val pp : Format.formatter -> t -> unit
