type kind =
  | Crash
  | Outage of float
  | Slowdown of float

type event = { machine : int; time : float; kind : kind }

let pp ppf e =
  match e.kind with
  | Crash -> Format.fprintf ppf "crash(m%d @ %g)" e.machine e.time
  | Outage until ->
      Format.fprintf ppf "outage(m%d @ %g until %g)" e.machine e.time until
  | Slowdown factor when factor > 1.0 ->
      Format.fprintf ppf "speedup(m%d @ %g x%g)" e.machine e.time factor
  | Slowdown factor ->
      Format.fprintf ppf "slowdown(m%d @ %g x%g)" e.machine e.time factor

(* Validation errors name the offending event via [pp] so a bad entry in
   a long generated trace is identifiable without a debugger. *)
let reject e fmt =
  Format.kasprintf
    (fun msg -> invalid_arg (Format.asprintf "Fault.check: %s in %a" msg pp e))
    fmt

let check ~m e =
  if e.machine < 0 || e.machine >= m then
    reject e "machine %d outside [0, %d)" e.machine m;
  if not (Float.is_finite e.time) || e.time < 0.0 then
    reject e "bad event time %g" e.time;
  match e.kind with
  | Crash -> ()
  | Outage until ->
      if not (Float.is_finite until) || until <= e.time then
        reject e "outage [%g, %g) is empty" e.time until
  | Slowdown factor ->
      (* Any finite positive factor: < 1 is the classical straggler,
         > 1 a speed-up — an in-band speed revelation can go either
         way. NaN fails both comparisons and is rejected too. *)
      if not (Float.is_finite factor && factor > 0.0) then
        reject e "speed factor %g must be finite and > 0" factor
