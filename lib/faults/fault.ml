type kind =
  | Crash
  | Outage of float
  | Slowdown of float

type event = { machine : int; time : float; kind : kind }

let check ~m e =
  if e.machine < 0 || e.machine >= m then
    invalid_arg (Printf.sprintf "Fault.check: machine %d outside [0, %d)" e.machine m);
  if not (Float.is_finite e.time) || e.time < 0.0 then
    invalid_arg (Printf.sprintf "Fault.check: bad event time %g" e.time);
  match e.kind with
  | Crash -> ()
  | Outage until ->
      if not (Float.is_finite until) || until <= e.time then
        invalid_arg
          (Printf.sprintf "Fault.check: outage [%g, %g) is empty" e.time until)
  | Slowdown factor ->
      if not (factor > 0.0 && factor <= 1.0) then
        invalid_arg
          (Printf.sprintf "Fault.check: slowdown factor %g outside (0, 1]" factor)

let pp ppf e =
  match e.kind with
  | Crash -> Format.fprintf ppf "crash(m%d @ %g)" e.machine e.time
  | Outage until ->
      Format.fprintf ppf "outage(m%d @ %g until %g)" e.machine e.time until
  | Slowdown factor ->
      Format.fprintf ppf "slowdown(m%d @ %g x%g)" e.machine e.time factor
