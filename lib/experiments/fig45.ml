module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Gantt = Usched_desim.Gantt
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng

let example_instance () =
  (* Tasks 0-3 are time-heavy with small data; tasks 4-7 are short but
     carry large data — exactly the mix SBO's split is designed for. *)
  let ests = [| 8.0; 7.0; 6.0; 5.0; 1.0; 1.0; 0.5; 0.5 |] in
  let sizes = [| 1.0; 1.0; 1.0; 1.0; 6.0; 6.0; 8.0; 8.0 |] in
  Instance.of_ests ~m:4 ~alpha:(Uncertainty.alpha 1.3) ~sizes ests

let show_split instance split =
  let table =
    Table.create
      ~columns:
        [
          ("task", Table.Right);
          ("estimate", Table.Right);
          ("size", Table.Right);
          ("set", Table.Left);
        ]
  in
  Array.iteri
    (fun j in_s1 ->
      Table.add_row table
        [
          string_of_int j;
          Table.cell_float (Instance.est instance j);
          Table.cell_float (Instance.size instance j);
          (if in_s1 then "S1 (time-intensive)" else "S2 (memory-intensive)");
        ])
    split.Core.Sbo.time_intensive;
  print_string (Table.render table)

let show_algorithm name algo instance realization =
  let placement, schedule = Core.Two_phase.run_full algo instance realization in
  Printf.printf "\n%s schedule (phase 2, actual times):\n" name;
  print_string (Gantt.render ~width:56 schedule);
  let mem = Core.Memory.of_placement instance placement in
  let mem_star =
    Core.Memory.lower_bound ~m:(Instance.m instance)
      ~sizes:(Instance.sizes instance)
  in
  Printf.printf
    "C_max = %.3f   Mem_max = %.3f   (memory lower bound %.3f)\n\
     max replication = %d, total replicas = %d\n"
    (Schedule.makespan schedule) mem mem_star
    (Core.Placement.max_replication placement)
    (Core.Placement.total_replicas placement)

let run config =
  Runner.print_section
    "Figures 4 & 5 -- SABO and ABO example schedules (m=4, delta=1)";
  let instance = example_instance () in
  let delta = 1.0 in
  let split = Core.Sbo.split ~delta instance in
  Printf.printf
    "SBO split with delta=%g: task j joins S2 iff est_j/C^pi1 <= delta *\n\
     size_j/Mem^pi2 (C^pi1 = %.3f, Mem^pi2 = %.3f).\n\n"
    delta split.Core.Sbo.c_pi1 split.Core.Sbo.mem_pi2;
  show_split instance split;
  let rng = Rng.create ~seed:11 () in
  let realization = Realization.log_uniform_factor instance rng in
  let m = Instance.m instance in
  show_algorithm "Figure 4: SABO (static, no replication)"
    (Runner.strategy config ~m (Strategy.sabo ~delta))
    instance realization;
  show_algorithm
    "Figure 5: ABO (S2 pinned, S1 replicated everywhere + online LS)"
    (Runner.strategy config ~m (Strategy.abo ~delta))
    instance realization;
  Printf.printf
    "\nReading: ABO trades memory (replicas of S1 tasks on every machine)\n\
     for a tighter makespan; SABO stays replica-free, with more memory\n\
     headroom but a looser makespan.\n"
