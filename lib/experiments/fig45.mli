(** Figures 4 and 5: example schedules of SABO_Δ and ABO_Δ.

    A small instance mixing processing-time-intensive and
    memory-intensive tasks is pushed through both memory-aware
    algorithms; the output shows the SBO split (S1 vs S2), the phase-1
    placements, the phase-2 Gantt, and the resulting (makespan, memory)
    pair — the paper's two illustrations, plus the numbers behind them. *)

val example_instance : unit -> Usched_model.Instance.t
(** The shared demonstration instance: m = 4, eight tasks, half
    time-heavy, half memory-heavy, alpha = 1.3. *)

val run : Runner.config -> unit
