(** recovery-sweep: stranded tasks, degradation, and wasted work vs
    detection latency and re-replication bandwidth (paired failure
    traces across policies), plus a checkpoint/resume comparison on
    outage-only traces. The online-healing counterpart of
    [fault-sweep]'s static replication-degree table. *)

val run : Runner.config -> unit
