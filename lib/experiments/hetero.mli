(** Heterogeneous (uniform) machines: replication vs slow nodes.

    Extension experiment: the same replication strategies on a cluster
    whose machines differ in speed (the realistic MapReduce setting of
    the paper's introduction). Measures makespan ratios against the
    uniform-machines lower bound, with and without processing-time
    uncertainty, showing that replication pays twice — against bad
    estimates and against slow nodes. *)

val run : Runner.config -> unit
