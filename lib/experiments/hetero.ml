module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Speed_band = Usched_model.Speed_band
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let run config =
  Runner.print_section
    "Heterogeneous machines -- replication vs slow nodes (extension)";
  let m = 8 in
  (* Two fast nodes, four standard, two half-speed stragglers — the
     degenerate (known-speed) slice of the tiered speed band. *)
  let tiered = Speed_band.tiered ~m () in
  let speeds = Speed_band.los tiered in
  Printf.printf "m=%d machines with speeds [%s], n=48 tasks.\n\n" m
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%g") speeds)));
  let algo variant =
    Runner.strategy config ~m (Strategy.uniform ~variant ~speeds)
  in
  let strategies alpha =
    ignore alpha;
    Strategy.
      [
        ("no replication (ECT-LPT)", algo U_no_choice);
        ("groups of 2 (k=4)", algo (U_group 4));
        ("full replication", algo U_no_restriction);
      ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("alpha", Table.Right);
          ("strategy", Table.Left);
          ("mean ratio vs LB", Table.Right);
          ("worst ratio vs LB", Table.Right);
        ]
  in
  List.iter
    (fun alpha ->
      List.iter
        (fun (name, algo) ->
          let rng = Rng.create ~seed:config.Runner.seed () in
          let summary = Summary.create () in
          for _ = 1 to Stdlib.max 10 config.Runner.reps do
            let instance =
              Workload.generate
                (Workload.Uniform { lo = 1.0; hi = 10.0 })
                ~n:48 ~m
                ~alpha:(Uncertainty.alpha alpha)
                rng
            in
            let realization =
              if alpha > 1.0 then Realization.log_uniform_factor instance rng
              else Realization.exact instance
            in
            let schedule = Core.Two_phase.run algo instance realization in
            let lb =
              Core.Uniform.lower_bound ~speeds (Realization.actuals realization)
            in
            Summary.add summary (Schedule.makespan schedule /. lb)
          done;
          Table.add_row table
            [
              Table.cell_float ~decimals:1 alpha;
              name;
              Table.cell_float (Summary.mean summary);
              Table.cell_float (Summary.max summary);
            ])
        (strategies alpha))
    [ 1.0; 2.0 ];
  print_string (Table.render table);
  Printf.printf
    "\n(Ratios are against the uniform-machines lower bound, so they are\n\
     pessimistic. Pinned placement suffers twice — estimates mislead it\n\
     AND a task stuck on a 0.5x node cannot move; replication absorbs\n\
     both effects, and the gap widens with alpha.)\n";
  (* The speed-band cell: the same tiers, but each machine only known to
     within a +/-25%% band around its nominal speed. The placement is
     committed at the nominal speeds; the adversary then reveals the
     worst in-band corner. *)
  let band = Speed_band.widen tiered ~spread:1.25 in
  Printf.printf
    "\nSpeed-band cell: nominal tiers widened by 1.25x (each speed only\n\
     known to a [s/1.25, 1.25*s] band), alpha=1. 'adv ratio' is the worst\n\
     in-band revelation's makespan over the lower bound at the revealed\n\
     speeds.\n\n";
  let band_table =
    Table.create
      ~columns:
        [
          ("strategy", Table.Left);
          ("mean adv ratio", Table.Right);
          ("worst adv ratio", Table.Right);
        ]
  in
  List.iter
    (fun (name, algo) ->
      let rng = Rng.create ~seed:config.Runner.seed () in
      let summary = Summary.create () in
      for _ = 1 to Stdlib.max 10 config.Runner.reps do
        let instance =
          Workload.generate
            (Workload.Uniform { lo = 1.0; hi = 10.0 })
            ~n:48 ~m
            ~alpha:(Uncertainty.alpha 1.0)
            rng
        in
        let instance = Instance.with_speed_band instance (Some band) in
        let realization = Realization.exact instance in
        let actuals = Realization.actuals realization in
        let placement = algo.Core.Two_phase.phase1 instance in
        let sets = Core.Placement.sets placement in
        let order = Instance.lpt_order instance in
        let run_ratio revealed =
          Schedule.makespan
            (Engine.run ~speeds:revealed instance realization ~placement:sets
               ~order)
          /. Core.Uniform.lower_bound ~speeds:revealed actuals
        in
        let _, adv = Core.Speed_adversary.worst_case ~run:run_ratio instance placement band in
        Summary.add summary adv
      done;
      Table.add_row band_table
        [
          name;
          Table.cell_float (Summary.mean summary);
          Table.cell_float (Summary.max summary);
        ])
    (strategies 1.0);
  print_string (Table.render band_table)
