module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let run config =
  Runner.print_section
    "Heterogeneous machines -- replication vs slow nodes (extension)";
  let m = 8 in
  (* Two fast nodes, four standard, two half-speed stragglers. *)
  let speeds = [| 2.0; 2.0; 1.0; 1.0; 1.0; 1.0; 0.5; 0.5 |] in
  Printf.printf "m=%d machines with speeds [%s], n=48 tasks.\n\n" m
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%g") speeds)));
  let algo variant =
    Runner.strategy config ~m (Strategy.uniform ~variant ~speeds)
  in
  let strategies alpha =
    ignore alpha;
    Strategy.
      [
        ("no replication (ECT-LPT)", algo U_no_choice);
        ("groups of 2 (k=4)", algo (U_group 4));
        ("full replication", algo U_no_restriction);
      ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("alpha", Table.Right);
          ("strategy", Table.Left);
          ("mean ratio vs LB", Table.Right);
          ("worst ratio vs LB", Table.Right);
        ]
  in
  List.iter
    (fun alpha ->
      List.iter
        (fun (name, algo) ->
          let rng = Rng.create ~seed:config.Runner.seed () in
          let summary = Summary.create () in
          for _ = 1 to Stdlib.max 10 config.Runner.reps do
            let instance =
              Workload.generate
                (Workload.Uniform { lo = 1.0; hi = 10.0 })
                ~n:48 ~m
                ~alpha:(Uncertainty.alpha alpha)
                rng
            in
            let realization =
              if alpha > 1.0 then Realization.log_uniform_factor instance rng
              else Realization.exact instance
            in
            let schedule = Core.Two_phase.run algo instance realization in
            let lb =
              Core.Uniform.lower_bound ~speeds (Realization.actuals realization)
            in
            Summary.add summary (Schedule.makespan schedule /. lb)
          done;
          Table.add_row table
            [
              Table.cell_float ~decimals:1 alpha;
              name;
              Table.cell_float (Summary.mean summary);
              Table.cell_float (Summary.max summary);
            ])
        (strategies alpha))
    [ 1.0; 2.0 ];
  print_string (Table.render table);
  Printf.printf
    "\n(Ratios are against the uniform-machines lower bound, so they are\n\
     pessimistic. Pinned placement suffers twice — estimates mislead it\n\
     AND a task stuck on a 0.5x node cannot move; replication absorbs\n\
     both effects, and the gap widens with alpha.)\n"
