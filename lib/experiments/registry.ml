type experiment = {
  id : string;
  title : string;
  run : Runner.config -> unit;
}

let all =
  [
    {
      id = "fig1";
      title = "Figure 1: Theorem-1 adversary, online vs offline optimal";
      run = Fig1.run;
    };
    {
      id = "fig2";
      title = "Figure 2: replication in groups (m=6, k=2)";
      run = Fig2.run;
    };
    {
      id = "tab1";
      title = "Table 1: replication-bound model guarantees";
      run = Table1.run;
    };
    {
      id = "fig3";
      title = "Figure 3: ratio-replication tradeoff (m=210)";
      run = Fig3.run;
    };
    {
      id = "fig45";
      title = "Figures 4-5: SABO/ABO example schedules";
      run = Fig45.run;
    };
    {
      id = "tab2";
      title = "Table 2: memory-aware guarantees (SABO, ABO)";
      run = Table2.run;
    };
    {
      id = "fig6";
      title = "Figure 6: memory-makespan tradeoff";
      run = Fig6.run;
    };
    {
      id = "ablation-phase2";
      title = "Ablation: LS vs LPT order in group replication";
      run = Ablations.phase2_order;
    };
    {
      id = "ablation-adversary";
      title = "Ablation: adversary strength";
      run = Ablations.adversary_strength;
    };
    {
      id = "ablation-selective";
      title = "Ablation: selective replication";
      run = Ablations.selective_replication;
    };
    {
      id = "ablation-budget";
      title = "Ablation: replication policies at equal cost";
      run = Budget_ablation.run;
    };
    {
      id = "ablation-errors";
      title = "Ablation: iid vs clustered vs biased estimation errors";
      run = Ablations.correlated_errors;
    };
    {
      id = "alpha-sweep";
      title = "Alpha sweep: offline-to-online boundary (open problem)";
      run = Alpha_sweep.run;
    };
    {
      id = "fault-tolerance";
      title = "Fault tolerance: machine failure after placement";
      run = Fault_tolerance.run;
    };
    {
      id = "fault-sweep";
      title = "Fault sweep: mid-run crashes, re-dispatch, speculation";
      run = Fault_sweep.run;
    };
    {
      id = "reliability";
      title = "Reliability tradeoff: makespan x memory x survival";
      run = Reliability_sweep.run;
    };
    {
      id = "recovery-sweep";
      title = "Recovery sweep: detection, re-replication, checkpoints";
      run = Recovery_sweep.run;
    };
    {
      id = "stream";
      title = "Stream: open-system latency under offered load";
      run = Stream_sweep.run;
    };
    {
      id = "policy-sweep";
      title = "Policy sweep: pluggable dispatch rules on fixed placements";
      run = Policy_sweep.run;
    };
    {
      id = "speed-robust";
      title = "Speed-robust: sand/bricks/rocks under banded machine speeds";
      run = Speed_sweep.run;
    };
    {
      id = "hetero";
      title = "Heterogeneous machines: replication vs slow nodes";
      run = Hetero.run;
    };
    {
      id = "locality";
      title = "Locality: transfer cost vs zone-outage robustness";
      run = Locality.run;
    };
    {
      id = "lb-search";
      title = "Exact minimax lower bounds on the Theorem-1 family";
      run = Lb_search.run;
    };
    {
      id = "portfolio";
      title = "Portfolio selection over scenario sets";
      run = Portfolio.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let execute config e =
  (* Fresh registry per experiment so the manifest's phase timings cover
     exactly this run. *)
  let config = Runner.fresh_metrics config in
  let t0 = Usched_obs.Metrics.now_s () in
  e.run config;
  let wall_time_s = Usched_obs.Metrics.now_s () -. t0 in
  Runner.maybe_manifest config ~id:e.id ~title:e.title ~wall_time_s

let run_all config = List.iter (execute config) all
