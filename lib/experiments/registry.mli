(** The experiment registry: every paper artifact by id.

    Binds experiment ids (as documented in DESIGN.md) to their runners so
    the CLI and the bench harness share one source of truth. *)

type experiment = {
  id : string;
  title : string;
  run : Runner.config -> unit;
}

val all : experiment list
(** Paper artifacts first (fig1, fig2, tab1, fig3, fig45, tab2, fig6),
    then the ablations. *)

val find : string -> experiment option

val execute : Runner.config -> experiment -> unit
(** Run one experiment under a fresh metrics registry, measuring its
    wall time; when [config.csv_dir] is set, a [<id>.manifest.json] run
    manifest (seed, config, wall time, phase timings) is written next to
    the experiment's CSVs. Prefer this over calling [e.run] directly. *)

val run_all : Runner.config -> unit
(** {!execute} every experiment in order. *)
