module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Trace = Usched_faults.Trace
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let m = 6
let n = 36
let alpha = 1.5
let rates = [ 0.1; 0.25; 0.5 ]

(* Ring placement with [k] replicas: task [j] lives on machines
   [j mod m .. (j+k-1) mod m]. The rings are nested in [k], so under one
   crash trace a task stranded at [k+1] replicas is also stranded at [k]
   — completion probability is monotone in [k] by construction, which is
   what makes the first table a clean sweep of the replication degree. *)
let ring_placement ~k =
  Core.Placement.of_sets ~m
    (Array.init n (fun j ->
         Bitset.of_list m (List.init k (fun i -> (j + i) mod m))))

type cell = {
  task_completion : Summary.t; (* fraction of tasks completed per run *)
  full_runs : int ref; (* runs with zero stranded tasks *)
  runs : int ref;
  degradation : Summary.t; (* faulty/healthy makespan, full runs only *)
  wasted : Summary.t; (* wasted work / total actual work *)
}

let cell () =
  {
    task_completion = Summary.create ();
    full_runs = ref 0;
    runs = ref 0;
    degradation = Summary.create ();
    wasted = Summary.create ();
  }

let record cell ~healthy ~total_work (outcome : Engine.outcome) =
  incr cell.runs;
  Summary.add cell.task_completion
    (float_of_int outcome.Engine.completed /. float_of_int n);
  Summary.add cell.wasted (outcome.Engine.wasted /. total_work);
  if outcome.Engine.stranded = [] then begin
    incr cell.full_runs;
    Summary.add cell.degradation (outcome.Engine.makespan /. healthy)
  end

let cell_row cell =
  [
    Printf.sprintf "%.1f%%" (100.0 *. Summary.mean cell.task_completion);
    Printf.sprintf "%d/%d" !(cell.full_runs) !(cell.runs);
    (if Summary.count cell.degradation = 0 then "-"
     else Table.cell_float (Summary.mean cell.degradation));
    (if Summary.count cell.degradation = 0 then "-"
     else Table.cell_float (Summary.max cell.degradation));
    Printf.sprintf "%.1f%%" (100.0 *. Summary.mean cell.wasted);
  ]

let generate rng =
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha alpha)
      rng
  in
  (instance, Realization.log_uniform_factor instance rng)

(* ----------------- part A: replication degree sweep ----------------- *)

let degree_sweep config =
  let ks = [ 1; 2; 3; 6 ] in
  let reps = Stdlib.max 10 config.Runner.reps in
  Printf.printf
    "A. Replication degree: n=%d tasks, m=%d machines, alpha=%g, nested\n\
     ring placements, LPT order, crash times uniform in the k=1 healthy\n\
     makespan. One crash trace per repetition, shared across every k.\n\n"
    n m alpha;
  let table =
    Table.create
      ~columns:
        [
          ("crash rate", Table.Right);
          ("replicas k", Table.Right);
          ("tasks done", Table.Right);
          ("full runs", Table.Right);
          ("mean degr", Table.Right);
          ("worst degr", Table.Right);
          ("wasted", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  List.iteri
    (fun rate_idx rate ->
      let cells = List.map (fun k -> (k, cell ())) ks in
      let master = Rng.create ~seed:(config.Runner.seed + (7919 * rate_idx)) () in
      for _ = 1 to reps do
        let rng = Rng.split master in
        let instance, realization = generate rng in
        let order = Instance.lpt_order instance in
        let total_work = Realization.total realization in
        let horizon =
          Schedule.makespan
            (Engine.run instance realization
               ~placement:(Core.Placement.sets (ring_placement ~k:1))
               ~order)
        in
        let faults = Trace.random_crashes rng ~m ~p:rate ~horizon in
        List.iter
          (fun (k, cell) ->
            let placement = Core.Placement.sets (ring_placement ~k) in
            let healthy =
              Schedule.makespan (Engine.run instance realization ~placement ~order)
            in
            let outcome =
              Engine.run_faulty instance realization ~faults ~placement ~order
            in
            record cell ~healthy ~total_work outcome)
          cells
      done;
      List.iter
        (fun (k, cell) ->
          let row = cell_row cell in
          Table.add_row table
            (Printf.sprintf "%.2f" rate :: string_of_int k :: row);
          csv_rows :=
            [
              Printf.sprintf "%.4f" rate;
              string_of_int k;
              Printf.sprintf "%.6f" (Summary.mean cell.task_completion);
              Printf.sprintf "%d" !(cell.full_runs);
              Printf.sprintf "%d" !(cell.runs);
              (if Summary.count cell.degradation = 0 then "nan"
               else Printf.sprintf "%.6f" (Summary.mean cell.degradation));
              Printf.sprintf "%.6f" (Summary.mean cell.wasted);
            ]
            :: !csv_rows)
        cells)
    rates;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"fault_sweep_degree"
    ~header:
      [ "rate"; "k"; "task_completion"; "full_runs"; "runs"; "mean_degradation";
        "wasted_fraction" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nCompletion climbs monotonically with k (nested rings: losing a task\n\
     at k+1 replicas implies losing it at k); degradation and wasted work\n\
     rise with the crash rate — killed work is re-run from scratch on a\n\
     surviving replica holder.\n"

(* ----------------- part B: the paper's strategies ------------------- *)

let strategy_specs =
  Strategy.
    [
      ("LPT-No Choice (k=1)", no_replication Lpt);
      ("LS-Group k=3 (2 repl)", group ~order:Ls ~k:3);
      ("LS-Group k=2 (3 repl)", group ~order:Ls ~k:2);
      ("Budgeted k=2", budgeted ~k:2);
      ("Budgeted k=3", budgeted ~k:3);
      ("LPT-No Restriction (k=m)", full_replication Lpt);
    ]

let strategy_sweep config =
  let reps = Stdlib.max 10 config.Runner.reps in
  Printf.printf
    "\nB. The paper's strategies under mid-run crashes (same workload and\n\
     crash trace for every strategy within a repetition; the faulty run\n\
     re-dispatches in LPT order).\n\n";
  let table =
    Table.create
      ~columns:
        [
          ("strategy", Table.Left);
          ("crash rate", Table.Right);
          ("tasks done", Table.Right);
          ("full runs", Table.Right);
          ("mean degr", Table.Right);
          ("worst degr", Table.Right);
          ("wasted", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  List.iter
    (fun (name, spec) ->
      let algo = Runner.strategy config ~m spec in
      List.iteri
        (fun rate_idx rate ->
          let cell = cell () in
          let master =
            Rng.create ~seed:(config.Runner.seed + (7919 * rate_idx)) ()
          in
          for _ = 1 to reps do
            (* Identical streams per (rate, rep) across strategies: the
               instance, realization, and trace are all paired. *)
            let rng = Rng.split master in
            let instance, realization = generate rng in
            let order = Instance.lpt_order instance in
            let total_work = Realization.total realization in
            let horizon =
              Schedule.makespan
                (Engine.run instance realization
                   ~placement:(Core.Placement.sets (ring_placement ~k:1))
                   ~order)
            in
            let faults = Trace.random_crashes rng ~m ~p:rate ~horizon in
            let placement = algo.Core.Two_phase.phase1 instance in
            let healthy =
              Schedule.makespan
                (algo.Core.Two_phase.phase2 instance placement realization)
            in
            let outcome =
              Engine.run_faulty instance realization ~faults
                ~placement:(Core.Placement.sets placement)
                ~order
            in
            record cell ~healthy ~total_work outcome
          done;
          Table.add_row table (name :: Printf.sprintf "%.2f" rate :: cell_row cell);
          csv_rows :=
            [
              name;
              Printf.sprintf "%.4f" rate;
              Printf.sprintf "%.6f" (Summary.mean cell.task_completion);
              Printf.sprintf "%d" !(cell.full_runs);
              Printf.sprintf "%d" !(cell.runs);
              (if Summary.count cell.degradation = 0 then "nan"
               else Printf.sprintf "%.6f" (Summary.mean cell.degradation));
              Printf.sprintf "%.6f" (Summary.mean cell.wasted);
            ]
            :: !csv_rows)
        rates)
    strategy_specs;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"fault_sweep_strategies"
    ~header:
      [ "strategy"; "rate"; "task_completion"; "full_runs"; "runs";
        "mean_degradation"; "wasted_fraction" ]
    (List.rev !csv_rows)

(* ----------------- part C: speculation vs stragglers ---------------- *)

let speculation_sweep config =
  let reps = Stdlib.max 10 config.Runner.reps in
  let beta = 1.5 in
  Printf.printf
    "\nC. Speculative re-execution vs stragglers: 30%% of machines slow to\n\
     a 0.2-0.5 speed factor mid-run; an idle replica holder may start a\n\
     backup once a copy runs past %.1fx its estimate (first copy to\n\
     finish wins). Replication is what makes speculation possible.\n\n"
    beta;
  let table =
    Table.create
      ~columns:
        [
          ("placement", Table.Left);
          ("speculation", Table.Left);
          ("mean slowdown", Table.Right);
          ("worst slowdown", Table.Right);
          ("wasted", Table.Right);
        ]
  in
  let placements =
    [
      ("ring k=2", 2);
      ("ring k=3", 3);
      ("full (k=6)", 6);
    ]
  in
  List.iter
    (fun (pname, k) ->
      List.iter
        (fun speculation ->
          let slowdown = Summary.create () and waste = Summary.create () in
          let master = Rng.create ~seed:(config.Runner.seed + 31337) () in
          for _ = 1 to reps do
            let rng = Rng.split master in
            let instance, realization = generate rng in
            let order = Instance.lpt_order instance in
            let placement = Core.Placement.sets (ring_placement ~k) in
            let healthy =
              Schedule.makespan (Engine.run instance realization ~placement ~order)
            in
            let faults =
              Trace.random_slowdowns rng ~m ~p:0.3 ~horizon:healthy
                ~factor:(0.2, 0.5)
            in
            let outcome =
              Engine.run_faulty ?speculation instance realization ~faults
                ~placement ~order
            in
            Summary.add slowdown (outcome.Engine.makespan /. healthy);
            Summary.add waste
              (outcome.Engine.wasted /. Realization.total realization)
          done;
          Table.add_row table
            [
              pname;
              (match speculation with
              | None -> "off"
              | Some b -> Printf.sprintf "beta=%.1f" b);
              Table.cell_float (Summary.mean slowdown);
              Table.cell_float (Summary.max slowdown);
              Printf.sprintf "%.1f%%" (100.0 *. Summary.mean waste);
            ])
        [ None; Some beta ])
    placements;
  print_string (Table.render table);
  Printf.printf
    "\nSpeculation trades duplicate work for response time, exactly the\n\
     replication-for-latency tradeoff of the queueing literature (Wang\n\
     et al.; Sun et al.): the slowdown drop is largest where replicas\n\
     are plentiful, and the wasted-work bill is the price of the race.\n"

let run config =
  Runner.print_section
    "Fault sweep -- mid-run crashes, re-dispatch, and speculation";
  degree_sweep config;
  strategy_sweep config;
  speculation_sweep config
