(** policy-sweep: what the engine's dispatch rule is worth, placement
    held fixed. Replays paired workloads (healthy) and paired crash
    traces with online re-replication (faulty) under every built-in
    [Dispatch] policy — list-priority, least-loaded holder, earliest
    estimated completion, seeded random tie-breaking — reporting
    makespan ratios against the default rule, completion, degradation,
    and wasted work. The dispatch-layer counterpart of
    [ablation-phase2]'s priority-order ablation. *)

val run : Runner.config -> unit
