(** Figure 1 / Theorem 1: the lower-bound adversary for [|M_j| = 1].

    Reproduces the paper's construction: [λm] identical unit-estimate
    tasks, placement by LPT-No Choice, then the adversary inflates the
    most loaded machine by [α] and deflates the rest. Prints the online
    vs. offline-optimal Gantt of the [λ = 3, m = 6] illustration and a
    table of measured ratios converging to the theoretical bound
    [α²m/(α²+m-1)] as [λ] grows. *)

val theoretical_ratio_at_lambda : m:int -> alpha:float -> lambda:int -> float
(** The pre-limit ratio from the proof:
    [α²mλ / (λ(α²+m-1) + m(α²+1))]. *)

val run : Runner.config -> unit
