(* locality: replication transfer cost vs zone-outage robustness across
   network topologies. Full replication is maximally robust but pays
   every cross-zone link for every task; the zone-aware builders
   (zonegroup:K, localbudget:B) aim for the same fault-domain coverage
   at a fraction of the transfer bill. Each topology replays paired
   workloads: a healthy run (the engine charges staging before a
   machine's first copy), then one whole-zone outage per zone with
   online re-replication enabled. The acceptance gauge counts
   topologies where some zone-aware placement is strictly cheaper than
   full replication at equal-or-better completion. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Topology = Usched_model.Topology
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let m = 8
let n = 40
let alpha = 1.5

(* One intra-datacenter, one two-rack, one geo-distributed topology.
   Specs go through [Topology.of_spec] so the experiment exercises the
   same grammar the CLI exposes. *)
let topologies =
  [
    ("uniform", "uniform");
    ("two-rack", "zones:2:0.5");
    ("multi-zone-wan", "zones:4:0.1:5");
  ]

let strategies =
  [
    ("full (m copies)", Strategy.full_replication Strategy.Lpt);
    ("ls-group k=2", Strategy.group ~order:Strategy.Ls ~k:2);
    ("zonegroup:2", Strategy.zone_group ~k:2);
    ("localbudget:2.5", Strategy.local_budget ~budget:2.5);
  ]

let zone_aware = [ "zonegroup:2"; "localbudget:2.5" ]

(* Crash every machine of [zone] at time [at] — a whole fault domain
   going dark mid-run. *)
let zone_outage topo ~zone ~at =
  Trace.of_events ~m
    (List.filter_map
       (fun i ->
         if Topology.zone topo i = zone then
           Some { Fault.machine = i; time = at; kind = Fault.Crash }
         else None)
       (List.init m Fun.id))

let generate rng =
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha alpha)
      rng
  in
  (instance, Realization.log_uniform_factor instance rng)

type cell = {
  cost : Summary.t; (* Placement.replication_cost per rep *)
  healthy : Summary.t; (* healthy C_max, staging included *)
  completion : Summary.t; (* completed fraction per zone outage *)
  degradation : Summary.t; (* outage/healthy makespan, full runs only *)
}

let cell () =
  {
    cost = Summary.create ();
    healthy = Summary.create ();
    completion = Summary.create ();
    degradation = Summary.create ();
  }

let run config =
  Runner.print_section
    "Locality -- replication transfer cost vs zone-outage robustness";
  let reps = Stdlib.max 10 config.Runner.reps in
  Printf.printf
    "n=%d, m=%d, alpha=%g, %d reps per topology. Per rep: healthy replay\n\
     (engine stages data before a machine's first copy of a task), then\n\
     one whole-zone crash per zone at 0.3 x healthy makespan, with online\n\
     re-replication (target 2, bandwidth 1) healing over the topology's\n\
     links. Transfer cost is Placement.replication_cost: data born on\n\
     machine j mod m, every replica pays its path's latency + size/bw.\n\n"
    n m alpha reps;
  let table =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("strategy", Table.Left);
          ("transfer cost", Table.Right);
          ("healthy C_max", Table.Right);
          ("tasks done", Table.Right);
          ("mean degr", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  let wins = ref 0 in
  let recovery =
    Recovery.make ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:1.0 ()
  in
  List.iter
    (fun (tname, spec) ->
      let topo =
        match Topology.of_spec ~m spec with
        | Ok t -> t
        | Error msg -> invalid_arg ("locality: " ^ msg)
      in
      let cells =
        List.map
          (fun (name, s) -> (name, Runner.strategy config ~m s, cell ()))
          strategies
      in
      let master = Rng.create ~seed:(config.Runner.seed + 7177) () in
      for _ = 1 to reps do
        (* One workload per rep, shared by every strategy and zone. *)
        let rng = Rng.split master in
        let instance, realization = generate rng in
        let instance = Instance.with_topology instance (Some topo) in
        let order = Instance.lpt_order instance in
        let sizes = Instance.sizes instance in
        List.iter
          (fun (_, algo, cell) ->
            let placement = algo.Core.Two_phase.phase1 instance in
            let sets = Core.Placement.sets placement in
            Summary.add cell.cost
              (Core.Placement.replication_cost placement ~topology:topo ~sizes);
            let healthy =
              Schedule.makespan
                (Engine.run instance realization ~placement:sets ~order)
            in
            Summary.add cell.healthy healthy;
            for zone = 0 to Topology.zones topo - 1 do
              let faults = zone_outage topo ~zone ~at:(0.3 *. healthy) in
              let outcome =
                Engine.run_faulty ~recovery instance realization ~faults
                  ~placement:sets ~order
              in
              Summary.add cell.completion
                (float_of_int outcome.Engine.completed /. float_of_int n);
              if outcome.Engine.stranded = [] then
                Summary.add cell.degradation
                  (outcome.Engine.makespan /. healthy)
            done)
          cells
      done;
      List.iter
        (fun (name, _, cell) ->
          Table.add_row table
            [
              tname;
              name;
              Table.cell_float (Summary.mean cell.cost);
              Table.cell_float (Summary.mean cell.healthy);
              Printf.sprintf "%.1f%%" (100.0 *. Summary.mean cell.completion);
              (if Summary.count cell.degradation = 0 then "-"
               else Table.cell_float (Summary.mean cell.degradation));
            ];
          csv_rows :=
            [
              tname;
              name;
              Printf.sprintf "%.6f" (Summary.mean cell.cost);
              Printf.sprintf "%.6f" (Summary.mean cell.healthy);
              Printf.sprintf "%.6f" (Summary.mean cell.completion);
              (if Summary.count cell.degradation = 0 then "nan"
               else Printf.sprintf "%.6f" (Summary.mean cell.degradation));
            ]
            :: !csv_rows)
        cells;
      (* The acceptance question, per topology: does some zone-aware
         placement beat full replication's transfer bill strictly while
         completing at least as many tasks under every zone outage? *)
      let full =
        List.find (fun (name, _, _) -> name = "full (m copies)") cells
      in
      let _, _, full_cell = full in
      let full_cost = Summary.mean full_cell.cost in
      let full_done = Summary.mean full_cell.completion in
      let best =
        List.fold_left
          (fun acc (name, _, cell) ->
            if
              List.mem name zone_aware
              && Summary.mean cell.completion >= full_done -. 1e-9
            then
              match acc with
              | Some (_, c) when c <= Summary.mean cell.cost -> acc
              | _ -> Some (name, Summary.mean cell.cost)
            else acc)
          None cells
      in
      let key suffix = Printf.sprintf "locality.%s.%s" tname suffix in
      (match best with
      | Some (bname, bcost) when bcost < full_cost ->
          incr wins;
          Printf.printf
            "%s: %s wins -- transfer cost %.2f vs full replication's %.2f at\n\
             equal-or-better completion.\n"
            tname bname bcost full_cost;
          Metrics.set
            (Metrics.gauge config.Runner.metrics (key "cost_ratio"))
            (bcost /. full_cost)
      | _ ->
          Printf.printf
            "%s: no strict transfer-cost win over full replication (its\n\
             transfers are already free here).\n"
            tname;
          Metrics.set
            (Metrics.gauge config.Runner.metrics (key "cost_ratio"))
            1.0);
      Metrics.set
        (Metrics.gauge config.Runner.metrics (key "completion_delta"))
        ((match best with
         | Some (bname, _) ->
             let _, _, c =
               List.find (fun (name, _, _) -> name = bname) cells
             in
             Summary.mean c.completion
         | None -> full_done)
        -. full_done))
    topologies;
  print_string (Table.render table);
  Metrics.set
    (Metrics.gauge config.Runner.metrics "locality.wins")
    (float_of_int !wins);
  Runner.maybe_csv config ~name:"locality"
    ~header:
      [ "topology"; "strategy"; "transfer_cost"; "healthy_makespan";
        "task_completion"; "mean_degradation" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nZone-aware placement strictly cheaper than full replication at\n\
     equal-or-better zone-outage robustness on %d/%d topologies (the\n\
     uniform topology's transfers are free, so no strict win exists\n\
     there).\n"
    !wins (List.length topologies)
