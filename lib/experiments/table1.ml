module Instance = Usched_model.Instance
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng

let formula_table () =
  Printf.printf
    "Guarantee formulas evaluated over a (m, alpha) grid. 'Th1 bound' is\n\
     the impossibility: no |M_j|=1 algorithm beats it.\n\n";
  let table =
    Table.create
      ~columns:
        [
          ("m", Table.Right);
          ("alpha", Table.Right);
          ("Th1 bound (|M_j|=1)", Table.Right);
          ("LPT-No Choice (Th2)", Table.Right);
          ("LPT-No Restr. (Th3)", Table.Right);
          ("Graham LS 2-1/m", Table.Right);
          ("LS-Group k=3 (Th4)", Table.Right);
        ]
  in
  List.iter
    (fun m ->
      List.iter
        (fun alpha ->
          Table.add_row table
            [
              string_of_int m;
              Table.cell_float ~decimals:1 alpha;
              Table.cell_float (Core.Guarantees.no_replication_lower_bound ~m ~alpha);
              Table.cell_float (Core.Guarantees.lpt_no_choice ~m ~alpha);
              Table.cell_float (Core.Guarantees.lpt_no_restriction ~m ~alpha);
              Table.cell_float (Core.Guarantees.list_scheduling ~m);
              Table.cell_float (Core.Guarantees.ls_group ~m ~k:3 ~alpha);
            ])
        [ 1.1; 1.5; 2.0 ])
    [ 6; 30; 210 ];
  print_string (Table.render table)

let measured_table config =
  Printf.printf
    "\nMeasured worst-case ratios (adversarial search on small instances,\n\
     exact optimum) vs. each algorithm's guarantee. m=4, alpha=1.5,\n\
     n in {8, 10, 12} over three workload families.\n\n";
  let m = 4 and alpha = 1.5 in
  let alpha_v = Uncertainty.alpha alpha in
  let specs =
    [
      Workload.Identical 1.0;
      Workload.Uniform { lo = 1.0; hi = 10.0 };
      Workload.Bimodal { p_long = 0.3; short_mean = 1.0; long_mean = 8.0 };
    ]
  in
  let instances =
    List.concat_map
      (fun n ->
        List.mapi
          (fun i spec ->
            let rng = Rng.create ~seed:(config.Runner.seed + (1000 * n) + i) () in
            Workload.generate spec ~n ~m ~alpha:alpha_v rng)
          specs)
      [ 8; 10; 12 ]
  in
  let algo spec = Runner.strategy config ~m spec in
  let algorithms =
    [
      ( algo Strategy.(no_replication Lpt),
        Core.Guarantees.lpt_no_choice ~m ~alpha );
      ( algo Strategy.(full_replication Lpt),
        Core.Guarantees.full_replication ~m ~alpha );
      (algo Strategy.(full_replication Ls), Core.Guarantees.list_scheduling ~m);
      ( algo Strategy.(group ~order:Ls ~k:2),
        Core.Guarantees.ls_group ~m ~k:2 ~alpha );
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("algorithm", Table.Left);
          ("guarantee", Table.Right);
          ("worst measured", Table.Right);
          ("within guarantee", Table.Left);
        ]
  in
  List.iter
    (fun (algo, guarantee) ->
      let worst =
        List.fold_left
          (fun acc instance ->
            Float.max acc (Runner.adversarial_ratio config algo instance))
          neg_infinity instances
      in
      Table.add_row table
        [
          algo.Core.Two_phase.name;
          Table.cell_float guarantee;
          Table.cell_float worst;
          (if worst <= guarantee +. 1e-9 then "yes" else "NO (!)");
        ])
    algorithms;
  print_string (Table.render table);
  let th1 = Core.Guarantees.no_replication_lower_bound ~m ~alpha in
  Printf.printf
    "\nTheorem 1 impossibility at (m=%d, alpha=%g): %.4f -- LPT-No Choice's\n\
     guarantee (%.4f) must lie above it, and replication strategies may\n\
     drop below it (that is the point of the paper).\n"
    m alpha th1
    (Core.Guarantees.lpt_no_choice ~m ~alpha)

let run config =
  Runner.print_section "Table 1 -- Summary of the replication bound model";
  formula_table ();
  measured_table config
