(** Stream experiment: the open-system service mode swept over offered
    load. Poisson arrivals feed each placement strategy at rho in
    {0.6, 0.85, 1.1}; reports per-task latency quantiles (p50/p95/p99),
    machine utilization, and a latency-drift instability verdict that
    locates each strategy's stability frontier (every cell at rho = 1.1
    is past it). Arrivals, workloads and realizations are paired across
    strategies within a load point. *)

val run : Runner.config -> unit
