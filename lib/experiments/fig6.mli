(** Figure 6: the memory-makespan guarantee tradeoff.

    Sweeps Δ and draws, in the (memory guarantee, makespan guarantee)
    plane, the parametric curves of SABO_Δ and ABO_Δ together with the
    impossibility hyperbola, for the paper's three configurations:
    (m=5, α²=2, ρ=4/3), (m=5, α²=3, ρ=1), (m=5, α²=3, ρ=4/3).
    Also reports the crossover: for [α·ρ1 >= 2] ABO dominates on
    makespan, while SABO always dominates on memory. *)

val sabo_curve :
  alpha:float -> rho:float -> deltas:float list -> (float * float) list
(** [(memory guarantee, makespan guarantee)] pairs along the sweep. *)

val abo_curve :
  m:int -> alpha:float -> rho:float -> deltas:float list -> (float * float) list

val run : Runner.config -> unit
