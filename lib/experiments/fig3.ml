module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Plot = Usched_report.Ascii_plot
module Rng = Usched_prng.Rng

let divisors n =
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let guarantee_series ~m ~alpha =
  divisors m
  |> List.map (fun k -> (m / k, Core.Guarantees.ls_group ~m ~k ~alpha))
  |> List.sort (fun (ra, _) (rb, _) -> Int.compare ra rb)

let measured_series config ~algo_of_replication ~m ~alpha ~replications =
  List.map
    (fun replication ->
      let sweep =
        Runner.random_sweep config
          ~algo:(algo_of_replication replication)
          ~spec:(Workload.Uniform { lo = 1.0; hi = 100.0 })
          ~realize:(fun instance rng ->
            Realization.extremes ~p_high:0.3 instance rng)
          ~n:(4 * m) ~m ~alpha
      in
      (replication, sweep.Runner.worst))
    replications

let one_alpha config ~m ~alpha =
  Printf.printf "\n--- m=%d, alpha=%g ---\n" m alpha;
  let guarantees = guarantee_series ~m ~alpha in
  let lpt_nc = Core.Guarantees.lpt_no_choice ~m ~alpha in
  let th1 = Core.Guarantees.no_replication_lower_bound ~m ~alpha in
  let lpt_nr = Core.Guarantees.full_replication ~m ~alpha in
  let replications = [ 1; 3; 10; 42; 210 ] in
  let measured =
    measured_series config
      ~algo_of_replication:(fun replication ->
        Runner.strategy config ~m Strategy.(group ~order:Ls ~k:(m / replication)))
      ~m ~alpha ~replications
  in
  (* Extension series: overlapping least-loaded sets at the same
     replica budget (no guarantee from the paper, measured only). *)
  let measured_budgeted =
    measured_series config
      ~algo_of_replication:(fun replication ->
        Runner.strategy config ~m (Strategy.budgeted ~k:replication))
      ~m ~alpha ~replications
  in
  let table =
    Table.create
      ~columns:
        [
          ("replication |M_j|", Table.Right);
          ("groups k", Table.Right);
          ("LS-Group guarantee", Table.Right);
          ("measured worst (rand)", Table.Right);
          ("budgeted worst (rand)", Table.Right);
        ]
  in
  List.iter
    (fun (replication, guarantee) ->
      let cell series =
        match List.assoc_opt replication series with
        | Some v -> Table.cell_float v
        | None -> ""
      in
      Table.add_row table
        [
          string_of_int replication;
          string_of_int (m / replication);
          Table.cell_float guarantee;
          cell measured;
          cell measured_budgeted;
        ])
    guarantees;
  print_string (Table.render table);
  Runner.maybe_csv config
    ~name:(Printf.sprintf "fig3_m%d_alpha%g" m alpha)
    ~header:[ "replication"; "groups_k"; "guarantee"; "measured_worst" ]
    (List.map
       (fun (replication, guarantee) ->
         [
           string_of_int replication;
           string_of_int (m / replication);
           Printf.sprintf "%.6f" guarantee;
           (match List.assoc_opt replication measured with
           | Some v -> Printf.sprintf "%.6f" v
           | None -> "");
         ])
       guarantees);
  Printf.printf
    "Reference points: Th1 impossibility at replication 1: %.4f;\n\
     LPT-No Choice guarantee: %.4f; LPT-No Restriction (replication %d): %.4f.\n"
    th1 lpt_nc m lpt_nr;
  let to_points l = Array.of_list (List.map (fun (x, y) -> (float_of_int x, y)) l) in
  print_string
    (Plot.plot ~width:64 ~height:18 ~x_label:"replicas per task (log-ish axis: raw)"
       ~y_label:"competitive ratio"
       ~title:(Printf.sprintf "Figure 3, m=%d, alpha=%g" m alpha)
       [
         { Plot.label = "LS-Group guarantee"; glyph = '*'; points = to_points guarantees };
         {
           Plot.label = "LPT-No Choice guarantee (replication 1)";
           glyph = 'o';
           points = [| (1.0, lpt_nc) |];
         };
         {
           Plot.label = "Theorem 1 impossibility (replication 1)";
           glyph = 'x';
           points = [| (1.0, th1) |];
         };
         {
           Plot.label = "LPT-No Restriction (replication m)";
           glyph = '+';
           points = [| (float_of_int m, lpt_nr) |];
         };
         {
           Plot.label = "measured worst (random workloads)";
           glyph = '@';
           points = to_points measured;
         };
       ])

let run config =
  Runner.print_section "Figure 3 -- Ratio-replication tradeoff (m=210)";
  let m = 210 in
  List.iter (fun alpha -> one_alpha config ~m ~alpha) [ 1.1; 1.5; 2.0 ];
  Printf.printf
    "\nPaper's reading, checked here: for large alpha a handful of\n\
     replicas per task already beats the best possible unreplicated\n\
     guarantee; for small alpha replication buys little.\n"
