(** Portfolio selection over scenario sets (extension).

    Practical decision support built on the paper's algorithms: for each
    workload family, sample a scenario set of plausible realizations and
    pick, from a portfolio spanning the paper's replication spectrum,
    the strategy with the best worst-case (and best average) makespan.
    Shows that the right replication level is workload-dependent — and
    that the scenario machinery identifies it automatically. *)

val run : Runner.config -> unit
