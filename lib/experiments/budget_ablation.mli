(** Replication policies at equal cost (beyond-paper ablation).

    The paper fixes one policy per replication level (groups); its
    conclusion asks whether "more general replication policies" help.
    This ablation compares three policies that spend the same number of
    replicas per task — disjoint groups (LS-Group), overlapping
    least-loaded sets (Budgeted), and all-or-nothing selective
    replication — plus the memory-budget policy across budgets. *)

val run : Runner.config -> unit
