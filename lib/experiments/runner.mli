(** Shared machinery for the experiment harness.

    Ratio measurement with a sound optimum estimate (exact branch and
    bound below a size threshold, lower bounds above), randomized sweeps
    over workloads and realization models, and worst-case searches that
    combine all adversaries. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Core = Usched_core

type config = {
  seed : int;  (** Master seed; every sub-experiment derives from it. *)
  reps : int;  (** Repetitions per sampled point. *)
  domains : int;  (** Domains for parallel sweeps. *)
  exact_n : int;  (** Use exact B&B optimum up to this many tasks. *)
  csv_dir : string option;
      (** When set, experiments also dump their raw series as CSV files
          into this directory (created recursively if missing), each
          accompanied by a [<id>.manifest.json] run manifest. *)
  metrics : Usched_obs.Metrics.t;
      (** Per-run instrument registry: sweeps and adversary searches
          record phase timings ([phase.sweep], [phase.adversary]), CSV
          output records [runner.csv_write]/[runner.csv_files]. The
          registry lands in the run manifest. Single-domain — never
          updated from inside parallel workers. *)
  algo_specs : string list ref;
      (** Strategy spec strings the experiment built via {!strategy}, in
          first-use order and deduplicated. Recorded in the run manifest
          ([algo_specs]) so every run is replayable by name. *)
}

val default_config : config
(** [seed = 42], [reps = 50], one domain per core (capped, overridable
    via [USCHED_DOMAINS]), exact optimum up to 16 tasks, no CSV output, a
    fresh live metrics registry. *)

val fresh_metrics : config -> config
(** Same config with a new empty metrics registry and spec record — used
    by the experiment registry so each manifest reports its own timings
    and algorithms. *)

val strategy : config -> m:int -> Core.Strategy.t -> Core.Two_phase.t
(** [Strategy.build spec ~m], with the spec string recorded for the run
    manifest. Experiments construct every algorithm through this (or
    {!record_spec} + [Strategy.build] when they build for several [m]). *)

val record_spec : config -> Core.Strategy.t -> unit
(** Record a spec in [config.algo_specs] without building it (dedup,
    first-use order). *)

val maybe_csv :
  config -> name:string -> header:string list -> string list list -> unit
(** Write [<csv_dir>/<name>.csv] when [csv_dir] is set; otherwise do
    nothing. Creates the directory (and any missing ancestors) on first
    use. *)

val maybe_manifest :
  config -> id:string -> title:string -> wall_time_s:float -> unit
(** Write [<csv_dir>/<id>.manifest.json] when [csv_dir] is set: seed,
    reps, domains, exact_n, wall time, the strategy spec strings the run
    built ([algo_specs]), and the metrics snapshot (phase timings, CSV
    accounting) as one JSON object. *)

val quick : config -> config
(** Same config with [reps] reduced for smoke tests. *)

val opt_estimate : config -> m:int -> float array -> float * bool
(** A lower bound on (or exact value of) the optimal makespan of the
    realized times, and whether it is exact. Measured ratios divide by
    this, so they upper-bound the true competitive ratio. *)

val ratio :
  config -> Core.Two_phase.t -> Instance.t -> Realization.t -> float
(** [C_max / opt_estimate] for one run. *)

type sweep_result = {
  summary : Usched_stats.Summary.t;  (** Distribution of measured ratios. *)
  worst : float;  (** Largest ratio seen. *)
  exact_opt : bool;  (** Whether every optimum was exact. *)
}

val random_sweep :
  config ->
  algo:Core.Two_phase.t ->
  spec:Usched_model.Workload.spec ->
  realize:(Instance.t -> Usched_prng.Rng.t -> Realization.t) ->
  n:int ->
  m:int ->
  alpha:float ->
  sweep_result
(** [reps] independent (instance, realization) draws, ratios summarized.
    Runs on [config.domains] domains. *)

val adversarial_ratio :
  config -> Core.Two_phase.t -> Instance.t -> float
(** Worst ratio over the implemented adversaries (Theorem-1 inflation,
    per-machine inflation, greedy flips; exhaustive when [n] is small
    enough). The phase-1 placement is computed once; every adversary then
    chooses a realization against it, as in the paper's model. *)

val print_section : string -> unit
(** Banner printed before each experiment block. *)
