(** locality: replication transfer cost vs zone-outage robustness.

    Replays paired workloads on three topologies (uniform, two-rack,
    multi-zone WAN), comparing full replication and a degree-2 group
    against the zone-aware builders ([zonegroup:2], [localbudget:2.5])
    on {!Usched_core.Placement.replication_cost}, healthy makespan with
    engine-charged staging, and completed fraction under one whole-zone
    crash per zone with online re-replication.

    Manifest gauges: [locality.wins] — topologies where a zone-aware
    placement is strictly cheaper than full replication at
    equal-or-better completion (2 of 3 expected: the uniform topology's
    transfers are free) — plus per-topology
    [locality.<name>.cost_ratio] and [locality.<name>.completion_delta]. *)

val run : Runner.config -> unit
