(** Fault tolerance: the introduction's motivation, measured.

    The paper motivates data replication with Hadoop's fault-tolerance
    replicas ("most Hadoop systems replicate the data for the purpose of
    tolerating hardware faults") and argues the same replicas buy
    scheduling freedom. This experiment closes the loop in the other
    direction on the dynamic engine ([Engine.run_faulty]): for each
    replication strategy, crash one machine after phase 1 — either
    before phase 2 starts (its data is lost up front) or mid-run at 50%
    of the healthy makespan (its in-flight work is killed and
    re-dispatched to surviving replica holders) — and measure (a)
    whether the workload can complete at all, (b) the makespan
    degradation when it can, and (c) the wasted (re-run) work, on top
    of the usual processing-time uncertainty. *)

val run : Runner.config -> unit
