(** Fault tolerance: the introduction's motivation, measured.

    The paper motivates data replication with Hadoop's fault-tolerance
    replicas ("most Hadoop systems replicate the data for the purpose of
    tolerating hardware faults") and argues the same replicas buy
    scheduling freedom. This experiment closes the loop in the other
    direction: for each replication strategy, fail one machine after
    phase 1 and measure (a) whether the workload can complete at all and
    (b) the makespan degradation when it can — on top of the usual
    processing-time uncertainty. *)

val run : Runner.config -> unit
