module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Workload = Usched_model.Workload
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary
module Pool = Usched_parallel.Pool
module Metrics = Usched_obs.Metrics
module Fs = Usched_obs.Fs
module Json = Usched_report.Json

type config = {
  seed : int;
  reps : int;
  domains : int;
  exact_n : int;
  csv_dir : string option;
  metrics : Metrics.t;
  algo_specs : string list ref;
}

let default_config =
  {
    seed = 42;
    reps = 50;
    domains = Pool.recommended_domains ();
    exact_n = 16;
    csv_dir = None;
    metrics = Metrics.create ();
    algo_specs = ref [];
  }

let fresh_metrics config =
  { config with metrics = Metrics.create (); algo_specs = ref [] }

let record_spec config spec =
  let s = Core.Strategy.to_string spec in
  if not (List.mem s !(config.algo_specs)) then
    config.algo_specs := !(config.algo_specs) @ [ s ]

let strategy config ~m spec =
  record_spec config spec;
  Core.Strategy.build spec ~m

let maybe_csv config ~name ~header rows =
  match config.csv_dir with
  | None -> ()
  | Some dir ->
      Metrics.time (Metrics.timer config.metrics "runner.csv_write") (fun () ->
          Fs.mkdir_p dir;
          let path = Filename.concat dir (name ^ ".csv") in
          (* Atomic: a run killed mid-write must not leave a torn CSV. *)
          Fs.write_atomic ~path (Usched_report.Csv.to_string ~header rows);
          Metrics.incr (Metrics.counter config.metrics "runner.csv_files");
          Printf.printf "[csv] wrote %s\n" path)

let maybe_manifest config ~id ~title ~wall_time_s =
  match config.csv_dir with
  | None -> ()
  | Some dir ->
      Fs.mkdir_p dir;
      let path = Filename.concat dir (id ^ ".manifest.json") in
      let manifest =
        Json.Obj
          [
            ("type", Json.String "run_manifest");
            ("experiment", Json.String id);
            ("title", Json.String title);
            ("seed", Json.Int config.seed);
            ("reps", Json.Int config.reps);
            ("domains", Json.Int config.domains);
            ("exact_n", Json.Int config.exact_n);
            ("wall_time_s", Json.float wall_time_s);
            ("unix_time", Json.float (Metrics.now_s ()));
            ( "algo_specs",
              Json.List
                (List.map (fun s -> Json.String s) !(config.algo_specs)) );
            ("metrics", Metrics.to_json (Metrics.snapshot config.metrics));
          ]
      in
      (* Atomic: readers see the previous manifest or this one, nothing
         in between. *)
      Fs.write_atomic ~path (Json.to_string manifest ^ "\n");
      Printf.printf "[manifest] wrote %s\n" path

let quick config = { config with reps = Stdlib.min config.reps 5 }

let opt_estimate config ~m actuals =
  if Array.length actuals <= config.exact_n then begin
    let result = Core.Opt.solve ~node_limit:2_000_000 ~m actuals in
    if result.Core.Opt.optimal then (result.Core.Opt.value, true)
    else (Core.Lower_bounds.best ~m actuals, false)
  end
  else (Core.Lower_bounds.best ~m actuals, false)

let ratio config algo instance realization =
  let makespan = Core.Two_phase.makespan algo instance realization in
  let opt, _ =
    opt_estimate config ~m:(Instance.m instance) (Realization.actuals realization)
  in
  makespan /. opt

type sweep_result = {
  summary : Summary.t;
  worst : float;
  exact_opt : bool;
}

let random_sweep config ~algo ~spec ~realize ~n ~m ~alpha =
  (* The timer wraps the whole sweep from the main domain; workers are
     left uninstrumented (metrics registries are single-domain). *)
  Metrics.time (Metrics.timer config.metrics "phase.sweep") @@ fun () ->
  let alpha_v = Uncertainty.alpha alpha in
  (* Derive one independent stream per repetition up front so results do
     not depend on the parallel execution order. *)
  let master = Rng.create ~seed:config.seed () in
  let streams = Array.init config.reps (fun _ -> Rng.split master) in
  let run rep =
    let rng = streams.(rep) in
    let instance = Workload.generate spec ~n ~m ~alpha:alpha_v rng in
    let realization = realize instance rng in
    let makespan = Core.Two_phase.makespan algo instance realization in
    let opt, exact =
      opt_estimate config ~m (Realization.actuals realization)
    in
    (makespan /. opt, exact)
  in
  let results = Pool.parallel_init ~domains:config.domains config.reps run in
  let summary = Summary.create () in
  Array.iter (fun (r, _) -> Summary.add summary r) results;
  {
    summary;
    worst = Summary.max summary;
    exact_opt = Array.for_all snd results;
  }

let adversarial_ratio config algo instance =
  Metrics.time (Metrics.timer config.metrics "phase.adversary") @@ fun () ->
  let placement = algo.Core.Two_phase.phase1 instance in
  let run realization =
    algo.Core.Two_phase.phase2 instance placement realization
  in
  let opt actuals = fst (opt_estimate config ~m:(Instance.m instance) actuals) in
  let candidates =
    ref
      [
        Core.Adversary.theorem1 instance placement;
        Core.Adversary.greedy_flip ~run ~opt instance;
      ]
  in
  for machine = 0 to Stdlib.min 7 (Instance.m instance - 1) do
    candidates := Core.Adversary.inflate_machine machine instance placement :: !candidates
  done;
  let best =
    List.fold_left
      (fun acc realization ->
        Float.max acc (Core.Adversary.ratio ~run ~opt realization))
      neg_infinity !candidates
  in
  if Instance.n instance <= 12 then begin
    let _, exhaustive_ratio = Core.Adversary.exhaustive ~run ~opt instance in
    Float.max best exhaustive_ratio
  end
  else best

let print_section title =
  let rule = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" rule title rule
