(** Table 2: guarantees of the memory-aware algorithms.

    Evaluates SABO_Δ's and ABO_Δ's bi-objective guarantees (Theorems 5-8)
    over a grid of Δ, and measures actual (makespan ratio, memory ratio)
    pairs on random instances with anti-correlated sizes — checking every
    measurement against its guarantee. *)

val run : Runner.config -> unit
