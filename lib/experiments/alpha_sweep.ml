module Instance = Usched_model.Instance
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Plot = Usched_report.Ascii_plot
module Rng = Usched_prng.Rng

let worst_over_instances config algo instances =
  List.fold_left
    (fun acc instance ->
      Float.max acc (Runner.adversarial_ratio config algo instance))
    neg_infinity instances

let instances_at config ~m ~alpha =
  List.map
    (fun (i, n) ->
      Workload.generate
        (if i = 0 then Workload.Identical 1.0
         else Workload.Uniform { lo = 1.0; hi = 5.0 })
        ~n ~m
        ~alpha:(Uncertainty.alpha alpha)
        (Rng.create ~seed:(config.Runner.seed + i) ()))
    [ (0, 12); (1, 10); (2, 12) ]

let run config =
  Runner.print_section
    "Alpha sweep -- from offline (alpha=1) toward non-clairvoyant (alpha large)";
  let m = 4 in
  let alphas = [ 1.0; 1.1; 1.25; 1.5; 1.75; 2.0; 2.5; 3.0; 4.0 ] in
  let table =
    Table.create
      ~columns:
        [
          ("alpha", Table.Right);
          ("no-repl worst", Table.Right);
          ("no-repl Th2", Table.Right);
          ("full-repl worst", Table.Right);
          ("full-repl bound", Table.Right);
          ("Th1 impossibility", Table.Right);
        ]
  in
  let measured_nc = ref [] and measured_fr = ref [] in
  let csv_rows = ref [] in
  List.iter
    (fun alpha ->
      let instances = instances_at config ~m ~alpha in
      let no_repl =
        worst_over_instances config
          (Runner.strategy config ~m Strategy.(no_replication Lpt))
          instances
      in
      let full_repl =
        worst_over_instances config
          (Runner.strategy config ~m Strategy.(full_replication Lpt))
          instances
      in
      measured_nc := (alpha, no_repl) :: !measured_nc;
      measured_fr := (alpha, full_repl) :: !measured_fr;
      csv_rows :=
        [
          Printf.sprintf "%.4f" alpha;
          Printf.sprintf "%.6f" no_repl;
          Printf.sprintf "%.6f" (Core.Guarantees.lpt_no_choice ~m ~alpha);
          Printf.sprintf "%.6f" full_repl;
          Printf.sprintf "%.6f" (Core.Guarantees.full_replication ~m ~alpha);
          Printf.sprintf "%.6f"
            (Core.Guarantees.no_replication_lower_bound ~m ~alpha);
        ]
        :: !csv_rows;
      Table.add_row table
        [
          Table.cell_float ~decimals:2 alpha;
          Table.cell_float no_repl;
          Table.cell_float (Core.Guarantees.lpt_no_choice ~m ~alpha);
          Table.cell_float full_repl;
          Table.cell_float (Core.Guarantees.full_replication ~m ~alpha);
          Table.cell_float (Core.Guarantees.no_replication_lower_bound ~m ~alpha);
        ])
    alphas;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"alpha_sweep"
    ~header:
      [ "alpha"; "no_repl_worst"; "th2"; "full_repl_worst"; "full_bound"; "th1" ]
    (List.rev !csv_rows);
  let to_points l = Array.of_list (List.rev_map (fun (x, y) -> (x, y)) l) in
  print_string
    (Plot.plot ~width:64 ~height:16 ~x_label:"alpha" ~y_label:"worst ratio"
       ~title:(Printf.sprintf "Measured worst adversarial ratios, m=%d" m)
       [
         { Plot.label = "no replication"; glyph = 'n'; points = to_points !measured_nc };
         { Plot.label = "full replication"; glyph = 'f'; points = to_points !measured_fr };
       ]);
  Printf.printf
    "Reading: at alpha=1 both match the offline LPT behaviour; the\n\
     unreplicated curve grows with alpha (toward the alpha^2-style\n\
     impossibility) while full replication saturates near Graham's\n\
     2 - 1/m — the boundary the conclusion asks about is where the two\n\
     measured curves separate.\n"
