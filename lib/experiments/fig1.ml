module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Gantt = Usched_desim.Gantt
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng

let theoretical_ratio_at_lambda ~m ~alpha ~lambda =
  let a2 = alpha *. alpha in
  let mf = float_of_int m and lf = float_of_int lambda in
  a2 *. mf *. lf /. ((lf *. (a2 +. mf -. 1.0)) +. (mf *. (a2 +. 1.0)))

let identical_instance ~lambda ~m ~alpha =
  let rng = Rng.create ~seed:0 () in
  Workload.generate (Workload.Identical 1.0) ~n:(lambda * m) ~m
    ~alpha:(Uncertainty.alpha alpha) rng

let adversarial_run config ~lambda ~m ~alpha =
  let instance = identical_instance ~lambda ~m ~alpha in
  let algo = Runner.strategy config ~m Strategy.(no_replication Lpt) in
  let placement = algo.Core.Two_phase.phase1 instance in
  let realization = Core.Adversary.theorem1 instance placement in
  let schedule = algo.Core.Two_phase.phase2 instance placement realization in
  let actuals = Realization.actuals realization in
  (* The realized instance has only two distinct values, which the
     branch-and-bound's symmetry pruning handles easily well past the
     generic exact_n threshold. *)
  let opt, exact =
    if Array.length actuals <= 30 then begin
      let r = Core.Opt.solve ~node_limit:5_000_000 ~m actuals in
      if r.Core.Opt.optimal then (r.Core.Opt.value, true)
      else Runner.opt_estimate config ~m actuals
    end
    else Runner.opt_estimate config ~m actuals
  in
  (instance, realization, schedule, opt, exact)

(* The offline optimum schedule on the realized times, for the
   side-by-side Gantt of the figure. *)
let offline_optimal_schedule ~m actuals =
  let assignment = Core.Multifit.schedule ~iterations:30 ~m actuals in
  Schedule.of_assignment ~m ~durations:actuals assignment.Core.Assign.assignment

let run config =
  Runner.print_section
    "Figure 1 -- Theorem 1 adversary (no replication, identical tasks)";
  let m = 6 and alpha = 2.0 in
  Printf.printf "Setting: m=%d, alpha=%g, lambda*m unit-estimate tasks.\n" m alpha;
  Printf.printf
    "The adversary inflates the most loaded machine to alpha*est and\n\
     deflates every other task to est/alpha (after placement).\n\n";

  (* The illustration of the paper: lambda = 3. *)
  let _, realization, online, _, _ =
    adversarial_run config ~lambda:3 ~m ~alpha
  in
  let offline = offline_optimal_schedule ~m (Realization.actuals realization) in
  print_string
    (Gantt.render_two ~width:30 ~left_title:"online (LPT-No Choice)"
       ~right_title:"offline (MULTIFIT on actuals)" online offline);
  Printf.printf "\n";

  let table =
    Table.create
      ~columns:
        [
          ("lambda", Table.Right);
          ("n", Table.Right);
          ("C_max", Table.Right);
          ("C*_max", Table.Right);
          ("measured ratio", Table.Right);
          ("proof ratio(lambda)", Table.Right);
          ("limit bound", Table.Right);
        ]
  in
  let limit = Core.Guarantees.no_replication_lower_bound ~m ~alpha in
  List.iter
    (fun lambda ->
      let _, _, schedule, opt, exact =
        adversarial_run config ~lambda ~m ~alpha
      in
      let cmax = Schedule.makespan schedule in
      let measured = cmax /. opt in
      Table.add_row table
        [
          string_of_int lambda;
          string_of_int (lambda * m);
          Table.cell_float cmax;
          Table.cell_float opt ^ (if exact then "" else "~");
          Table.cell_float measured;
          Table.cell_float (theoretical_ratio_at_lambda ~m ~alpha ~lambda);
          Table.cell_float limit;
        ])
    [ 1; 2; 3; 4; 6; 10; 20; 50 ];
  print_string (Table.render table);
  Printf.printf
    "('~' marks a lower-bound optimum estimate; measured ratios climb\n\
     toward the impossibility bound %.4f as lambda grows, as Theorem 1\n\
     predicts.)\n"
    limit
