module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Gantt = Usched_desim.Gantt
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng

let run config =
  Runner.print_section "Figure 2 -- Replication in groups (m=6, k=2)";
  let m = 6 and k = 2 in
  let alpha = Uncertainty.alpha 1.5 in
  let ests = [| 5.0; 4.0; 4.0; 3.0; 3.0; 2.0; 2.0; 2.0; 1.0; 1.0; 1.0; 1.0 |] in
  let instance = Instance.of_ests ~m ~alpha ests in
  let groups = Core.Group_replication.machine_groups ~m ~k in
  let assignment =
    Core.Group_replication.group_assignment ~order:`Submission ~k instance
  in
  Printf.printf "Phase 1: List Scheduling of estimated loads over %d groups.\n" k;
  let table =
    Table.create
      ~columns:
        [
          ("task", Table.Right);
          ("estimate", Table.Right);
          ("group", Table.Right);
          ("replicated on machines", Table.Left);
        ]
  in
  Array.iteri
    (fun j g ->
      let machines =
        String.concat ", "
          (Array.to_list (Array.map string_of_int groups.(g)))
      in
      Table.add_row table
        [
          string_of_int j;
          Table.cell_float ests.(j);
          string_of_int g;
          machines;
        ])
    assignment;
  print_string (Table.render table);

  (* Phase 2 against a perturbed realization. *)
  let rng = Rng.create ~seed:7 () in
  let realization = Realization.log_uniform_factor instance rng in
  let algo = Runner.strategy config ~m Strategy.(group ~order:Ls ~k) in
  let placement, schedule = Core.Two_phase.run_full algo instance realization in
  Printf.printf
    "\nPhase 2: online List Scheduling inside each group (actual times\n\
     drawn log-uniformly within the alpha interval).\n\n";
  print_string (Gantt.render ~width:60 schedule);
  Printf.printf "\nC_max = %g; every task ran inside its phase-1 group: %b\n"
    (Schedule.makespan schedule)
    (Usched_desim.Schedule.validate ~placement:(Core.Placement.sets placement)
       instance realization schedule
    = []);
  Printf.printf "Replication per task: %d machines (= m/k).\n"
    (Core.Placement.max_replication placement)
