module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng

let formula_table ~m ~alpha ~rho =
  Printf.printf
    "Guarantees at m=%d, alpha=%g, rho1=rho2=%g (the LPT bound).\n\n" m alpha
    rho;
  let table =
    Table.create
      ~columns:
        [
          ("delta", Table.Right);
          ("SABO makespan (Th5)", Table.Right);
          ("SABO memory (Th6)", Table.Right);
          ("ABO makespan (Th7)", Table.Right);
          ("ABO memory (Th8)", Table.Right);
        ]
  in
  List.iter
    (fun delta ->
      Table.add_row table
        [
          Table.cell_float ~decimals:2 delta;
          Table.cell_float (Core.Guarantees.sabo_makespan ~alpha ~delta ~rho1:rho);
          Table.cell_float (Core.Guarantees.sabo_memory ~delta ~rho2:rho);
          Table.cell_float (Core.Guarantees.abo_makespan ~m ~alpha ~delta ~rho1:rho);
          Table.cell_float (Core.Guarantees.abo_memory ~m ~delta ~rho2:rho);
        ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  print_string (Table.render table)

let measure config ~m ~alpha ~delta ~algo_of_delta ~placement_of_delta =
  let alpha_v = Uncertainty.alpha alpha in
  let rng = Rng.create ~seed:config.Runner.seed () in
  let worst_makespan = ref neg_infinity and worst_memory = ref neg_infinity in
  for _ = 1 to Stdlib.max 5 (config.Runner.reps / 5) do
    let instance =
      Workload.generate
        (Workload.Uniform { lo = 1.0; hi = 10.0 })
        ~size_spec:(Workload.Inverse 5.0) ~n:12 ~m ~alpha:alpha_v rng
    in
    let realization = Realization.uniform_factor instance rng in
    let algo = algo_of_delta delta in
    let schedule = Core.Two_phase.run algo instance realization in
    let opt, _ =
      Runner.opt_estimate config ~m (Realization.actuals realization)
    in
    let mem = Core.Memory.of_placement instance (placement_of_delta delta instance) in
    let mem_star =
      Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance)
    in
    worst_makespan := Float.max !worst_makespan (Schedule.makespan schedule /. opt);
    worst_memory := Float.max !worst_memory (mem /. mem_star)
  done;
  (!worst_makespan, !worst_memory)

let measured_table config ~m ~alpha ~rho =
  Printf.printf
    "\nMeasured worst (makespan ratio, memory ratio) on random instances\n\
     (n=12, uniform times, anti-correlated sizes, uniform factors):\n\n";
  let table =
    Table.create
      ~columns:
        [
          ("algorithm", Table.Left);
          ("delta", Table.Right);
          ("makespan ratio", Table.Right);
          ("guarantee", Table.Right);
          ("memory ratio", Table.Right);
          ("guarantee", Table.Right);
        ]
  in
  List.iter
    (fun delta ->
      let sabo_mk, sabo_mem =
        measure config ~m ~alpha ~delta
          ~algo_of_delta:(fun delta ->
            Runner.strategy config ~m (Strategy.sabo ~delta))
          ~placement_of_delta:(fun delta instance ->
            Core.Sabo.placement ~delta instance)
      in
      Table.add_row table
        [
          "SABO";
          Table.cell_float ~decimals:2 delta;
          Table.cell_float sabo_mk;
          Table.cell_float (Core.Guarantees.sabo_makespan ~alpha ~delta ~rho1:rho);
          Table.cell_float sabo_mem;
          Table.cell_float (Core.Guarantees.sabo_memory ~delta ~rho2:rho);
        ];
      let abo_mk, abo_mem =
        measure config ~m ~alpha ~delta
          ~algo_of_delta:(fun delta ->
            Runner.strategy config ~m (Strategy.abo ~delta))
          ~placement_of_delta:(fun delta instance ->
            Core.Abo.placement ~delta instance)
      in
      Table.add_row table
        [
          "ABO";
          Table.cell_float ~decimals:2 delta;
          Table.cell_float abo_mk;
          Table.cell_float (Core.Guarantees.abo_makespan ~m ~alpha ~delta ~rho1:rho);
          Table.cell_float abo_mem;
          Table.cell_float (Core.Guarantees.abo_memory ~m ~delta ~rho2:rho);
        ])
    [ 0.5; 1.0; 2.0 ];
  print_string (Table.render table)

let run config =
  Runner.print_section "Table 2 -- Memory-aware guarantees (SABO, ABO)";
  let m = 5 and alpha = sqrt 2.0 in
  let rho = Core.Guarantees.lpt_offline ~m in
  formula_table ~m ~alpha ~rho;
  measured_table config ~m ~alpha ~rho;
  Printf.printf
    "\nSelection rule check: alpha*rho1 = %.3f, so per the paper %s has\n\
     the better makespan guarantee for every delta.\n"
    (alpha *. rho)
    (if Core.Guarantees.abo_beats_sabo_on_makespan ~alpha ~rho1:rho then "ABO"
     else "neither algorithm uniformly")
