(* policy-sweep: what the dispatch rule is worth, placement held fixed.
   The paper's engine hard-wires list-priority dispatch (the
   highest-priority eligible task); the layered desim core makes that
   rule a parameter. Part A replays paired healthy workloads under every
   built-in policy — once on a spread-prone uniform workload and once on
   an identical workload, where random tie-breaking actually has ties to
   break. Part B replays paired crash traces with online re-replication
   to check the policies' fault behavior: under full replication every
   work-conserving policy completes the same task set, so the question
   is degradation, not completion. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Dispatch = Usched_desim.Dispatch
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Core = Usched_core
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let m = 6
let n = 36
let alpha = 1.5

let ring_placement ~k =
  Core.Placement.of_sets ~m
    (Array.init n (fun j ->
         Bitset.of_list m (List.init k (fun i -> (j + i) mod m))))

let generate spec rng =
  let instance =
    Workload.generate spec ~n ~m ~alpha:(Uncertainty.alpha alpha) rng
  in
  (instance, Realization.log_uniform_factor instance rng)

let policies = List.map (fun p -> (Dispatch.name p, p)) Dispatch.builtin

(* ------------- part A: healthy makespan by dispatch rule ------------- *)

let healthy_sweep config =
  let reps = Stdlib.max 10 config.Runner.reps in
  Printf.printf
    "A. Healthy replays: n=%d, m=%d, ring k=2 placement, LPT order. Every\n\
     policy replays the same paired workload per rep; ratios are against\n\
     the default list-priority rule on that same workload.\n\n"
    n m;
  let workloads =
    [
      ("uniform:1:10", Workload.Uniform { lo = 1.0; hi = 10.0 });
      ("identical:5", Workload.Identical 5.0);
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("workload", Table.Left);
          ("policy", Table.Left);
          ("mean ratio", Table.Right);
          ("worst ratio", Table.Right);
          ("best ratio", Table.Right);
          ("vs LB", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  List.iter
    (fun (wname, spec) ->
      let cells = List.map (fun (name, p) -> (name, p, Summary.create (), Summary.create ())) policies in
      let master = Rng.create ~seed:(config.Runner.seed + 7177) () in
      for _ = 1 to reps do
        let rng = Rng.split master in
        let instance, realization = generate spec rng in
        let order = Instance.lpt_order instance in
        let placement = Core.Placement.sets (ring_placement ~k:2) in
        let lb =
          Core.Lower_bounds.best ~m (Realization.actuals realization)
        in
        let base =
          Schedule.makespan
            (Engine.run ~dispatch:Dispatch.default instance realization
               ~placement ~order)
        in
        List.iter
          (fun (_, dispatch, ratio, vs_lb) ->
            let mk =
              Schedule.makespan
                (Engine.run ~dispatch instance realization ~placement ~order)
            in
            Summary.add ratio (mk /. base);
            Summary.add vs_lb (mk /. lb))
          cells
      done;
      List.iter
        (fun (name, _, ratio, vs_lb) ->
          Table.add_row table
            [
              wname;
              name;
              Table.cell_float (Summary.mean ratio);
              Table.cell_float (Summary.max ratio);
              Table.cell_float (Summary.min ratio);
              Table.cell_float (Summary.mean vs_lb);
            ];
          csv_rows :=
            [
              wname;
              name;
              Printf.sprintf "%.6f" (Summary.mean ratio);
              Printf.sprintf "%.6f" (Summary.max ratio);
              Printf.sprintf "%.6f" (Summary.min ratio);
              Printf.sprintf "%.6f" (Summary.mean vs_lb);
            ]
            :: !csv_rows)
        cells)
    workloads;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"policy_sweep_healthy"
    ~header:
      [ "workload"; "policy"; "mean_ratio"; "worst_ratio"; "best_ratio";
        "mean_vs_lb" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nOn the uniform workload estimates are almost surely distinct, so\n\
     random tie-breaking coincides with list-priority; on the identical\n\
     workload every eligible task ties and the rules genuinely diverge.\n"

(* ------------- part B: dispatch rules under crashes ------------------ *)

let faulty_sweep config =
  let reps = Stdlib.max 10 config.Runner.reps in
  let crash_rate = 0.4 in
  Printf.printf
    "\nB. Crash replays: same construction, crash rate %.2f (times uniform\n\
     in the healthy makespan), online re-replication back up to 2 live\n\
     replicas. Paired traces across policies.\n\n"
    crash_rate;
  let table =
    Table.create
      ~columns:
        [
          ("policy", Table.Left);
          ("stranded runs", Table.Right);
          ("tasks done", Table.Right);
          ("mean degr", Table.Right);
          ("wasted", Table.Right);
        ]
  in
  let recovery = Recovery.make ~rereplication_target:(Recovery.Fixed 2) () in
  let cells =
    List.map
      (fun (name, p) ->
        (name, p, ref 0, Summary.create (), Summary.create (), Summary.create ()))
      policies
  in
  let runs = ref 0 in
  let master = Rng.create ~seed:(config.Runner.seed + 7178) () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let instance, realization =
      generate (Workload.Uniform { lo = 1.0; hi = 10.0 }) rng
    in
    let order = Instance.lpt_order instance in
    let total_work = Realization.total realization in
    let placement = Core.Placement.sets (ring_placement ~k:2) in
    let healthy =
      Schedule.makespan (Engine.run instance realization ~placement ~order)
    in
    let faults = Trace.random_crashes rng ~m ~p:crash_rate ~horizon:healthy in
    incr runs;
    List.iter
      (fun (_, dispatch, stranded_runs, completion, degradation, wasted) ->
        let outcome =
          Engine.run_faulty ~dispatch ~recovery instance realization ~faults
            ~placement ~order
        in
        if outcome.Engine.stranded <> [] then incr stranded_runs;
        Summary.add completion
          (float_of_int outcome.Engine.completed /. float_of_int n);
        Summary.add wasted (outcome.Engine.wasted /. total_work);
        if outcome.Engine.stranded = [] then
          Summary.add degradation (outcome.Engine.makespan /. healthy))
      cells
  done;
  let csv_rows = ref [] in
  List.iter
    (fun (name, _, stranded_runs, completion, degradation, wasted) ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%d/%d" !stranded_runs !runs;
          Printf.sprintf "%.1f%%" (100.0 *. Summary.mean completion);
          (if Summary.count degradation = 0 then "-"
           else Table.cell_float (Summary.mean degradation));
          Printf.sprintf "%.1f%%" (100.0 *. Summary.mean wasted);
        ];
      csv_rows :=
        [
          name;
          Printf.sprintf "%d" !stranded_runs;
          Printf.sprintf "%d" !runs;
          Printf.sprintf "%.6f" (Summary.mean completion);
          (if Summary.count degradation = 0 then "nan"
           else Printf.sprintf "%.6f" (Summary.mean degradation));
          Printf.sprintf "%.6f" (Summary.mean wasted);
        ]
        :: !csv_rows)
    cells;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"policy_sweep_faulty"
    ~header:
      [ "policy"; "stranded_runs"; "runs"; "task_completion";
        "mean_degradation"; "wasted_fraction" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nStranding is dominated by the data (which replicas survive the\n\
     trace), not the dispatch rule: under full replication every\n\
     work-conserving policy completes exactly the same task set (the\n\
     reachability property pinned in test_dispatch). At k=2 the rule\n\
     can still shift what is running when a disk dies; mostly it moves\n\
     degradation and wasted work.\n"

let run config =
  Runner.print_section
    "Policy sweep -- pluggable dispatch rules on fixed placements";
  healthy_sweep config;
  faulty_sweep config
