module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng

let run config =
  Runner.print_section "Portfolio selection over scenario sets (extension)";
  let m = 6 and n = 24 and alpha = 2.0 in
  Printf.printf
    "m=%d, n=%d, alpha=%g. For each workload family: sample %d scenario\n\
     realizations, evaluate the whole strategy portfolio against them,\n\
     and pick winners by worst-case and by mean makespan.\n\n"
    m n alpha
    (Stdlib.max 10 config.Runner.reps);
  let specs = Strategy.default_portfolio ~m in
  List.iter (Runner.record_spec config) specs;
  let portfolio = List.map (fun spec -> Strategy.build spec ~m) specs in
  Printf.printf "Portfolio: %s\n\n"
    (String.concat ", "
       (List.map (fun a -> a.Core.Two_phase.name) portfolio));
  let table =
    Table.create
      ~columns:
        [
          ("workload", Table.Left);
          ("worst-case winner", Table.Left);
          ("its worst", Table.Right);
          ("mean winner", Table.Left);
          ("its mean", Table.Right);
        ]
  in
  List.iter
    (fun (name, spec) ->
      let rng = Rng.create ~seed:config.Runner.seed () in
      let instance =
        Workload.generate spec ~n ~m ~alpha:(Uncertainty.alpha alpha) rng
      in
      let scenarios =
        Core.Scenarios.sample
          ~count:(Stdlib.max 10 config.Runner.reps)
          ~realize:(fun instance rng ->
            Realization.log_uniform_factor instance rng)
          ~rng instance
      in
      let by_worst =
        Core.Scenarios.select Core.Scenarios.Minimize_worst ~portfolio instance
          scenarios
      in
      let by_mean =
        Core.Scenarios.select Core.Scenarios.Minimize_mean ~portfolio instance
          scenarios
      in
      Table.add_row table
        [
          name;
          by_worst.Core.Scenarios.algorithm.Core.Two_phase.name;
          Table.cell_float ~decimals:2 by_worst.Core.Scenarios.worst;
          by_mean.Core.Scenarios.algorithm.Core.Two_phase.name;
          Table.cell_float ~decimals:2 by_mean.Core.Scenarios.mean;
        ])
    (Workload.standard_suite ~m);
  print_string (Table.render table);
  Printf.printf
    "\n(The winner varies by family: smooth workloads tolerate pinning,\n\
     heavy-tailed and adversarial ones reward replication — choosing the\n\
     paper's knob per workload is itself an optimization, automated\n\
     here.)\n"
