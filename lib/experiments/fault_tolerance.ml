module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Core = Usched_core
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

(* Run phase 2 on the placement left after machine [failed] is lost.
   None when some task's data lived only there. *)
let run_degraded instance realization placement failed =
  match Core.Placement.without_machine placement failed with
  | None -> None
  | Some degraded ->
      let order = Instance.lpt_order instance in
      Some
        (Engine.run instance realization
           ~placement:(Core.Placement.sets degraded)
           ~order)

let run config =
  Runner.print_section
    "Fault tolerance -- one machine fails after data placement";
  let m = 6 and alpha = 1.5 and n = 30 in
  Printf.printf
    "m=%d machines, n=%d tasks, alpha=%g. After phase 1 commits, machine 0\n\
     fails (its data is lost); survivors run phase 2 online.\n\n"
    m n alpha;
  let strategies =
    [
      ("no replication", Core.No_replication.lpt_no_choice);
      ("LS-Group k=3 (2 replicas)", Core.Group_replication.ls_group ~k:3);
      ("Budgeted k=2", Core.Budgeted.uniform ~k:2);
      ("full replication", Core.Full_replication.lpt_no_restriction);
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("strategy", Table.Left);
          ("survives any failure", Table.Left);
          ("completed runs", Table.Right);
          ("mean degradation", Table.Right);
          ("worst degradation", Table.Right);
        ]
  in
  List.iter
    (fun (name, algo) ->
      let rng = Rng.create ~seed:config.Runner.seed () in
      let completed = ref 0 and attempts = ref 0 in
      let degradation = Summary.create () in
      let survives = ref true in
      for _ = 1 to Stdlib.max 10 config.Runner.reps do
        incr attempts;
        let instance =
          Workload.generate
            (Workload.Uniform { lo = 1.0; hi = 10.0 })
            ~n ~m
            ~alpha:(Uncertainty.alpha alpha)
            rng
        in
        let realization = Realization.log_uniform_factor instance rng in
        let placement = algo.Core.Two_phase.phase1 instance in
        survives := !survives && Core.Placement.survives_any_failure placement;
        let healthy =
          Schedule.makespan
            (algo.Core.Two_phase.phase2 instance placement realization)
        in
        match run_degraded instance realization placement 0 with
        | None -> ()
        | Some schedule ->
            incr completed;
            Summary.add degradation (Schedule.makespan schedule /. healthy)
      done;
      Table.add_row table
        [
          name;
          (if !survives then "yes" else "no");
          Printf.sprintf "%d/%d" !completed !attempts;
          (if Summary.count degradation = 0 then "-"
           else Table.cell_float (Summary.mean degradation));
          (if Summary.count degradation = 0 then "-"
           else Table.cell_float (Summary.max degradation));
        ])
    strategies;
  print_string (Table.render table);
  Printf.printf
    "\nDegradation is C_max(after failure) / C_max(healthy); with m=%d\n\
     machines the work of the lost machine spreads over %d survivors, so\n\
     ~%.2f is the natural floor. Replication buys completion AND keeps\n\
     the slowdown near that floor — without it, any single failure\n\
     strands data (the paper's Hadoop motivation).\n"
    m (m - 1)
    (float_of_int m /. float_of_int (m - 1))
