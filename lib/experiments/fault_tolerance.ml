module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

(* Crash machine 0 at the given time and run the dynamic engine: work in
   flight on the lost machine is killed and re-dispatched (LPT order) to
   surviving replica holders; tasks whose data lived only there strand. *)
let crash_at instance realization placement ~time =
  let m = Instance.m instance in
  let faults =
    Trace.of_events ~m [ { Fault.machine = 0; time; kind = Fault.Crash } ]
  in
  Engine.run_faulty instance realization ~faults
    ~placement:(Core.Placement.sets placement)
    ~order:(Instance.lpt_order instance)

type mode = { completed : int ref; degradation : Summary.t; wasted : Summary.t }

let mode () =
  { completed = ref 0; degradation = Summary.create (); wasted = Summary.create () }

let record mode ~healthy (outcome : Engine.outcome) =
  Summary.add mode.wasted outcome.Engine.wasted;
  if outcome.Engine.stranded = [] then begin
    incr mode.completed;
    Summary.add mode.degradation (outcome.Engine.makespan /. healthy)
  end

let run config =
  Runner.print_section
    "Fault tolerance -- machine 0 fails before and during phase 2";
  let m = 6 and alpha = 1.5 and n = 30 in
  Printf.printf
    "m=%d machines, n=%d tasks, alpha=%g. After phase 1 commits, machine 0\n\
     fails (its data is lost) either before phase 2 starts, or mid-run at\n\
     50%% of the healthy makespan — killing its in-flight task, whose work\n\
     is re-dispatched to surviving replica holders.\n\n"
    m n alpha;
  let strategies =
    Strategy.
      [
        ("no replication", no_replication Lpt);
        ("LS-Group k=3 (2 replicas)", group ~order:Ls ~k:3);
        ("Budgeted k=2", budgeted ~k:2);
        ("full replication", full_replication Lpt);
      ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("strategy", Table.Left);
          ("survives any failure", Table.Left);
          ("pre-start done", Table.Right);
          ("pre-start degr", Table.Right);
          ("mid-run done", Table.Right);
          ("mid-run degr", Table.Right);
          ("mid-run waste", Table.Right);
        ]
  in
  List.iter
    (fun (name, spec) ->
      let algo = Runner.strategy config ~m spec in
      let rng = Rng.create ~seed:config.Runner.seed () in
      let attempts = ref 0 in
      let pre_start = mode () and mid_run = mode () in
      let survives = ref true in
      for _ = 1 to Stdlib.max 10 config.Runner.reps do
        incr attempts;
        let instance =
          Workload.generate
            (Workload.Uniform { lo = 1.0; hi = 10.0 })
            ~n ~m
            ~alpha:(Uncertainty.alpha alpha)
            rng
        in
        let realization = Realization.log_uniform_factor instance rng in
        let placement = algo.Core.Two_phase.phase1 instance in
        survives := !survives && Core.Placement.survives_any_failure placement;
        let healthy =
          Schedule.makespan
            (algo.Core.Two_phase.phase2 instance placement realization)
        in
        record pre_start ~healthy
          (crash_at instance realization placement ~time:0.0);
        record mid_run ~healthy
          (crash_at instance realization placement ~time:(0.5 *. healthy))
      done;
      let done_cell mode = Printf.sprintf "%d/%d" !(mode.completed) !attempts in
      let degr_cell mode =
        if Summary.count mode.degradation = 0 then "-"
        else Table.cell_float (Summary.mean mode.degradation)
      in
      Table.add_row table
        [
          name;
          (if !survives then "yes" else "no");
          done_cell pre_start;
          degr_cell pre_start;
          done_cell mid_run;
          degr_cell mid_run;
          Table.cell_float (Summary.mean mid_run.wasted);
        ])
    strategies;
  print_string (Table.render table);
  Printf.printf
    "\nDegradation is C_max(after failure) / C_max(healthy); with m=%d\n\
     machines the work of the lost machine spreads over %d survivors, so\n\
     ~%.2f is the natural floor. A mid-run crash is strictly gentler than\n\
     losing the machine up front — everything it finished before dying\n\
     stands, only its in-flight task (the \"waste\" column, in task-time\n\
     units) is re-run — but completing at all still requires a surviving\n\
     replica (the paper's Hadoop motivation).\n"
    m (m - 1)
    (float_of_int m /. float_of_int (m - 1))
