(** Figure 2: replication in groups, illustrated ([m = 6], [k = 2]).

    Runs LS-Group's two phases on a small instance and prints the phase-1
    data placement (which group holds each task's replicas) and the
    phase-2 Gantt chart, mirroring the paper's illustration. *)

val run : Runner.config -> unit
