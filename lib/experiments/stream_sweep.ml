(* stream: the open-system service mode swept over offered load. Batch
   experiments ask how fast a placement clears a fixed workload; here
   tasks keep arriving (Poisson, rate set by the target offered load
   rho = lambda * E[service] / m) and the question is what response
   times each placement strategy sustains — and where its stability
   frontier lies. Below saturation latency quantiles settle; past it
   (rho > 1) the queue grows without bound and per-task latency drifts
   upward over the admitted window, which the drift column makes
   visible: mean latency of the last-admitted half over the first half.
   Arrival sequences, workloads and realizations are paired across
   strategies within each load point, so columns differ only by
   placement. Speculation doubles as the replicate-on-straggler latency
   policy: past beta times a task's estimate an idle replica holder
   starts a backup, the first finisher wins, the loser's machine-time
   lands in wasted work. *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Engine = Usched_desim.Engine
module Arrival = Usched_desim.Arrival
module Core = Usched_core
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Metrics = Usched_obs.Metrics
module Quantile = Usched_stats.Quantile
module Histogram = Usched_stats.Histogram
module Summary = Usched_stats.Summary

let m = 6
let n = 150
let alpha = 1.5
let loads = [ 0.6; 0.85; 1.1 ]
(* Actuals are log-uniform within a factor alpha = 1.5 of the estimate,
   so a beta of 2 would never fire; 1.2 marks genuine stragglers. *)
let spec_beta = 1.2
let drift_unstable = 1.5

type cell = {
  label : string;
  spec : Core.Strategy.t;
  speculation : float option;
}

let cells =
  [
    {
      label = "no-replication";
      spec = Core.Strategy.no_replication Core.Strategy.Ls;
      speculation = None;
    };
    {
      label = "ls-group:2";
      spec = Core.Strategy.group ~order:Core.Strategy.Ls ~k:2;
      speculation = None;
    };
    {
      label = "full-replication";
      spec = Core.Strategy.full_replication Core.Strategy.Ls;
      speculation = None;
    };
    {
      label = Printf.sprintf "full-repl+spec:%g" spec_beta;
      spec = Core.Strategy.full_replication Core.Strategy.Ls;
      speculation = Some spec_beta;
    };
  ]

(* Mean latency of the second-admitted half over the first-admitted
   half. In a stable system both halves see the same stationary
   latency (ratio ~ 1); past saturation the backlog grows with every
   arrival and the ratio grows with n. *)
let drift latencies =
  let len = Array.length latencies in
  if len < 4 then 1.0
  else begin
    let half = len / 2 in
    let mean a b =
      let s = ref 0.0 in
      for i = a to b - 1 do
        s := !s +. latencies.(i)
      done;
      !s /. float_of_int (b - a)
    in
    let first = mean 0 half and second = mean half len in
    if first > 0.0 then second /. first else 1.0
  end

let run config =
  Runner.print_section "Stream -- open-system latency under offered load";
  let reps = Stdlib.max 5 config.Runner.reps in
  Printf.printf
    "Poisson arrivals into n=%d tasks on m=%d machines (uniform:1:10,\n\
     alpha=%g), FCFS order, dispatch on arrival to an idle replica\n\
     holder. Offered load rho = lambda * E[actual] / m; the system\n\
     drains after the last admitted task. drift > %.1f marks a cell\n\
     past its stability frontier. %d reps per cell, paired across\n\
     strategies.\n\n"
    n m alpha drift_unstable reps;
  let table =
    Table.create
      ~columns:
        [
          ("rho", Table.Right);
          ("strategy", Table.Left);
          ("p50", Table.Right);
          ("p95", Table.Right);
          ("p99", Table.Right);
          ("util", Table.Right);
          ("waste", Table.Right);
          ("drift", Table.Right);
          ("verdict", Table.Left);
        ]
  in
  let csv_rows = ref [] in
  let unstable_cells = ref 0 in
  let mg name = Metrics.gauge config.Runner.metrics ("stream." ^ name) in
  let g_p50 = mg "p50_max"
  and g_p95 = mg "p95_max"
  and g_p99 = mg "p99_max"
  and g_util = mg "utilization_max" in
  let showcase = ref [||] in
  List.iter
    (fun rho ->
      let master = Rng.create ~seed:(config.Runner.seed + 9091) () in
      let results =
        List.map
          (fun cell ->
            (cell, ref [], Summary.create (), Summary.create (),
             Summary.create ()))
          cells
      in
      for _ = 1 to reps do
        let rng = Rng.split master in
        let instance =
          Workload.generate
            (Workload.Uniform { lo = 1.0; hi = 10.0 })
            ~n ~m ~alpha:(Uncertainty.alpha alpha) rng
        in
        let realization = Realization.log_uniform_factor instance rng in
        let actuals = Realization.actuals realization in
        let mean_service =
          Array.fold_left ( +. ) 0.0 actuals /. float_of_int n
        in
        let rate = rho *. float_of_int m /. mean_service in
        let arrivals = Arrival.generate (Arrival.poisson ~rate) rng ~count:n in
        let order = Array.init n (fun j -> j) in
        let total_work = Array.fold_left ( +. ) 0.0 actuals in
        List.iter
          (fun (cell, pooled, util, drifts, waste) ->
            let algo = Runner.strategy config ~m cell.spec in
            let placement = algo.Core.Two_phase.phase1 instance in
            let so =
              Engine.run_stream ?speculation:cell.speculation instance
                realization ~arrivals
                ~placement:(Core.Placement.sets placement)
                ~order
            in
            let outcome = so.Engine.outcome in
            pooled := so.Engine.latencies :: !pooled;
            Summary.add drifts (drift so.Engine.latencies);
            Summary.add waste (outcome.Engine.wasted /. total_work);
            if outcome.Engine.makespan > 0.0 then begin
              let work = ref outcome.Engine.wasted in
              Array.iteri
                (fun j fate ->
                  match fate with
                  | Engine.Finished _ -> work := !work +. actuals.(j)
                  | Engine.Stranded -> ())
                outcome.Engine.fates;
              Summary.add util
                (!work /. (float_of_int m *. outcome.Engine.makespan))
            end)
          results
      done;
      List.iter
        (fun (cell, pooled, util, drifts, waste) ->
          let latencies = Array.concat !pooled in
          Array.sort Float.compare latencies;
          let q p =
            if Array.length latencies = 0 then Float.nan
            else Quantile.quantile latencies ~q:p
          in
          let mean_drift = Summary.mean drifts in
          let stable = mean_drift <= drift_unstable in
          if not stable then incr unstable_cells;
          if stable then begin
            (* The frontier gauges summarize the settled cells only: an
               unstable cell's quantiles measure the admitted window,
               not a stationary latency. *)
            Metrics.record_max g_p50 (q 0.5);
            Metrics.record_max g_p95 (q 0.95);
            Metrics.record_max g_p99 (q 0.99)
          end;
          Metrics.record_max g_util (Summary.max util);
          if rho = 0.85 && cell.label = "full-replication" then
            showcase := latencies;
          Table.add_row table
            [
              Printf.sprintf "%.2f" rho;
              cell.label;
              Table.cell_float (q 0.5);
              Table.cell_float (q 0.95);
              Table.cell_float (q 0.99);
              Table.cell_float (Summary.mean util);
              Printf.sprintf "%.1f%%" (100.0 *. Summary.mean waste);
              Table.cell_float mean_drift;
              (if stable then "stable" else "UNSTABLE");
            ];
          csv_rows :=
            [
              Printf.sprintf "%.2f" rho;
              cell.label;
              Printf.sprintf "%.6f" (q 0.5);
              Printf.sprintf "%.6f" (q 0.95);
              Printf.sprintf "%.6f" (q 0.99);
              Printf.sprintf "%.6f" (Summary.mean util);
              Printf.sprintf "%.6f" (Summary.mean waste);
              Printf.sprintf "%.6f" mean_drift;
              (if stable then "stable" else "unstable");
            ]
            :: !csv_rows)
        results)
    loads;
  print_string (Table.render table);
  Metrics.set
    (Metrics.gauge config.Runner.metrics "stream.unstable_cells")
    (float_of_int !unstable_cells);
  Runner.maybe_csv config ~name:"stream"
    ~header:
      [ "rho"; "strategy"; "p50"; "p95"; "p99"; "utilization";
        "wasted_fraction"; "drift"; "verdict" ]
    (List.rev !csv_rows);
  if Array.length !showcase > 0 then begin
    Printf.printf
      "\nlatency distribution, full-replication at rho=0.85 (pooled over\n\
       %d reps):\n"
      reps;
    Format.printf "%a" Histogram.pp (Histogram.of_data ~bins:12 !showcase)
  end;
  Printf.printf
    "\nBelow saturation replication buys latency: any idle holder can\n\
     serve the newest arrival, so full replication beats singleton\n\
     placement on every quantile. Past rho = 1 no placement is stable --\n\
     the drift column shows every strategy crossing its frontier -- and\n\
     speculation trades wasted work for the tail, not for capacity.\n"
