(** Ablation studies beyond the paper's figures.

    Three design questions the paper raises in passing, answered
    empirically:
    - does an LPT order in LS-Group's phases help (§5.3 closing remark)?
    - how strong are the different adversaries against LPT-No Choice?
    - how much replication does the selective (future-work) strategy
      need before it matches full replication? *)

val phase2_order : Runner.config -> unit
(** LS-Group vs LPT-Group measured ratios across workloads. *)

val adversary_strength : Runner.config -> unit
(** Theorem-1 vs greedy-flip vs exhaustive adversaries on one instance
    family. *)

val selective_replication : Runner.config -> unit
(** Measured ratio as the number of replicated "critical" tasks grows
    from 0 (LPT-No Choice) to n (LPT-No Restriction). *)

val correlated_errors : Runner.config -> unit
(** How the error structure changes the picture: iid log-uniform noise
    vs clustered (correlated) noise vs pure systematic bias, for each
    strategy. Bias provably leaves ratios untouched; correlation moves
    the iid case toward that harmless limit, so independent errors are
    where replication pays most. *)

val run : Runner.config -> unit
(** All three. *)
