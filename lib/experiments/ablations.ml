module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let phase2_order config =
  Runner.print_section "Ablation -- LS vs LPT orders in group replication";
  let m = 24 and alpha = 1.5 and k = 4 in
  let table =
    Table.create
      ~columns:
        [
          ("workload", Table.Left);
          ("LS-Group mean ratio", Table.Right);
          ("LPT-Group mean ratio", Table.Right);
          ("LPT order wins", Table.Left);
        ]
  in
  List.iter
    (fun (name, spec) ->
      let sweep algo =
        Runner.random_sweep config ~algo ~spec
          ~realize:(fun instance rng -> Realization.log_uniform_factor instance rng)
          ~n:(6 * m) ~m ~alpha
      in
      let ls = sweep (Runner.strategy config ~m Strategy.(group ~order:Ls ~k)) in
      let lpt =
        sweep (Runner.strategy config ~m Strategy.(group ~order:Lpt ~k))
      in
      let ls_mean = Summary.mean ls.Runner.summary in
      let lpt_mean = Summary.mean lpt.Runner.summary in
      Table.add_row table
        [
          name;
          Table.cell_float ls_mean;
          Table.cell_float lpt_mean;
          (if lpt_mean < ls_mean -. 1e-9 then "yes" else "no");
        ])
    (Workload.standard_suite ~m);
  print_string (Table.render table);
  Printf.printf
    "(The paper conjectures LPT phases would not improve the *guarantee*;\n\
     in-practice averages may still favor LPT ordering.)\n"

let adversary_strength config =
  Runner.print_section "Ablation -- adversary strength vs LPT-No Choice";
  let m = 3 and alpha = 2.0 and n = 9 in
  let instance =
    Workload.generate (Workload.Identical 1.0) ~n ~m
      ~alpha:(Uncertainty.alpha alpha)
      (Rng.create ~seed:config.Runner.seed ())
  in
  let algo = Runner.strategy config ~m Strategy.(no_replication Lpt) in
  let placement = algo.Core.Two_phase.phase1 instance in
  let run realization = algo.Core.Two_phase.phase2 instance placement realization in
  let opt actuals = fst (Runner.opt_estimate config ~m actuals) in
  let ratio_of realization = Core.Adversary.ratio ~run ~opt realization in
  let theorem1 = ratio_of (Core.Adversary.theorem1 instance placement) in
  let greedy = ratio_of (Core.Adversary.greedy_flip ~run ~opt instance) in
  let _, exhaustive = Core.Adversary.exhaustive ~run ~opt instance in
  let table =
    Table.create
      ~columns:[ ("adversary", Table.Left); ("achieved ratio", Table.Right) ]
  in
  Table.add_row table [ "Theorem-1 (inflate most loaded)"; Table.cell_float theorem1 ];
  Table.add_row table [ "greedy flips"; Table.cell_float greedy ];
  Table.add_row table [ "exhaustive (2^n extremes)"; Table.cell_float exhaustive ];
  print_string (Table.render table);
  Printf.printf
    "Guarantee (Th2) %.4f must dominate all rows; Theorem-1 bound %.4f is\n\
     what the best adversary approaches as instances grow.\n"
    (Core.Guarantees.lpt_no_choice ~m ~alpha)
    (Core.Guarantees.no_replication_lower_bound ~m ~alpha)

let selective_replication config =
  Runner.print_section "Ablation -- selective replication of critical tasks";
  let m = 5 and alpha = 2.0 and n = 15 in
  (* Against oblivious random noise every variant is near-optimal; the
     interesting curve is against adversaries that exploit the
     placement. Kept small so the optimum is exact. *)
  let instances =
    List.map
      (fun i ->
        Workload.generate
          (Workload.Bimodal { p_long = 0.2; short_mean = 1.0; long_mean = 20.0 })
          ~n ~m
          ~alpha:(Uncertainty.alpha alpha)
          (Rng.create ~seed:(config.Runner.seed + i) ()))
      [ 0; 1; 2 ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("replicated tasks", Table.Right);
          ("worst adversarial ratio", Table.Right);
          ("memory overhead vs none", Table.Right);
        ]
  in
  List.iter
    (fun count ->
      let algo = Runner.strategy config ~m (Strategy.selective ~count) in
      let worst =
        List.fold_left
          (fun acc instance ->
            Float.max acc (Runner.adversarial_ratio config algo instance))
          neg_infinity instances
      in
      let placement = Core.Selective.placement ~count (List.hd instances) in
      let overhead =
        float_of_int (Core.Placement.total_replicas placement) /. float_of_int n
      in
      Table.add_row table
        [
          string_of_int count;
          Table.cell_float worst;
          Printf.sprintf "%.2fx" overhead;
        ])
    [ 0; 1; 2; 3; 5; 8; 15 ];
  print_string (Table.render table);
  Printf.printf
    "(Replicating only the few largest tasks blunts the adversary at a\n\
     fraction of full replication's memory — the paper's future-work\n\
     intuition.)\n"

let correlated_errors config =
  Runner.print_section "Ablation -- error structure: iid vs clustered vs bias";
  let m = 8 and alpha = 2.0 and n = 48 in
  let models =
    [
      ("iid log-uniform", fun instance rng -> Realization.log_uniform_factor instance rng);
      ("clustered (4 groups)", fun instance rng -> Realization.clustered ~clusters:4 instance rng);
      ("clustered (2 groups)", fun instance rng -> Realization.clustered ~clusters:2 instance rng);
      ( "systematic bias x1.6",
        fun instance _rng -> Realization.biased ~factor:1.6 instance );
    ]
  in
  let strategies =
    [
      ("no replication", Runner.strategy config ~m Strategy.(no_replication Lpt));
      ("LS-Group k=4", Runner.strategy config ~m Strategy.(group ~order:Ls ~k:4));
      ( "full replication",
        Runner.strategy config ~m Strategy.(full_replication Lpt) );
    ]
  in
  let table =
    Table.create
      ~columns:
        ([ ("error model", Table.Left) ]
        @ List.map (fun (name, _) -> (name, Table.Right)) strategies)
  in
  List.iter
    (fun (model_name, realize) ->
      let cells =
        List.map
          (fun (_, algo) ->
            let sweep =
              Runner.random_sweep config ~algo
                ~spec:(Workload.Uniform { lo = 1.0; hi = 10.0 })
                ~realize ~n ~m ~alpha
            in
            Table.cell_float (Summary.mean sweep.Runner.summary))
          strategies
      in
      Table.add_row table (model_name :: cells))
    models;
  print_string (Table.render table);
  Printf.printf
    "(Mean ratio vs lower bound. Systematic bias rescales the schedule\n\
     and the optimum alike, so its row equals the noise-free ratio — the\n\
     model only punishes *relative* misestimation. Correlation moves the\n\
     iid row toward the bias row: the fewer independent factors, the\n\
     closer the noise is to a harmless global rescaling. Replication's\n\
     advantage is largest under fully independent errors.)\n"

let run config =
  phase2_order config;
  adversary_strength config;
  selective_replication config;
  correlated_errors config
