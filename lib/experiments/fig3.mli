(** Figure 3: the ratio-replication tradeoff ([m = 210],
    [α ∈ {1.1, 1.5, 2}]).

    For every divisor [k] of 210, plots the LS-Group guarantee against
    the replication degree [m/k], together with the strategy-1 points
    (LPT-No Choice guarantee and the Theorem-1 impossibility at
    replication 1) and the strategy-2 point (LPT-No Restriction at
    replication [m]). A second series shows measured ratios from random
    workloads at selected replication degrees, confirming the shape:
    a few replicas already recover most of the makespan guarantee. *)

val divisors : int -> int list
(** All positive divisors, ascending. *)

val guarantee_series : m:int -> alpha:float -> (int * float) list
(** [(replication m/k, LS-Group guarantee with k groups)] for every
    divisor [k] of [m], ascending in replication. *)

val run : Runner.config -> unit
