(** Lower-bound search (conclusion, open problem 1).

    Solves the no-replication placement game exactly on the Theorem-1
    instance family (identical tasks, two-point adversary) and compares
    three quantities at each size:

    - the paper's finite-λ proof ratio (what Theorem 1's argument gives
      before taking λ to infinity);
    - the exact minimax value (the best ratio any placement can
      guarantee on this family against two-point adversaries);
    - the limit bound α²m/(α²+m−1) and the LPT-No Choice guarantee.

    The gap between the proof ratio and the exact minimax shows how much
    room the paper's lower-bound argument leaves at finite sizes — the
    quantitative version of "better lower bounds might help". *)

val run : Runner.config -> unit
