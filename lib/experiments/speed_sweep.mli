(** The speed-robust experiment ([speed-robust]): sand, bricks and rocks
    workloads under banded machine speeds, fixed-degree vs speed-robust
    replication, adversarial and Monte-Carlo revelations (paired — the
    sampled draws are folded into the adversary's candidate set, so the
    adversarial ratio dominates every sampled one by construction), and a
    mid-run revelation replayed through the fault layer. *)

val run : Runner.config -> unit
