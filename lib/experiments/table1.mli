(** Table 1: summary of the replication-bound model's guarantees.

    Evaluates each of the paper's four bounds (Theorems 1-4 plus Graham's
    [2 - 1/m]) over a grid of [(m, α)], and confronts each algorithm's
    guarantee with the worst measured ratio found by adversarial search
    on small instances — checking both that no measurement exceeds its
    guarantee and that the no-replication measurements exceed the
    Theorem-1 impossibility bound's implication (no algorithm can do
    better). *)

val run : Runner.config -> unit
