(** Reliability tradeoff: makespan x memory footprint x survival.

    The tri-objective experiment behind the reliability strategy family
    ({!Usched_core.Reliability}): for several seeded per-machine failure
    profiles, run the paper's fixed-degree strategies next to
    reliability-targeted placements and measure, per strategy,

    - the makespan ratio against the realization lower bound,
    - the peak per-machine replica memory ([Placement.memory_max]),
    - the Monte-Carlo survival probability [P(no stranded task)] over
      seeded profile-driven crash traces, with a bootstrap confidence
      interval, next to the analytic union bound
      ({!Usched_core.Reliability.survival_bound}).

    Crash draws are paired: within a repetition every strategy faces the
    same crash sets, so survival differences are placement differences.
    The run manifest gains [reliability.survival_min] /
    [reliability.bound_min] gauges (the worst Monte-Carlo survival and
    analytic bound over all reliability-family rows) for CI checks. *)

type survival = { point : float; lo : float; hi : float; trials : int }
(** A Monte-Carlo survival estimate with a 95% bootstrap interval. *)

val monte_carlo_survival :
  ?trials:int ->
  ?domains:int ->
  seed:int ->
  profile:Usched_model.Failure.t ->
  Usched_core.Placement.t ->
  survival
(** [monte_carlo_survival ~seed ~profile placement] draws [trials]
    (default 1000) independent crash traces from the profile
    ({!Usched_faults.Trace.profile_crashes}) and reports the fraction
    under which no task is stranded — a task strands when every machine
    in its replica set crashes. [domains] (default 1) shards the draws
    over that many domains; trial generators are pre-split
    sequentially, so the result is deterministic given [seed] and
    bit-identical at any domain count. *)

val run : Runner.config -> unit
