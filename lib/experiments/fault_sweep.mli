(** Fault sweep: dynamic mid-run failures vs replication degree.

    The paper motivates replication with Hadoop-style fault tolerance but
    never simulates a failure; {!Fault_tolerance} measures the static
    variant (a machine lost {e before} phase 2 starts). This experiment
    exercises the dynamic engine ([Engine.run_faulty]): machines crash
    {e during} execution, in-flight work is killed and re-dispatched to
    surviving replica holders, and stragglers are beaten by speculative
    re-execution. Three sections:

    - completion probability, makespan degradation, and wasted work as a
      function of the replication degree [k] (nested ring placements, so
      completion is monotonically non-decreasing in [k] by construction)
      and the per-machine crash rate;
    - the same fault metrics across the paper's strategies (LPT-No
      Choice, LS-Group, Budgeted, LPT-No Restriction) under one shared
      crash trace per repetition (paired comparison);
    - speculation on/off under straggler slowdowns: response-time gain
      bought, wasted duplicate work paid (cf. Wang et al. and Sun et al.
      on task replication for response times, PAPERS.md). *)

val run : Runner.config -> unit
