module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Plot = Usched_report.Ascii_plot
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Rng = Usched_prng.Rng

let sabo_curve ~alpha ~rho ~deltas =
  List.map
    (fun delta ->
      ( Core.Guarantees.sabo_memory ~delta ~rho2:rho,
        Core.Guarantees.sabo_makespan ~alpha ~delta ~rho1:rho ))
    deltas

let abo_curve ~m ~alpha ~rho ~deltas =
  List.map
    (fun delta ->
      ( Core.Guarantees.abo_memory ~m ~delta ~rho2:rho,
        Core.Guarantees.abo_makespan ~m ~alpha ~delta ~rho1:rho ))
    deltas

let log_grid ~lo ~hi ~steps =
  List.init steps (fun i ->
      lo *. ((hi /. lo) ** (float_of_int i /. float_of_int (steps - 1))))

let one_config ?config ~m ~alpha2 ~rho () =
  let alpha = sqrt alpha2 in
  Printf.printf "\n--- m=%d, alpha^2=%g, rho1=rho2=%g ---\n" m alpha2 rho;
  let deltas = log_grid ~lo:0.05 ~hi:20.0 ~steps:25 in
  let sabo = sabo_curve ~alpha ~rho ~deltas in
  let abo = abo_curve ~m ~alpha ~rho ~deltas in
  (* Clip to a readable window: memory guarantee in [1, 12]. *)
  let clip = List.filter (fun (mem, mk) -> mem <= 12.0 && mk <= 14.0) in
  let impossibility =
    List.filter_map
      (fun mk ->
        if mk > 1.001 then Some (Core.Guarantees.tradeoff_impossibility ~makespan_ratio:mk, mk)
        else None)
      (log_grid ~lo:1.02 ~hi:14.0 ~steps:40)
    |> List.filter (fun (mem, _) -> mem <= 12.0)
  in
  print_string
    (Plot.plot ~width:64 ~height:20 ~x_label:"memory guarantee"
       ~y_label:"makespan guarantee"
       ~title:
         (Printf.sprintf "Figure 6, m=%d, alpha^2=%g, rho=%g (sweep of delta)"
            m alpha2 rho)
       [
         {
           Plot.label = "impossibility hyperbola (bold line of the paper)";
           glyph = '#';
           points = Array.of_list impossibility;
         };
         { Plot.label = "SABO"; glyph = 's'; points = Array.of_list (clip sabo) };
         { Plot.label = "ABO"; glyph = 'a'; points = Array.of_list (clip abo) };
       ]);
  (* A few anchor rows. *)
  let table =
    Table.create
      ~columns:
        [
          ("delta", Table.Right);
          ("SABO (mem, makespan)", Table.Left);
          ("ABO (mem, makespan)", Table.Left);
        ]
  in
  List.iter
    (fun delta ->
      let pair (mem, mk) =
        Printf.sprintf "(%s, %s)" (Table.cell_float mem) (Table.cell_float mk)
      in
      Table.add_row table
        [
          Table.cell_float ~decimals:2 delta;
          pair (List.hd (sabo_curve ~alpha ~rho ~deltas:[ delta ]));
          pair (List.hd (abo_curve ~m ~alpha ~rho ~deltas:[ delta ]));
        ])
    [ 0.25; 0.5; 1.0; 2.0; 5.0 ];
  print_string (Table.render table);
  (match config with
  | None -> ()
  | Some config ->
      Runner.maybe_csv config
        ~name:(Printf.sprintf "fig6_m%d_alpha2_%g_rho%g" m alpha2 rho)
        ~header:[ "delta"; "sabo_memory"; "sabo_makespan"; "abo_memory"; "abo_makespan" ]
        (List.map2
           (fun delta ((s_mem, s_mk), (a_mem, a_mk)) ->
             [
               Printf.sprintf "%.6f" delta;
               Printf.sprintf "%.6f" s_mem;
               Printf.sprintf "%.6f" s_mk;
               Printf.sprintf "%.6f" a_mem;
               Printf.sprintf "%.6f" a_mk;
             ])
           deltas
           (List.combine sabo abo)));
  Printf.printf "alpha*rho1 = %.3f => %s\n" (alpha *. rho)
    (if Core.Guarantees.abo_beats_sabo_on_makespan ~alpha ~rho1:rho then
       "ABO dominates on makespan (paper's crossover rule)"
     else "no uniform makespan dominance; SABO still dominates on memory")

(* Empirical counterpart of the guarantee curves: measured
   (memory ratio, makespan ratio) as delta sweeps, worst over a small
   instance set with exact optima. *)
let measured_frontier config ~m ~alpha =
  Printf.printf
    "\nMeasured frontier at m=%d, alpha=%g (worst over random instances,\n\
     exact optima; compare shapes with the guarantee curves above):\n"
    m alpha;
  let alpha_v = Uncertainty.alpha alpha in
  let deltas = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let measure algo_of placement_of delta =
    let rng = Rng.create ~seed:config.Runner.seed () in
    let worst_mk = ref 0.0 and worst_mem = ref 0.0 in
    for _ = 1 to Stdlib.max 5 (config.Runner.reps / 5) do
      let instance =
        Workload.generate
          (Workload.Uniform { lo = 1.0; hi = 10.0 })
          ~size_spec:(Workload.Inverse 5.0) ~n:12 ~m ~alpha:alpha_v rng
      in
      let realization = Realization.uniform_factor instance rng in
      let schedule = Core.Two_phase.run (algo_of delta) instance realization in
      let opt, _ =
        Runner.opt_estimate config ~m (Realization.actuals realization)
      in
      let mem = Core.Memory.of_placement instance (placement_of delta instance) in
      let mem_star = Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance) in
      worst_mk := Float.max !worst_mk (Schedule.makespan schedule /. opt);
      worst_mem := Float.max !worst_mem (mem /. mem_star)
    done;
    (!worst_mem, !worst_mk)
  in
  let sabo =
    List.map
      (measure
         (fun delta -> Runner.strategy config ~m (Strategy.sabo ~delta))
         (fun delta instance -> Core.Sabo.placement ~delta instance))
      deltas
  in
  let abo =
    List.map
      (measure
         (fun delta -> Runner.strategy config ~m (Strategy.abo ~delta))
         (fun delta instance -> Core.Abo.placement ~delta instance))
      deltas
  in
  print_string
    (Plot.plot ~width:56 ~height:14 ~x_label:"measured memory ratio"
       ~y_label:"measured makespan ratio"
       ~title:"Measured Pareto points (s = SABO, a = ABO), delta in {0.25..4}"
       [
         { Plot.label = "SABO measured"; glyph = 's'; points = Array.of_list sabo };
         { Plot.label = "ABO measured"; glyph = 'a'; points = Array.of_list abo };
       ])

let run config =
  Runner.print_section "Figure 6 -- Memory-makespan guarantee tradeoff";
  one_config ~config ~m:5 ~alpha2:2.0 ~rho:(4.0 /. 3.0) ();
  one_config ~config ~m:5 ~alpha2:3.0 ~rho:1.0 ();
  one_config ~config ~m:5 ~alpha2:3.0 ~rho:(4.0 /. 3.0) ();
  measured_frontier config ~m:5 ~alpha:(sqrt 2.0)
