module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Failure = Usched_model.Failure
module Schedule = Usched_desim.Schedule
module Trace = Usched_faults.Trace
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary
module Bootstrap = Usched_stats.Bootstrap
module Metrics = Usched_obs.Metrics

let m = 8
let n = 40
let alpha = 1.5
let crash_draws_per_rep = 40

type survival = { point : float; lo : float; hi : float; trials : int }

(* A crash draw strands task [j] iff every machine in its replica set
   crashed; an empty set counts as stranded (no data survives anywhere),
   matching [Failure.prob_all_lost] on the empty set. *)
let survives sets crashed =
  not (Array.exists (fun s -> Bitset.subset s crashed) sets)

let crashed_set ~m faults =
  let set = Bitset.create m in
  List.iter (fun i -> Bitset.add set i) (Trace.crashed faults);
  set

let monte_carlo_survival ?(trials = 1000) ?(domains = 1) ~seed ~profile
    placement =
  if trials < 1 then invalid_arg "monte_carlo_survival: trials must be >= 1";
  let sets = Core.Placement.sets placement in
  let mm = Failure.m profile in
  let rng = Rng.create ~seed () in
  (* Trial generators are split off sequentially before the fan-out, so
     trial [t] sees the same stream — and the bootstrap below continues
     from the same master state — at any domain count: N-domain and
     1-domain runs are bit-identical. *)
  let trial_rngs = Array.init trials (fun _ -> Rng.split rng) in
  let data =
    Usched_parallel.Pool.parallel_init ~domains trials (fun t ->
        let faults =
          Trace.profile_crashes trial_rngs.(t) ~profile ~horizon:1.0
        in
        if survives sets (crashed_set ~m:mm faults) then 1.0 else 0.0)
  in
  let iv = Bootstrap.mean_interval ~rng data in
  { point = iv.Bootstrap.point; lo = iv.Bootstrap.lo; hi = iv.Bootstrap.hi;
    trials }

(* ------------------------- the experiment --------------------------- *)

let profiles =
  [
    ("uniform p=0.05", fun _rng -> Failure.uniform ~m ~p:0.05);
    ( "tiered 0.01/0.20",
      fun _rng ->
        Failure.make (Array.init m (fun i -> if i < m / 2 then 0.01 else 0.20))
    );
    ( "random [0.01,0.30]",
      fun rng ->
        Failure.make
          (Array.init m (fun _ -> Rng.float_range rng ~lo:0.01 ~hi:0.30)) );
  ]

let strategy_specs =
  Strategy.
    [
      ("LPT-No Choice", no_replication Lpt);
      ("Budgeted k=2", budgeted ~k:2);
      ("Reliability 0.9", reliability ~target:0.9 ~budget:None);
      ("Reliability 0.99", reliability ~target:0.99 ~budget:None);
      ("Reliability 0.999", reliability ~target:0.999 ~budget:None);
      ("Reliability 0.99 B=18", reliability ~target:0.99 ~budget:(Some 18.0));
      ("LPT-No Restriction", full_replication Lpt);
    ]

let is_reliability = function Strategy.Reliability _ -> true | _ -> false

type row = {
  spec : Strategy.t;
  algo : Core.Two_phase.t;
  ratio : Summary.t;
  mem : Summary.t;
  bound : Summary.t;
  indicators : float list ref;
  infeasible : int ref;
}

let generate rng =
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha alpha)
      rng
  in
  (instance, Realization.log_uniform_factor instance rng)

let run config =
  Runner.print_section
    "Reliability tradeoff -- makespan x memory x survival probability";
  let reps = Stdlib.max 10 config.Runner.reps in
  Printf.printf
    "n=%d tasks, m=%d machines, alpha=%g. Per profile and repetition every\n\
     strategy sees the same workload, realization, and %d crash draws from\n\
     the profile (paired streams), so survival differences are placement\n\
     differences. 'survival' is the Monte-Carlo P(no stranded task) with a\n\
     95%% bootstrap CI over %d draws; 'bound' the analytic union bound the\n\
     reliability solver holds at >= its target.\n\n"
    n m alpha crash_draws_per_rep (reps * crash_draws_per_rep);
  let table =
    Table.create
      ~columns:
        [
          ("profile", Table.Left);
          ("strategy", Table.Left);
          ("mean ratio", Table.Right);
          ("mem max", Table.Right);
          ("survival", Table.Right);
          ("95% CI", Table.Right);
          ("bound", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  let min_survival = ref infinity and min_bound = ref infinity in
  List.iteri
    (fun pidx (pname, make_profile) ->
      let profile = make_profile (Rng.create ~seed:(config.Runner.seed + (613 * pidx)) ()) in
      let rows =
        List.map
          (fun (name, spec) ->
            ( name,
              {
                spec;
                algo = Runner.strategy config ~m spec;
                ratio = Summary.create ();
                mem = Summary.create ();
                bound = Summary.create ();
                indicators = ref [];
                infeasible = ref 0;
              } ))
          strategy_specs
      in
      let master = Rng.create ~seed:(config.Runner.seed + (7919 * pidx)) () in
      for _ = 1 to reps do
        let rng = Rng.split master in
        let instance, realization = generate rng in
        let instance = Instance.with_failure instance (Some profile) in
        let lb =
          Core.Lower_bounds.best ~m (Realization.actuals realization)
        in
        let crash_sets =
          Array.init crash_draws_per_rep (fun _ -> Rng.split rng)
          |> Array.map (fun r ->
                 crashed_set ~m
                   (Trace.profile_crashes r ~profile ~horizon:1.0))
        in
        List.iter
          (fun (_, row) ->
            match row.algo.Core.Two_phase.phase1 instance with
            | exception Core.Reliability.Infeasible _ -> incr row.infeasible
            | placement ->
                let makespan =
                  Schedule.makespan
                    (row.algo.Core.Two_phase.phase2 instance placement
                       realization)
                in
                Summary.add row.ratio (makespan /. lb);
                Summary.add row.mem
                  (Core.Placement.memory_max placement
                     ~sizes:(Instance.sizes instance));
                Summary.add row.bound
                  (Core.Reliability.survival_bound instance placement);
                let sets = Core.Placement.sets placement in
                Array.iter
                  (fun crashed ->
                    row.indicators :=
                      (if survives sets crashed then 1.0 else 0.0)
                      :: !(row.indicators))
                  crash_sets)
          rows
      done;
      List.iter
        (fun (name, row) ->
          if !(row.infeasible) = reps then begin
            Table.add_row table
              [ pname; name; "-"; "-"; "infeasible"; "-"; "-" ];
            csv_rows :=
              [ pname; Strategy.to_string row.spec; "nan"; "nan"; "nan";
                "nan"; "nan"; "nan"; string_of_int !(row.infeasible) ]
              :: !csv_rows
          end
          else begin
            let data = Array.of_list !(row.indicators) in
            let iv =
              Bootstrap.mean_interval
                ~rng:(Rng.create ~seed:(config.Runner.seed + 104729) ())
                data
            in
            if is_reliability row.spec then begin
              min_survival := Float.min !min_survival iv.Bootstrap.point;
              min_bound := Float.min !min_bound (Summary.min row.bound)
            end;
            Table.add_row table
              [
                pname;
                name;
                Table.cell_float (Summary.mean row.ratio);
                Table.cell_float (Summary.mean row.mem);
                Printf.sprintf "%.4f" iv.Bootstrap.point;
                Printf.sprintf "[%.4f, %.4f]" iv.Bootstrap.lo iv.Bootstrap.hi;
                Printf.sprintf "%.4f" (Summary.min row.bound);
              ];
            csv_rows :=
              [
                pname;
                Strategy.to_string row.spec;
                Printf.sprintf "%.6f" (Summary.mean row.ratio);
                Printf.sprintf "%.6f" (Summary.mean row.mem);
                Printf.sprintf "%.6f" iv.Bootstrap.point;
                Printf.sprintf "%.6f" iv.Bootstrap.lo;
                Printf.sprintf "%.6f" iv.Bootstrap.hi;
                Printf.sprintf "%.6f" (Summary.min row.bound);
                string_of_int !(row.infeasible);
              ]
              :: !csv_rows
          end)
        rows)
    profiles;
  print_string (Table.render table);
  if Float.is_finite !min_survival then begin
    Metrics.set
      (Metrics.gauge config.Runner.metrics "reliability.survival_min")
      !min_survival;
    Metrics.set
      (Metrics.gauge config.Runner.metrics "reliability.bound_min")
      !min_bound
  end;
  Runner.maybe_csv config ~name:"reliability_tradeoff"
    ~header:
      [ "profile"; "strategy"; "mean_ratio"; "mem_max"; "survival";
        "survival_lo"; "survival_hi"; "bound_min"; "infeasible_reps" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nFixed-degree strategies pay the same memory on every profile and\n\
     let survival float; the reliability family holds survival above its\n\
     target (bound column) and spends memory only where the profile is\n\
     flaky — degrees shrink on the reliable tier, which is what the\n\
     variable-degree engine plumbing exists for. The budgeted variant\n\
     shows the feasibility edge: a tight memory cap and a tight target\n\
     cannot always both be met.\n"
