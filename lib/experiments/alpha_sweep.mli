(** Where is the uncertainty boundary? (conclusion's open problem)

    The paper observes that for small [α] the problem behaves like the
    offline one, and for large [α] like the non-clairvoyant online one,
    and asks where the transition lies. This experiment sweeps [α] and
    measures, for each strategy, the worst adversarial ratio on small
    instances (exact optimum) next to the theoretical guarantee —
    exposing where the measured curves leave the offline regime and
    where they saturate at the online (2 - 1/m)-style behaviour. *)

val run : Runner.config -> unit
