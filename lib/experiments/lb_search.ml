module Core = Usched_core
module Table = Usched_report.Table

let one_setting ~m ~alpha =
  Printf.printf "\n--- m=%d, alpha=%g ---\n" m alpha;
  let table =
    Table.create
      ~columns:
        [
          ("lambda", Table.Right);
          ("n", Table.Right);
          ("proof ratio (Th1 argument)", Table.Right);
          ("exact minimax (this work)", Table.Right);
          ("optimal partition", Table.Left);
        ]
  in
  List.iter
    (fun lambda ->
      let n = lambda * m in
      let r = Core.Minimax.identical_minimax ~m ~n ~alpha in
      Table.add_row table
        [
          string_of_int lambda;
          string_of_int n;
          Table.cell_float
            (Fig1.theoretical_ratio_at_lambda ~m ~alpha ~lambda);
          Table.cell_float r.Core.Minimax.value;
          String.concat "+"
            (Array.to_list (Array.map string_of_int r.Core.Minimax.partition));
        ])
    [ 1; 2; 3; 4; 5 ];
  print_string (Table.render table);
  Printf.printf
    "limit bound alpha^2*m/(alpha^2+m-1) = %.4f; LPT-No Choice guarantee = %.4f\n"
    (Core.Guarantees.no_replication_lower_bound ~m ~alpha)
    (Core.Guarantees.lpt_no_choice ~m ~alpha)

let run _config =
  Runner.print_section
    "Lower-bound search -- exact minimax on the Theorem-1 family";
  Printf.printf
    "For each size, 'exact minimax' is min over placements of the worst\n\
     two-point adversarial ratio (exact optima): no unreplicated\n\
     algorithm can do better on this instance, and the balanced\n\
     placement achieves it. The paper's proof ratio is what Theorem 1's\n\
     relaxations certify at the same size.\n";
  one_setting ~m:2 ~alpha:2.0;
  one_setting ~m:3 ~alpha:1.5;
  one_setting ~m:4 ~alpha:2.0;
  Printf.printf
    "\nReading: the exact minimax exceeds the finite-lambda proof ratio\n\
     substantially at small sizes (the proof's ceiling relaxations are\n\
     loose there) and both converge toward the alpha^2m/(alpha^2+m-1)\n\
     limit — so on this family the paper's bound is asymptotically\n\
     right, and stronger finite-size lower bounds exist.\n"
