module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let equal_cost_policies config =
  Printf.printf
    "Equal replica budgets, different shapes (m=6, worst adversarial\n\
     ratio over three small instances, exact optimum):\n\n";
  let m = 6 and alpha = 2.0 in
  let instances =
    List.map
      (fun i ->
        Workload.generate
          (Workload.Uniform { lo = 1.0; hi = 6.0 })
          ~n:12 ~m
          ~alpha:(Uncertainty.alpha alpha)
          (Rng.create ~seed:(config.Runner.seed + (7 * i)) ()))
      [ 0; 1; 2 ]
  in
  let worst algo =
    List.fold_left
      (fun acc instance ->
        Float.max acc (Runner.adversarial_ratio config algo instance))
      neg_infinity instances
  in
  let table =
    Table.create
      ~columns:
        [
          ("replicas/task", Table.Right);
          ("LS-Group (disjoint)", Table.Right);
          ("Budgeted (overlapping)", Table.Right);
        ]
  in
  List.iter
    (fun replicas ->
      let group =
        Runner.strategy config ~m Strategy.(group ~order:Ls ~k:(m / replicas))
      in
      let budgeted = Runner.strategy config ~m (Strategy.budgeted ~k:replicas) in
      Table.add_row table
        [
          string_of_int replicas;
          Table.cell_float (worst group);
          Table.cell_float (worst budgeted);
        ])
    [ 1; 2; 3; 6 ];
  print_string (Table.render table);
  Printf.printf
    "(Overlapping machine sets dominate disjoint groups at equal cost —\n\
     evidence for the paper's conjecture that more general replication\n\
     policies can do better.)\n"

let memory_budget_curve config =
  Printf.printf
    "\nMemory-budget policy: makespan achieved as the per-machine budget\n\
     grows (m=4, n=16, sizes = 1, so the budget counts replicas):\n\n";
  let m = 4 and alpha = 2.0 in
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 8.0 })
      ~n:16 ~m
      ~alpha:(Uncertainty.alpha alpha)
      (Rng.create ~seed:config.Runner.seed ())
  in
  let rng = Rng.create ~seed:(config.Runner.seed + 1) () in
  let realizations =
    List.init 10 (fun _ -> Realization.extremes ~p_high:0.3 instance rng)
  in
  let table =
    Table.create
      ~columns:
        [
          ("budget", Table.Right);
          ("total replicas", Table.Right);
          ("mem_max", Table.Right);
          ("mean makespan", Table.Right);
        ]
  in
  List.iter
    (fun budget ->
      let algo = Runner.strategy config ~m (Strategy.memory_budget ~budget) in
      let placement = algo.Core.Two_phase.phase1 instance in
      let summary = Summary.create () in
      List.iter
        (fun realization ->
          Summary.add summary
            (Usched_desim.Schedule.makespan
               (algo.Core.Two_phase.phase2 instance placement realization)))
        realizations;
      Table.add_row table
        [
          Table.cell_float ~decimals:0 budget;
          string_of_int (Core.Placement.total_replicas placement);
          Table.cell_float
            (Core.Memory_budget.max_memory_load instance placement);
          Table.cell_float (Summary.mean summary);
        ])
    [ 4.0; 5.0; 6.0; 8.0; 12.0; 16.0 ];
  print_string (Table.render table);
  Printf.printf
    "(Budget 4 = bare fit, no replicas; by budget 16 every task fits\n\
     everywhere and the makespan matches full replication.)\n"

let run config =
  Runner.print_section "Ablation -- replication policies at equal cost";
  equal_cost_policies config;
  memory_budget_curve config
