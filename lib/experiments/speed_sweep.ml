module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Speed_band = Usched_model.Speed_band
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Trace = Usched_faults.Trace
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary
module Metrics = Usched_obs.Metrics

let m = 8
let n = 32
let mc_draws_per_rep = 12
let band = Speed_band.uniform ~m ~lo:0.5 ~hi:2.0

(* Estimates are exact (alpha = 1): the only uncertainty in this
   experiment is which in-band speeds the adversary (or the Monte-Carlo
   sampler) reveals, so ratio differences are placement hedges, not
   estimation luck. *)
let alpha = 1.0

let strategy_specs =
  Strategy.
    [
      ("no replication (LPT)", no_replication Lpt);
      ("budgeted k=2", budgeted ~k:2);
      ("speed-robust k=2", speed_robust ~k:2);
      ("full replication", full_replication Lpt);
    ]

type row = {
  adv : Summary.t;
  mc : Summary.t;
  reveal : Summary.t;
}

let run config =
  Runner.print_section
    "Speed-robust placement -- sand/bricks/rocks under banded speeds";
  (* The adversary enumerates all 2^m speed corners per placement, so a
     handful of repetitions already costs ~the full sweep of other
     experiments; cap the repetitions rather than the search. *)
  let reps = Stdlib.max 4 (Stdlib.min 12 config.Runner.reps) in
  Printf.printf
    "m=%d machines, every speed in [%g, %g] (committed placement, speeds\n\
     revealed after). n=%d tasks, alpha=%g (exact estimates). Per class and\n\
     repetition every strategy faces the same workload, the same %d paired\n\
     Monte-Carlo revelations, and the same exhaustive corner adversary; the\n\
     sampled draws join the adversary's candidate set, so 'adv' dominates\n\
     'MC' by construction. Ratios are makespan over the uniform-machines\n\
     lower bound at the revealed speeds. 'reveal@t' replays the adversarial\n\
     revelation mid-run through the fault layer: machines start fast and\n\
     are slowed by Slowdown events while work is in flight.\n\n"
    m
    (Speed_band.lo band 0)
    (Speed_band.hi band 0)
    n alpha mc_draws_per_rep;
  let table =
    Table.create
      ~columns:
        [
          ("class", Table.Left);
          ("strategy", Table.Left);
          ("adv ratio", Table.Right);
          ("adv worst", Table.Right);
          ("MC mean", Table.Right);
          ("reveal@t", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  let hedge_wins = ref 0 in
  List.iteri
    (fun cidx (cname, workload) ->
      let rows =
        List.map
          (fun (name, spec) ->
            ( name,
              spec,
              Runner.strategy config ~m spec,
              { adv = Summary.create (); mc = Summary.create ();
                reveal = Summary.create () } ))
          strategy_specs
      in
      let master = Rng.create ~seed:(config.Runner.seed + (7127 * cidx)) () in
      for _ = 1 to reps do
        let rng = Rng.split master in
        let instance =
          Workload.generate workload ~n ~m ~alpha:(Uncertainty.alpha alpha) rng
        in
        let instance = Instance.with_speed_band instance (Some band) in
        let realization = Realization.exact instance in
        let actuals = Realization.actuals realization in
        let lb_at speeds = Core.Uniform.lower_bound ~speeds actuals in
        let draws =
          Array.init mc_draws_per_rep (fun _ ->
              Speed_band.sample band (Rng.split rng))
        in
        List.iter
          (fun (_, _, algo, row) ->
            let placement = algo.Core.Two_phase.phase1 instance in
            let sets = Core.Placement.sets placement in
            let order = Instance.lpt_order instance in
            let makespan speeds =
              Schedule.makespan
                (Engine.run ~speeds instance realization ~placement:sets ~order)
            in
            let run_ratio speeds = makespan speeds /. lb_at speeds in
            let adv_speeds, adv_ratio =
              Core.Speed_adversary.worst_case ~run:run_ratio
                ~candidates:(Array.to_list draws) instance placement band
            in
            Summary.add row.adv adv_ratio;
            Array.iter (fun d -> Summary.add row.mc (run_ratio d)) draws;
            (* Mid-run revelation: start every machine at its optimistic
               speed, then at [at] the fault layer slows each to the
               adversary's pick (factor = target / current). *)
            let his = Speed_band.his band in
            let at = 0.5 *. lb_at his in
            let factors = Array.mapi (fun i s -> s /. his.(i)) adv_speeds in
            let outcome =
              Engine.run_faulty ~speeds:his instance realization
                ~faults:(Trace.revelation ~m ~at factors)
                ~placement:sets ~order
            in
            Summary.add row.reveal
              (outcome.Engine.makespan /. lb_at adv_speeds))
          rows
      done;
      let mean_of (_, _, _, row) = Summary.mean row.adv in
      let no_rep = mean_of (List.hd rows) in
      let best_replicated =
        List.fold_left
          (fun acc r -> Float.min acc (mean_of r))
          infinity (List.tl rows)
      in
      if best_replicated < no_rep then incr hedge_wins;
      Metrics.set
        (Metrics.gauge config.Runner.metrics
           (Printf.sprintf "speed_robust.%s.no_replication" cname))
        no_rep;
      Metrics.set
        (Metrics.gauge config.Runner.metrics
           (Printf.sprintf "speed_robust.%s.best_replicated" cname))
        best_replicated;
      List.iter
        (fun (name, spec, _, row) ->
          Table.add_row table
            [
              cname;
              name;
              Table.cell_float (Summary.mean row.adv);
              Table.cell_float (Summary.max row.adv);
              Table.cell_float (Summary.mean row.mc);
              Table.cell_float (Summary.mean row.reveal);
            ];
          csv_rows :=
            [
              cname;
              Strategy.to_string spec;
              Printf.sprintf "%.6f" (Summary.mean row.adv);
              Printf.sprintf "%.6f" (Summary.max row.adv);
              Printf.sprintf "%.6f" (Summary.mean row.mc);
              Printf.sprintf "%.6f" (Summary.mean row.reveal);
            ]
            :: !csv_rows)
        rows)
    (Workload.speed_robust_suite ~m);
  print_string (Table.render table);
  Metrics.set
    (Metrics.gauge config.Runner.metrics "speed_robust.hedge_wins")
    (float_of_int !hedge_wins);
  Runner.maybe_csv config ~name:"speed_robust"
    ~header:
      [ "class"; "strategy"; "adv_ratio_mean"; "adv_ratio_worst";
        "mc_ratio_mean"; "reveal_ratio_mean" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nPinned placement commits each task to one machine before speeds are\n\
     known, so the adversary slows exactly the loaded machines and the\n\
     ratio blows up — worst on sand, where a speed-aware schedule would be\n\
     perfectly divisible. Any replication lets phase 2 route work toward\n\
     the machines revealed fast; the speed-robust family gets most of full\n\
     replication's hedge at a quarter of its memory by keeping one replica\n\
     per speed class (%d/3 classes where some replication beats none).\n"
    !hedge_wins
