(* recovery-sweep: how much of the paper's replication-degree guarantee
   online healing buys back. Part A crashes machines under a fixed ring
   placement and sweeps the recovery policy (detection latency x
   transfer bandwidth, re-replication target 2) against the passive
   engine on paired traces. Part B isolates checkpoint/resume on
   outage-only traces over singleton placements, where its effect is
   pointwise (every machine runs its own queue, so banked progress can
   only help). *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Core = Usched_core
module Table = Usched_report.Table
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary

let m = 6
let n = 36
let alpha = 1.5
let crash_rate = 0.4

(* Same nested-ring construction as fault_sweep: task [j] lives on
   machines [j mod m .. (j+k-1) mod m]. *)
let ring_placement ~k =
  Core.Placement.of_sets ~m
    (Array.init n (fun j ->
         Bitset.of_list m (List.init k (fun i -> (j + i) mod m))))

let generate rng =
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha alpha)
      rng
  in
  (instance, Realization.log_uniform_factor instance rng)

let counter_of snapshot name =
  match Metrics.find snapshot name with
  | Some (Metrics.Counter c) -> c
  | _ -> 0

type cell = {
  runs : int ref;
  stranded_runs : int ref; (* runs that lost at least one task *)
  stranded_tasks : Summary.t; (* stranded count per run *)
  task_completion : Summary.t;
  degradation : Summary.t; (* faulty/healthy makespan, full runs only *)
  wasted : Summary.t; (* wasted work / total actual work *)
  rereplications : Summary.t; (* healer transfers completed per run *)
  resumes : Summary.t; (* checkpoint resumes per run *)
}

let cell () =
  {
    runs = ref 0;
    stranded_runs = ref 0;
    stranded_tasks = Summary.create ();
    task_completion = Summary.create ();
    degradation = Summary.create ();
    wasted = Summary.create ();
    rereplications = Summary.create ();
    resumes = Summary.create ();
  }

let record cell ~healthy ~total_work (outcome : Engine.outcome) =
  incr cell.runs;
  let stranded = List.length outcome.Engine.stranded in
  if stranded > 0 then incr cell.stranded_runs;
  Summary.add cell.stranded_tasks (float_of_int stranded);
  Summary.add cell.task_completion
    (float_of_int outcome.Engine.completed /. float_of_int n);
  Summary.add cell.wasted (outcome.Engine.wasted /. total_work);
  Summary.add cell.rereplications
    (float_of_int (counter_of outcome.Engine.metrics "engine.rereplications"));
  Summary.add cell.resumes
    (float_of_int
       (counter_of outcome.Engine.metrics "engine.checkpoint_resumes"));
  if outcome.Engine.stranded = [] then
    Summary.add cell.degradation (outcome.Engine.makespan /. healthy)

(* ----------------- part A: healing vs crashes ----------------------- *)

let policies =
  ("passive (none)", Recovery.none)
  :: List.concat_map
       (fun lat ->
         List.map
           (fun (bw_name, bw) ->
             ( Printf.sprintf "heal r=2 lat=%g bw=%s" lat bw_name,
               Recovery.make ~detection_latency:lat ~rereplication_target:(Recovery.Fixed 2)
                 ~bandwidth:bw () ))
           [ ("inf", infinity); ("1", 1.0); ("0.05", 0.05) ])
       [ 0.0; 2.0; 8.0 ]

let healing_sweep config =
  let reps = Stdlib.max 10 config.Runner.reps in
  Printf.printf
    "A. Online re-replication under crashes: n=%d, m=%d, ring k=2, crash\n\
     rate %.2f (times uniform in the healthy makespan), LPT order. Every\n\
     policy replays the same paired workload + crash trace per rep; the\n\
     healer copies data at the given bandwidth back up to 2 live\n\
     replicas, after the given detection latency.\n\n"
    n m crash_rate;
  let table =
    Table.create
      ~columns:
        [
          ("policy", Table.Left);
          ("stranded runs", Table.Right);
          ("mean lost", Table.Right);
          ("tasks done", Table.Right);
          ("mean degr", Table.Right);
          ("wasted", Table.Right);
          ("transfers", Table.Right);
        ]
  in
  let cells = List.map (fun (name, p) -> (name, p, cell ())) policies in
  let master = Rng.create ~seed:(config.Runner.seed + 4241) () in
  for _ = 1 to reps do
    (* One workload + trace per repetition, shared by every policy. *)
    let rng = Rng.split master in
    let instance, realization = generate rng in
    let order = Instance.lpt_order instance in
    let total_work = Realization.total realization in
    let placement = Core.Placement.sets (ring_placement ~k:2) in
    let healthy =
      Schedule.makespan (Engine.run instance realization ~placement ~order)
    in
    let faults = Trace.random_crashes rng ~m ~p:crash_rate ~horizon:healthy in
    List.iter
      (fun (_, recovery, cell) ->
        let metrics = Metrics.create () in
        let outcome =
          Engine.run_faulty ~recovery ~metrics instance realization ~faults
            ~placement ~order
        in
        record cell ~healthy ~total_work outcome)
      cells
  done;
  let csv_rows = ref [] in
  List.iter
    (fun (name, _, cell) ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%d/%d" !(cell.stranded_runs) !(cell.runs);
          Table.cell_float (Summary.mean cell.stranded_tasks);
          Printf.sprintf "%.1f%%" (100.0 *. Summary.mean cell.task_completion);
          (if Summary.count cell.degradation = 0 then "-"
           else Table.cell_float (Summary.mean cell.degradation));
          Printf.sprintf "%.1f%%" (100.0 *. Summary.mean cell.wasted);
          Table.cell_float (Summary.mean cell.rereplications);
        ];
      csv_rows :=
        [
          name;
          Printf.sprintf "%d" !(cell.stranded_runs);
          Printf.sprintf "%d" !(cell.runs);
          Printf.sprintf "%.6f" (Summary.mean cell.stranded_tasks);
          Printf.sprintf "%.6f" (Summary.mean cell.task_completion);
          (if Summary.count cell.degradation = 0 then "nan"
           else Printf.sprintf "%.6f" (Summary.mean cell.degradation));
          Printf.sprintf "%.6f" (Summary.mean cell.wasted);
          Printf.sprintf "%.6f" (Summary.mean cell.rereplications);
        ]
        :: !csv_rows)
    cells;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"recovery_sweep_healing"
    ~header:
      [ "policy"; "stranded_runs"; "runs"; "mean_stranded"; "task_completion";
        "mean_degradation"; "wasted_fraction"; "rereplications" ]
    (List.rev !csv_rows);
  (* The acceptance check of this experiment: healing strictly reduces
     the probability of losing a task on the paired traces. *)
  (match cells with
  | (_, _, passive) :: (best_name, _, best) :: _ ->
      Printf.printf
        "\nStranded-run probability: passive %d/%d -> %s %d/%d (%s).\n"
        !(passive.stranded_runs) !(passive.runs) best_name
        !(best.stranded_runs) !(best.runs)
        (if !(best.stranded_runs) < !(passive.stranded_runs) then
           "strict improvement"
         else "no improvement at these parameters")
  | _ -> ());
  Printf.printf
    "Lower bandwidth and higher detection latency hand the second crash a\n\
     longer window to beat the healer; wasted work includes the copies a\n\
     late detection kept dispatching to doomed machines.\n"

(* ----------------- part B: checkpoint/resume ------------------------ *)

let checkpoint_sweep config =
  let reps = Stdlib.max 10 config.Runner.reps in
  let interval = 1.0 in
  Printf.printf
    "\nB. Checkpoint/resume on outage-only traces: singleton placements\n\
     (k=1, every machine owns its queue), outage rate 0.5 with durations\n\
     in [5, 10]. A checkpointed copy resumes from its last multiple of\n\
     %.1f work units when the machine rejoins; the passive engine\n\
     restarts from zero.\n\n"
    interval;
  let table =
    Table.create
      ~columns:
        [
          ("policy", Table.Left);
          ("mean degr", Table.Right);
          ("worst degr", Table.Right);
          ("wasted", Table.Right);
          ("resumes", Table.Right);
        ]
  in
  let policies =
    [
      ("restart (none)", Recovery.none);
      ( Printf.sprintf "checkpoint c=%.1f" interval,
        Recovery.make ~checkpoint_interval:interval () );
    ]
  in
  let cells = List.map (fun (name, p) -> (name, p, cell ())) policies in
  let master = Rng.create ~seed:(config.Runner.seed + 9631) () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let instance, realization = generate rng in
    let order = Instance.lpt_order instance in
    let total_work = Realization.total realization in
    let placement = Core.Placement.sets (ring_placement ~k:1) in
    let healthy =
      Schedule.makespan (Engine.run instance realization ~placement ~order)
    in
    let faults =
      Trace.random_outages rng ~m ~p:0.5 ~horizon:healthy ~duration:(5.0, 10.0)
    in
    List.iter
      (fun (_, recovery, cell) ->
        let metrics = Metrics.create () in
        let outcome =
          Engine.run_faulty ~recovery ~metrics instance realization ~faults
            ~placement ~order
        in
        record cell ~healthy ~total_work outcome)
      cells
  done;
  let csv_rows = ref [] in
  List.iter
    (fun (name, _, cell) ->
      Table.add_row table
        [
          name;
          Table.cell_float (Summary.mean cell.degradation);
          Table.cell_float (Summary.max cell.degradation);
          Printf.sprintf "%.1f%%" (100.0 *. Summary.mean cell.wasted);
          Table.cell_float (Summary.mean cell.resumes);
        ];
      csv_rows :=
        [
          name;
          Printf.sprintf "%.6f" (Summary.mean cell.degradation);
          Printf.sprintf "%.6f" (Summary.max cell.degradation);
          Printf.sprintf "%.6f" (Summary.mean cell.wasted);
          Printf.sprintf "%.6f" (Summary.mean cell.resumes);
        ]
        :: !csv_rows)
    cells;
  print_string (Table.render table);
  Runner.maybe_csv config ~name:"recovery_sweep_checkpoint"
    ~header:
      [ "policy"; "mean_degradation"; "worst_degradation"; "wasted_fraction";
        "checkpoint_resumes" ]
    (List.rev !csv_rows);
  Printf.printf
    "\nWith singleton placements an outage stalls the only holder, so the\n\
     passive engine re-runs every killed unit of work; checkpointing\n\
     caps the loss per outage at one interval and never hurts (each\n\
     machine's queue shrinks pointwise).\n"

let run config =
  Runner.print_section
    "Recovery sweep -- detection latency, re-replication bandwidth, checkpoints";
  healing_sweep config;
  checkpoint_sweep config
