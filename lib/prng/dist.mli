(** Random distributions over a {!Rng.t} source.

    These samplers cover the workload families used across the paper's
    experiments: short-range uniform workloads, memoryless (exponential)
    service times, heavy-tailed (Pareto, lognormal) task mixes typical of
    MapReduce traces, and bimodal short/long mixes that stress list
    scheduling. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)]. *)

val log_uniform : Rng.t -> lo:float -> hi:float -> float
(** Log-uniform on [[lo, hi)]: uniform in the exponent. Requires
    [0 < lo <= hi]. *)

val exponential : Rng.t -> mean:float -> float
(** Exponential with the given mean ([mean > 0]). *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto with minimum [scale] and tail index [shape] (both [> 0]).
    Heavy-tailed for [shape <= 2]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via the Box-Muller transform. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with parameters [mu], [sigma]. *)

val bimodal :
  Rng.t -> p_long:float -> short:(Rng.t -> float) -> long:(Rng.t -> float) -> float
(** With probability [p_long] sample from [long], otherwise from [short]. *)

val truncated : (Rng.t -> float) -> lo:float -> hi:float -> Rng.t -> float
(** Rejection-sample the given sampler into [[lo, hi]]. Gives up after 10^6
    rejections and clamps, so it always terminates. *)
