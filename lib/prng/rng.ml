type backend =
  | Xoshiro of Xoshiro256.t
  | Splitmix of Splitmix64.t

type t = { backend : backend }

let create ?(seed = 0x5EED) () =
  { backend = Xoshiro (Xoshiro256.create (Int64.of_int seed)) }

let of_xoshiro x = { backend = Xoshiro x }
let of_splitmix s = { backend = Splitmix s }

let copy t =
  match t.backend with
  | Xoshiro x -> { backend = Xoshiro (Xoshiro256.copy x) }
  | Splitmix s -> { backend = Splitmix (Splitmix64.copy s) }

let int64 t =
  match t.backend with
  | Xoshiro x -> Xoshiro256.next x
  | Splitmix s -> Splitmix64.next s

let split t =
  match t.backend with
  | Xoshiro x ->
      let child = Xoshiro256.copy x in
      Xoshiro256.jump child;
      (* Also advance the parent so repeated splits yield distinct streams. *)
      ignore (Xoshiro256.next x);
      { backend = Xoshiro (Xoshiro256.create (Xoshiro256.next child)) }
  | Splitmix s -> { backend = Splitmix (Splitmix64.split s) }

let float t =
  match t.backend with
  | Xoshiro x -> Xoshiro256.next_float x
  | Splitmix s -> Splitmix64.next_float s

let float_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.float_range: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let mask =
    let rec grow m = if m >= bound - 1 then m else grow ((m * 2) + 1) in
    grow 1
  in
  let rec draw () =
    let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 2) land mask in
    if bits < bound then bits else draw ()
  in
  draw ()

let int_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t ~p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
