type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* The output mixing function of SplitMix64 (variant "mix64"). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* 2^-53, the spacing of doubles in [1, 2). *)
let two_pow_minus_53 = 1.0 /. 9007199254740992.0

let next_float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. two_pow_minus_53

let split t = create (next t)
