let uniform rng ~lo ~hi = Rng.float_range rng ~lo ~hi

let log_uniform rng ~lo ~hi =
  if lo <= 0.0 || lo > hi then invalid_arg "Dist.log_uniform: need 0 < lo <= hi";
  exp (Rng.float_range rng ~lo:(log lo) ~hi:(log hi))

let exponential rng ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean <= 0";
  let u = 1.0 -. Rng.float rng in
  -.mean *. log u

let pareto rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.pareto: parameters must be > 0";
  let u = 1.0 -. Rng.float rng in
  scale /. (u ** (1.0 /. shape))

let normal rng ~mu ~sigma =
  let u1 = 1.0 -. Rng.float rng in
  let u2 = Rng.float rng in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let bimodal rng ~p_long ~short ~long =
  if Rng.bernoulli rng ~p:p_long then long rng else short rng

let truncated sampler ~lo ~hi rng =
  if lo > hi then invalid_arg "Dist.truncated: lo > hi";
  let rec attempt k =
    if k >= 1_000_000 then Float.min hi (Float.max lo (sampler rng))
    else
      let x = sampler rng in
      if x >= lo && x <= hi then x else attempt (k + 1)
  in
  attempt 0
