(** SplitMix64 pseudo-random number generator.

    A small, fast, high-quality 64-bit generator (Steele, Lea & Flood,
    "Fast splittable pseudorandom number generators", OOPSLA 2014). It is
    used directly for light-weight randomness and to seed {!Xoshiro256}.
    The implementation is self-contained so that every experiment in this
    repository is reproducible bit-for-bit across OCaml releases. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Any seed is acceptable,
    including [0L]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances the state and returns 64 pseudo-random bits. *)

val next_float : t -> float
(** [next_float t] is a float drawn uniformly from [[0, 1)], using the top
    53 bits of {!next}. *)

val split : t -> t
(** [split t] advances [t] and derives a statistically independent child
    generator, for handing to sub-computations (e.g. parallel workers). *)
