(** Unified random-source interface used throughout the repository.

    All randomness in workload generation, uncertainty realization, and
    experiment driving flows through a {!t}, so a single integer seed makes
    any experiment reproducible. The default backend is {!Xoshiro256}. *)

type t
(** A mutable stream of pseudo-random values. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from an integer seed
    (default [0x5EED]). *)

val of_xoshiro : Xoshiro256.t -> t
(** Wrap an explicit xoshiro state. *)

val of_splitmix : Splitmix64.t -> t
(** Wrap an explicit splitmix state (useful for tiny test fixtures). *)

val copy : t -> t
(** Independent generator with the same current state. *)

val split : t -> t
(** [split t] derives an independent child stream and advances [t]; the
    child and parent streams do not overlap. *)

val int64 : t -> int64
(** 64 uniform pseudo-random bits. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. Raises [Invalid_argument] if [lo > hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. Uses rejection sampling, so it is exactly uniform. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [[lo, hi]]. *)

val bool : t -> bool
(** A fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty array. *)
