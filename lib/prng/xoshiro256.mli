(** Xoshiro256++ pseudo-random number generator.

    The general-purpose generator of Blackman & Vigna ("Scrambled linear
    pseudorandom number generators", 2019) with a 256-bit state and a
    period of [2^256 - 1]. This is the default generator behind {!Rng}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] seeds the 256-bit state from [seed] via SplitMix64, as
    recommended by the authors. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** [of_state s] installs an explicit state. Raises [Invalid_argument] if
    all four words are zero (the all-zero state is a fixed point). *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances the state and returns 64 pseudo-random bits. *)

val next_float : t -> float
(** [next_float t] is a float drawn uniformly from [[0, 1)]. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps, yielding a stream that will not
    overlap the original for any realistic computation. Used to derive
    parallel sub-streams. *)
