(** Aligned ASCII tables.

    The experiment harness prints every reproduced paper table through
    this renderer so the output is stable and diff-friendly. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** A table with the given header. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] on arity mismatch. *)

val add_rule : t -> unit
(** Appends a horizontal separator. *)

val render : t -> string
(** The full table with borders and a header rule. *)

val cell_float : ?decimals:int -> float -> string
(** Formats a float for a table cell (default 4 decimals; integers shed
    their trailing zeros). *)
