(** Minimal JSON values, compact serialization, and JSONL output.

    No external dependencies: this backs the observability layer (run
    traces, experiment manifests, bench reports) with machine-readable
    output that `jq` and any JSON library can consume. Serialization is
    deterministic: object fields keep their construction order and floats
    render through a shortest-round-trip format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float : float -> t
(** [Float f], except non-finite values (nan, infinities) become {!Null}
    — JSON has no encoding for them. *)

val to_string : t -> string
(** Compact (single-line, no spaces) rendering. Strings are escaped per
    RFC 8259: quote, backslash, and control characters below [0x20];
    other bytes pass through verbatim (UTF-8 assumed). *)

val output : out_channel -> t -> unit
(** {!to_string} to a channel. *)

val output_line : out_channel -> t -> unit
(** One JSONL record: the compact rendering followed by a newline. *)

val write_file : path:string -> t -> unit
(** The compact rendering (plus trailing newline) as the whole file. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (used by round-trip tests and trace
    consumers). Integers without fraction or exponent parse as [Int],
    everything else numeric as [Float]. [Error msg] carries a byte
    offset. *)

val of_string_exn : string -> t
(** {!of_string}, raising [Invalid_argument] on parse errors. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields or non-objects. *)
