type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun c header ->
        List.fold_left
          (fun acc row ->
            match row with
            | Rule -> acc
            | Cells cells -> Stdlib.max acc (String.length (List.nth cells c)))
          (String.length header) rows)
      t.headers
  in
  let buffer = Buffer.create 512 in
  let horizontal () =
    Buffer.add_char buffer '+';
    List.iter
      (fun w ->
        Buffer.add_string buffer (String.make (w + 2) '-');
        Buffer.add_char buffer '+')
      widths;
    Buffer.add_char buffer '\n'
  in
  let line cells =
    Buffer.add_char buffer '|';
    List.iteri
      (fun c cell ->
        let align = List.nth t.aligns c and width = List.nth widths c in
        Buffer.add_string buffer (" " ^ pad align width cell ^ " |"))
      cells;
    Buffer.add_char buffer '\n'
  in
  horizontal ();
  line t.headers;
  horizontal ();
  List.iter
    (fun row -> match row with Rule -> horizontal () | Cells cells -> line cells)
    rows;
  horizontal ();
  Buffer.contents buffer

let cell_float ?(decimals = 4) x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" decimals x
