type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that parses back to the same float; falls back
   to 17 significant digits (always exact for binary64). *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else Buffer.add_string buf (float_repr f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let output oc v = output_string oc (to_string v)

let output_line oc v =
  output oc v;
  output_char oc '\n'

let write_file ~path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_line oc v)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------- parsing ---------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 buf code =
    (* BMP code point to UTF-8 bytes. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> (
              match hex4 () with
              | exception _ -> fail "bad \\u escape"
              | hi when hi >= 0xD800 && hi <= 0xDBFF ->
                  (* surrogate pair *)
                  if
                    !pos + 2 <= n && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    match hex4 () with
                    | exception _ -> fail "bad low surrogate"
                    | lo when lo >= 0xDC00 && lo <= 0xDFFF ->
                        let code =
                          0x10000
                          + ((hi - 0xD800) lsl 10)
                          + (lo - 0xDC00)
                        in
                        Buffer.add_char buf
                          (Char.chr (0xF0 lor (code lsr 18)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor (code land 0x3F)))
                    | _ -> fail "bad low surrogate"
                  end
                  else fail "lone high surrogate"
              | code -> add_utf8 buf code)
          | _ -> fail "bad escape");
          loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if is_int then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "at byte %d: %s" at msg)

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)
