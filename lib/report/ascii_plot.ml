type series = { label : string; glyph : char; points : (float * float) array }

let bounds series_list =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        s.points)
    series_list;
  let widen lo hi =
    if !lo > !hi then (0.0, 1.0)
    else if !lo = !hi then (!lo -. 0.5, !hi +. 0.5)
    else
      let pad = 0.02 *. (!hi -. !lo) in
      (!lo -. pad, !hi +. pad)
  in
  let x0, x1 = widen xmin xmax and y0, y1 = widen ymin ymax in
  (x0, x1, y0, y1)

let plot ?(width = 64) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    ?(title = "") series_list =
  if List.for_all (fun s -> Array.length s.points = 0) series_list then
    "(no data to plot)\n"
  else begin
    let x0, x1, y0, y1 = bounds series_list in
    let canvas = Array.init height (fun _ -> Bytes.make width ' ') in
    let col_of x =
      int_of_float (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1)))
    in
    let row_of y =
      (height - 1)
      - int_of_float
          (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
    in
    List.iter
      (fun s ->
        Array.iter
          (fun (x, y) ->
            let c = col_of x and r = row_of y in
            if c >= 0 && c < width && r >= 0 && r < height then
              Bytes.set canvas.(r) c s.glyph)
          s.points)
      series_list;
    let buffer = Buffer.create ((width + 16) * (height + 6)) in
    if title <> "" then Buffer.add_string buffer (title ^ "\n");
    Buffer.add_string buffer (Printf.sprintf "%s\n" y_label);
    Array.iteri
      (fun r row ->
        let y_here =
          y1 -. (float_of_int r /. float_of_int (height - 1) *. (y1 -. y0))
        in
        let tick =
          if r = 0 || r = height - 1 || r = (height - 1) / 2 then
            Printf.sprintf "%10.4g |" y_here
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buffer (tick ^ Bytes.to_string row ^ "\n"))
      canvas;
    Buffer.add_string buffer
      (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buffer
      (Printf.sprintf "%10s  %-10.4g%*s%10.4g  (%s)\n" "" x0
         (Stdlib.max 1 (width - 20))
         "" x1 x_label);
    List.iter
      (fun s ->
        if Array.length s.points > 0 then
          Buffer.add_string buffer (Printf.sprintf "  %c = %s\n" s.glyph s.label))
      series_list;
    Buffer.contents buffer
  end
