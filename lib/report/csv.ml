let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row cells = String.concat "," (List.map escape cells)

let to_string ~header rows =
  let arity = List.length header in
  List.iter
    (fun r ->
      if List.length r <> arity then invalid_arg "Csv.to_string: arity mismatch")
    rows;
  String.concat "\n" (row header :: List.map row rows) ^ "\n"

let write_file ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))
