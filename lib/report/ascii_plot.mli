(** ASCII line/scatter plots.

    Regenerates the paper's figures (ratio-replication curves of Figure 3,
    memory-makespan tradeoffs of Figure 6) as terminal graphics: multiple
    series share one canvas, each drawn with its own glyph, with axis
    labels and a legend. *)

type series = { label : string; glyph : char; points : (float * float) array }

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?title:string ->
  series list ->
  string
(** Render all series on a shared canvas (default 64x20). Axis ranges are
    the bounding box of all points, padded slightly. Series later in the
    list overdraw earlier ones on collisions. Degenerate ranges (all x or
    all y equal) are widened to unit span. An empty series list yields a
    message string rather than an error. *)
