(** Minimal CSV writing (RFC 4180 quoting).

    Experiments can dump their raw series for external plotting. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row : string list -> string
(** One CSV line (no trailing newline). *)

val to_string : header:string list -> string list list -> string
(** Full document with header line. Raises [Invalid_argument] if a row's
    arity differs from the header. *)

val write_file : path:string -> header:string list -> string list list -> unit
(** {!to_string} to a file. *)
