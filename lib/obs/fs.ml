let rec mkdir_p ?(perm = 0o755) dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p ~perm parent;
    match Unix.mkdir dir perm with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
        (* Someone (possibly a racing process) beat us to it; only object
           when the existing entry is not a directory at all. *)
        if not (try Sys.is_directory dir with Sys_error _ -> false) then
          failwith (Printf.sprintf "mkdir_p: %s exists and is not a directory" dir)
  end

(* The temp file must live in the target's directory: [rename] is only
   atomic within a filesystem. The pid keeps concurrent writers (e.g.
   parallel experiment runners) off each other's temp files. *)
let temp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let with_atomic_oc ~path f =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> mkdir_p dir);
  let temp = temp_path path in
  let oc = open_out temp in
  match f oc with
  | v ->
      close_out oc;
      Sys.rename temp path;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close_out_noerr oc;
      (try Sys.remove temp with Sys_error _ -> ());
      Printexc.raise_with_backtrace e bt

let write_atomic ~path content =
  with_atomic_oc ~path (fun oc -> output_string oc content)
