let rec mkdir_p ?(perm = 0o755) dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p ~perm parent;
    match Unix.mkdir dir perm with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
        (* Someone (possibly a racing process) beat us to it; only object
           when the existing entry is not a directory at all. *)
        if not (try Sys.is_directory dir with Sys_error _ -> false) then
          failwith (Printf.sprintf "mkdir_p: %s exists and is not a directory" dir)
  end
