module Json = Usched_report.Json

type counter = { mutable count : int; c_live : bool }
type gauge = { mutable level : float; mutable g_set : bool; g_live : bool }
type timer = { mutable total_s : float; mutable spans : int; t_live : bool }

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_live : bool;
}

type item =
  | I_counter of counter
  | I_gauge of gauge
  | I_timer of timer
  | I_histogram of histogram

type t = { live : bool; items : (string, item) Hashtbl.t }

let create () = { live = true; items = Hashtbl.create 16 }
let disabled = { live = false; items = Hashtbl.create 1 }
let is_enabled t = t.live

let reset t = if t.live then Hashtbl.reset t.items

(* Shared sinks for disabled registries: their [*_live] flag is false, so
   no update ever mutates them. *)
let dummy_counter = { count = 0; c_live = false }
let dummy_gauge = { level = 0.0; g_set = false; g_live = false }
let dummy_timer = { total_s = 0.0; spans = 0; t_live = false }

let dummy_histogram =
  { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity; h_live = false }

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered with a different kind" name)

let counter t name =
  if not t.live then dummy_counter
  else
    match Hashtbl.find_opt t.items name with
    | Some (I_counter c) -> c
    | Some _ -> kind_error name
    | None ->
        let c = { count = 0; c_live = true } in
        Hashtbl.add t.items name (I_counter c);
        c

let incr c = if c.c_live then c.count <- c.count + 1
let add c n = if c.c_live then c.count <- c.count + n
let counter_value c = c.count

let gauge t name =
  if not t.live then dummy_gauge
  else
    match Hashtbl.find_opt t.items name with
    | Some (I_gauge g) -> g
    | Some _ -> kind_error name
    | None ->
        let g = { level = 0.0; g_set = false; g_live = true } in
        Hashtbl.add t.items name (I_gauge g);
        g

let set g v =
  if g.g_live then begin
    g.level <- v;
    g.g_set <- true
  end

let record_max g v =
  if g.g_live && ((not g.g_set) || v > g.level) then begin
    g.level <- v;
    g.g_set <- true
  end

let gauge_value g = g.level

let now_s = Unix.gettimeofday

let timer t name =
  if not t.live then dummy_timer
  else
    match Hashtbl.find_opt t.items name with
    | Some (I_timer tm) -> tm
    | Some _ -> kind_error name
    | None ->
        let tm = { total_s = 0.0; spans = 0; t_live = true } in
        Hashtbl.add t.items name (I_timer tm);
        tm

let add_span tm d =
  if tm.t_live then begin
    tm.total_s <- tm.total_s +. d;
    tm.spans <- tm.spans + 1
  end

let time tm f =
  if not tm.t_live then f ()
  else begin
    let t0 = now_s () in
    Fun.protect ~finally:(fun () -> add_span tm (now_s () -. t0)) f
  end

let histogram t name =
  if not t.live then dummy_histogram
  else
    match Hashtbl.find_opt t.items name with
    | Some (I_histogram h) -> h
    | Some _ -> kind_error name
    | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_live = true;
          }
        in
        Hashtbl.add t.items name (I_histogram h);
        h

let observe h v =
  if h.h_live then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

type value =
  | Counter of int
  | Gauge of float
  | Timer of { total_s : float; spans : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name item acc ->
      let v =
        match item with
        | I_counter c -> Counter c.count
        | I_gauge g -> Gauge g.level
        | I_timer tm -> Timer { total_s = tm.total_s; spans = tm.spans }
        | I_histogram h ->
            Histogram
              { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max }
      in
      (name, v) :: acc)
    t.items []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snapshot name = List.assoc_opt name snapshot

let to_json snapshot =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let j =
           match v with
           | Counter n -> Json.Int n
           | Gauge g -> Json.float g
           | Timer { total_s; spans } ->
               Json.Obj
                 [ ("total_s", Json.float total_s); ("spans", Json.Int spans) ]
           | Histogram { count; sum; min; max } ->
               let mean = if count = 0 then Json.Null else Json.float (sum /. float_of_int count) in
               Json.Obj
                 [
                   ("count", Json.Int count);
                   ("sum", Json.float sum);
                   ("min", Json.float min);
                   ("max", Json.float max);
                   ("mean", mean);
                 ]
         in
         (name, j))
       snapshot)
