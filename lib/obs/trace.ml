(* The sink streams to a temp file and renames it into place on [close]:
   a killed or crashing run leaves either no trace file or a previous
   complete one, never a torn JSONL. *)
type t = {
  oc : out_channel;
  path : string;
  temp : string;
  mutable closed : bool;
}

let create ~path =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> Fs.mkdir_p dir);
  let temp = Fs.temp_path path in
  { oc = open_out temp; path; temp; closed = false }

let emit t json =
  if t.closed then invalid_arg "Trace.emit: sink is closed";
  Usched_report.Json.output_line t.oc json

let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc;
    Sys.rename t.temp t.path
  end

let discard t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    try Sys.remove t.temp with Sys_error _ -> ()
  end

let with_file ~path f =
  let t = create ~path in
  match f t with
  | v ->
      close t;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      discard t;
      Printexc.raise_with_backtrace e bt
