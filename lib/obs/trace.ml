type t = { oc : out_channel; path : string; mutable closed : bool }

let create ~path =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> Fs.mkdir_p dir);
  { oc = open_out path; path; closed = false }

let emit t json =
  if t.closed then invalid_arg "Trace.emit: sink is closed";
  Usched_report.Json.output_line t.oc json

let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end

let with_file ~path f =
  let t = create ~path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
