(** Structured run tracing: a JSONL sink.

    One JSON object per line ([jq]-friendly), written through
    [Usched_report.Json]. Sinks create missing parent directories with
    {!Fs.mkdir_p}. Consumers: [usched solve --trace FILE] serializes
    engine events and metrics snapshots; the experiment runner writes
    per-run manifests. (Not to be confused with [Usched_faults.Trace],
    the failure history of a simulated run.) *)

type t

val create : path:string -> t
(** Open (truncate) [path] for writing, creating parent directories. *)

val emit : t -> Usched_report.Json.t -> unit
(** Append one record as a single line. *)

val path : t -> string

val close : t -> unit
(** Flush and close; idempotent. *)

val with_file : path:string -> (t -> 'a) -> 'a
(** Bracketed {!create}/{!close}, closing on exceptions too. *)
