(** Structured run tracing: a JSONL sink.

    One JSON object per line ([jq]-friendly), written through
    [Usched_report.Json]. Sinks create missing parent directories with
    {!Fs.mkdir_p} and are {e crash-safe}: records stream to a temp file
    ({!Fs.temp_path}) that is renamed over the target only at {!close},
    so an interrupted run never leaves a torn trace behind. Consumers:
    [usched solve --trace FILE] serializes engine events and metrics
    snapshots; the experiment runner writes per-run manifests. (Not to
    be confused with [Usched_faults.Trace], the failure history of a
    simulated run.) *)

type t

val create : path:string -> t
(** Open a temp file next to [path] for writing, creating parent
    directories. [path] itself is only touched at {!close}. *)

val emit : t -> Usched_report.Json.t -> unit
(** Append one record as a single line. Raises [Invalid_argument] on a
    closed (or discarded) sink. *)

val path : t -> string

val close : t -> unit
(** Flush, close, and atomically rename the temp file over the target;
    idempotent. *)

val discard : t -> unit
(** Close and delete the temp file without publishing anything; the
    target path keeps whatever it had before. Idempotent, and a no-op
    after {!close}. *)

val with_file : path:string -> (t -> 'a) -> 'a
(** Bracketed {!create}/{!close}; if the callback raises, the sink is
    {!discard}ed (no partial file) and the exception re-raised. *)
