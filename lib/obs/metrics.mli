(** Lightweight metrics: counters, gauges, timers, histograms.

    A registry is either {e live} or {e disabled}. Handles obtained from
    a disabled registry are shared no-op dummies, so instrumented hot
    paths cost one predictable branch when observability is off — the
    engine's outputs are bit-for-bit identical either way (metrics never
    influence control flow or float arithmetic of the instrumented code).

    Handles are get-or-create by name, so repeated [counter t "x"] calls
    return the same accumulator. Names are conventionally dotted
    ([engine.dispatches], [runner.csv_write]). Registries are
    single-domain: do not mutate one handle from multiple domains. *)

type t
(** A registry of named instruments. *)

val create : unit -> t
(** A fresh live registry. *)

val disabled : t
(** The shared no-op registry: every handle it hands out ignores all
    updates, and {!snapshot} is always empty. *)

val is_enabled : t -> bool

val reset : t -> unit
(** Drop every registered instrument (live registries only). *)

(** {1 Instruments} *)

type counter

val counter : t -> string -> counter
(** Monotone integer count. Raises [Invalid_argument] when [name] is
    already registered with a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
(** Last-write-wins float level. *)

val set : gauge -> float -> unit

val record_max : gauge -> float -> unit
(** Keep the running maximum (first observation wins an empty gauge). *)

val gauge_value : gauge -> float

type timer

val timer : t -> string -> timer
(** Accumulated wall-clock spans. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration as one span. The span
    is recorded even when the thunk raises. *)

val add_span : timer -> float -> unit
(** Fold an externally measured duration (seconds) in. *)

type histogram

val histogram : t -> string -> histogram
(** Streaming distribution summary (count, sum, min, max). *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Timer of { total_s : float; spans : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

type snapshot = (string * value) list
(** Instrument name to value, sorted by name. *)

val snapshot : t -> snapshot
(** Point-in-time copy; empty for {!disabled}. *)

val find : snapshot -> string -> value option

val to_json : snapshot -> Usched_report.Json.t
(** One object, field per instrument: counters as integers, gauges as
    numbers, timers as [{"total_s":..,"spans":..}], histograms as
    [{"count":..,"sum":..,"min":..,"max":..,"mean":..}]. *)

val now_s : unit -> float
(** Wall clock in seconds ([Unix.gettimeofday]), for callers measuring
    spans themselves. *)
