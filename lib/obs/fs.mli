(** Small filesystem helpers shared by every output path (CSV dirs,
    trace files, bench reports). *)

val mkdir_p : ?perm:int -> string -> unit
(** Create a directory and every missing ancestor, like [mkdir -p].
    Tolerates concurrent creation ([EEXIST] from a racing process is
    success, not an error — no exists/mkdir TOCTOU window). Raises
    [Failure] when a path component exists but is not a directory. *)

val write_atomic : path:string -> string -> unit
(** Write [content] to [path] crash-safely: the bytes go to a temp file
    in the same directory (created with {!mkdir_p}) which is renamed
    over [path] only after a successful close. A reader never observes a
    torn or half-written file — it sees the old content or the new,
    nothing in between — and an interrupted writer leaves the target
    untouched. On error the temp file is removed and the exception
    re-raised. *)

val with_atomic_oc : path:string -> (out_channel -> 'a) -> 'a
(** Streaming {!write_atomic}: runs [f] on a channel to the temp file,
    then renames over [path]. If [f] raises, the temp file is removed,
    [path] is untouched, and the exception re-raised with its
    backtrace. *)

val temp_path : string -> string
(** The temp-file name the atomic writers use for a target path
    ([<path>.tmp.<pid>]) — exposed so tests and cleanup sweeps can
    recognize leftovers from killed processes. *)
