(** Small filesystem helpers shared by every output path (CSV dirs,
    trace files, bench reports). *)

val mkdir_p : ?perm:int -> string -> unit
(** Create a directory and every missing ancestor, like [mkdir -p].
    Tolerates concurrent creation ([EEXIST] from a racing process is
    success, not an error — no exists/mkdir TOCTOU window). Raises
    [Failure] when a path component exists but is not a directory. *)
