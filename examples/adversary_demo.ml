(* The Theorem-1 adversary, step by step.

   Shows how an adversary that controls actual processing times (within
   the alpha intervals) punishes a scheduler that cannot move tasks, and
   why replication blunts the attack.

   Run with: dune exec examples/adversary_demo.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Gantt = Usched_desim.Gantt
module Core = Usched_core

let m = 4
let lambda = 3
let alpha = 2.0

let () =
  Printf.printf
    "Adversary demo: %d machines, %d unit-estimate tasks, alpha = %g.\n\n"
    m (lambda * m) alpha;
  let instance =
    Instance.of_ests ~m
      ~alpha:(Uncertainty.alpha alpha)
      (Array.make (lambda * m) 1.0)
  in

  (* Step 1: the scheduler commits to a placement using estimates only. *)
  let algo = Core.No_replication.lpt_no_choice in
  let placement = algo.Core.Two_phase.phase1 instance in
  Printf.printf
    "Step 1 (phase 1): LPT spreads the %d identical tasks %d per machine.\n"
    (lambda * m) lambda;

  (* Step 2: the adversary inspects the placement and picks actual times. *)
  let realization = Core.Adversary.theorem1 instance placement in
  Printf.printf
    "Step 2 (adversary): inflate one machine's tasks to %g, deflate the\n\
     rest to %g.\n\n"
    alpha (1.0 /. alpha);

  (* Step 3: execution. The pinned schedule cannot react. *)
  let schedule = algo.Core.Two_phase.phase2 instance placement realization in
  print_string (Gantt.render ~width:60 schedule);
  let opt = Core.Opt.makespan ~m (Realization.actuals realization) in
  Printf.printf "\npinned C_max = %.2f   clairvoyant C*_max = %.2f   ratio %.3f\n"
    (Schedule.makespan schedule) opt
    (Schedule.makespan schedule /. opt);
  Printf.printf "Theorem 1 says no unreplicated scheduler can beat %.3f (m -> inf: %.3f).\n"
    (Core.Guarantees.no_replication_lower_bound ~m ~alpha)
    (Core.Guarantees.no_replication_lower_bound_limit ~alpha);

  (* Step 4: the same adversarial times against full replication. *)
  let flexible = Core.Full_replication.lpt_no_restriction in
  let full_placement = flexible.Core.Two_phase.phase1 instance in
  let flexible_schedule =
    flexible.Core.Two_phase.phase2 instance full_placement realization
  in
  Printf.printf
    "\nStep 4: full replication against the *same* realization:\n";
  print_string (Gantt.render ~width:60 flexible_schedule);
  Printf.printf "replicated C_max = %.2f   ratio %.3f\n"
    (Schedule.makespan flexible_schedule)
    (Schedule.makespan flexible_schedule /. opt);
  Printf.printf
    "\nThe online scheduler rebalances as completions reveal the truth;\n\
     the adversary's leverage collapses from ~alpha^2 to ~1.\n"
