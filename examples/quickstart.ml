(* Quickstart: the full two-phase pipeline in ~40 lines.

   Build an instance with uncertain estimates, realize actual times, and
   compare the paper's three replication strategies.

   Run with: dune exec examples/quickstart.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Rng = Usched_prng.Rng

let () =
  (* 1. The offline input: 12 tasks on 4 machines; estimates accurate
     within a factor alpha = 2. *)
  let ests = [| 9.0; 8.0; 7.0; 6.0; 5.0; 5.0; 4.0; 4.0; 3.0; 2.0; 2.0; 1.0 |] in
  let instance = Instance.of_ests ~m:4 ~alpha:(Uncertainty.alpha 2.0) ests in
  Printf.printf "Instance: %s\n" (Format.asprintf "%a" Instance.pp instance);

  (* 2. Nature picks actual times inside the alpha intervals (the
     scheduler will only discover them as tasks complete). *)
  let rng = Rng.create ~seed:2024 () in
  let realization = Realization.log_uniform_factor instance rng in

  (* 3. Run the three strategies of the paper. *)
  let strategies =
    [
      Core.No_replication.lpt_no_choice; (* |M_j| = 1 *)
      Core.Group_replication.ls_group ~k:2; (* |M_j| = m/k = 2 *)
      Core.Full_replication.lpt_no_restriction; (* |M_j| = m *)
    ]
  in
  let opt =
    Core.Opt.makespan ~m:(Instance.m instance) (Realization.actuals realization)
  in
  Printf.printf "Clairvoyant optimum on the realized times: %.3f\n\n" opt;
  List.iter
    (fun algo ->
      let placement, schedule = Core.Two_phase.run_full algo instance realization in
      Printf.printf "%-22s makespan %.3f  (ratio %.3f, replicas/task %d)\n"
        algo.Core.Two_phase.name
        (Schedule.makespan schedule)
        (Schedule.makespan schedule /. opt)
        (Core.Placement.max_replication placement))
    strategies;
  Printf.printf
    "\nMore replication = more phase-2 freedom = a makespan closer to the\n\
     clairvoyant optimum, exactly the tradeoff the paper quantifies.\n"
