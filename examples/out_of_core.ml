(* Out-of-core sparse linear algebra: the paper's motivating scenario.

   An iterative solver sweeps over matrix blocks stored out of core; a
   block can only be processed by a machine holding its data, and
   per-sweep runtimes are only known within an analytic factor (the paper
   cites bounds derived from matrix dimensions). Replication is paid ONCE
   (phase 1) and amortized over every sweep, so even expensive placement
   pays for itself.

   Run with: dune exec examples/out_of_core.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary
module Table = Usched_report.Table

let sweeps = 30
let machines = 8

let () =
  Printf.printf
    "Out-of-core iterative solver: %d machines, %d sweeps over the same\n\
     blocks. Block runtimes estimated from matrix structure, accurate\n\
     within alpha = 1.5; each sweep realizes different actual times\n\
     (cache effects, fill-in).\n\n"
    machines sweeps;
  let rng = Rng.create ~seed:7 () in
  (* Blocks: heavy-tailed sizes, as in real sparse matrices. *)
  let instance =
    Workload.generate
      (Workload.Pareto { shape = 1.4; scale = 2.0; cap = 60.0 })
      ~n:64 ~m:machines
      ~alpha:(Uncertainty.alpha 1.5)
      rng
  in
  (* LPT-ordered group replication (the paper analyzes the LS-ordered
     variant; LPT ordering is the stronger-in-practice ablation). *)
  let strategies =
    [
      ("no replication (LPT-No Choice)", Core.No_replication.lpt_no_choice);
      ("2x replication (LPT-Group k=4)", Core.Group_replication.lpt_group ~k:4);
      ("4x replication (LPT-Group k=2)", Core.Group_replication.lpt_group ~k:2);
      ("full replication (LPT-No Restr.)", Core.Full_replication.lpt_no_restriction);
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("strategy", Table.Left);
          ("replicas", Table.Right);
          ("total time over sweeps", Table.Right);
          ("mean sweep vs LB", Table.Right);
          ("storage per machine", Table.Right);
        ]
  in
  List.iter
    (fun (name, algo) ->
      (* Phase 1 once; phase 2 re-runs each sweep with fresh actuals. *)
      let placement = algo.Core.Two_phase.phase1 instance in
      let sweep_rng = Rng.create ~seed:99 () in
      let total = ref 0.0 in
      let ratios = Summary.create () in
      for _ = 1 to sweeps do
        let realization = Realization.log_uniform_factor instance sweep_rng in
        let schedule = algo.Core.Two_phase.phase2 instance placement realization in
        let lb =
          Core.Lower_bounds.best ~m:machines (Realization.actuals realization)
        in
        total := !total +. Schedule.makespan schedule;
        Summary.add ratios (Schedule.makespan schedule /. lb)
      done;
      let storage =
        Core.Placement.memory_max placement ~sizes:(Instance.sizes instance)
      in
      Table.add_row table
        [
          name;
          string_of_int (Core.Placement.max_replication placement);
          Table.cell_float ~decimals:1 !total;
          Table.cell_float ~decimals:3 (Summary.mean ratios);
          Table.cell_float ~decimals:1 storage;
        ])
    strategies;
  print_string (Table.render table);
  Printf.printf
    "\n('mean sweep vs LB' divides each sweep's makespan by a lower bound\n\
     on that sweep's optimum; storage counts one unit per block replica.)\n\
     Replication keeps the solver near the optimum every sweep; the\n\
     placement cost is paid once and amortized %d times.\n"
    sweeps
