(* Choosing delta: the memory-makespan dial of SABO and ABO.

   A capacity-planning walkthrough: given a mixed workload and a
   per-machine memory budget, sweep delta, measure both objectives for
   both algorithms, and pick the cheapest configuration that fits.

   Run with: dune exec examples/memory_tradeoff.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Rng = Usched_prng.Rng
module Table = Usched_report.Table

let m = 5
let budget = 70.0 (* memory units per machine *)

let () =
  let rng = Rng.create ~seed:31 () in
  (* Short tasks carry big data, long tasks small data — the adversarial
     mix for bi-objective scheduling. *)
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 20.0 })
      ~size_spec:(Workload.Inverse 60.0) ~n:40 ~m
      ~alpha:(Uncertainty.alpha 1.4)
      rng
  in
  let realization = Realization.log_uniform_factor instance rng in
  let mem_star = Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance) in
  let lb = Core.Lower_bounds.best ~m (Realization.actuals realization) in
  Printf.printf
    "Capacity planning: %d machines, %d tasks, per-machine memory budget\n\
     %.0f (memory lower bound %.1f, makespan lower bound %.1f).\n\n"
    m (Instance.n instance) budget mem_star lb;
  let table =
    Table.create
      ~columns:
        [
          ("algorithm", Table.Left);
          ("delta", Table.Right);
          ("makespan", Table.Right);
          ("mem_max", Table.Right);
          ("fits budget", Table.Left);
        ]
  in
  let best = ref None in
  let consider name makespan mem =
    if mem <= budget then
      match !best with
      | Some (_, mk, _) when mk <= makespan -> ()
      | _ -> best := Some (name, makespan, mem)
  in
  List.iter
    (fun delta ->
      List.iter
        (fun (name, algo_of, placement_of) ->
          let algo = algo_of ~delta in
          let placement = placement_of ~delta instance in
          let schedule = Core.Two_phase.run algo instance realization in
          let mem = Core.Memory.of_placement instance placement in
          let makespan = Schedule.makespan schedule in
          let label = Printf.sprintf "%s(delta=%g)" name delta in
          consider label makespan mem;
          Table.add_row table
            [
              name;
              Table.cell_float ~decimals:2 delta;
              Table.cell_float ~decimals:2 makespan;
              Table.cell_float ~decimals:2 mem;
              (if mem <= budget then "yes" else "no");
            ])
        [
          ("SABO", (fun ~delta -> Core.Sabo.algorithm ~delta),
           fun ~delta instance -> Core.Sabo.placement ~delta instance);
          ("ABO", (fun ~delta -> Core.Abo.algorithm ~delta),
           fun ~delta instance -> Core.Abo.placement ~delta instance);
        ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  print_string (Table.render table);
  (match !best with
  | Some (name, makespan, mem) ->
      Printf.printf
        "\nBest configuration within budget: %s -> makespan %.2f at memory %.2f.\n"
        name makespan mem
  | None -> Printf.printf "\nNo configuration fits the budget; raise it.\n");
  Printf.printf
    "SABO never replicates (cheap memory, looser makespan); ABO replicates\n\
     time-critical tasks (memory rises with m, makespan drops). The paper's\n\
     rule: prefer ABO when alpha*rho1 >= 2, SABO when memory is scarce.\n"
