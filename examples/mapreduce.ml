(* MapReduce-style scheduling with HDFS-like replication.

   The paper's introduction points at Hadoop: block replication (default
   factor 3) exists for fault tolerance, but the same replicas give the
   scheduler freedom against stragglers. This example builds a
   bimodal map-task workload (most tasks short, a few heavy), replicates
   in groups of 3 machines, and measures how much of the straggler pain
   the replication absorbs.

   Run with: dune exec examples/mapreduce.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Rng = Usched_prng.Rng
module Summary = Usched_stats.Summary
module Table = Usched_report.Table

let machines = 12
let jobs = 40

let () =
  Printf.printf
    "MapReduce cluster: %d workers, %d jobs of 60 map tasks each.\n\
     Task estimates come from input split sizes (alpha = 2: stragglers\n\
     run up to 2x the estimate, fast tasks down to half).\n\
     Groups of m/k = 3 machines mimic HDFS's 3-way block replication.\n\n"
    machines jobs;
  let strategies =
    [
      ("locality-pinned (no replication)", Core.No_replication.lpt_no_choice);
      (* LPT-ordered group scheduling: the strong-in-practice variant of
         the paper's LS-Group. *)
      ("HDFS-style (LPT-Group, 3 replicas)", Core.Group_replication.lpt_group ~k:4);
      ("fully replicated (upper bound)", Core.Full_replication.lpt_no_restriction);
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("scheduler", Table.Left);
          ("replicas", Table.Right);
          ("mean job ratio", Table.Right);
          ("p95 job ratio", Table.Right);
          ("worst job ratio", Table.Right);
        ]
  in
  List.iter
    (fun (name, algo) ->
      let rng = Rng.create ~seed:1234 () in
      let ratios = ref [] in
      let replicas = ref 0 in
      for _ = 1 to jobs do
        let instance =
          Workload.generate
            (Workload.Bimodal { p_long = 0.15; short_mean = 2.0; long_mean = 25.0 })
            ~n:60 ~m:machines
            ~alpha:(Uncertainty.alpha 2.0)
            rng
        in
        (* Stragglers: long tasks tend to overrun their estimates. *)
        let realization = Realization.extremes ~p_high:0.3 instance rng in
        let placement, schedule = Core.Two_phase.run_full algo instance realization in
        replicas := Core.Placement.max_replication placement;
        let lb =
          Core.Lower_bounds.best ~m:machines (Realization.actuals realization)
        in
        ratios := (Schedule.makespan schedule /. lb) :: !ratios
      done;
      let data = Array.of_list !ratios in
      let summary = Summary.of_array data in
      Table.add_row table
        [
          name;
          string_of_int !replicas;
          Table.cell_float ~decimals:3 (Summary.mean summary);
          Table.cell_float ~decimals:3 (Usched_stats.Quantile.quantile data ~q:0.95);
          Table.cell_float ~decimals:3 (Summary.max summary);
        ])
    strategies;
  print_string (Table.render table);
  Printf.printf
    "\nThree replicas (the HDFS default) already recover most of the gap\n\
     between pinned execution and full replication — the tradeoff curve\n\
     of the paper's Figure 3 in a cluster-shaped setting.\n"
