(* Failover demo: what replication buys when a machine dies mid-run.

   One small instance, replicated in groups of 3 machines, executed
   twice with the same realization: once on a healthy cluster, once
   with machine 0 crashing halfway through. The faulty run kills the
   task in flight on machine 0 and re-dispatches it to a surviving
   replica holder — the two Gantt charts show the hole and the patch.
   A third section slows a machine down instead of killing it and lets
   speculative re-execution race a backup copy against the straggler.

   Run with: dune exec examples/failover_demo.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Gantt = Usched_desim.Gantt
module Timeline = Usched_desim.Timeline
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Core = Usched_core
module Rng = Usched_prng.Rng

let m = 6
let n = 18

let () =
  let rng = Rng.create ~seed:2024 () in
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 2.0; hi = 9.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha 1.5)
      rng
  in
  let realization = Realization.log_uniform_factor instance rng in
  let algo = Core.Group_replication.ls_group ~k:2 in
  let placement = algo.Core.Two_phase.phase1 instance in
  let sets = Core.Placement.sets placement in
  let order = Instance.lpt_order instance in

  Printf.printf
    "Failover demo: %d tasks on %d machines, groups of %d replicas\n\
     (LS-Group k=2). Machine 0 crashes at 50%% of the healthy makespan;\n\
     its in-flight task is re-dispatched to a surviving replica holder.\n\n"
    n m (m / 2);

  (* Healthy run. *)
  let healthy = Engine.run instance realization ~placement:sets ~order in
  let healthy_makespan = Schedule.makespan healthy in

  (* The same run with machine 0 crashing mid-way. *)
  let crash_time = 0.5 *. healthy_makespan in
  let faults =
    Trace.of_events ~m
      [ { Fault.machine = 0; time = crash_time; kind = Fault.Crash } ]
  in
  let outcome, events =
    Engine.run_faulty_traced instance realization ~faults ~placement:sets ~order
  in
  (match Engine.outcome_schedule ~m outcome with
  | Some faulty ->
      print_string
        (Gantt.render_two ~left_title:"healthy cluster"
           ~right_title:
             (Printf.sprintf "machine 0 crashes at t=%.1f" crash_time)
           healthy faulty)
  | None ->
      (* Two replicas per task: a single crash can never strand a task. *)
      assert false);
  Printf.printf
    "\nC_max %.2f -> %.2f (%.2fx); %.2f units of work were lost with the\n\
     machine and re-run from scratch on a surviving replica holder.\n"
    healthy_makespan outcome.Engine.makespan
    (outcome.Engine.makespan /. healthy_makespan)
    outcome.Engine.wasted;

  Printf.printf "\nEvent log of the faulty run around the crash:\n";
  let interesting =
    List.filter
      (fun (e : Engine.event) ->
        match e with
        | Engine.Machine_crashed _ | Engine.Killed _ -> true
        | Engine.Started { time; _ } -> time >= crash_time
        | _ -> false)
      events
  in
  print_string (Timeline.render_events interesting);

  (* Straggler section: slow machine 0 down instead of killing it and
     race a speculative backup against the limping copy. *)
  Printf.printf
    "\n---\n\n\
     Same cluster, but machine 0 slows to 25%% speed at t=%.1f instead\n\
     of dying. Without speculation the in-flight task limps home; with\n\
     speculation (beta=1.3) an idle replica holder starts a backup and\n\
     the first copy to finish wins.\n\n"
    (0.25 *. healthy_makespan);
  let slow =
    Trace.of_events ~m
      [
        {
          Fault.machine = 0;
          time = 0.25 *. healthy_makespan;
          kind = Fault.Slowdown 0.25;
        };
      ]
  in
  let plain =
    Engine.run_faulty instance realization ~faults:slow ~placement:sets ~order
  in
  let spec =
    Engine.run_faulty ~speculation:1.3 instance realization ~faults:slow
      ~placement:sets ~order
  in
  Printf.printf
    "no speculation:   C_max %.2f (%.2fx healthy), wasted %.2f\n\
     speculation on:   C_max %.2f (%.2fx healthy), wasted %.2f\n\n\
     Replication pays twice: the crash is survivable because a second\n\
     copy of the data exists, and the straggler is beatable because a\n\
     second machine is allowed to run the task.\n"
    plain.Engine.makespan
    (plain.Engine.makespan /. healthy_makespan)
    plain.Engine.wasted spec.Engine.makespan
    (spec.Engine.makespan /. healthy_makespan)
    spec.Engine.wasted
