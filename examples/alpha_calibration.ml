(* Calibrating alpha from history.

   The model needs a trustworthy uncertainty factor. The paper notes that
   interval bounds can be "derived experimentally using machine learning
   techniques" (it cites SVM-based runtime prediction). This example shows
   the simplest honest version of that pipeline:

   1. collect historical (estimate, actual) pairs from a simulated
      predictor whose errors we do not know;
   2. calibrate alpha as a high quantile of the observed |log error|,
      with a safety margin;
   3. schedule new workloads under the calibrated alpha, clamping the
      rare out-of-interval realizations, and check how often the
      guarantee held.

   Run with: dune exec examples/alpha_calibration.exe *)

module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Core = Usched_core
module Rng = Usched_prng.Rng
module Dist = Usched_prng.Dist
module Quantile = Usched_stats.Quantile

(* The "true" predictor error process, unknown to the scheduler:
   lognormal multiplicative noise. *)
let true_error rng = Dist.lognormal rng ~mu:0.0 ~sigma:0.25

let () =
  let rng = Rng.create ~seed:99 () in

  (* Step 1: history. *)
  let history = Array.init 500 (fun _ -> true_error rng) in
  Printf.printf "Collected %d historical actual/estimate ratios.\n"
    (Array.length history);

  (* Step 2: calibrate. An alpha that covers the q-quantile of |log
     error| in both directions, widened by 5%%. *)
  let abs_log = Array.map (fun r -> Float.abs (log r)) history in
  let q99 = Quantile.quantile abs_log ~q:0.99 in
  let alpha_value = exp q99 *. 1.05 in
  Printf.printf "Calibrated alpha = %.3f (99th percentile of |log error| + 5%% margin).\n\n"
    alpha_value;
  let alpha = Uncertainty.alpha alpha_value in

  (* Step 3: schedule 200 fresh workloads under the calibrated alpha. *)
  let m = 6 in
  let covered = ref 0 and total_tasks = ref 0 and clamped = ref 0 in
  let worst_ratio = ref 0.0 in
  for _ = 1 to 200 do
    let ests = Array.init 24 (fun _ -> 1.0 +. (9.0 *. Rng.float rng)) in
    let instance = Instance.of_ests ~m ~alpha ests in
    (* Reality draws from the true process; out-of-interval values are
       clamped (and counted) — the scheduler's model is only
       approximately right. *)
    let actuals =
      Array.mapi
        (fun _j est ->
          let raw = est *. true_error rng in
          incr total_tasks;
          let admissible = Uncertainty.admissible alpha ~est ~actual:raw in
          if admissible then incr covered else incr clamped;
          Uncertainty.clamp alpha ~est raw)
        ests
    in
    let realization = Realization.of_actuals instance actuals in
    let makespan =
      Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction instance
        realization
    in
    let lb = Core.Lower_bounds.best ~m actuals in
    worst_ratio := Float.max !worst_ratio (makespan /. lb)
  done;
  Printf.printf
    "Over 200 scheduled workloads:\n\
    \  interval coverage: %.2f%% of tasks (%d clamped of %d)\n\
    \  worst observed makespan ratio (LPT-No Restriction): %.3f\n\
    \  guarantee at the calibrated alpha:                  %.3f\n\n"
    (100.0 *. float_of_int !covered /. float_of_int !total_tasks)
    !clamped !total_tasks !worst_ratio
    (Core.Guarantees.full_replication ~m ~alpha:alpha_value);
  Printf.printf
    "The calibrated interval covers ~99%% of realizations, and the\n\
     measured worst ratio sits comfortably under the theoretical\n\
     guarantee — the paper's model is usable with learned, imperfect\n\
     alpha bounds.\n"
