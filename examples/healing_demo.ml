(* Healing demo: what online re-replication buys beyond static replicas.

   One small instance under a 2-ring placement, executed twice with the
   same realization and the same pair of mid-run crashes. Two replicas
   survive any single crash, but the second crash hits the other ring
   neighbour: the passive engine strands every task whose two copies
   lived exactly on the two dead machines. The recovery engine detects
   the first crash after a short latency and copies the now-singleton
   data to healthy machines at a finite bandwidth, so by the time the
   second crash lands every task has a live holder again.

   A second section kills nothing permanently: a machine blacks out for
   a while and comes back. Without checkpoints its killed copy restarts
   from zero; with a checkpoint interval it resumes from the last
   multiple of c work units on rejoin.

   Run with: dune exec examples/healing_demo.exe *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Gantt = Usched_desim.Gantt
module Timeline = Usched_desim.Timeline
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Core = Usched_core
module Rng = Usched_prng.Rng

let m = 6
let n = 18

let counter snapshot name =
  match Metrics.find snapshot name with
  | Some (Metrics.Counter c) -> c
  | _ -> 0

(* Task j lives on machines {j mod m, (j+1) mod m}: two replicas, so one
   crash always leaves a live holder for the healer to copy from. *)
let ring_placement =
  Core.Placement.of_sets ~m
    (Array.init n (fun j -> Bitset.of_list m [ j mod m; (j + 1) mod m ]))

let () =
  let rng = Rng.create ~seed:2025 () in
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 2.0; hi = 9.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha 1.5)
      rng
  in
  let realization = Realization.log_uniform_factor instance rng in
  let sets = Core.Placement.sets ring_placement in
  let order = Instance.lpt_order instance in

  let healthy = Engine.run instance realization ~placement:sets ~order in
  let healthy_makespan = Schedule.makespan healthy in

  (* Two crashes, spaced so the passive engine loses both replicas of
     some task while the healer has time to rebuild in between. *)
  let t1 = 0.25 *. healthy_makespan in
  let t2 = 0.55 *. healthy_makespan in
  let faults () =
    Trace.of_events ~m
      [
        { Fault.machine = 0; time = t1; kind = Fault.Crash };
        { Fault.machine = 1; time = t2; kind = Fault.Crash };
      ]
  in
  Printf.printf
    "Healing demo: %d tasks on %d machines, 2-ring placement (replicas\n\
     on j mod m and j+1 mod m). Machines 0 and 1 crash at t=%.1f and\n\
     t=%.1f: every task placed on exactly {0, 1} loses both copies.\n\n"
    n m t1 t2;

  (* Passive engine: the second crash strands the tasks whose surviving
     replica lived on machine 1. *)
  let passive =
    Engine.run_faulty instance realization ~faults:(faults ()) ~placement:sets
      ~order
  in
  Printf.printf
    "passive engine:  completed %d/%d, stranded [%s], C_max %.2f\n"
    passive.Engine.completed n
    (String.concat "; " (List.map string_of_int passive.Engine.stranded))
    passive.Engine.makespan;

  (* Recovery engine: detection latency 0.5, copy the lost replicas back
     up to 2 at bandwidth 4 size-units per time unit. *)
  let recovery =
    Recovery.make ~detection_latency:0.5 ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:4.0
      ()
  in
  let metrics = Metrics.create () in
  let outcome, events =
    Engine.run_faulty_traced ~recovery ~metrics instance realization
      ~faults:(faults ()) ~placement:sets ~order
  in
  Printf.printf
    "healing engine:  completed %d/%d, stranded [%s], C_max %.2f\n\
    \                 (%d re-replications, %s)\n\n"
    outcome.Engine.completed n
    (String.concat "; " (List.map string_of_int outcome.Engine.stranded))
    outcome.Engine.makespan
    (counter outcome.Engine.metrics "engine.rereplications")
    (Format.asprintf "%a" Recovery.pp recovery);

  (match Engine.outcome_schedule ~m outcome with
  | Some healed ->
      print_string
        (Gantt.render_two ~left_title:"healthy cluster"
           ~right_title:"two crashes, healer on" healthy healed)
  | None -> ());

  Printf.printf "\nDetection and healing events of the recovered run:\n";
  let interesting =
    List.filter
      (fun (e : Engine.event) ->
        match e with
        | Engine.Machine_crashed _ | Engine.Failure_detected _
        | Engine.Rereplication_started _ | Engine.Rereplication_completed _
        | Engine.Rereplication_aborted _ | Engine.Killed _ ->
            true
        | _ -> false)
      events
  in
  print_string (Timeline.render_events interesting);

  (* ---- checkpoint section: outage instead of death --------------------

     Singleton placement here: with a second replica the killed task
     would simply re-dispatch to the other holder, and the checkpoint
     would never be resumed. With one copy per task the work must wait
     for its machine to rejoin, so banked progress is actually used. *)
  let singleton = Core.Placement.of_sets ~m
      (Array.init n (fun j -> Bitset.of_list m [ j mod m ]))
  in
  let single_sets = Core.Placement.sets singleton in
  let healthy1 =
    Schedule.makespan
      (Engine.run instance realization ~placement:single_sets ~order)
  in
  let t_out = 0.3 *. healthy1 in
  let outage_len = 6.0 in
  Printf.printf
    "\n---\n\n\
     Same workload on singleton placements (one copy per task), no\n\
     deaths: machine 0 blacks out at t=%.1f for %.1f time units and\n\
     rejoins. Without checkpoints its killed copy restarts from zero;\n\
     with a checkpoint every 1.0 work units it resumes from the last\n\
     checkpoint on rejoin.\n\n"
    t_out outage_len;
  let outage () =
    Trace.of_events ~m
      [
        {
          Fault.machine = 0;
          time = t_out;
          kind = Fault.Outage (t_out +. outage_len);
        };
      ]
  in
  let restart =
    Engine.run_faulty instance realization ~faults:(outage ())
      ~placement:single_sets ~order
  in
  let ck_metrics = Metrics.create () in
  let checkpointed =
    Engine.run_faulty
      ~recovery:(Recovery.make ~checkpoint_interval:1.0 ())
      ~metrics:ck_metrics instance realization ~faults:(outage ())
      ~placement:single_sets ~order
  in
  Printf.printf
    "restart from zero:  C_max %.2f (%.2fx healthy), wasted %.2f\n\
     checkpoint c=1.0:   C_max %.2f (%.2fx healthy), wasted %.2f \
     (%d resume(s))\n\n\
     Re-replication rebuilds the data safety net mid-run; checkpoints\n\
     shrink the work an outage can destroy to at most one interval.\n"
    restart.Engine.makespan
    (restart.Engine.makespan /. healthy1)
    restart.Engine.wasted checkpointed.Engine.makespan
    (checkpointed.Engine.makespan /. healthy1)
    checkpointed.Engine.wasted
    (counter checkpointed.Engine.metrics "engine.checkpoint_resumes")
