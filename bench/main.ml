(* Bench harness: regenerates every table and figure of the paper
   (Part 1), then times the implementation with Bechamel (Part 2).

   Run with: dune exec bench/main.exe
   Flags:
     --quick          skip Part 1 and shorten the measurement quota (CI preset)
     --json PATH      also write the Part-2 results as a machine-readable
                      BENCH_*.json report (name -> ns/run + minor allocs/run),
                      comparable against the committed BENCH_baseline.json
     --filter SUBSTR  run only the bench rows whose name contains SUBSTR
                      (case-sensitive; repeatable — a row matching any
                      filter runs) *)

open Bechamel
module Experiments = Usched_experiments
module Core = Usched_core
module Strategy = Usched_core.Strategy
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Rng = Usched_prng.Rng
module Engine = Usched_desim.Engine
module Dispatch = Usched_desim.Dispatch
module Arrival = Usched_desim.Arrival
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery

(* ------------------------------------------------------------------ *)
(* Part 1: paper artifacts.                                           *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  let config = { Experiments.Runner.default_config with reps = 30 } in
  Printf.printf
    "Reproduction harness: one section per table/figure of the paper.\n\
     (seed %d, %d repetitions per sampled point, %d domains)\n"
    config.Experiments.Runner.seed config.Experiments.Runner.reps
    config.Experiments.Runner.domains;
  Experiments.Registry.run_all config

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks.                                  *)
(* ------------------------------------------------------------------ *)

let bench_instance ~n ~m =
  Workload.generate
    (Workload.Uniform { lo = 1.0; hi = 100.0 })
    ~n ~m
    ~alpha:(Uncertainty.alpha 2.0)
    (Rng.create ~seed:7 ())

let benches () =
  let instance = bench_instance ~n:1000 ~m:210 in
  let realization =
    Realization.uniform_factor instance (Rng.create ~seed:8 ())
  in
  let small = bench_instance ~n:14 ~m:4 in
  let small_actuals =
    Realization.actuals (Realization.uniform_factor small (Rng.create ~seed:9 ()))
  in
  let big_weights = Instance.ests (bench_instance ~n:10_000 ~m:100) in
  let mixed =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~size_spec:(Workload.Inverse 5.0) ~n:1000 ~m:210
      ~alpha:(Uncertainty.alpha 1.5)
      (Rng.create ~seed:10 ())
  in
  let mixed_realization =
    Realization.uniform_factor mixed (Rng.create ~seed:12 ())
  in
  let rng = Rng.create ~seed:11 () in
  (* Dispatch-layer fixtures: the alternative policies rescan eligible
     tasks per decision (no cursor amortization), so they get a smaller
     instance; the default policy also runs at full size to expose any
     dispatch-layer overhead against the committed baseline. *)
  let disp = bench_instance ~n:300 ~m:32 in
  let disp_realization =
    Realization.uniform_factor disp (Rng.create ~seed:15 ())
  in
  let disp_sets =
    Core.Placement.sets
      ((Strategy.build Strategy.(group ~order:Ls ~k:4) ~m:32).Core.Two_phase
         .phase1 disp)
  in
  let disp_order = Instance.lpt_order disp in
  (* Every named algorithm below goes through the strategy catalog — the
     benched code path is the same one the CLI and experiments use. *)
  let strat ~m spec = Strategy.build spec ~m in
  let lpt_no_choice = strat ~m:210 Strategy.(no_replication Lpt) in
  let ls_group30 = strat ~m:210 Strategy.(group ~order:Ls ~k:30) in
  let ls_group42 = strat ~m:210 Strategy.(group ~order:Ls ~k:42) in
  let ls_group2 = strat ~m:210 Strategy.(group ~order:Ls ~k:2) in
  let lpt_no_restriction = strat ~m:210 Strategy.(full_replication Lpt) in
  let abo_1 = strat ~m:210 (Strategy.abo ~delta:1.0) in
  let budgeted_3 = strat ~m:210 (Strategy.budgeted ~k:3) in
  [
    (* Phase-1 placement algorithms (n=1000, m=210). *)
    Test.make ~name:"phase1/lpt-no-choice (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore (lpt_no_choice.Core.Two_phase.phase1 instance)));
    Test.make ~name:"phase1/ls-group k=30 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore (ls_group30.Core.Two_phase.phase1 instance)));
    Test.make ~name:"phase1/sbo-split (n=1k,m=210)"
      (Staged.stage (fun () -> ignore (Core.Sbo.split ~delta:1.0 mixed)));
    (* Full two-phase pipelines. *)
    Test.make ~name:"two-phase/lpt-no-restriction (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             (Core.Two_phase.makespan lpt_no_restriction instance realization)));
    Test.make ~name:"two-phase/ls-group k=30 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore (Core.Two_phase.makespan ls_group30 instance realization)));
    Test.make ~name:"two-phase/abo delta=1 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore (Core.Two_phase.makespan abo_1 mixed mixed_realization)));
    Test.make ~name:"two-phase/budgeted k=3 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore (Core.Two_phase.makespan budgeted_3 instance realization)));
    (* Optimum machinery. *)
    Test.make ~name:"opt/branch-and-bound (n=14,m=4)"
      (Staged.stage (fun () -> ignore (Core.Opt.solve ~m:4 small_actuals)));
    Test.make ~name:"opt/dual-approx eps=1/3 (n=14,m=4)"
      (Staged.stage (fun () ->
           ignore (Core.Dual_approx.makespan ~m:4 small_actuals)));
    Test.make ~name:"opt/multifit (n=10k,m=100)"
      (Staged.stage (fun () -> ignore (Core.Multifit.makespan ~m:100 big_weights)));
    Test.make ~name:"opt/lower-bounds (n=10k,m=100)"
      (Staged.stage (fun () -> ignore (Core.Lower_bounds.best ~m:100 big_weights)));
    (* Fault-injected engine (n=1000, m=210, ~5 replicas/task). *)
    (let placement = ls_group42.Core.Two_phase.phase1 instance in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     let healthy =
       Usched_desim.Schedule.makespan
         (Engine.run instance realization ~placement:sets ~order)
     in
     let m = Instance.m instance in
     let crashes =
       Trace.random_crashes (Rng.create ~seed:13 ()) ~m ~p:0.3 ~horizon:healthy
     in
     Test.make ~name:"faulty/crash-heavy p=0.3 (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty instance realization ~faults:crashes
                 ~placement:sets ~order))));
    (let placement = ls_group42.Core.Two_phase.phase1 instance in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     let empty = Trace.empty ~m:(Instance.m instance) in
     Test.make ~name:"faulty/empty-trace overhead (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty instance realization ~faults:empty
                 ~placement:sets ~order))));
    (* Recovery engine: healing under heavy crashes on a thin (k=2)
       placement, and the overhead of the recovery code path with a
       structurally-neutral policy on the same crash trace as
       faulty/crash-heavy. *)
    (let placement = ls_group2.Core.Two_phase.phase1 instance in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     let healthy =
       Usched_desim.Schedule.makespan
         (Engine.run instance realization ~placement:sets ~order)
     in
     let m = Instance.m instance in
     let crashes =
       Trace.random_crashes (Rng.create ~seed:14 ()) ~m ~p:0.3 ~horizon:healthy
     in
     let recovery =
       Recovery.make ~detection_latency:1.0 ~rereplication_target:(Recovery.Fixed 2)
         ~bandwidth:100.0 ()
     in
     Test.make ~name:"recovery/heal r=2 p=0.3 (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty ~recovery instance realization ~faults:crashes
                 ~placement:sets ~order))));
    (let placement = ls_group42.Core.Two_phase.phase1 instance in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     let healthy =
       Usched_desim.Schedule.makespan
         (Engine.run instance realization ~placement:sets ~order)
     in
     let m = Instance.m instance in
     let crashes =
       Trace.random_crashes (Rng.create ~seed:13 ()) ~m ~p:0.3 ~horizon:healthy
     in
     let neutral = Recovery.make () in
     Test.make ~name:"recovery/neutral-policy overhead (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty ~recovery:neutral instance realization
                 ~faults:crashes ~placement:sets ~order))));
    (* Dispatch layer: the default policy at full size, on the same
       placement/order as faulty/empty-trace overhead but through the
       healthy engine. *)
    (let placement = ls_group42.Core.Two_phase.phase1 instance in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     Test.make ~name:"dispatch/list-priority (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run ~dispatch:Dispatch.List_priority instance realization
                 ~placement:sets ~order))));
    (* Streaming service mode: Poisson arrivals at rho ~ 0.85 into the
       dispatch-sized fixture, with and without the replicate-on-
       straggler policy. Arrival generation is inside the timed region —
       it is part of the per-run cost the stream experiment pays. *)
    (let mean_service =
       let a = Realization.actuals disp_realization in
       Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
     in
     let rate = 0.85 *. 32.0 /. mean_service in
     let fcfs = Array.init 300 (fun j -> j) in
     Test.make ~name:"stream/poisson rho=0.85 (n=300,m=32)"
       (Staged.stage (fun () ->
            let arrivals =
              Arrival.generate (Arrival.poisson ~rate)
                (Rng.create ~seed:16 ())
                ~count:300
            in
            ignore
              (Engine.run_stream disp disp_realization ~arrivals
                 ~placement:disp_sets ~order:fcfs))));
    (let mean_service =
       let a = Realization.actuals disp_realization in
       Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
     in
     let rate = 0.85 *. 32.0 /. mean_service in
     let fcfs = Array.init 300 (fun j -> j) in
     Test.make ~name:"stream/speculate beta=1.2 (n=300,m=32)"
       (Staged.stage (fun () ->
            let arrivals =
              Arrival.generate (Arrival.poisson ~rate)
                (Rng.create ~seed:16 ())
                ~count:300
            in
            ignore
              (Engine.run_stream ~speculation:1.2 disp disp_realization
                 ~arrivals ~placement:disp_sets ~order:fcfs))));
    (* Mid-run speed revelation through the fault layer: machines start
       at their optimistic in-band speeds and one Slowdown per machine
       reveals the sampled speed while work is in flight. *)
    (let band = Usched_model.Speed_band.uniform ~m:32 ~lo:0.5 ~hi:2.0 in
     let his = Usched_model.Speed_band.his band in
     let revealed =
       Usched_model.Speed_band.sample band (Rng.create ~seed:17 ())
     in
     let factors = Array.mapi (fun i s -> s /. his.(i)) revealed in
     let optimistic =
       Usched_desim.Schedule.makespan
         (Engine.run ~speeds:his disp disp_realization ~placement:disp_sets
            ~order:disp_order)
     in
     let faults = Trace.revelation ~m:32 ~at:(0.5 *. optimistic) factors in
     Test.make ~name:"faulty/speed-revelation (n=300,m=32)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty ~speeds:his disp disp_realization ~faults
                 ~placement:disp_sets ~order:disp_order))));
    (* Substrates. *)
    (let keys = Array.init 10_000 (fun i -> (i * 2_654_435_761) land 0xFFFFF) in
     Test.make ~name:"pqueue/push-pop churn (10k)"
       (Staged.stage (fun () ->
            let q = Usched_desim.Pqueue.create ~compare:Int.compare () in
            Array.iter (fun k -> Usched_desim.Pqueue.push q k) keys;
            let acc = ref 0 in
            let rec drain () =
              match Usched_desim.Pqueue.pop q with
              | Some k ->
                  acc := !acc + k;
                  drain ()
              | None -> ()
            in
            drain ();
            Sys.opaque_identity !acc |> ignore)));
    Test.make ~name:"prng/xoshiro256 float"
      (Staged.stage (fun () -> ignore (Rng.float rng)));
    Test.make ~name:"workload/uniform n=1000"
      (Staged.stage (fun () -> ignore (bench_instance ~n:1000 ~m:210)));
    (* Million-task scale rows (ROADMAP item 2): phase-1 + phase-2 at
       n=10^6, m=10^4 must complete in seconds, and the multifit rewrite
       must hold its allocation discipline at that size. These dominate
       the bench wall-clock; [--filter scale/] runs them alone. *)
    (let big = bench_instance ~n:1_000_000 ~m:10_000 in
     let big_realization =
       Realization.uniform_factor big (Rng.create ~seed:18 ())
     in
     let ls_group2_10k = strat ~m:10_000 Strategy.(group ~order:Ls ~k:2) in
     Test.make ~name:"scale/two-phase ls-group k=2 (n=1e6,m=10k)"
       (Staged.stage (fun () ->
            ignore
              (Core.Two_phase.makespan ls_group2_10k big big_realization))));
    (let big_weights = Instance.ests (bench_instance ~n:1_000_000 ~m:10_000) in
     Test.make ~name:"scale/multifit (n=1e6,m=10k)"
       (Staged.stage (fun () ->
            ignore (Core.Multifit.makespan ~m:10_000 big_weights))));
  ]
  @ List.map
      (fun policy ->
        Test.make
          ~name:(Printf.sprintf "dispatch/%s (n=300,m=32)" (Dispatch.name policy))
          (Staged.stage (fun () ->
               ignore
                 (Engine.run ~dispatch:policy disp disp_realization
                    ~placement:disp_sets ~order:disp_order))))
      Dispatch.builtin
  (* Registry-driven per-strategy rows: the phase-1 placement cost of
     every catalog family at its representative spec (n=300, m=32). *)
  @ List.map
      (fun e ->
        let algo = Strategy.build (e.Strategy.example ~m:32) ~m:32 in
        Test.make
          ~name:(Printf.sprintf "strategy/%s phase1 (n=300,m=32)" e.Strategy.keyword)
          (Staged.stage (fun () -> ignore (algo.Core.Two_phase.phase1 disp))))
      Strategy.all

type bench_result = {
  name : string;
  ns_per_run : float;
  minor_allocs_per_run : float;
}

let contains ~sub s =
  let ls = String.length s and lu = String.length sub in
  let rec go i = i + lu <= ls && (String.sub s i lu = sub || go (i + 1)) in
  lu = 0 || go 0

let run_benches ~quota_s ~filters () =
  Printf.printf "\n%s\n== Bechamel micro-benchmarks (ns per run)\n%s\n"
    (String.make 72 '=') (String.make 72 '=');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~stabilize:true ()
  in
  let selected =
    match filters with
    | [] -> benches ()
    | _ ->
        List.filter
          (fun t ->
            List.exists (fun sub -> contains ~sub (Test.name t)) filters)
          (benches ())
  in
  if selected = [] then (
    Printf.eprintf
      "bench: no bench row matches --filter %s\navailable rows:\n"
      (String.concat " --filter " (List.map (Printf.sprintf "%S") filters));
    List.iter
      (fun t -> Printf.eprintf "  %s\n" (Test.name t))
      (benches ());
    Printf.eprintf
      "usage: bench [--quick] [--json PATH] [--filter SUBSTR]\n";
    exit 2);
  let grouped = Test.make_grouped ~name:"usched" ~fmt:"%s %s" selected in
  let raw = Benchmark.all cfg instances grouped in
  let estimates_of instance =
    let per_test = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun name o acc ->
        let estimate =
          match Analyze.OLS.estimates o with Some (x :: _) -> x | _ -> nan
        in
        (name, estimate) :: acc)
      per_test []
  in
  let times = estimates_of Toolkit.Instance.monotonic_clock in
  let allocs = estimates_of Toolkit.Instance.minor_allocated in
  let results =
    times
    |> List.map (fun (name, ns) ->
           {
             name;
             ns_per_run = ns;
             minor_allocs_per_run =
               Option.value ~default:nan (List.assoc_opt name allocs);
           })
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  List.iter
    (fun r ->
      Printf.printf "  %-46s %14.1f ns/run %14.1f mw/run\n" r.name r.ns_per_run
        r.minor_allocs_per_run)
    results;
  results

(* The BENCH_*.json report: machine-readable bench baseline for
   regression tracking (see BENCH_baseline.json and the CI artifact). *)
let write_json_report ~path ~quota_s results =
  let module Json = Usched_report.Json in
  let report =
    Json.Obj
      [
        ("type", Json.String "bench_report");
        ("version", Json.Int 1);
        ("quota_s", Json.float quota_s);
        ( "results",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("name", Json.String r.name);
                     ("ns_per_run", Json.float r.ns_per_run);
                     ("minor_allocs_per_run", Json.float r.minor_allocs_per_run);
                   ])
               results) );
      ]
  in
  (* Atomic: CI consumes this report, never a half-written one. *)
  Usched_obs.Fs.write_atomic ~path (Json.to_string report ^ "\n");
  Printf.printf "\n[bench] wrote %s\n" path

let () =
  let json_path = ref None in
  let quick = ref false in
  let filters = ref [] in
  Arg.parse
    [
      ( "--json",
        Arg.String (fun p -> json_path := Some p),
        "PATH  also write results as a machine-readable JSON report" );
      ( "--quick",
        Arg.Set quick,
        "  skip the paper-artifact part and shorten the quota (CI preset)" );
      ( "--filter",
        Arg.String (fun s -> filters := s :: !filters),
        "SUBSTR  run only bench rows whose name contains SUBSTR (repeatable)"
      );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--quick] [--json PATH] [--filter SUBSTR]";
  if (not !quick) && !filters = [] then run_experiments ();
  let quota_s = if !quick then 0.08 else 0.5 in
  let results = run_benches ~quota_s ~filters:!filters () in
  (match !json_path with
  | Some path -> write_json_report ~path ~quota_s results
  | None -> ());
  Printf.printf "\nbench: done\n"
