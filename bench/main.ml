(* Bench harness: regenerates every table and figure of the paper
   (Part 1), then times the implementation with Bechamel (Part 2).

   Run with: dune exec bench/main.exe *)

open Bechamel
module Experiments = Usched_experiments
module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Rng = Usched_prng.Rng
module Engine = Usched_desim.Engine
module Trace = Usched_faults.Trace

(* ------------------------------------------------------------------ *)
(* Part 1: paper artifacts.                                           *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  let config = { Experiments.Runner.default_config with reps = 30 } in
  Printf.printf
    "Reproduction harness: one section per table/figure of the paper.\n\
     (seed %d, %d repetitions per sampled point, %d domains)\n"
    config.Experiments.Runner.seed config.Experiments.Runner.reps
    config.Experiments.Runner.domains;
  Experiments.Registry.run_all config

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks.                                  *)
(* ------------------------------------------------------------------ *)

let bench_instance ~n ~m =
  Workload.generate
    (Workload.Uniform { lo = 1.0; hi = 100.0 })
    ~n ~m
    ~alpha:(Uncertainty.alpha 2.0)
    (Rng.create ~seed:7 ())

let benches () =
  let instance = bench_instance ~n:1000 ~m:210 in
  let realization =
    Realization.uniform_factor instance (Rng.create ~seed:8 ())
  in
  let small = bench_instance ~n:14 ~m:4 in
  let small_actuals =
    Realization.actuals (Realization.uniform_factor small (Rng.create ~seed:9 ()))
  in
  let big_weights = Instance.ests (bench_instance ~n:10_000 ~m:100) in
  let mixed =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~size_spec:(Workload.Inverse 5.0) ~n:1000 ~m:210
      ~alpha:(Uncertainty.alpha 1.5)
      (Rng.create ~seed:10 ())
  in
  let mixed_realization =
    Realization.uniform_factor mixed (Rng.create ~seed:12 ())
  in
  let rng = Rng.create ~seed:11 () in
  [
    (* Phase-1 placement algorithms (n=1000, m=210). *)
    Test.make ~name:"phase1/lpt-no-choice (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             (Core.No_replication.lpt_no_choice.Core.Two_phase.phase1 instance)));
    Test.make ~name:"phase1/ls-group k=30 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             ((Core.Group_replication.ls_group ~k:30).Core.Two_phase.phase1
                instance)));
    Test.make ~name:"phase1/sbo-split (n=1k,m=210)"
      (Staged.stage (fun () -> ignore (Core.Sbo.split ~delta:1.0 mixed)));
    (* Full two-phase pipelines. *)
    Test.make ~name:"two-phase/lpt-no-restriction (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             (Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction
                instance realization)));
    Test.make ~name:"two-phase/ls-group k=30 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             (Core.Two_phase.makespan
                (Core.Group_replication.ls_group ~k:30)
                instance realization)));
    Test.make ~name:"two-phase/abo delta=1 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             (Core.Two_phase.makespan (Core.Abo.algorithm ~delta:1.0) mixed
                mixed_realization)));
    Test.make ~name:"two-phase/budgeted k=3 (n=1k,m=210)"
      (Staged.stage (fun () ->
           ignore
             (Core.Two_phase.makespan (Core.Budgeted.uniform ~k:3) instance
                realization)));
    (* Optimum machinery. *)
    Test.make ~name:"opt/branch-and-bound (n=14,m=4)"
      (Staged.stage (fun () -> ignore (Core.Opt.solve ~m:4 small_actuals)));
    Test.make ~name:"opt/dual-approx eps=1/3 (n=14,m=4)"
      (Staged.stage (fun () ->
           ignore (Core.Dual_approx.makespan ~m:4 small_actuals)));
    Test.make ~name:"opt/multifit (n=10k,m=100)"
      (Staged.stage (fun () -> ignore (Core.Multifit.makespan ~m:100 big_weights)));
    Test.make ~name:"opt/lower-bounds (n=10k,m=100)"
      (Staged.stage (fun () -> ignore (Core.Lower_bounds.best ~m:100 big_weights)));
    (* Fault-injected engine (n=1000, m=210, ~5 replicas/task). *)
    (let placement =
       (Core.Group_replication.ls_group ~k:42).Core.Two_phase.phase1 instance
     in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     let healthy =
       Usched_desim.Schedule.makespan
         (Engine.run instance realization ~placement:sets ~order)
     in
     let m = Instance.m instance in
     let crashes =
       Trace.random_crashes (Rng.create ~seed:13 ()) ~m ~p:0.3 ~horizon:healthy
     in
     Test.make ~name:"faulty/crash-heavy p=0.3 (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty instance realization ~faults:crashes
                 ~placement:sets ~order))));
    (let placement =
       (Core.Group_replication.ls_group ~k:42).Core.Two_phase.phase1 instance
     in
     let sets = Core.Placement.sets placement in
     let order = Instance.lpt_order instance in
     let empty = Trace.empty ~m:(Instance.m instance) in
     Test.make ~name:"faulty/empty-trace overhead (n=1k,m=210)"
       (Staged.stage (fun () ->
            ignore
              (Engine.run_faulty instance realization ~faults:empty
                 ~placement:sets ~order))));
    (* Substrates. *)
    Test.make ~name:"prng/xoshiro256 float"
      (Staged.stage (fun () -> ignore (Rng.float rng)));
    Test.make ~name:"workload/uniform n=1000"
      (Staged.stage (fun () -> ignore (bench_instance ~n:1000 ~m:210)));
  ]

let run_benches () =
  Printf.printf "\n%s\n== Bechamel micro-benchmarks (ns per run)\n%s\n"
    (String.make 72 '=') (String.make 72 '=');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"usched" ~fmt:"%s %s" (benches ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure per_test ->
      Printf.printf "measure: %s\n" measure;
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let estimate =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> x
              | _ -> nan
            in
            (name, estimate) :: acc)
          per_test []
      in
      List.iter
        (fun (name, estimate) ->
          Printf.printf "  %-46s %14.1f ns/run\n" name estimate)
        (List.sort compare rows))
    merged

let () =
  run_experiments ();
  run_benches ();
  Printf.printf "\nbench: done\n"
