(* usched: command-line driver for the experiment harness and a small
   workbench over instance files (generate / solve / minimax). *)

open Cmdliner
module Experiments = Usched_experiments
module Core = Usched_core
module Model = Usched_model
module Metrics = Usched_obs.Metrics
module Sink = Usched_obs.Trace
module Json = Usched_report.Json

let config_term =
  let seed =
    Arg.(value & opt int Experiments.Runner.default_config.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")
  in
  let reps =
    Arg.(value & opt int Experiments.Runner.default_config.reps
         & info [ "reps" ] ~docv:"N" ~doc:"Repetitions per sampled point.")
  in
  let domains =
    Arg.(value & opt int Experiments.Runner.default_config.domains
         & info [ "domains" ] ~docv:"D" ~doc:"Parallel domains for sweeps.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Reduce repetitions for a fast smoke run.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also dump raw series as CSV files.")
  in
  let build seed reps domains quick csv =
    let config =
      { Experiments.Runner.default_config with seed; reps; domains; csv_dir = csv }
    in
    if quick then Experiments.Runner.quick config else config
  in
  Term.(const build $ seed $ reps $ domains $ quick $ csv)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-20s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const run $ const ())

let run_cmd =
  let ids =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (see list).")
  in
  let run config ids =
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | Some e -> Experiments.Registry.execute config e
        | None ->
            Printf.eprintf "unknown experiment %S; try 'usched list'\n" id;
            exit 2)
      ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments by id.")
    Term.(const run $ config_term $ ids)

let all_cmd =
  let run config = Experiments.Registry.run_all config in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (all paper tables/figures).")
    Term.(const run $ config_term)

(* ---------------- workbench commands over instance files ------------- *)

let workload_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "identical"; v ] -> Ok (Model.Workload.Identical (float_of_string v))
    | [ "uniform"; lo; hi ] ->
        Ok (Model.Workload.Uniform
              { lo = float_of_string lo; hi = float_of_string hi })
    | [ "exponential"; mean ] ->
        Ok (Model.Workload.Exponential { mean = float_of_string mean })
    | [ "pareto"; shape; scale; cap ] ->
        Ok (Model.Workload.Pareto
              {
                shape = float_of_string shape;
                scale = float_of_string scale;
                cap = float_of_string cap;
              })
    | [ "bimodal"; p; short_mean; long_mean ] ->
        Ok (Model.Workload.Bimodal
              {
                p_long = float_of_string p;
                short_mean = float_of_string short_mean;
                long_mean = float_of_string long_mean;
              })
    | _ ->
        Error
          (`Msg
             "expected identical:V | uniform:LO:HI | exponential:MEAN | \
              pareto:SHAPE:SCALE:CAP | bimodal:P:SHORT:LONG")
  in
  let print ppf spec = Format.fprintf ppf "%s" (Model.Workload.spec_name spec) in
  Arg.conv ~docv:"SPEC" (parse, print)

let gen_cmd =
  let spec =
    Arg.(value & opt workload_conv (Model.Workload.Uniform { lo = 1.0; hi = 10.0 })
         & info [ "workload" ] ~docv:"SPEC" ~doc:"Workload family, e.g. uniform:1:10.")
  in
  let n = Arg.(value & opt int 20 & info [ "n"; "tasks" ] ~doc:"Number of tasks.") in
  let m = Arg.(value & opt int 4 & info [ "m"; "machines" ] ~doc:"Number of machines.") in
  let alpha =
    Arg.(value & opt float 1.5 & info [ "alpha" ] ~doc:"Uncertainty factor (>= 1).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let failp =
    Arg.(value & opt (some string) None
         & info [ "failp" ] ~docv:"PROFILE"
             ~doc:"Attach a per-machine failure profile: either uniform:P \
                   (every machine fails with probability P) or a \
                   comma-separated list of M probabilities. Serialized into \
                   the instance header and read back by 'solve'.")
  in
  let speed_band =
    Arg.(value & opt (some string) None
         & info [ "speed-band" ] ~docv:"SPEC"
             ~doc:"Attach per-machine speed uncertainty bands: either \
                   uniform:LO:HI (the same band on every machine) or a \
                   comma-separated list of M LO:HI pairs (a single speed S \
                   means a known speed). Serialized into the instance header \
                   and read back by 'solve', which then reports adversarial \
                   and Monte-Carlo speed robustness.")
  in
  let topology =
    Arg.(value & opt (some string) None
         & info [ "topology" ] ~docv:"SPEC"
             ~doc:"Attach a cluster topology: uniform (one zone, free \
                   transfers), zones:Z:BW[:LAT] (Z balanced zones, one \
                   cross-zone bandwidth and optional latency), or a \
                   serialized ZONES|BW|LAT matrix form. Serialized into the \
                   instance header and read back by 'solve', which then \
                   prices replication transfers and staging.")
  in
  let out =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Output instance file.")
  in
  let run spec n m alpha seed failp speed_band topology out =
    let failure =
      match failp with
      | None -> None
      | Some s -> (
          let parsed =
            match String.split_on_char ':' s with
            | [ "uniform"; p ] -> (
                match float_of_string_opt p with
                | Some p when p >= 0.0 && p <= 1.0 ->
                    Ok (Model.Failure.uniform ~m ~p)
                | _ ->
                    Error
                      (Printf.sprintf
                         "uniform failure probability %S must be in [0, 1]" p))
            | _ -> Model.Failure.of_string s
          in
          match parsed with
          | Ok f when Model.Failure.m f = m -> Some f
          | Ok f ->
              Printf.eprintf
                "usched: --failp lists %d probabilities for %d machines\n"
                (Model.Failure.m f) m;
              exit 2
          | Error msg ->
              Printf.eprintf "usched: --failp: %s\n" msg;
              exit 2)
    in
    let band =
      match speed_band with
      | None -> None
      | Some s -> (
          match Model.Speed_band.of_spec ~m s with
          | Ok b -> Some b
          | Error msg ->
              Printf.eprintf "usched: --speed-band: %s\n" msg;
              exit 2)
    in
    let topo =
      match topology with
      | None -> None
      | Some s -> (
          match Model.Topology.of_spec ~m s with
          | Ok t -> Some t
          | Error msg ->
              Printf.eprintf "usched: --topology: %s\n" msg;
              exit 2)
    in
    let rng = Usched_prng.Rng.create ~seed () in
    let instance =
      Model.Workload.generate spec ~n ~m
        ~alpha:(Model.Uncertainty.alpha alpha) rng
    in
    let instance =
      match failure with
      | None -> instance
      | Some _ -> Model.Instance.with_failure instance failure
    in
    let instance =
      match band with
      | None -> instance
      | Some _ -> Model.Instance.with_speed_band instance band
    in
    let instance =
      match topo with
      | None -> instance
      | Some _ -> Model.Instance.with_topology instance topo
    in
    Model.Io.save_instance ~path:out instance;
    Printf.printf "wrote %s (%d tasks, %d machines, alpha=%g%s%s%s)\n" out n m
      alpha
      (match failure with
      | None -> ""
      | Some f -> Printf.sprintf ", failure profile %s" (Model.Failure.to_string f))
      (match band with
      | None -> ""
      | Some b ->
          Printf.sprintf ", speed band %s" (Model.Speed_band.to_string b))
      (match topo with
      | None -> ""
      | Some t ->
          Printf.sprintf ", topology %d zone%s" (Model.Topology.zones t)
            (if Model.Topology.zones t = 1 then "" else "s"))
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic instance file.")
    Term.(
      const run $ spec $ n $ m $ alpha $ seed $ failp $ speed_band $ topology
      $ out)

(* The strategy catalog owns the whole --algo grammar: parsing,
   parameter validation (NaN deltas, zero group counts, ...), and the
   help listing all arrive through [Strategy.of_string]. *)
let strategy_conv =
  let parse s =
    match Core.Strategy.of_string s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf spec = Format.fprintf ppf "%s" (Core.Strategy.to_string spec) in
  Arg.conv ~docv:"ALGO" (parse, print)

let policy_conv =
  let parse s =
    match Usched_desim.Dispatch.spec_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p = Format.fprintf ppf "%s" (Usched_desim.Dispatch.name p) in
  Arg.conv ~docv:"POLICY" (parse, print)

(* Validated float converters: plain [Arg.float] happily accepts "nan",
   which sails past range checks like [x < 0.0 || x > 1.0] and only
   blows up deep inside the engine. Reject it (and out-of-range values)
   at parse time with a proper cmdliner error instead. *)
let float_conv_of ~docv ~expect ok =
  let parse s =
    match float_of_string_opt s with
    | Some f when ok f -> Ok f
    | Some f -> Error (`Msg (Printf.sprintf "%s must be %s (got %g)" docv expect f))
    | None -> Error (`Msg (Printf.sprintf "invalid %s value %S" docv s))
  in
  Arg.conv ~docv (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let prob_conv =
  float_conv_of ~docv:"PROB" ~expect:"a probability in [0, 1]" (fun f ->
      f >= 0.0 && f <= 1.0)

let pos_float_conv ~docv =
  (* NaN fails [f > 0.]; infinity is allowed (an infinite bandwidth means
     instantaneous transfers, an infinite beta disables speculation). *)
  float_conv_of ~docv ~expect:"> 0" (fun f -> f > 0.0)

let nonneg_float_conv ~docv =
  float_conv_of ~docv ~expect:"a finite value >= 0" (fun f ->
      Float.is_finite f && f >= 0.0)

(* Strict probability for reliability targets: 0 and 1 are excluded (a
   target of 1 needs every machine, a target of 0 is vacuous), and NaN
   is rejected like everywhere else. *)
let open_prob_conv ~docv =
  float_conv_of ~docv ~expect:"a probability in (0, 1)" (fun f ->
      f > 0.0 && f < 1.0)

(* --speeds parses into a validated array; the length check against the
   instance's machine count happens once the file is loaded. *)
let speeds_conv =
  let parse s =
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
          match float_of_string_opt (String.trim p) with
          | Some f when Float.is_finite f && f > 0.0 -> go (f :: acc) rest
          | _ ->
              Error
                (`Msg
                   (Printf.sprintf
                      "invalid machine speed %S: expected a comma-separated \
                       list of finite speeds > 0"
                      p)))
    in
    go [] (String.split_on_char ',' s)
  in
  let print ppf a =
    Format.fprintf ppf "%s"
      (String.concat ","
         (Array.to_list (Array.map (Printf.sprintf "%g") a)))
  in
  Arg.conv ~docv:"SPEEDS" (parse, print)

(* --recover takes a replica count or the keyword "degree" (restore each
   task to its phase-1 replication degree); Recovery owns the grammar. *)
let recover_conv =
  let parse s =
    match Usched_faults.Recovery.target_of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t =
    Format.fprintf ppf "%s" (Usched_faults.Recovery.target_to_string t)
  in
  Arg.conv ~docv:"R" (parse, print)

(* --arrival delegates its whole grammar (and every validation: NaN
   rates, unsorted trace files, ...) to [Arrival.of_string], mirroring
   the strategy catalog. *)
let arrival_conv =
  let parse s =
    match Usched_desim.Arrival.of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a = Format.fprintf ppf "%s" (Usched_desim.Arrival.describe a) in
  Arg.conv ~docv:"SPEC" (parse, print)

let solve_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Instance file (see 'gen').")
  in
  let algo =
    Arg.(value & opt strategy_conv Core.Strategy.(full_replication Lpt)
         & info [ "algo" ] ~docv:"ALGO"
             ~doc:"Two-phase algorithm to run, e.g. ls-group:2 or sabo:0.5. \
                   Pass 'help' (or see 'usched strategies') for the full \
                   grammar.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Realization seed.") in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print the Gantt chart.") in
  let fail_rate =
    Arg.(value & opt prob_conv 0.0
         & info [ "fail-rate" ] ~docv:"P"
             ~doc:"Also replay the schedule with each machine crashing \
                   mid-run with probability $(docv) (crash times uniform \
                   over the healthy makespan).")
  in
  let speculate =
    Arg.(value & opt (some (pos_float_conv ~docv:"BETA")) None
         & info [ "speculate" ] ~docv:"BETA"
             ~doc:"Enable speculative re-execution in the faulty replay: an \
                   idle replica holder may start a backup copy once a task \
                   runs past $(docv) times its estimate.")
  in
  let recover =
    Arg.(value & opt recover_conv (Usched_faults.Recovery.Fixed 0)
         & info [ "recover" ] ~docv:"R"
             ~doc:"Online re-replication in the faulty replay: when failures \
                   drop a task's live replica count below $(docv), copy its \
                   data from a surviving holder to a healthy machine. Pass \
                   'degree' to restore each task to its own phase-1 \
                   replication degree (for variable-degree placements such \
                   as reliability:TARGET).")
  in
  let detect_latency =
    Arg.(value & opt (nonneg_float_conv ~docv:"LATENCY") 0.0
         & info [ "detect-latency" ] ~docv:"LATENCY"
             ~doc:"Failure-detection latency: the scheduler only learns of a \
                   failure $(docv) time units after it happens (0 = \
                   instantaneous detection).")
  in
  let bandwidth =
    Arg.(value & opt (pos_float_conv ~docv:"BW") infinity
         & info [ "bandwidth" ] ~docv:"BW"
             ~doc:"Re-replication bandwidth in data-size units per time unit \
                   (default: infinite, i.e. instantaneous copies).")
  in
  let checkpoint =
    Arg.(value & opt (nonneg_float_conv ~docv:"C") 0.0
         & info [ "checkpoint" ] ~docv:"C"
             ~doc:"Checkpoint interval in work units: a copy killed by an \
                   outage resumes from its last checkpoint when the machine \
                   rejoins (0 = restart from scratch).")
  in
  let target_reliability =
    Arg.(value & opt (some (open_prob_conv ~docv:"T")) None
         & info [ "target-reliability" ] ~docv:"T"
             ~doc:"Check the placement against a survival target: estimate \
                   P(no stranded task) by Monte-Carlo over the instance's \
                   machine failure profile (or the uniform default), print \
                   it next to the analytic union bound, and report whether \
                   $(docv) is met. Pairs with --algo reliability:$(docv).")
  in
  let speeds =
    Arg.(value & opt (some speeds_conv) None
         & info [ "speeds" ] ~docv:"SPEEDS"
             ~doc:"Machine speeds for every engine replay (healthy, faulty, \
                   stream): a comma-separated list of M finite speeds > 0. A \
                   task with actual processing requirement p occupies machine \
                   i for p / SPEEDS[i] — the uniform (related) machines \
                   extension. Default: all 1.")
  in
  let speed_band =
    Arg.(value & opt (some string) None
         & info [ "speed-band" ] ~docv:"SPEC"
             ~doc:"Per-machine speed uncertainty bands (uniform:LO:HI or M \
                   comma-separated LO:HI / S entries), overriding any band in \
                   the instance header. With a band present — from this flag \
                   or the header — solve reports speed robustness: the \
                   adversarial in-band revelation, Monte-Carlo revelations it \
                   dominates, and a mid-run revelation replayed through the \
                   fault layer.")
  in
  let topology =
    Arg.(value & opt (some string) None
         & info [ "topology" ] ~docv:"SPEC"
             ~doc:"Network topology override for transfer costs (uniform, \
                   zones:Z:BW[:LAT], or a serialized ZONES|BW|LAT form), \
                   replacing any topology in the instance header. Replication \
                   and recovery transfers between zones are charged data-size \
                   / bandwidth + latency; the engine stages a task's data \
                   before its first copy on each machine.")
  in
  let policy =
    Arg.(value & opt policy_conv Usched_desim.Dispatch.default
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:(Printf.sprintf
                     "Engine dispatch policy for the placement replays \
                      (healthy and faulty): %s. The default reproduces the \
                      paper's list-priority rule; any other choice also \
                      prints its replay makespan next to the algorithm's."
                     Usched_desim.Dispatch.known_names))
  in
  let stream =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Open-system replay: tasks arrive over time (--arrival) \
                   instead of all being present at t=0, and are dispatched \
                   in arrival (FCFS) order. Reports per-task latency \
                   quantiles (p50/p95/p99), throughput and machine \
                   utilization; composes with --fail-rate, --speculate, \
                   --recover and --policy.")
  in
  let arrival =
    Arg.(value & opt arrival_conv (Usched_desim.Arrival.poisson ~rate:1.0)
         & info [ "arrival" ] ~docv:"SPEC"
             ~doc:(Printf.sprintf
                     "Arrival process for --stream: %s. Trace files hold one \
                      arrival instant per line (blank lines and # comments \
                      skipped)."
                     Usched_desim.Arrival.grammar))
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Serialize the run as JSONL (one JSON object per line): a \
                   meta record, every engine event of an LPT-order replay of \
                   the placement (and of the faulty replay, if any), metrics \
                   snapshots, and summary records. Parent directories are \
                   created as needed.")
  in
  let run file spec seed gantt fail_rate speculate recover detect_latency
      bandwidth checkpoint target_reliability speeds speed_band topology policy
      stream arrival trace_path =
    let recovery =
      if
        recover = Usched_faults.Recovery.Fixed 0
        && detect_latency = 0.0
        && bandwidth = infinity
        && checkpoint = 0.0
      then Usched_faults.Recovery.none
      else
        match
          Usched_faults.Recovery.make ~detection_latency:detect_latency
            ~rereplication_target:recover ~bandwidth
            ~checkpoint_interval:checkpoint ()
        with
        | r -> r
        | exception Invalid_argument msg ->
            Printf.eprintf "usched: %s\n" msg;
            exit 2
    in
    let instance = Model.Io.load_instance ~path:file in
    let m = Model.Instance.m instance in
    let n = Model.Instance.n instance in
    (match speeds with
    | Some a when Array.length a <> m ->
        Printf.eprintf "usched: --speeds lists %d speeds for %d machines\n"
          (Array.length a) m;
        exit 2
    | _ -> ());
    (* The flag overrides any band the instance header carries. *)
    let band =
      match speed_band with
      | Some s -> (
          match Model.Speed_band.of_spec ~m s with
          | Ok b -> Some b
          | Error msg ->
              Printf.eprintf "usched: --speed-band: %s\n" msg;
              exit 2)
      | None -> Model.Instance.speed_band instance
    in
    (* The flag overrides any topology the instance header carries. *)
    let instance =
      match topology with
      | None -> instance
      | Some s -> (
          match Model.Topology.of_spec ~m s with
          | Ok t -> Model.Instance.with_topology instance (Some t)
          | Error msg ->
              Printf.eprintf "usched: --topology: %s\n" msg;
              exit 2)
    in
    let topo = Model.Instance.topology instance in
    (* Per-instance constraints (group count vs m, speeds length) can
       only be checked once the instance is known. *)
    let algo =
      match Core.Strategy.check spec ~m with
      | Ok () -> Core.Strategy.build spec ~m
      | Error msg ->
          Printf.eprintf "usched: --algo %s: %s\n"
            (Core.Strategy.to_string spec) msg;
          exit 2
    in
    let rng = Usched_prng.Rng.create ~seed () in
    let realization = Model.Realization.log_uniform_factor instance rng in
    let placement, schedule = Core.Two_phase.run_full algo instance realization in
    let lb = Core.Lower_bounds.best ~m (Model.Realization.actuals realization) in
    let healthy = Usched_desim.Schedule.makespan schedule in
    let with_sink f =
      match trace_path with
      | None -> f None
      | Some path -> Sink.with_file ~path (fun s -> f (Some s))
    in
    with_sink @@ fun sink ->
    let tracing = sink <> None in
    let emit json = match sink with None -> () | Some s -> Sink.emit s json in
    emit
      (Json.Obj
         [
           ("type", Json.String "meta");
           ("tool", Json.String "usched solve");
           ("file", Json.String file);
           ("algo", Json.String algo.Core.Two_phase.name);
           ("algo_spec", Json.String (Core.Strategy.to_string spec));
           ("seed", Json.Int seed);
           ("n", Json.Int n);
           ("m", Json.Int m);
           ("fail_rate", Json.float fail_rate);
           ( "speeds",
             match speeds with
             | None -> Json.Null
             | Some a ->
                 Json.List (Array.to_list (Array.map Json.float a)) );
           ( "speed_band",
             match band with
             | None -> Json.Null
             | Some b -> Json.String (Model.Speed_band.to_string b) );
           ( "topology",
             match topo with
             | None -> Json.Null
             | Some t -> Json.String (Model.Topology.to_string t) );
           ( "topology_zones",
             match topo with
             | None -> Json.Null
             | Some t -> Json.Int (Model.Topology.zones t) );
           ( "replication_cost",
             Json.float
               (Core.Placement.replication_cost placement
                  ~topology:(Model.Instance.topology_or_uniform instance)
                  ~sizes:(Model.Instance.sizes instance)) );
           ("policy", Json.String (Usched_desim.Dispatch.name policy));
           ("stream", Json.Bool stream);
           ( "arrival",
             if stream then
               Json.String (Usched_desim.Arrival.describe arrival)
             else Json.Null );
           ( "speculate",
             match speculate with None -> Json.Null | Some b -> Json.float b );
           ( "recovery",
             if Usched_faults.Recovery.is_none recovery then Json.Null
             else
               Json.Obj
                 [
                   ( "detection_latency",
                     Json.float recovery.Usched_faults.Recovery.detection_latency
                   );
                   ( "rereplication_target",
                     match recovery.Usched_faults.Recovery.rereplication_target
                     with
                     | Usched_faults.Recovery.Fixed r -> Json.Int r
                     | Usched_faults.Recovery.Degree -> Json.String "degree" );
                   (* [Json.float infinity] is [Null]: JSON has no inf. *)
                   ("bandwidth", Json.float recovery.Usched_faults.Recovery.bandwidth);
                   ( "checkpoint_interval",
                     Json.float recovery.Usched_faults.Recovery.checkpoint_interval
                   );
                 ] );
         ]);
    Printf.printf
      "%s on %s: C_max = %.4f (lower bound %.4f, ratio <= %.4f)\n\
       replicas/task max %d, Mem_max %.4f\n"
      algo.Core.Two_phase.name file healthy lb (healthy /. lb)
      (Core.Placement.max_replication placement)
      (Core.Placement.memory_max placement ~sizes:(Model.Instance.sizes instance));
    (match topo with
    | None -> ()
    | Some t ->
        Printf.printf "topology: %d zones, replication transfer cost %.4f\n"
          (Model.Topology.zones t)
          (Core.Placement.replication_cost placement ~topology:t
             ~sizes:(Model.Instance.sizes instance)));
    if gantt then print_string (Usched_desim.Gantt.render schedule);
    print_string (Usched_desim.Timeline.render_stats schedule);
    (match speeds with
    | None -> ()
    | Some sp ->
        let replay =
          Usched_desim.Schedule.makespan
            (Usched_desim.Engine.run ~speeds:sp ~dispatch:policy instance
               realization
               ~placement:(Core.Placement.sets placement)
               ~order:(Model.Instance.lpt_order instance))
        in
        let slb =
          Core.Uniform.lower_bound ~speeds:sp
            (Model.Realization.actuals realization)
        in
        Printf.printf
          "machine speeds [%s]: replay C_max = %.4f (LB at speeds %.4f, \
           ratio <= %.4f)\n"
          (String.concat "; "
             (Array.to_list (Array.map (Printf.sprintf "%g") sp)))
          replay slb (replay /. slb));
    (match target_reliability with
    | None -> ()
    | Some target ->
        let profile = Model.Instance.failure_or_default instance in
        let sv =
          Experiments.Reliability_sweep.monte_carlo_survival
            ~domains:(Usched_parallel.Pool.recommended_domains ())
            ~seed ~profile placement
        in
        let bound = Core.Reliability.survival_bound instance placement in
        let status =
          if bound >= target then "MET (analytic bound)"
          else if sv.Experiments.Reliability_sweep.lo >= target then
            "MET (empirically)"
          else "MISSED"
        in
        Printf.printf
          "survival: P(no stranded task) ~ %.4f (95%%CI [%.4f, %.4f], %d \
           trials), analytic bound %.4f, target %g: %s\n"
          sv.Experiments.Reliability_sweep.point
          sv.Experiments.Reliability_sweep.lo
          sv.Experiments.Reliability_sweep.hi
          sv.Experiments.Reliability_sweep.trials bound target status;
        emit
          (Json.Obj
             [
               ("type", Json.String "summary");
               ("phase", Json.String "survival");
               ("target", Json.float target);
               ("survival_mc", Json.float sv.Experiments.Reliability_sweep.point);
               ("survival_lo", Json.float sv.Experiments.Reliability_sweep.lo);
               ("survival_hi", Json.float sv.Experiments.Reliability_sweep.hi);
               ("trials", Json.Int sv.Experiments.Reliability_sweep.trials);
               ("survival_bound", Json.float bound);
               ("met", Json.Bool (status <> "MISSED"));
             ]));
    (match band with
    | None -> ()
    | Some band ->
        (* Speed robustness of the committed placement: the adversary
           picks the worst in-band revelation of machine speeds, with the
           Monte-Carlo draws folded into its candidate set (so the
           adversarial ratio dominates every sampled one by
           construction); then the same adversarial revelation is
           replayed mid-run through the fault layer — machines start at
           their optimistic speeds and Slowdown events re-predict
           in-flight work. *)
        let actuals = Model.Realization.actuals realization in
        let sets = Core.Placement.sets placement in
        let order = Model.Instance.lpt_order instance in
        let makespan_at sp =
          Usched_desim.Schedule.makespan
            (Usched_desim.Engine.run ~speeds:sp ~dispatch:policy instance
               realization ~placement:sets ~order)
        in
        let ratio_at sp = makespan_at sp /. Core.Uniform.lower_bound ~speeds:sp actuals in
        let mc_draws = 32 in
        let mc_rng = Usched_prng.Rng.create ~seed:(seed + 1) () in
        let draws =
          Array.init mc_draws (fun _ ->
              Model.Speed_band.sample band (Usched_prng.Rng.split mc_rng))
        in
        let adv_speeds, ratio_adv =
          Core.Speed_adversary.worst_case ~run:ratio_at
            ~candidates:(Array.to_list draws)
            ~domains:(Usched_parallel.Pool.recommended_domains ())
            instance placement band
        in
        let makespan_adv = makespan_at adv_speeds in
        let mc_ratios = Array.map ratio_at draws in
        let mc_mean =
          Array.fold_left ( +. ) 0.0 mc_ratios /. float_of_int mc_draws
        in
        let mc_max = Array.fold_left Float.max neg_infinity mc_ratios in
        let his = Model.Speed_band.his band in
        let reveal_at = 0.5 *. Core.Uniform.lower_bound ~speeds:his actuals in
        let factors = Array.mapi (fun i s -> s /. his.(i)) adv_speeds in
        let reveal =
          Usched_desim.Engine.run_faulty ?speculation:speculate ~speeds:his
            ~dispatch:policy ~recovery instance realization
            ~faults:(Usched_faults.Trace.revelation ~m ~at:reveal_at factors)
            ~placement:sets ~order
        in
        Printf.printf
          "speed robustness over band %s:\n\
          \  adversarial revelation [%s]: C_max = %.4f, ratio vs \
           revealed-speed LB = %.4f\n\
          \  Monte-Carlo (%d draws): mean ratio %.4f, worst %.4f (dominated \
           by the adversary)\n\
          \  mid-run revelation at t=%.4f (fault-layer slowdowns): C_max = \
           %.4f\n"
          (Model.Speed_band.to_string band)
          (String.concat "; "
             (Array.to_list (Array.map (Printf.sprintf "%g") adv_speeds)))
          makespan_adv ratio_adv mc_draws mc_mean mc_max reveal_at
          reveal.Usched_desim.Engine.makespan;
        emit
          (Json.Obj
             [
               ("type", Json.String "summary");
               ("phase", Json.String "speed_robustness");
               ("band", Json.String (Model.Speed_band.to_string band));
               ( "adv_speeds",
                 Json.List (Array.to_list (Array.map Json.float adv_speeds)) );
               ("makespan_adv", Json.float makespan_adv);
               ("ratio_adv", Json.float ratio_adv);
               ("mc_draws", Json.Int mc_draws);
               ("mc_ratio_mean", Json.float mc_mean);
               ("mc_ratio_max", Json.float mc_max);
               ("reveal_at", Json.float reveal_at);
               ("makespan_reveal", Json.float reveal.Usched_desim.Engine.makespan);
             ]));
    if policy <> Usched_desim.Dispatch.default then begin
      (* Same placement, same LPT order, only the dispatch rule differs —
         the ratio isolates the policy from the algorithm's own ordering. *)
      let replay dispatch =
        Usched_desim.Schedule.makespan
          (Usched_desim.Engine.run ?speeds ~dispatch instance realization
             ~placement:(Core.Placement.sets placement)
             ~order:(Model.Instance.lpt_order instance))
      in
      let pm = replay policy in
      Printf.printf "dispatch policy %s: replay C_max = %.4f (%.4fx default)\n"
        (Usched_desim.Dispatch.name policy)
        pm (pm /. replay Usched_desim.Dispatch.default)
    end;
    if tracing then begin
      (* Replay the placement through the engine under LPT order — the
         same replay the faulty path uses — with events and metrics on. *)
      emit
        (Json.Obj
           [ ("type", Json.String "phase"); ("name", Json.String "healthy") ]);
      let metrics = Metrics.create () in
      let replay, events =
        Usched_desim.Engine.run_traced ?speeds ~dispatch:policy ~metrics
          instance realization
          ~placement:(Core.Placement.sets placement)
          ~order:(Model.Instance.lpt_order instance)
      in
      List.iter (fun e -> emit (Usched_desim.Engine.event_json e)) events;
      emit
        (Json.Obj
           [
             ("type", Json.String "metrics");
             ("phase", Json.String "healthy");
             ("metrics", Metrics.to_json (Metrics.snapshot metrics));
           ]);
      emit
        (Json.Obj
           [
             ("type", Json.String "summary");
             ("phase", Json.String "healthy");
             ("makespan", Json.float (Usched_desim.Schedule.makespan replay));
             ("lower_bound", Json.float lb);
           ])
    end;
    let rec_active = Usched_faults.Recovery.is_active recovery in
    if stream then begin
      (* Open-system replay: same placement, FCFS (= task id) order,
         tasks revealed by the arrival process. Crash times are drawn
         over the whole busy period, not just the healthy makespan. *)
      let order = Array.init n (fun j -> j) in
      let arrivals =
        match Usched_desim.Arrival.generate arrival rng ~count:n with
        | a -> a
        | exception Invalid_argument msg ->
            Printf.eprintf "usched: --arrival: %s\n" msg;
            exit 2
      in
      let max_arrival = Array.fold_left Float.max 0.0 arrivals in
      let faults =
        if fail_rate > 0.0 then
          Usched_faults.Trace.random_crashes rng ~m ~p:fail_rate
            ~horizon:(max_arrival +. healthy)
        else Usched_faults.Trace.empty ~m
      in
      if tracing then
        emit
          (Json.Obj
             [ ("type", Json.String "phase"); ("name", Json.String "stream") ]);
      let metrics = if tracing then Metrics.create () else Metrics.disabled in
      let so =
        if tracing then begin
          let so, events =
            Usched_desim.Engine.run_stream_traced ?speeds
              ?speculation:speculate ~dispatch:policy ~recovery ~metrics
              ~faults instance realization
              ~arrivals
              ~placement:(Core.Placement.sets placement)
              ~order
          in
          List.iter (fun e -> emit (Usched_desim.Engine.event_json e)) events;
          emit
            (Json.Obj
               [
                 ("type", Json.String "metrics");
                 ("phase", Json.String "stream");
                 ("metrics", Metrics.to_json (Metrics.snapshot metrics));
               ]);
          so
        end
        else
          Usched_desim.Engine.run_stream ?speeds ?speculation:speculate
            ~dispatch:policy ~recovery ~metrics ~faults instance realization
            ~arrivals
            ~placement:(Core.Placement.sets placement)
            ~order
      in
      let outcome = so.Usched_desim.Engine.outcome in
      let lat = so.Usched_desim.Engine.latencies in
      let q p =
        if Array.length lat = 0 then Float.nan
        else Usched_stats.Quantile.quantile lat ~q:p
      in
      let mean =
        if Array.length lat = 0 then Float.nan
        else
          Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat)
      in
      let drain = outcome.Usched_desim.Engine.makespan in
      let throughput =
        if drain > 0.0 then
          float_of_int outcome.Usched_desim.Engine.completed /. drain
        else 0.0
      in
      let utilization =
        (* Machine-time actually consumed — results plus abandoned
           copies — over the machine-time available until drain. *)
        if drain > 0.0 then begin
          let actuals = Model.Realization.actuals realization in
          let work = ref outcome.Usched_desim.Engine.wasted in
          Array.iteri
            (fun j fate ->
              match fate with
              | Usched_desim.Engine.Finished _ -> work := !work +. actuals.(j)
              | Usched_desim.Engine.Stranded -> ())
            outcome.Usched_desim.Engine.fates;
          !work /. (float_of_int m *. drain)
        end
        else 0.0
      in
      Printf.printf
        "\nstream replay (%s, offered load %.3f%s%s): completed %d/%d%s\n\
         drain time %.4f, latency p50 %.4f p95 %.4f p99 %.4f (mean %.4f)\n\
         throughput %.4f tasks/unit, utilization %.4f, wasted work %.4f\n"
        (Usched_desim.Arrival.describe arrival)
        (Usched_desim.Arrival.mean_rate arrival
        /. (float_of_int m
           /. (Array.fold_left ( +. ) 0.0 (Model.Instance.ests instance)
              /. float_of_int n)))
        (if fail_rate > 0.0 then Printf.sprintf ", fail-rate %g" fail_rate
         else "")
        (match speculate with
        | None -> ""
        | Some b -> Printf.sprintf ", speculation beta=%g" b)
        outcome.Usched_desim.Engine.completed n
        (match outcome.Usched_desim.Engine.stranded with
        | [] -> ""
        | ids ->
            Printf.sprintf " (stranded: %s)"
              (String.concat "; " (List.map string_of_int ids)))
        drain (q 0.5) (q 0.95) (q 0.99) mean throughput utilization
        outcome.Usched_desim.Engine.wasted;
      if gantt && Array.length lat > 0 then begin
        print_string "latency distribution:\n";
        Format.printf "%a" Usched_stats.Histogram.pp
          (Usched_stats.Histogram.of_data ~bins:10 lat)
      end;
      emit
        (Json.Obj
           [
             ("type", Json.String "summary");
             ("phase", Json.String "stream");
             ("arrival", Json.String (Usched_desim.Arrival.describe arrival));
             ("completed", Json.Int outcome.Usched_desim.Engine.completed);
             ( "stranded",
               Json.Int (List.length outcome.Usched_desim.Engine.stranded) );
             ("makespan", Json.float drain);
             ("p50", Json.float (q 0.5));
             ("p95", Json.float (q 0.95));
             ("p99", Json.float (q 0.99));
             ("mean_latency", Json.float mean);
             ("throughput", Json.float throughput);
             ("utilization", Json.float utilization);
             ("wasted", Json.float outcome.Usched_desim.Engine.wasted);
           ])
    end
    else if fail_rate > 0.0 || speculate <> None || rec_active then begin
      let faults =
        Usched_faults.Trace.random_crashes rng ~m ~p:fail_rate ~horizon:healthy
      in
      (if tracing then
         emit
           (Json.Obj
              [ ("type", Json.String "phase"); ("name", Json.String "faulty") ]));
      (* Live metrics whenever recovery is on: the summary below reads
         transfer/resume counters out of the outcome snapshot. *)
      let metrics =
        if tracing || rec_active then Metrics.create () else Metrics.disabled
      in
      let outcome, events =
        Usched_desim.Engine.run_faulty_traced ?speeds ?speculation:speculate
          ~dispatch:policy ~recovery ~metrics instance realization ~faults
          ~placement:(Core.Placement.sets placement)
          ~order:(Model.Instance.lpt_order instance)
      in
      if tracing then begin
        List.iter (fun e -> emit (Usched_desim.Engine.event_json e)) events;
        emit (Usched_desim.Engine.outcome_json outcome)
      end;
      Printf.printf
        "\nfaulty replay (fail-rate %g%s): crashed machines [%s]\n\
         completed %d/%d tasks%s, effective C_max = %.4f (%.2fx healthy), \
         wasted work %.4f\n"
        fail_rate
        (match speculate with
        | None -> ""
        | Some b -> Printf.sprintf ", speculation beta=%g" b)
        (String.concat "; "
           (List.map string_of_int (Usched_faults.Trace.crashed faults)))
        outcome.Usched_desim.Engine.completed
        (Model.Instance.n instance)
        (match outcome.Usched_desim.Engine.stranded with
        | [] -> ""
        | ids ->
            Printf.sprintf " (stranded: %s)"
              (String.concat "; " (List.map string_of_int ids)))
        outcome.Usched_desim.Engine.makespan
        (outcome.Usched_desim.Engine.makespan /. healthy)
        outcome.Usched_desim.Engine.wasted;
      if rec_active then begin
        let counter name =
          match Metrics.find outcome.Usched_desim.Engine.metrics name with
          | Some (Metrics.Counter c) -> c
          | _ -> 0
        in
        Printf.printf
          "recovery %s: %d re-replication(s), %d checkpoint resume(s)\n"
          (Format.asprintf "%a" Usched_faults.Recovery.pp recovery)
          (counter "engine.rereplications")
          (counter "engine.checkpoint_resumes")
      end;
      if gantt then
        match Usched_desim.Engine.outcome_schedule ~m outcome with
        | Some faulty -> print_string (Usched_desim.Gantt.render faulty)
        | None -> ()
    end;
    match trace_path with
    | Some path -> Printf.printf "[trace] wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run a two-phase algorithm on an instance file.")
    Term.(
      const run $ file $ algo $ seed $ gantt $ fail_rate $ speculate $ recover
      $ detect_latency $ bandwidth $ checkpoint $ target_reliability $ speeds
      $ speed_band $ topology $ policy $ stream $ arrival $ trace)

let strategies_cmd =
  let run () =
    print_endline Core.Strategy.grammar;
    print_newline ();
    print_endline "default scenario-selection portfolio at m=6:";
    List.iter
      (fun spec ->
        Printf.printf "  %-16s %s\n"
          (Core.Strategy.to_string spec)
          (Core.Strategy.name spec))
      (Core.Strategy.default_portfolio ~m:6)
  in
  Cmd.v
    (Cmd.info "strategies"
       ~doc:"List the placement-strategy catalog (--algo grammar).")
    Term.(const run $ const ())

let minimax_cmd =
  let m = Arg.(value & opt int 3 & info [ "m"; "machines" ] ~doc:"Machines.") in
  let n = Arg.(value & opt int 9 & info [ "n"; "tasks" ] ~doc:"Identical tasks.") in
  let alpha = Arg.(value & opt float 2.0 & info [ "alpha" ] ~doc:"Uncertainty factor.") in
  let run m n alpha =
    let r = Core.Minimax.identical_minimax ~m ~n ~alpha in
    Printf.printf
      "exact minimax on %d identical tasks, m=%d, alpha=%g:\n\
      \  value %.6f (limit bound %.6f, Th2 guarantee %.6f)\n\
      \  optimal partition: %s\n"
      n m alpha r.Core.Minimax.value
      (Core.Guarantees.no_replication_lower_bound ~m ~alpha)
      (Core.Guarantees.lpt_no_choice ~m ~alpha)
      (String.concat "+"
         (Array.to_list (Array.map string_of_int r.Core.Minimax.partition)))
  in
  Cmd.v
    (Cmd.info "minimax"
       ~doc:"Exact minimax value of the unreplicated game on identical tasks.")
    Term.(const run $ m $ n $ alpha)

let main =
  let doc = "reproduction of 'Replicated Data Placement for Uncertain Scheduling'" in
  Cmd.group
    (Cmd.info "usched" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; gen_cmd; solve_cmd; strategies_cmd; minimax_cmd ]

let () = exit (Cmd.eval main)
