(* Tests for the uniform (related) machines extension. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Bitset = Usched_model.Bitset
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let instance_of ?(m = 2) ?(alpha = 1.0) ests =
  Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha) ests

(* --- Engine with speeds --- *)

let engine_scales_durations () =
  let instance = instance_of [| 4.0; 4.0 |] in
  let realization = Realization.exact instance in
  let placement = Array.init 2 (fun _ -> Bitset.full 2) in
  let s =
    Engine.run ~speeds:[| 2.0; 0.5 |] instance realization ~placement
      ~order:[| 0; 1 |]
  in
  (* Machine 0 at speed 2 runs its task in 2; machine 1 at 0.5 in 8. *)
  let e0 = Schedule.entry s 0 and e1 = Schedule.entry s 1 in
  close "fast machine" 2.0 (e0.Schedule.finish -. e0.Schedule.start);
  close "slow machine" 8.0 (e1.Schedule.finish -. e1.Schedule.start)

let engine_fast_machine_serves_more () =
  (* 5 unit tasks, speeds (4, 1): the fast machine should take most. *)
  let instance = instance_of (Array.make 5 1.0) in
  let realization = Realization.exact instance in
  let placement = Array.init 5 (fun _ -> Bitset.full 2) in
  let s =
    Engine.run ~speeds:[| 4.0; 1.0 |] instance realization ~placement
      ~order:[| 0; 1; 2; 3; 4 |]
  in
  let on_fast = List.length (Schedule.machine_tasks s 0) in
  checkb "fast machine runs the majority" true (on_fast >= 4)

let engine_rejects_bad_speeds () =
  let instance = instance_of [| 1.0 |] in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 2 |] in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Engine.run: speeds length differs from machine count")
    (fun () ->
      ignore
        (Engine.run ~speeds:[| 1.0 |] instance realization ~placement
           ~order:[| 0 |]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Engine.run: speeds must be > 0") (fun () ->
      ignore
        (Engine.run ~speeds:[| 1.0; 0.0 |] instance realization ~placement
           ~order:[| 0 |]))

let validate_with_speeds () =
  let instance = instance_of [| 4.0 |] in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 2 |] in
  let speeds = [| 2.0; 1.0 |] in
  let s = Engine.run ~speeds instance realization ~placement ~order:[| 0 |] in
  Alcotest.(check int) "valid under speeds" 0
    (List.length (Schedule.validate ~speeds instance realization s));
  (* The same schedule read with unit speeds has a wrong duration. *)
  checkb "invalid without speeds" true
    (Schedule.validate instance realization s <> [])

(* --- ECT-LPT --- *)

let ect_lpt_prefers_fast_machines () =
  (* One big task: must go to the fastest machine. *)
  let instance = instance_of ~m:3 [| 6.0 |] in
  let r = Core.Uniform.lpt_assignment ~speeds:[| 1.0; 3.0; 2.0 |] instance in
  Alcotest.(check int) "fastest machine" 1 r.Core.Assign.assignment.(0)

let ect_lpt_balances_finish_times () =
  (* Speeds (2,1), tasks (4,4,4): first two land on the fast machine
     (finish 2, then tie at 4 broken toward the lower id), the third on
     the slow one; both machines finish at 4. *)
  let instance = instance_of [| 4.0; 4.0; 4.0 |] in
  let r = Core.Uniform.lpt_assignment ~speeds:[| 2.0; 1.0 |] instance in
  Alcotest.(check (array int)) "assignment" [| 0; 0; 1 |] r.Core.Assign.assignment;
  close "fast machine finish" 4.0 r.Core.Assign.loads.(0);
  close "slow machine finish" 4.0 r.Core.Assign.loads.(1)

let ect_lpt_equal_speeds_is_lpt () =
  let instance = instance_of ~m:3 [| 9.0; 7.0; 5.0; 4.0; 3.0; 1.0 |] in
  let uniform = Core.Uniform.lpt_assignment ~speeds:(Array.make 3 1.0) instance in
  let classic = Core.Assign.lpt ~m:3 ~weights:(Instance.ests instance) in
  Alcotest.(check (array int)) "same assignment" classic.Core.Assign.assignment
    uniform.Core.Assign.assignment

(* --- Lower bound --- *)

let lower_bound_cases () =
  (* Largest task on the fastest machine: 8/4 = 2 dominates total bound
     12/7. *)
  close "largest-on-fastest" 2.0
    (Core.Uniform.lower_bound ~speeds:[| 4.0; 2.0; 1.0 |] [| 8.0; 2.0; 2.0 |]);
  (* Total work over total speed dominates. *)
  close "total" 4.0
    (Core.Uniform.lower_bound ~speeds:[| 1.0; 1.0 |] [| 2.0; 2.0; 2.0; 2.0 |]);
  (* Unit speeds degenerate to the identical-machines average/max. *)
  close "identical machines" 3.0
    (Core.Uniform.lower_bound ~speeds:[| 1.0; 1.0 |] [| 3.0; 2.0; 1.0 |])

let lower_bound_sound_vs_brute_force () =
  let rng = Rng.create ~seed:11 () in
  for _ = 1 to 50 do
    let m = 2 + Rng.int rng 2 in
    let n = 1 + Rng.int rng 6 in
    let speeds = Array.init m (fun _ -> 0.5 +. (2.0 *. Rng.float rng)) in
    let p = Array.init n (fun _ -> 0.2 +. (5.0 *. Rng.float rng)) in
    (* Exact uniform optimum by enumerating all m^n assignments. *)
    let best = ref infinity in
    let loads = Array.make m 0.0 in
    let rec go t =
      if t = n then begin
        let mk = ref 0.0 in
        for i = 0 to m - 1 do
          mk := Float.max !mk (loads.(i) /. speeds.(i))
        done;
        if !mk < !best then best := !mk
      end
      else
        for i = 0 to m - 1 do
          loads.(i) <- loads.(i) +. p.(t);
          go (t + 1);
          loads.(i) <- loads.(i) -. p.(t)
        done
    in
    go 0;
    checkb "LB <= OPT" true (Core.Uniform.lower_bound ~speeds p <= !best +. 1e-9)
  done

(* --- Two-phase algorithms --- *)

let speeds4 = [| 2.0; 1.0; 1.0; 0.5 |]

let scenario seed =
  let instance =
    instance_of ~m:4 ~alpha:1.8
      [| 9.0; 8.0; 6.0; 5.0; 4.0; 3.0; 2.0; 2.0; 1.0; 1.0 |]
  in
  let rng = Rng.create ~seed () in
  (instance, Realization.log_uniform_factor instance rng)

let uniform_schedules_valid () =
  let instance, realization = scenario 3 in
  List.iter
    (fun algo ->
      let placement, schedule =
        Core.Two_phase.run_full algo instance realization
      in
      checkb
        (algo.Core.Two_phase.name ^ " valid")
        true
        (Schedule.validate
           ~placement:(Core.Placement.sets placement)
           ~speeds:speeds4 instance realization schedule
        = []))
    [
      Core.Uniform.lpt_no_choice ~speeds:speeds4;
      Core.Uniform.lpt_no_restriction ~speeds:speeds4;
      Core.Uniform.ls_group ~speeds:speeds4 ~k:2;
    ]

let uniform_ratios_reasonable () =
  (* Empirical sanity: every strategy stays within 3x of the lower
     bound on this family. *)
  let instance, realization = scenario 4 in
  let lb = Core.Uniform.lower_bound ~speeds:speeds4 (Realization.actuals realization) in
  List.iter
    (fun algo ->
      let makespan = Core.Two_phase.makespan algo instance realization in
      checkb (algo.Core.Two_phase.name ^ " sane") true
        (makespan >= lb -. 1e-9 && makespan <= (3.0 *. lb) +. 1e-9))
    [
      Core.Uniform.lpt_no_choice ~speeds:speeds4;
      Core.Uniform.lpt_no_restriction ~speeds:speeds4;
      Core.Uniform.ls_group ~speeds:speeds4 ~k:2;
    ]

let unit_speeds_match_identical_pipeline () =
  let instance, realization = scenario 5 in
  let ones = Array.make 4 1.0 in
  close "no-choice matches"
    (Core.Two_phase.makespan Core.No_replication.lpt_no_choice instance
       realization)
    (Core.Two_phase.makespan (Core.Uniform.lpt_no_choice ~speeds:ones) instance
       realization);
  close "no-restriction matches"
    (Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction instance
       realization)
    (Core.Two_phase.makespan
       (Core.Uniform.lpt_no_restriction ~speeds:ones)
       instance realization)

let check_speeds_validation () =
  Alcotest.check_raises "length"
    (Invalid_argument "Uniform: speeds length differs from machine count")
    (fun () -> ignore (Core.Uniform.check_speeds ~m:3 [| 1.0 |]));
  Alcotest.check_raises "domain"
    (Invalid_argument "Uniform: speeds must be finite and > 0") (fun () ->
      ignore (Core.Uniform.check_speeds ~m:1 [| 0.0 |]))

let () =
  Alcotest.run "uniform"
    [
      ( "engine speeds",
        [
          Alcotest.test_case "durations scale" `Quick engine_scales_durations;
          Alcotest.test_case "fast machine serves more" `Quick
            engine_fast_machine_serves_more;
          Alcotest.test_case "speed validation" `Quick engine_rejects_bad_speeds;
          Alcotest.test_case "schedule validation" `Quick validate_with_speeds;
        ] );
      ( "ect-lpt",
        [
          Alcotest.test_case "prefers fast" `Quick ect_lpt_prefers_fast_machines;
          Alcotest.test_case "balances finish times" `Quick
            ect_lpt_balances_finish_times;
          Alcotest.test_case "unit speeds = LPT" `Quick ect_lpt_equal_speeds_is_lpt;
        ] );
      ( "lower bound",
        [
          Alcotest.test_case "cases" `Quick lower_bound_cases;
          Alcotest.test_case "sound vs brute force" `Quick
            lower_bound_sound_vs_brute_force;
        ] );
      ( "two-phase",
        [
          Alcotest.test_case "valid schedules" `Quick uniform_schedules_valid;
          Alcotest.test_case "sane ratios" `Quick uniform_ratios_reasonable;
          Alcotest.test_case "unit speeds degenerate" `Quick
            unit_speeds_match_identical_pipeline;
          Alcotest.test_case "speed checks" `Quick check_speeds_validation;
        ] );
    ]
