(* Speed bands, the adversarial speed revelator, and the speed-robust
   placement family: constructor validation, wire-format round trips,
   in-band sampling, adversary contracts, and THE golden pin — a
   degenerate band (lo = hi = 1) must reduce bit-for-bit to the existing
   engine across dispatch policies and fault traces. *)

module Speed_band = Usched_model.Speed_band
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Engine = Usched_desim.Engine
module Dispatch = Usched_desim.Dispatch
module Schedule = Usched_desim.Schedule
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Core = Usched_core
module Rng = Usched_prng.Rng
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json

let checkb = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))

(* ------------------------- constructors ---------------------------- *)

let rejects_bad_bands () =
  List.iter
    (fun (name, bands) ->
      checkb name true
        (try
           ignore (Speed_band.make bands);
           false
         with Invalid_argument _ -> true))
    [
      ("empty", [||]);
      ("nan lo", [| (Float.nan, 1.0) |]);
      ("nan hi", [| (1.0, Float.nan) |]);
      ("zero lo", [| (0.0, 1.0) |]);
      ("negative lo", [| (-1.0, 1.0) |]);
      ("infinite hi", [| (1.0, Float.infinity) |]);
      ("inverted", [| (2.0, 1.0) |]);
    ];
  checkb "widen needs spread >= 1" true
    (try
       ignore (Speed_band.widen (Speed_band.nominal ~m:2) ~spread:0.5);
       false
     with Invalid_argument _ -> true)

let tiered_matches_hetero_array () =
  let t = Speed_band.tiered ~m:8 () in
  checkb "degenerate" true (Speed_band.is_degenerate t);
  Alcotest.(check (array (float 0.0)))
    "the hetero experiment's historical speeds"
    [| 2.0; 2.0; 1.0; 1.0; 1.0; 1.0; 0.5; 0.5 |]
    (Speed_band.los t);
  let w = Speed_band.widen t ~spread:2.0 in
  close "lo divided" 1.0 (Speed_band.lo w 0);
  close "hi multiplied" 4.0 (Speed_band.hi w 0);
  checkb "widened is uncertain" true (not (Speed_band.is_degenerate w))

let of_spec_grammar () =
  (match Speed_band.of_spec ~m:3 "uniform:0.5:2" with
  | Ok b ->
      checkb "uniform band" true
        (Speed_band.equal b (Speed_band.uniform ~m:3 ~lo:0.5 ~hi:2.0))
  | Error e -> Alcotest.failf "uniform spec rejected: %s" e);
  (match Speed_band.of_spec ~m:3 "1,0.5:2,3" with
  | Ok b ->
      checkb "list band" true
        (Speed_band.equal b
           (Speed_band.make [| (1.0, 1.0); (0.5, 2.0); (3.0, 3.0) |]))
  | Error e -> Alcotest.failf "list spec rejected: %s" e);
  List.iter
    (fun spec ->
      match Speed_band.of_spec ~m:3 spec with
      | Ok _ -> Alcotest.failf "accepted %S" spec
      | Error msg ->
          checkb
            (Printf.sprintf "%S error carries the grammar" spec)
            true
            (let sub = "uniform:LO:HI" in
             let rec contains i =
               i + String.length sub <= String.length msg
               && (String.sub msg i (String.length sub) = sub
                  || contains (i + 1))
             in
             contains 0))
    [ "bogus"; "uniform:2:0.5"; "1,2"; "1,2,3,4"; "0:1,1,1"; "a,b,c" ]

let sample_degenerate_is_exact () =
  let speeds = [| 2.0; 2.0; 1.0; 0.5 |] in
  let band = Speed_band.degenerate speeds in
  let rng = Rng.create ~seed:7 () in
  for _ = 1 to 20 do
    Alcotest.(check (array (float 0.0)))
      "degenerate sample is the bound itself" speeds
      (Speed_band.sample band rng)
  done

let sample_draws_pair_across_bands () =
  (* One unconditional variate per machine, so two bands of the same m
     consume the stream identically — a degenerate machine in one band
     does not shift later machines' draws. *)
  let b1 = Speed_band.make [| (1.0, 1.0); (0.5, 2.0) |] in
  let b2 = Speed_band.make [| (0.25, 4.0); (0.5, 2.0) |] in
  let s1 = Speed_band.sample b1 (Rng.create ~seed:5 ()) in
  let s2 = Speed_band.sample b2 (Rng.create ~seed:5 ()) in
  close "machine 1 draw paired" s1.(1) s2.(1)

(* --------------------------- properties ---------------------------- *)

let band_gen =
  QCheck.Gen.(
    let* m = int_range 1 8 in
    let* bounds =
      array_size (return m)
        (let* lo = float_range 0.01 5.0 in
         let* spread = float_range 1.0 3.0 in
         let* degenerate = bool in
         return (lo, if degenerate then lo else lo *. spread))
    in
    return (Speed_band.make bounds))

let band_arb =
  QCheck.make ~print:(fun b -> Speed_band.to_string b) band_gen

let prop_round_trip =
  QCheck.Test.make ~count:300 ~name:"speed bands round trip bit-exactly"
    band_arb (fun band ->
      match Speed_band.of_string (Speed_band.to_string band) with
      | Ok back -> Speed_band.equal back band
      | Error _ -> false)

let prop_sample_in_band =
  QCheck.Test.make ~count:300 ~name:"revealed speeds never leave their bands"
    QCheck.(pair band_arb small_nat)
    (fun (band, seed) ->
      let rng = Rng.create ~seed () in
      let speeds = Speed_band.sample band rng in
      Speed_band.contains band speeds)

let prop_degenerate_lower_bound_reduces =
  (* On a degenerate band the speed-adversary's bound IS the existing
     uniform-machines lower bound at the known speeds. *)
  QCheck.Test.make ~count:200
    ~name:"degenerate-band lower bound = uniform lower bound"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 12) (float_range 0.1 10.0))
        (list_of_size Gen.(int_range 1 5) (float_range 0.5 4.0)))
    (fun (actuals, speeds) ->
      let actuals = Array.of_list actuals
      and speeds = Array.of_list speeds in
      let band = Speed_band.degenerate speeds in
      Core.Speed_adversary.lower_bound band actuals
      = Core.Uniform.lower_bound ~speeds actuals)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, seed))

let scenario_print (n, m, k, seed) =
  Printf.sprintf "n=%d m=%d k=%d seed=%d" n m k seed

let scenario = QCheck.make ~print:scenario_print scenario_gen

let build_instance (n, m, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
  (instance, Realization.uniform_factor instance rng, rng)

let prop_adversary_dominates_mc =
  (* Folding the Monte-Carlo draws into the candidate set makes the
     adversarial makespan an upper bound on every sampled one — the
     contract the experiment and the CLI summary both print. *)
  QCheck.Test.make ~count:150
    ~name:"adversarial makespan dominates every Monte-Carlo draw" scenario
    (fun (n, m, k, seed) ->
      let instance, realization, rng = build_instance (n, m, seed) in
      let band = Speed_band.uniform ~m ~lo:0.5 ~hi:2.0 in
      let instance = Instance.with_speed_band instance (Some band) in
      let placement = Core.Speed_robust.placement ~k instance in
      let sets = Core.Placement.sets placement in
      let order = Instance.lpt_order instance in
      let makespan speeds =
        Schedule.makespan
          (Engine.run ~speeds instance realization ~placement:sets ~order)
      in
      let draws =
        Array.init 10 (fun _ -> Speed_band.sample band (Rng.split rng))
      in
      let _, adv =
        Core.Speed_adversary.worst_case ~run:makespan
          ~candidates:(Array.to_list draws) instance placement band
      in
      Array.for_all (fun d -> makespan d <= adv) draws)

let prop_one_replica_per_class =
  QCheck.Test.make ~count:200
    ~name:"speed-robust placement holds one replica per speed class" scenario
    (fun (n, m, k, seed) ->
      let instance, _, _ = build_instance (n, m, seed) in
      let band =
        Speed_band.make
          (Array.init m (fun i -> (1.0 /. float_of_int (i + 1), 2.0)))
      in
      let instance = Instance.with_speed_band instance (Some band) in
      let classes = Core.Speed_robust.classes ~k instance in
      let placement = Core.Speed_robust.placement ~k instance in
      (* The classes partition the machines... *)
      Array.length classes = k
      && Array.fold_left (fun acc c -> acc + Array.length c) 0 classes = m
      && (* ...and every task holds exactly one replica in each. *)
      Array.for_all
        (fun j ->
          Core.Placement.replication placement j = k
          && Array.for_all
               (fun group ->
                 Array.exists
                   (fun i ->
                     Core.Placement.allowed placement ~task:j ~machine:i)
                   group)
               classes)
        (Array.init n (fun j -> j)))

(* ----------------------- THE golden pin ---------------------------- *)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

let outcomes_identical (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.completed = b.Engine.completed
  && a.Engine.stranded = b.Engine.stranded
  && a.Engine.makespan = b.Engine.makespan
  && a.Engine.wasted = b.Engine.wasted
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Engine.Stranded, Engine.Stranded -> true
         | Engine.Finished e, Engine.Finished f -> entries_equal e f
         | _ -> false)
       a.Engine.fates b.Engine.fates
  && Json.to_string (Metrics.to_json a.Engine.metrics)
     = Json.to_string (Metrics.to_json b.Engine.metrics)

let golden_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 0.5 in
    let* seed = int_bound 1_000_000 in
    let* policy = int_bound (List.length Dispatch.builtin - 1) in
    return (n, m, k, p, seed, policy))

let golden_print (n, m, k, p, seed, policy) =
  Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d policy=%s" n m k p seed
    (Dispatch.name (List.nth Dispatch.builtin policy))

let prop_degenerate_band_golden =
  (* lo = hi = 1 on every machine: sampling the band yields exactly the
     default speeds and the revelation trace is empty, so the composed
     speed-uncertain path must replay the plain faulty engine
     bit-for-bit — fates, makespan, wasted work, and metrics — under
     every dispatch policy and a full crash/outage/slowdown trace. *)
  QCheck.Test.make ~count:320
    ~name:"degenerate band replays the plain engine bit-for-bit"
    (QCheck.make ~print:golden_print golden_gen)
    (fun (n, m, k, p, seed, policy) ->
      let dispatch = List.nth Dispatch.builtin policy in
      let rng = Rng.create ~seed () in
      let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
      let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
      let realization = Realization.uniform_factor instance rng in
      let placement =
        Array.init n (fun j ->
            Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
      in
      let order = Instance.lpt_order instance in
      let horizon = 2.0 *. Realization.total realization in
      let faults =
        Trace.merge
          (Trace.random_crashes rng ~m ~p ~horizon)
          (Trace.merge
             (Trace.random_outages rng ~m ~p ~horizon ~duration:(0.5, 5.0))
             (Trace.random_slowdowns rng ~m ~p ~horizon ~factor:(0.2, 0.9)))
      in
      let band = Speed_band.nominal ~m in
      let speeds = Speed_band.sample band (Rng.split rng) in
      let revelation =
        Trace.revelation ~m ~at:(0.5 *. horizon) speeds
      in
      let banded =
        Engine.run_faulty ~speeds ~dispatch instance realization
          ~faults:(Trace.merge faults revelation) ~placement ~order
      in
      let plain =
        Engine.run_faulty ~dispatch instance realization ~faults ~placement
          ~order
      in
      outcomes_identical banded plain)

(* ------------------------ adversary units -------------------------- *)

let exhaustive_finds_the_corner () =
  (* Two machines, one task pinned to machine 0: the worst corner is
     machine 0 slow, and exhaustive search must find exactly it. *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let band = Speed_band.uniform ~m:2 ~lo:0.5 ~hi:2.0 in
  let placement = [| Bitset.singleton 2 0 |] in
  let run speeds =
    Schedule.makespan
      (Engine.run ~speeds instance realization ~placement ~order:[| 0 |])
  in
  let speeds, worst = Core.Speed_adversary.exhaustive ~run band in
  close "machine 0 slowed" 0.5 speeds.(0);
  close "worst makespan" 8.0 worst;
  checkb "too many machines rejected" true
    (try
       ignore
         (Core.Speed_adversary.exhaustive ~run
            (Speed_band.uniform ~m:17 ~lo:0.5 ~hi:2.0));
       false
     with Invalid_argument _ -> true)

let worst_case_rejects_out_of_band_candidates () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 1.0 |]
  in
  let band = Speed_band.uniform ~m:2 ~lo:0.5 ~hi:2.0 in
  let instance' = Instance.with_speed_band instance (Some band) in
  let placement = Core.Speed_robust.placement ~k:1 instance' in
  checkb "candidate outside the band" true
    (try
       ignore
         (Core.Speed_adversary.worst_case
            ~candidates:[ [| 3.0; 1.0 |] ]
            ~run:(fun _ -> 1.0)
            instance' placement band);
       false
     with Invalid_argument _ -> true)

let critical_load_counts_shares () =
  (* Two tasks: t0 (est 4) replicated on both machines, t1 (est 2)
     pinned on machine 0. Machine 0 carries 4/2 + 2, machine 1 4/2. *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0; 2.0 |]
  in
  let placement =
    Core.Placement.of_sets ~m:2 [| Bitset.full 2; Bitset.singleton 2 0 |]
  in
  let load = Core.Speed_adversary.critical_load instance placement in
  close "machine 0" 4.0 load.(0);
  close "machine 1" 2.0 load.(1)

let () =
  Alcotest.run "speed_band"
    [
      ( "bands",
        [
          Alcotest.test_case "constructor rejections" `Quick rejects_bad_bands;
          Alcotest.test_case "tiered matches hetero" `Quick
            tiered_matches_hetero_array;
          Alcotest.test_case "of_spec grammar" `Quick of_spec_grammar;
          Alcotest.test_case "degenerate sampling" `Quick
            sample_degenerate_is_exact;
          Alcotest.test_case "paired draws" `Quick sample_draws_pair_across_bands;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "exhaustive corner" `Quick
            exhaustive_finds_the_corner;
          Alcotest.test_case "out-of-band candidates" `Quick
            worst_case_rejects_out_of_band_candidates;
          Alcotest.test_case "critical load" `Quick critical_load_counts_shares;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_round_trip;
            prop_sample_in_band;
            prop_degenerate_lower_bound_reduces;
            prop_adversary_dominates_mc;
            prop_one_replica_per_class;
          ] );
      ( "golden",
        List.map QCheck_alcotest.to_alcotest [ prop_degenerate_band_golden ] );
    ]
