(* Tests for the per-task replication budget policy. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance ?(m = 4) () =
  Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0)
    [| 8.0; 7.0; 5.0; 4.0; 3.0; 2.0; 2.0; 1.0 |]

let respects_budgets () =
  let inst = instance () in
  let budgets = [| 1; 2; 3; 4; 1; 2; 3; 4 |] in
  let p = Core.Budgeted.placement ~budgets inst in
  Array.iteri
    (fun j budget ->
      checki (Printf.sprintf "task %d" j) budget (Core.Placement.replication p j))
    budgets

let budgets_clamped () =
  let inst = instance () in
  let p = Core.Budgeted.placement ~budgets:(Array.make 8 99) inst in
  checki "clamped to m" 4 (Core.Placement.max_replication p);
  let p0 = Core.Budgeted.placement ~budgets:(Array.make 8 0) inst in
  checki "clamped to 1" 1 (Core.Placement.max_replication p0)

let length_mismatch_rejected () =
  Alcotest.check_raises "length"
    (Invalid_argument "Budgeted.placement: budgets length differs from instance")
    (fun () -> ignore (Core.Budgeted.placement ~budgets:[| 1 |] (instance ())))

let budget_one_is_lpt_no_choice () =
  let inst = instance () in
  let rng = Rng.create ~seed:3 () in
  let realization = Realization.uniform_factor inst rng in
  close "same makespan as LPT-No Choice"
    (Core.Two_phase.makespan Core.No_replication.lpt_no_choice inst realization)
    (Core.Two_phase.makespan (Core.Budgeted.uniform ~k:1) inst realization)

let budget_m_is_no_restriction () =
  let inst = instance () in
  let rng = Rng.create ~seed:4 () in
  let realization = Realization.uniform_factor inst rng in
  close "same makespan as LPT-No Restriction"
    (Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction inst
       realization)
    (Core.Two_phase.makespan (Core.Budgeted.uniform ~k:4) inst realization)

let primary_on_least_loaded () =
  (* With budget 2 and tasks in LPT order, the first m tasks' machine
     sets must pair each machine with the next least-loaded one. *)
  let inst = instance () in
  let p = Core.Budgeted.placement ~budgets:(Array.make 8 2) inst in
  (* Task 0 (est 8, first placed) is on machines {0, 1}. *)
  checkb "task 0 on m0" true (Core.Placement.allowed p ~task:0 ~machine:0);
  checkb "task 0 on m1" true (Core.Placement.allowed p ~task:0 ~machine:1)

let schedules_valid () =
  let inst = instance () in
  let rng = Rng.create ~seed:5 () in
  for k = 1 to 4 do
    let realization = Realization.extremes ~p_high:0.4 inst rng in
    let algo = Core.Budgeted.uniform ~k in
    let placement, schedule = Core.Two_phase.run_full algo inst realization in
    checkb
      (Printf.sprintf "k=%d valid" k)
      true
      (Schedule.validate ~placement:(Core.Placement.sets placement) inst
         realization schedule
      = [])
  done

let proportional_budgets () =
  let inst = instance () in
  let algo = Core.Budgeted.proportional ~fraction:0.25 in
  let p = algo.Core.Two_phase.phase1 inst in
  (* Two largest tasks (25% of 8) fully replicated, rest singleton. *)
  checki "task 0 full" 4 (Core.Placement.replication p 0);
  checki "task 1 full" 4 (Core.Placement.replication p 1);
  checki "task 2 pinned" 1 (Core.Placement.replication p 2)

let proportional_rejects_bad_fraction () =
  Alcotest.check_raises "fraction"
    (Invalid_argument "Budgeted.proportional: fraction out of [0, 1]") (fun () ->
      ignore (Core.Budgeted.proportional ~fraction:1.5))

let adversarial_no_worse_than_groups () =
  (* The headline of the equal-cost ablation, pinned as a regression
     test on one fixed instance: overlapping sets do at least as well as
     disjoint groups against the Theorem-1 adversary. *)
  let m = 6 in
  let inst =
    Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) (Array.make 12 1.0)
  in
  let worst algo =
    let placement = algo.Core.Two_phase.phase1 inst in
    let realization = Core.Adversary.theorem1 inst placement in
    let schedule = algo.Core.Two_phase.phase2 inst placement realization in
    Schedule.makespan schedule
    /. Core.Opt.makespan ~m (Realization.actuals realization)
  in
  checkb "budgeted <= ls-group at 2 replicas" true
    (worst (Core.Budgeted.uniform ~k:2)
    <= worst (Core.Group_replication.ls_group ~k:3) +. 1e-9)

let () =
  Alcotest.run "budgeted"
    [
      ( "unit",
        [
          Alcotest.test_case "respects budgets" `Quick respects_budgets;
          Alcotest.test_case "clamping" `Quick budgets_clamped;
          Alcotest.test_case "length check" `Quick length_mismatch_rejected;
          Alcotest.test_case "k=1 = LPT-No Choice" `Quick budget_one_is_lpt_no_choice;
          Alcotest.test_case "k=m = LPT-No Restriction" `Quick
            budget_m_is_no_restriction;
          Alcotest.test_case "least-loaded sets" `Quick primary_on_least_loaded;
          Alcotest.test_case "valid schedules" `Quick schedules_valid;
          Alcotest.test_case "proportional" `Quick proportional_budgets;
          Alcotest.test_case "proportional domain" `Quick
            proportional_rejects_bad_fraction;
          Alcotest.test_case "vs groups adversarially" `Quick
            adversarial_no_worse_than_groups;
        ] );
    ]
