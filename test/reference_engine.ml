(* The pre-refactor engine, frozen verbatim as the golden reference.

   This is the engine exactly as it stood before the zero-allocation
   rewrite — binary [Pqueue]-backed event core, per-machine mutable
   records with [copy option] chains, closure-based dispatch views —
   with its then-private dependencies ([Event_core], [Machine_state],
   [Dispatch]'s policy implementations) inlined, since the live modules
   changed representation. test_golden_engine checks the rewritten
   engine against this one bit-for-bit (schedules, outcomes, event
   logs, metrics snapshots) over hundreds of fault scenarios; the code
   here must therefore never be "improved" — it is a spec.

   Public result types ([Engine.event], [Engine.outcome], [Schedule.t])
   are shared with the live engine so comparisons need no translation
   layer. *)

[@@@warning "-26-27-32"]

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Pqueue = Usched_desim.Pqueue
module Schedule = Usched_desim.Schedule
module Dispatch = Usched_desim.Dispatch
module Engine = Usched_desim.Engine
open Engine

(* The old [Event_core]: a binary [Pqueue] of boxed event records. *)
module R_event = struct
  type 'a event = {
    time : float;
    machine : int;
    cls : int;
    seq : int;
    payload : 'a;
  }

  let cls_fault = 0
  let cls_arrival = 1
  let cls_decision = 2
  let cls_audit = 3

  let compare_event a b =
    match Float.compare a.time b.time with
    | 0 -> (
        match Int.compare a.machine b.machine with
        | 0 -> (
            match Int.compare a.cls b.cls with
            | 0 -> Int.compare a.seq b.seq
            | c -> c)
        | c -> c)
    | c -> c

  type 'a t = { queue : 'a event Pqueue.t; mutable seq : int }

  let create () = { queue = Pqueue.create ~compare:compare_event (); seq = 0 }

  let push t ~time ~machine ~cls payload =
    t.seq <- t.seq + 1;
    Pqueue.push t.queue { time; machine; cls; seq = t.seq; payload }

  let length t = Pqueue.length t.queue

  let drain t ~handle =
    let rec loop () =
      match Pqueue.pop t.queue with
      | None -> ()
      | Some { time; machine; payload; _ } ->
          handle ~time ~machine payload;
          loop ()
    in
    loop ()
end

(* The old [Machine_state]: one mutable record per machine, the
   in-flight copy as a [copy option]. *)
module R_ms = struct
  type copy = {
    c_task : int;
    c_started : float;
    mutable c_remaining : float;
    mutable c_last : float;
    c_base : float;
  }

  type machine = {
    mutable alive : bool;
    mutable down_until : float;
    mutable factor : float;
    mutable gen : int;
    mutable current : copy option;
    mutable orphan : int option;
    mutable undetected : float option;
    mutable blinks : int;
    mutable trust_after : float;
    mutable ckpt : (int * float) option;
  }

  type t = {
    m : int;
    speeds : float array option;
    machines : machine array;
    alive_set : Bitset.t;
  }

  let create ?speeds ~m () =
    {
      m;
      speeds;
      machines =
        Array.init m (fun _ ->
            {
              alive = true;
              down_until = 0.0;
              factor = 1.0;
              gen = 0;
              current = None;
              orphan = None;
              undetected = None;
              blinks = 0;
              trust_after = 0.0;
              ckpt = None;
            });
      alive_set = Bitset.full m;
    }

  let get t i = t.machines.(i)
  let alive_set t = t.alive_set
  let base_speed t i = match t.speeds with None -> 1.0 | Some s -> s.(i)
  let eff_speed t i = base_speed t i *. t.machines.(i).factor

  let available t ~time i =
    let ms = t.machines.(i) in
    ms.alive && ms.down_until <= time

  let idle t ~time i = available t ~time i && t.machines.(i).current = None

  let mark_crashed t i =
    t.machines.(i).alive <- false;
    Bitset.remove t.alive_set i

  let fresh_copy ~task ~time ~work =
    { c_task = task; c_started = time; c_remaining = work; c_last = time; c_base = 0.0 }

  let resumed_copy ~task ~time ~work ~banked =
    {
      c_task = task;
      c_started = time;
      c_remaining = work -. banked;
      c_last = time;
      c_base = banked;
    }

  let sync_remaining c ~time ~speed =
    c.c_remaining <- c.c_remaining -. ((time -. c.c_last) *. speed);
    c.c_last <- time

  let remaining_at c ~time ~speed =
    Float.max 0.0 (c.c_remaining -. ((time -. c.c_last) *. speed))
end

(* The old [Dispatch]: closure-shaped view (est/speed functions,
   time-passing availability), option-returning select. Specs are the
   live module's — only the implementation is frozen. *)
module R_dispatch = struct
  module Rng = Usched_prng.Rng

  type view = {
    n : int;
    m : int;
    order : int array;
    pos_of : int array;
    dispatchable : bool array;
    holders : Bitset.t array;
    est : int -> float;
    speed : int -> float;
    load : float array;
    available : time:float -> int -> bool;
  }

  type t = {
    spec : Dispatch.spec;
    select : time:float -> machine:int -> int option;
    notify : task:int -> unit;
  }

  let make_list_priority v =
    let cursor = Array.make v.m 0 in
    let select ~time:_ ~machine:i =
      let rec scan pos =
        if pos >= v.n then None
        else begin
          cursor.(i) <- pos + 1;
          let j = v.order.(pos) in
          if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then Some j
          else scan (pos + 1)
        end
      in
      scan cursor.(i)
    in
    let notify ~task =
      let p = v.pos_of.(task) in
      for i = 0 to v.m - 1 do
        if cursor.(i) > p then cursor.(i) <- p
      done
    in
    { spec = Dispatch.List_priority; select; notify }

  let rec ll_better v ~time j i k =
    k < v.m
    && ((k <> i
        && Bitset.mem v.holders.(j) k
        && v.available ~time k
        && v.load.(k) < v.load.(i))
       || ll_better v ~time j i (k + 1))

  let rec ll_scan v ~time i ~fallback pos =
    if pos >= v.n then if fallback >= 0 then Some fallback else None
    else
      let j = v.order.(pos) in
      if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then
        let fallback = if fallback < 0 then j else fallback in
        if ll_better v ~time j i 0 then ll_scan v ~time i ~fallback (pos + 1)
        else Some j
      else ll_scan v ~time i ~fallback (pos + 1)

  let make_least_loaded v =
    let select ~time ~machine:i = ll_scan v ~time i ~fallback:(-1) 0 in
    { spec = Dispatch.Least_loaded_holder; select; notify = (fun ~task:_ -> ()) }

  let make_earliest_completion v =
    let select ~time:_ ~machine:i =
      let best = ref (-1) and best_cost = ref infinity in
      for pos = 0 to v.n - 1 do
        let j = v.order.(pos) in
        if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then begin
          let cost = v.est j /. v.speed i in
          if cost < !best_cost then begin
            best := j;
            best_cost := cost
          end
        end
      done;
      if !best >= 0 then Some !best else None
    in
    { spec = Dispatch.Earliest_estimated_completion; select; notify = (fun ~task:_ -> ()) }

  let make_random_tiebreak seed v =
    let rng = Rng.create ~seed () in
    let candidates = Array.make (Stdlib.max 1 v.n) 0 in
    let select ~time:_ ~machine:i =
      let rec first pos =
        if pos >= v.n then None
        else
          let j = v.order.(pos) in
          if v.dispatchable.(j) && Bitset.mem v.holders.(j) i then Some (pos, j)
          else first (pos + 1)
      in
      match first 0 with
      | None -> None
      | Some (pos0, j0) ->
          let e0 = v.est j0 in
          let count = ref 0 in
          for pos = pos0 to v.n - 1 do
            let j = v.order.(pos) in
            if v.dispatchable.(j) && Bitset.mem v.holders.(j) i && v.est j = e0
            then begin
              candidates.(!count) <- j;
              incr count
            end
          done;
          if !count <= 1 then Some j0
          else Some candidates.(Rng.int rng !count)
    in
    { spec = Dispatch.Random_tiebreak seed; select; notify = (fun ~task:_ -> ()) }

  let make spec v =
    (match v.n with
    | n when n <> Array.length v.order || n <> Array.length v.pos_of ->
        invalid_arg "Dispatch.make: order/pos_of length differs from task count"
    | _ -> ());
    match spec with
    | Dispatch.List_priority -> make_list_priority v
    | Dispatch.Least_loaded_holder -> make_least_loaded v
    | Dispatch.Earliest_estimated_completion -> make_earliest_completion v
    (* Golden instances carry no topology, where the live Locality
       policy is defined to coincide with Least_loaded_holder. *)
    | Dispatch.Locality ->
        { (make_least_loaded v) with spec = Dispatch.Locality }
    | Dispatch.Random_tiebreak seed -> make_random_tiebreak seed v

  let select t ~time ~machine = t.select ~time ~machine
  let notify_available t ~task = t.notify ~task
  let redispatch_order _t machines = List.sort Int.compare machines
end

let check_inputs ?speeds ~name instance ~placement ~order =
  let n = Instance.n instance and m = Instance.m instance in
  (match speeds with
  | None -> ()
  | Some s ->
      if Array.length s <> m then
        invalid_arg (Printf.sprintf "%s: speeds length differs from machine count" name);
      Array.iter
        (fun v ->
          if not (v > 0.0) then
            invalid_arg (Printf.sprintf "%s: speeds must be > 0" name))
        s);
  if Array.length placement <> n then
    invalid_arg (Printf.sprintf "%s: placement length differs from instance" name);
  Array.iteri
    (fun j set ->
      if Bitset.capacity set <> m then
        invalid_arg (Printf.sprintf "%s: placement of task %d has wrong capacity" name j);
      if Bitset.is_empty set then
        invalid_arg (Printf.sprintf "%s: task %d is placed nowhere" name j))
    placement;
  if Array.length order <> n then
    invalid_arg (Printf.sprintf "%s: order length differs from instance" name);
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg (Printf.sprintf "%s: order is not a permutation of task ids" name);
      seen.(j) <- true)
    order

let inverse_order ~n order =
  let pos_of = Array.make n 0 in
  Array.iteri (fun pos j -> pos_of.(j) <- pos) order;
  pos_of

let run_internal ?speeds ~dispatch ~metrics instance realization ~placement
    ~order ~emit =
  check_inputs ?speeds ~name:"Engine.run" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  let speed_of i = match speeds with None -> 1.0 | Some s -> s.(i) in
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  let busy = if live then Array.make m 0.0 else [||] in
  let dispatchable = Array.make n true in
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let remaining = ref n in
  let loads = Array.make m 0.0 in
  let policy =
    R_dispatch.make dispatch
      {
        R_dispatch.n;
        m;
        order;
        pos_of = inverse_order ~n order;
        dispatchable;
        holders = placement;
        est = Instance.est instance;
        speed = speed_of;
        load = loads;
        available = (fun ~time:_ _ -> true);
      }
  in
  let queue = R_event.create () in
  for i = 0 to m - 1 do
    R_event.push queue ~time:0.0 ~machine:i ~cls:R_event.cls_decision ()
  done;
  if live then
    Metrics.record_max mg_queue (float_of_int (R_event.length queue));
  R_event.drain queue ~handle:(fun ~time ~machine:i () ->
      Metrics.incr mc_events;
      match R_dispatch.select policy ~time ~machine:i with
      | None -> ()
      | Some j ->
          let finish = time +. (Realization.actual realization j /. speed_of i) in
          entries.(j) <- { Schedule.machine = i; start = time; finish };
          dispatchable.(j) <- false;
          loads.(i) <- loads.(i) +. Instance.est instance j;
          remaining := !remaining - 1;
          emit (Started { time; machine = i; task = j });
          emit (Completed { time = finish; machine = i; task = j });
          Metrics.incr mc_dispatches;
          if live then busy.(i) <- busy.(i) +. (finish -. time);
          R_event.push queue ~time:finish ~machine:i
            ~cls:R_event.cls_decision ();
          if live then
            Metrics.record_max mg_queue (float_of_int (R_event.length queue)));
  if !remaining > 0 then begin
    let left = ref [] in
    for j = n - 1 downto 0 do
      if dispatchable.(j) then left := j :: !left
    done;
    raise (Unschedulable !left)
  end;
  if live then begin
    let mk = ref 0.0 in
    Array.iter
      (fun e -> if e.Schedule.finish > !mk then mk := e.Schedule.finish)
      entries;
    Metrics.set mg_makespan !mk;
    for i = 0 to m - 1 do
      Metrics.observe mh_idle (!mk -. busy.(i))
    done
  end;
  Schedule.make ~m entries

let sort_events events =
  let time_of = function
    | Arrived { time; _ }
    | Started { time; _ }
    | Completed { time; _ }
    | Killed { time; _ }
    | Cancelled { time; _ }
    | Machine_crashed { time; _ }
    | Machine_down { time; _ }
    | Machine_up { time; _ }
    | Machine_slowed { time; _ }
    | Failure_detected { time; _ }
    | Rereplication_started { time; _ }
    | Rereplication_completed { time; _ }
    | Rereplication_aborted { time; _ }
    | Checkpoint_resumed { time; _ } -> time
  in
  List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) events

let run_traced ?speeds ?(dispatch = Dispatch.default)
    ?(metrics = Metrics.disabled) instance realization ~placement ~order =
  let events = ref [] in
  let schedule =
    run_internal ?speeds ~dispatch ~metrics instance realization ~placement
      ~order ~emit:(fun e -> events := e :: !events)
  in
  (schedule, sort_events (List.rev !events))

type tstatus = Pending | Running | Done | Lost

type sim =
  | Sim_fault of Fault.kind
  | Sim_up
  | Sim_detect
  | Sim_arrive of { task : int }
  | Sim_complete of { gen : int }
  | Sim_transfer of { task : int; src : int; dst : int; id : int }
  | Sim_dispatch
  | Sim_speculate of { task : int; gen : int }

let run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
    ~arrivals instance realization ~faults ~placement ~order ~emit =
  check_inputs ?speeds ~name:"Engine.run_faulty" instance ~placement ~order;
  let n = Instance.n instance and m = Instance.m instance in
  if Trace.m faults <> m then
    invalid_arg "Engine.run_faulty: trace machine count differs from instance";
  (match arrivals with
  | None -> ()
  | Some arr ->
      if Array.length arr <> n then
        invalid_arg "Engine.run_stream: arrivals length differs from instance";
      Array.iter
        (fun t ->
          if not (Float.is_finite t && t >= 0.0) then
            invalid_arg
              "Engine.run_stream: arrival times must be finite and >= 0")
        arr);
  (match speculation with
  | Some beta when not (beta > 0.0) ->
      invalid_arg "Engine.run_faulty: speculation factor must be > 0"
  | _ -> ());
  let rec_active = Recovery.is_active recovery in
  let det_latency = recovery.Recovery.detection_latency in
  let heals = Recovery.heals recovery in
  let target_of =
    match recovery.Recovery.rereplication_target with
    | Recovery.Fixed r -> fun _ -> r
    | Recovery.Degree ->
        let degree = Array.map Bitset.cardinal placement in
        fun j -> degree.(j)
  in
  let bandwidth = recovery.Recovery.bandwidth in
  let ckpt_interval = recovery.Recovery.checkpoint_interval in
  let live = Metrics.is_enabled metrics in
  let mc_events = Metrics.counter metrics "engine.events" in
  let mc_dispatches = Metrics.counter metrics "engine.dispatches" in
  let mc_redispatches = Metrics.counter metrics "engine.redispatches" in
  let mc_spec_starts = Metrics.counter metrics "engine.spec_starts" in
  let mc_spec_cancelled = Metrics.counter metrics "engine.spec_cancelled" in
  let mc_kills = Metrics.counter metrics "engine.kills" in
  let mc_crashes = Metrics.counter metrics "engine.crashes" in
  let mc_outages = Metrics.counter metrics "engine.outages" in
  let mc_slowdowns = Metrics.counter metrics "engine.slowdowns" in
  let mc_completed = Metrics.counter metrics "engine.completed" in
  let mc_stranded = Metrics.counter metrics "engine.stranded" in
  let mg_queue = Metrics.gauge metrics "engine.queue_depth_max" in
  let mg_makespan = Metrics.gauge metrics "engine.makespan" in
  let mg_wasted = Metrics.gauge metrics "engine.wasted_work" in
  let mh_idle = Metrics.histogram metrics "engine.machine_idle" in
  let streaming = arrivals <> None in
  let stream_metrics = if streaming then metrics else Metrics.disabled in
  let mc_arrivals = Metrics.counter stream_metrics "engine.arrivals" in
  let mh_latency = Metrics.histogram stream_metrics "engine.latency" in
  let busy = if live then Array.make m 0.0 else [||] in
  let st = R_ms.create ?speeds ~m () in
  let machine = R_ms.get st in
  let eff_speed = R_ms.eff_speed st in
  let base_speed = R_ms.base_speed st in
  let available ~time i = R_ms.available st ~time i in
  let alive_set = R_ms.alive_set st in
  let status = Array.make n Pending in
  let arrived = Array.make n (not streaming) in
  let dispatchable = Array.make n (not streaming) in
  let set_status j s =
    status.(j) <- s;
    dispatchable.(j) <- (s = Pending && arrived.(j))
  in
  let copies = Array.make n ([] : int list) in
  let task_gen = Array.make n 0 in
  let spec_ready = Array.make n false in
  let data =
    if rec_active then Array.map Bitset.copy placement else placement
  in
  let transfer = Array.make n (None : (int * int * int) option) in
  let transfer_id = ref 0 in
  let replica_load = Array.make m 0 in
  if rec_active then
    Array.iter
      (Bitset.iter (fun i -> replica_load.(i) <- replica_load.(i) + 1))
      data;
  let entries =
    Array.make n { Schedule.machine = 0; start = 0.0; finish = 0.0 }
  in
  let wasted = ref 0.0 in
  let loads = Array.make m 0.0 in
  let policy =
    R_dispatch.make dispatch
      {
        R_dispatch.n;
        m;
        order;
        pos_of = inverse_order ~n order;
        dispatchable;
        holders = data;
        est = Instance.est instance;
        speed = base_speed;
        load = loads;
        available;
      }
  in
  let queue = R_event.create () in
  let push ~time ~machine ~cls sim =
    R_event.push queue ~time ~machine ~cls sim;
    if live then
      Metrics.record_max mg_queue (float_of_int (R_event.length queue))
  in
  for i = 0 to m - 1 do
    push ~time:0.0 ~machine:i ~cls:R_event.cls_decision Sim_dispatch
  done;
  List.iter
    (fun (e : Fault.event) ->
      push ~time:e.Fault.time ~machine:e.Fault.machine ~cls:R_event.cls_fault
        (Sim_fault e.Fault.kind))
    (Trace.events faults);
  (match arrivals with
  | None -> ()
  | Some arr ->
      Array.iteri
        (fun j t ->
          push ~time:t ~machine:(-1) ~cls:R_event.cls_arrival
            (Sim_arrive { task = j }))
        arr);
  let wake_idle ~time =
    for i = 0 to m - 1 do
      if R_ms.idle st ~time i then
        push ~time ~machine:i ~cls:R_event.cls_decision Sim_dispatch
    done
  in
  let on_arrive ~time j =
    arrived.(j) <- true;
    Metrics.incr mc_arrivals;
    emit (Arrived { time; task = j });
    if status.(j) = Pending then begin
      dispatchable.(j) <- true;
      R_dispatch.notify_available policy ~task:j;
      wake_idle ~time
    end
  in
  let transfer_duration j = Instance.size instance j /. bandwidth in
  let heal ~time =
    if heals then
      for j = 0 to n - 1 do
        match status.(j) with
        | Done | Lost -> ()
        | Pending | Running ->
            if transfer.(j) = None then begin
              let live = Bitset.cardinal (Bitset.inter alive_set data.(j)) in
              if live >= 1 && live < target_of j then begin
                let src = ref (-1) in
                (try
                   Bitset.iter
                     (fun i ->
                       if available ~time i then begin
                         src := i;
                         raise Exit
                       end)
                     data.(j)
                 with Exit -> ());
                if !src >= 0 then begin
                  let dst = ref (-1) and best = ref max_int in
                  for i = 0 to m - 1 do
                    if
                      available ~time i
                      && (not (Bitset.mem data.(j) i))
                      && replica_load.(i) < !best
                    then begin
                      dst := i;
                      best := replica_load.(i)
                    end
                  done;
                  if !dst >= 0 then begin
                    incr transfer_id;
                    transfer.(j) <- Some (!src, !dst, !transfer_id);
                    replica_load.(!dst) <- replica_load.(!dst) + 1;
                    emit
                      (Rereplication_started
                         { time; task = j; src = !src; dst = !dst });
                    push
                      ~time:(time +. transfer_duration j)
                      ~machine:!dst ~cls:R_event.cls_arrival
                      (Sim_transfer
                         { task = j; src = !src; dst = !dst; id = !transfer_id })
                  end
                end
              end
            end
      done
  in
  let abort_transfers ~time x =
    for j = 0 to n - 1 do
      match transfer.(j) with
      | Some (src, dst, _) when src = x || dst = x ->
          transfer.(j) <- None;
          replica_load.(dst) <- replica_load.(dst) - 1;
          emit (Rereplication_aborted { time; task = j; src; dst });
          Metrics.incr (Metrics.counter metrics "engine.transfer_aborts")
      | _ -> ()
    done
  in
  let start_copy ?resume ~time i j =
    let ms = machine i in
    let c =
      match resume with
      | None ->
          R_ms.fresh_copy ~task:j ~time
            ~work:(Realization.actual realization j)
      | Some banked ->
          R_ms.resumed_copy ~task:j ~time
            ~work:(Realization.actual realization j)
            ~banked
    in
    ms.R_ms.current <- Some c;
    ms.R_ms.gen <- ms.R_ms.gen + 1;
    let was_primary = copies.(j) = [] in
    copies.(j) <- i :: copies.(j);
    set_status j Running;
    loads.(i) <- loads.(i) +. Instance.est instance j;
    Metrics.incr mc_dispatches;
    if was_primary then begin
      if task_gen.(j) > 0 then Metrics.incr mc_redispatches
    end
    else Metrics.incr mc_spec_starts;
    emit (Started { time; machine = i; task = j });
    (match resume with
    | Some banked ->
        ms.R_ms.ckpt <- None;
        emit (Checkpoint_resumed { time; machine = i; task = j; progress = banked });
        Metrics.incr (Metrics.counter metrics "engine.checkpoint_resumes")
    | None -> ());
    let finish = time +. (c.R_ms.c_remaining /. eff_speed i) in
    push ~time:finish ~machine:i ~cls:R_event.cls_arrival
      (Sim_complete { gen = ms.R_ms.gen });
    match speculation with
    | Some beta when was_primary ->
        let expected = Instance.est instance j /. base_speed i in
        push
          ~time:(time +. (beta *. expected))
          ~machine:i ~cls:R_event.cls_audit
          (Sim_speculate { task = j; gen = task_gen.(j) })
    | _ -> ()
  in
  let release_task ~time j =
    task_gen.(j) <- task_gen.(j) + 1;
    spec_ready.(j) <- false;
    if
      Bitset.is_empty (Bitset.inter alive_set data.(j)) && transfer.(j) = None
    then set_status j Lost
    else begin
      set_status j Pending;
      R_dispatch.notify_available policy ~task:j;
      wake_idle ~time
    end
  in
  let kill_current ?(salvage = false) ~time i =
    let ms = machine i in
    match ms.R_ms.current with
    | None -> ()
    | Some c ->
        let j = c.R_ms.c_task in
        let wall = time -. c.R_ms.c_started in
        let waste = ref wall in
        if salvage && ckpt_interval > 0.0 then begin
          let remaining_now =
            R_ms.remaining_at c ~time ~speed:(eff_speed i)
          in
          let attempt_total =
            Realization.actual realization j -. c.R_ms.c_base
          in
          let done_attempt = attempt_total -. remaining_now in
          let total_done = c.R_ms.c_base +. done_attempt in
          let preserved =
            Float.min total_done
              (Float.floor (total_done /. ckpt_interval) *. ckpt_interval)
          in
          if preserved > 0.0 then begin
            ms.R_ms.ckpt <- Some (j, preserved);
            if done_attempt > 0.0 then begin
              let credit =
                Float.max 0.0
                  (Float.min done_attempt (preserved -. c.R_ms.c_base))
              in
              waste := wall *. (1.0 -. (credit /. done_attempt))
            end
          end
        end;
        wasted := !wasted +. !waste;
        Metrics.incr mc_kills;
        if live then busy.(i) <- busy.(i) +. wall;
        ms.R_ms.current <- None;
        ms.R_ms.gen <- ms.R_ms.gen + 1;
        emit (Killed { time; machine = i; task = j });
        copies.(j) <- List.filter (fun k -> k <> i) copies.(j);
        if copies.(j) = [] then
          if rec_active && det_latency > 0.0 then ms.R_ms.orphan <- Some j
          else release_task ~time j
  in
  let strand_scan i =
    for j = 0 to n - 1 do
      if
        status.(j) = Pending
        && Bitset.mem data.(j) i
        && Bitset.is_empty (Bitset.inter alive_set data.(j))
        && transfer.(j) = None
      then set_status j Lost
    done
  in
  let acknowledge ~time i =
    let ms = machine i in
    match ms.R_ms.undetected with
    | None -> ()
    | Some t0 ->
        ms.R_ms.undetected <- None;
        emit (Failure_detected { time; machine = i });
        Metrics.observe
          (Metrics.histogram metrics "engine.detection_lag")
          (time -. t0);
        (match ms.R_ms.orphan with
        | Some j ->
            ms.R_ms.orphan <- None;
            if status.(j) = Running && copies.(j) = [] then
              release_task ~time j
        | None -> ());
        if not ms.R_ms.alive then strand_scan i
  in
  let on_transfer ~time ~task ~src ~dst ~id =
    match transfer.(task) with
    | Some (_, _, id') when id' = id ->
        transfer.(task) <- None;
        Bitset.add data.(task) dst;
        emit (Rereplication_completed { time; task; src; dst });
        Metrics.incr (Metrics.counter metrics "engine.rereplications");
        Metrics.observe
          (Metrics.histogram metrics "engine.transfer_time")
          (transfer_duration task);
        if status.(task) = Pending then begin
          R_dispatch.notify_available policy ~task;
          wake_idle ~time
        end;
        heal ~time
    | _ -> ()
  in
  let find_speculation i =
    let rec scan pos =
      if pos >= n then None
      else
        let j = order.(pos) in
        if
          status.(j) = Running && spec_ready.(j)
          && (match copies.(j) with [ k ] -> k <> i | _ -> false)
          && Bitset.mem data.(j) i
        then Some j
        else scan (pos + 1)
    in
    if speculation = None then None else scan 0
  in
  let resume_candidate i =
    match (machine i).R_ms.ckpt with
    | Some (j, banked) when status.(j) = Pending && Bitset.mem data.(j) i ->
        Some (j, banked)
    | _ -> None
  in
  let dispatch_machine ~time i =
    let ms = machine i in
    if available ~time i && ms.R_ms.current = None && time >= ms.R_ms.trust_after
    then
      match resume_candidate i with
      | Some (j, banked) -> start_copy ~resume:banked ~time i j
      | None -> (
          match R_dispatch.select policy ~time ~machine:i with
          | Some j -> start_copy ~time i j
          | None -> (
              match find_speculation i with
              | Some j -> start_copy ~time i j
              | None -> ()))
  in
  let complete ~time i gen =
    let ms = machine i in
    match ms.R_ms.current with
    | Some c when gen = ms.R_ms.gen ->
        let j = c.R_ms.c_task in
        entries.(j) <-
          { Schedule.machine = i; start = c.R_ms.c_started; finish = time };
        set_status j Done;
        ms.R_ms.current <- None;
        ms.R_ms.gen <- ms.R_ms.gen + 1;
        if live then
          busy.(i) <- busy.(i) +. (time -. c.R_ms.c_started);
        emit (Completed { time; machine = i; task = j });
        (match arrivals with
        | None -> ()
        | Some arr -> Metrics.observe mh_latency (time -. arr.(j)));
        let losers = List.filter (fun k -> k <> i) copies.(j) in
        copies.(j) <- [];
        List.iter
          (fun k ->
            let mk = machine k in
            (match mk.R_ms.current with
            | Some ck ->
                wasted := !wasted +. (time -. ck.R_ms.c_started);
                if live then
                  busy.(k) <- busy.(k) +. (time -. ck.R_ms.c_started)
            | None -> assert false);
            mk.R_ms.current <- None;
            mk.R_ms.gen <- mk.R_ms.gen + 1;
            Metrics.incr mc_spec_cancelled;
            emit (Cancelled { time; machine = k; task = j }))
          losers;
        List.iter (dispatch_machine ~time)
          (R_dispatch.redispatch_order policy (i :: losers))
    | _ -> ()
  in
  let on_fault ~time i kind =
    let ms = machine i in
    match kind with
    | Fault.Crash ->
        if ms.R_ms.alive then begin
          Metrics.incr mc_crashes;
          R_ms.mark_crashed st i;
          emit (Machine_crashed { time; machine = i });
          ms.R_ms.ckpt <- None;
          if rec_active then abort_transfers ~time i;
          kill_current ~time i;
          if rec_active && det_latency > 0.0 then begin
            if ms.R_ms.undetected = None then ms.R_ms.undetected <- Some time;
            push ~time:(time +. det_latency) ~machine:i
              ~cls:R_event.cls_fault Sim_detect
          end
          else begin
            strand_scan i;
            if rec_active then heal ~time
          end
        end
    | Fault.Outage until ->
        if ms.R_ms.alive then begin
          Metrics.incr mc_outages;
          ms.R_ms.down_until <- Float.max ms.R_ms.down_until until;
          emit (Machine_down { time; machine = i; until = ms.R_ms.down_until });
          kill_current ~salvage:true ~time i;
          if rec_active then begin
            ms.R_ms.blinks <- ms.R_ms.blinks + 1;
            let b = Recovery.backoff recovery ~blinks:ms.R_ms.blinks in
            if b > 0.0 then
              ms.R_ms.trust_after <-
                Float.max ms.R_ms.trust_after (ms.R_ms.down_until +. b);
            if det_latency > 0.0 && ms.R_ms.orphan <> None then begin
              if ms.R_ms.undetected = None then ms.R_ms.undetected <- Some time;
              push ~time:(time +. det_latency) ~machine:i
                ~cls:R_event.cls_fault Sim_detect
            end
          end;
          push ~time:ms.R_ms.down_until ~machine:i ~cls:R_event.cls_fault Sim_up
        end
    | Fault.Slowdown factor ->
        Metrics.incr mc_slowdowns;
        let old_speed = eff_speed i in
        ms.R_ms.factor <- factor;
        emit (Machine_slowed { time; machine = i; factor });
        (match ms.R_ms.current with
        | Some c ->
            R_ms.sync_remaining c ~time ~speed:old_speed;
            ms.R_ms.gen <- ms.R_ms.gen + 1;
            push
              ~time:(time +. (c.R_ms.c_remaining /. eff_speed i))
              ~machine:i ~cls:R_event.cls_arrival
              (Sim_complete { gen = ms.R_ms.gen })
        | None -> ())
  in
  let on_up ~time i =
    let ms = machine i in
    if ms.R_ms.alive && time >= ms.R_ms.down_until then begin
      emit (Machine_up { time; machine = i });
      if rec_active then begin
        acknowledge ~time i;
        heal ~time
      end;
      if time >= ms.R_ms.trust_after then dispatch_machine ~time i
      else
        push ~time:ms.R_ms.trust_after ~machine:i ~cls:R_event.cls_decision
          Sim_dispatch
    end
  in
  let on_detect ~time i =
    acknowledge ~time i;
    heal ~time
  in
  let on_speculate ~time task gen =
    if
      task_gen.(task) = gen && status.(task) = Running
      && List.length copies.(task) = 1
    then begin
      spec_ready.(task) <- true;
      let runner = List.hd copies.(task) in
      let exception Found of int in
      match
        Bitset.iter
          (fun i ->
            if i <> runner && R_ms.idle st ~time i then
              raise (Found i))
          data.(task)
      with
      | () -> ()
      | exception Found i -> start_copy ~time i task
    end
  in
  if rec_active then heal ~time:0.0;
  R_event.drain queue ~handle:(fun ~time ~machine sim ->
      Metrics.incr mc_events;
      match sim with
      | Sim_fault kind -> on_fault ~time machine kind
      | Sim_up -> on_up ~time machine
      | Sim_detect -> on_detect ~time machine
      | Sim_arrive { task } -> on_arrive ~time task
      | Sim_complete { gen } -> complete ~time machine gen
      | Sim_transfer { task; src; dst; id } ->
          on_transfer ~time ~task ~src ~dst ~id
      | Sim_dispatch -> dispatch_machine ~time machine
      | Sim_speculate { task; gen } -> on_speculate ~time task gen);
  let fates =
    Array.init n (fun j ->
        match status.(j) with
        | Done -> Finished entries.(j)
        | Lost | Pending | Running -> Stranded)
  in
  let completed = ref 0 and stranded = ref [] and makespan = ref 0.0 in
  for j = n - 1 downto 0 do
    match fates.(j) with
    | Finished e ->
        incr completed;
        makespan := Float.max !makespan e.Schedule.finish
    | Stranded -> stranded := j :: !stranded
  done;
  if live then begin
    Metrics.add mc_completed !completed;
    Metrics.add mc_stranded (List.length !stranded);
    Metrics.set mg_makespan !makespan;
    Metrics.set mg_wasted !wasted;
    for i = 0 to m - 1 do
      Metrics.observe mh_idle (!makespan -. busy.(i))
    done
  end;
  {
    fates;
    completed = !completed;
    stranded = !stranded;
    makespan = !makespan;
    wasted = !wasted;
    metrics = Metrics.snapshot metrics;
  }

let run_faulty_traced ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) instance
    realization ~faults ~placement ~order =
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:None instance realization ~faults ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  (outcome, sort_events (List.rev !events))

let stream_latencies ~arrivals (outcome : Engine.outcome) =
  let acc = ref [] in
  for j = Array.length outcome.fates - 1 downto 0 do
    match outcome.fates.(j) with
    | Finished e -> acc := (e.Schedule.finish -. arrivals.(j)) :: !acc
    | Stranded -> ()
  done;
  Array.of_list !acc

let run_stream_traced ?speeds ?speculation ?(dispatch = Dispatch.default)
    ?(recovery = Recovery.none) ?(metrics = Metrics.disabled) ?faults instance
    realization ~arrivals ~placement ~order =
  let faults =
    match faults with Some f -> f | None -> Trace.empty ~m:(Instance.m instance)
  in
  let events = ref [] in
  let outcome =
    run_faulty_internal ?speeds ?speculation ~dispatch ~recovery ~metrics
      ~arrivals:(Some arrivals) instance realization ~faults ~placement ~order
      ~emit:(fun e -> events := e :: !events)
  in
  ( { outcome; latencies = stream_latencies ~arrivals outcome },
    sort_events (List.rev !events) )
