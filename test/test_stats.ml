(* Unit tests for the statistics substrate. *)

module Summary = Usched_stats.Summary
module Quantile = Usched_stats.Quantile
module Histogram = Usched_stats.Histogram
module Ci = Usched_stats.Ci
module Regression = Usched_stats.Regression

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let summary_basic () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 (Summary.count s);
  close "mean" 2.5 (Summary.mean s);
  close "variance" (5.0 /. 3.0) (Summary.variance s);
  close "min" 1.0 (Summary.min s);
  close "max" 4.0 (Summary.max s);
  close "sum" 10.0 (Summary.sum s)

let summary_empty () =
  let s = Summary.create () in
  checkb "mean nan" true (Float.is_nan (Summary.mean s));
  checkb "variance nan" true (Float.is_nan (Summary.variance s));
  close "min" infinity (Summary.min s)

let summary_single () =
  let s = Summary.of_array [| 7.0 |] in
  close "mean" 7.0 (Summary.mean s);
  checkb "variance nan for n=1" true (Float.is_nan (Summary.variance s))

let summary_merge_equals_whole () =
  let data = Array.init 101 (fun i -> sin (float_of_int i)) in
  let whole = Summary.of_array data in
  let left = Summary.of_array (Array.sub data 0 37) in
  let right = Summary.of_array (Array.sub data 37 64) in
  let merged = Summary.merge left right in
  Alcotest.(check int) "count" (Summary.count whole) (Summary.count merged);
  close "mean" (Summary.mean whole) (Summary.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Summary.variance whole)
    (Summary.variance merged);
  close "min" (Summary.min whole) (Summary.min merged);
  close "max" (Summary.max whole) (Summary.max merged)

let summary_merge_with_empty () =
  let s = Summary.of_array [| 1.0; 2.0 |] in
  let e = Summary.create () in
  close "left empty" 1.5 (Summary.mean (Summary.merge e s));
  close "right empty" 1.5 (Summary.mean (Summary.merge s e))

let summary_welford_stability () =
  (* Large offset: naive sum-of-squares would lose precision. *)
  let offset = 1e9 in
  let data = Array.init 1000 (fun i -> offset +. float_of_int (i mod 10)) in
  let s = Summary.of_array data in
  let expected_var = 8.2582582582582 in
  Alcotest.(check (float 1e-3)) "variance stable" expected_var (Summary.variance s)

let quantile_median_odd () =
  close "median" 3.0 (Quantile.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |])

let quantile_median_even () =
  close "median interpolates" 2.5 (Quantile.median [| 1.0; 2.0; 3.0; 4.0 |])

let quantile_extremes () =
  let a = [| 3.0; 1.0; 2.0 |] in
  close "q0 is min" 1.0 (Quantile.quantile a ~q:0.0);
  close "q1 is max" 3.0 (Quantile.quantile a ~q:1.0)

let quantile_does_not_mutate () =
  let a = [| 3.0; 1.0; 2.0 |] in
  ignore (Quantile.median a);
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] a

let quantile_quartiles () =
  let q1, q2, q3 = Quantile.quartiles (Array.init 101 (fun i -> float_of_int i)) in
  close "q1" 25.0 q1;
  close "q2" 50.0 q2;
  close "q3" 75.0 q3;
  close "iqr" 50.0 (Quantile.iqr (Array.init 101 (fun i -> float_of_int i)))

let quantile_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile: empty sample")
    (fun () -> ignore (Quantile.median [||]))

let quantile_out_of_range_rejected () =
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile: q out of [0, 1]") (fun () ->
      ignore (Quantile.quantile [| 1.0 |] ~q:1.5))

let histogram_counts () =
  let h = Histogram.create ~bins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.7; 2.5; 3.9 |] in
  Alcotest.(check (array int)) "counts" [| 1; 2; 1; 1 |] (Histogram.counts h);
  Alcotest.(check int) "total" 5 (Histogram.total h)

let histogram_counts_outliers () =
  let h = Histogram.create ~bins:2 ~lo:0.0 ~hi:2.0 [| -5.0; 0.5; 10.0 |] in
  Alcotest.(check (array int)) "edge bins untouched" [| 1; 0 |]
    (Histogram.counts h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  Alcotest.(check int) "total is in-range only" 1 (Histogram.total h)

let histogram_hi_lands_in_last_bin () =
  let h = Histogram.create ~bins:2 ~lo:0.0 ~hi:2.0 [| 2.0 |] in
  Alcotest.(check (array int)) "hi in last bin" [| 0; 1 |] (Histogram.counts h);
  Alcotest.(check int) "no overflow at hi" 0 (Histogram.overflow h)

let histogram_rejects_nan () =
  Alcotest.check_raises "NaN bound"
    (Invalid_argument "Histogram.create: lo is NaN") (fun () ->
      ignore (Histogram.create ~lo:Float.nan ~hi:1.0 [||]));
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Histogram.create: NaN sample") (fun () ->
      ignore (Histogram.create ~lo:0.0 ~hi:1.0 [| 0.5; Float.nan |]));
  Alcotest.check_raises "NaN sample in of_data"
    (Invalid_argument "Histogram.of_data: NaN sample") (fun () ->
      ignore (Histogram.of_data [| 1.0; Float.nan; 2.0 |]))

let histogram_degenerate_data () =
  let empty = Histogram.of_data [||] in
  Alcotest.(check int) "empty total" 0 (Histogram.total empty);
  let equal = Histogram.of_data ~bins:3 [| 4.0; 4.0; 4.0 |] in
  Alcotest.(check int) "all-equal total" 3 (Histogram.total equal);
  Alcotest.(check int) "all-equal underflow" 0 (Histogram.underflow equal);
  Alcotest.(check int) "all-equal overflow" 0 (Histogram.overflow equal)

let histogram_bin_range () =
  let h = Histogram.create ~bins:4 ~lo:0.0 ~hi:8.0 [||] in
  let lo, hi = Histogram.bin_range h 1 in
  close "bin lo" 2.0 lo;
  close "bin hi" 4.0 hi

let histogram_of_data_auto_range () =
  let h = Histogram.of_data ~bins:2 [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "total preserved" 3 (Histogram.total h)

let ci_narrows_with_n () =
  let small = Summary.of_array (Array.init 10 (fun i -> float_of_int (i mod 5))) in
  let large = Summary.of_array (Array.init 1000 (fun i -> float_of_int (i mod 5))) in
  let ci_small = Ci.mean_ci small and ci_large = Ci.mean_ci large in
  checkb "more data, tighter interval" true
    (ci_large.Ci.half_width < ci_small.Ci.half_width)

let ci_contains_mean () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0 |] in
  let ci = Ci.mean_ci s in
  checkb "mean inside" true (ci.Ci.lo <= 2.0 && 2.0 <= ci.Ci.hi)

let ci_rejects_level () =
  Alcotest.check_raises "unsupported level"
    (Invalid_argument "Ci.z_value: supported levels are 0.90, 0.95, 0.99")
    (fun () -> ignore (Ci.z_value 0.8))

let regression_exact_line () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let fit = Regression.ols ~xs ~ys in
  close "slope" 2.0 fit.Regression.slope;
  close "intercept" 1.0 fit.Regression.intercept;
  close "r2" 1.0 fit.Regression.r2;
  close "predict" 9.0 (Regression.predict fit 4.0)

let regression_crossover () =
  let a = { Regression.slope = 1.0; intercept = 0.0; r2 = 1.0 } in
  let b = { Regression.slope = -1.0; intercept = 4.0; r2 = 1.0 } in
  (match Regression.crossover a b with
  | Some x -> close "crossing at 2" 2.0 x
  | None -> Alcotest.fail "expected a crossover");
  checkb "parallel lines" true (Regression.crossover a a = None)

let regression_degenerate_rejected () =
  Alcotest.check_raises "all x equal"
    (Invalid_argument "Regression.ols: degenerate x values") (fun () ->
      ignore (Regression.ols ~xs:[| 1.0; 1.0 |] ~ys:[| 1.0; 2.0 |]))

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basic moments" `Quick summary_basic;
          Alcotest.test_case "empty" `Quick summary_empty;
          Alcotest.test_case "single observation" `Quick summary_single;
          Alcotest.test_case "merge = whole" `Quick summary_merge_equals_whole;
          Alcotest.test_case "merge with empty" `Quick summary_merge_with_empty;
          Alcotest.test_case "numerical stability" `Quick summary_welford_stability;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "median odd" `Quick quantile_median_odd;
          Alcotest.test_case "median even" `Quick quantile_median_even;
          Alcotest.test_case "extremes" `Quick quantile_extremes;
          Alcotest.test_case "input not mutated" `Quick quantile_does_not_mutate;
          Alcotest.test_case "quartiles" `Quick quantile_quartiles;
          Alcotest.test_case "empty rejected" `Quick quantile_empty_rejected;
          Alcotest.test_case "bad q rejected" `Quick quantile_out_of_range_rejected;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick histogram_counts;
          Alcotest.test_case "outliers counted" `Quick histogram_counts_outliers;
          Alcotest.test_case "hi endpoint" `Quick histogram_hi_lands_in_last_bin;
          Alcotest.test_case "NaN rejected" `Quick histogram_rejects_nan;
          Alcotest.test_case "degenerate data" `Quick histogram_degenerate_data;
          Alcotest.test_case "bin ranges" `Quick histogram_bin_range;
          Alcotest.test_case "auto range" `Quick histogram_of_data_auto_range;
        ] );
      ( "ci",
        [
          Alcotest.test_case "narrows with n" `Quick ci_narrows_with_n;
          Alcotest.test_case "contains mean" `Quick ci_contains_mean;
          Alcotest.test_case "rejects odd levels" `Quick ci_rejects_level;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact line" `Quick regression_exact_line;
          Alcotest.test_case "crossover" `Quick regression_crossover;
          Alcotest.test_case "degenerate rejected" `Quick regression_degenerate_rejected;
        ] );
    ]
