(* Topology layer: constructor validation, bit-exact serialization
   round-trip, the --topology CLI grammar, cost arithmetic, the
   zone-aware placement builders and staging-aware lower bound — and
   THE safety contract of the tentpole refactor: attaching the uniform
   (or a free-edged multi-zone) topology to an instance is bit-for-bit
   the topology-free engine and the scalar-bandwidth recovery policy,
   across the PR 4 fault-scenario ensemble and every dispatch policy. *)

module Topology = Usched_model.Topology
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Bitset = Usched_model.Bitset
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Engine = Usched_desim.Engine
module Dispatch = Usched_desim.Dispatch
module Schedule = Usched_desim.Schedule
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json
module Rng = Usched_prng.Rng
module Placement = Usched_core.Placement
module Lower_bounds = Usched_core.Lower_bounds
module Zone_placement = Usched_core.Zone_placement

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* A two-zone topology with a priced cross link, used throughout. *)
let two_zone ?(bandwidth = 1.0) ?(latency = 0.5) () =
  Topology.make ~zone_of:[| 0; 1 |]
    ~bandwidth:[| [| infinity; bandwidth |]; [| bandwidth; infinity |] |]
    ~latency:[| [| 0.0; latency |]; [| latency; 0.0 |] |]

(* ------------------------- construction ----------------------------- *)

let constructors () =
  let u = Topology.uniform ~m:3 in
  checki "uniform m" 3 (Topology.m u);
  checki "uniform zones" 1 (Topology.zones u);
  checkb "uniform is uniform" true (Topology.is_uniform u);
  close "uniform staging free" 0.0
    (Topology.staging_time u ~src:0 ~dst:2 ~size:7.0);
  let z = Topology.zoned ~m:4 ~zones:2 ~bandwidth:2.0 () in
  checki "zoned zones" 2 (Topology.zones z);
  checkb "balanced split" true
    (Topology.zone z 0 = 0 && Topology.zone z 1 = 0 && Topology.zone z 2 = 1
   && Topology.zone z 3 = 1);
  checkb "same zone" true (Topology.same_zone z 0 1);
  checkb "cross zone" false (Topology.same_zone z 1 2);
  close "intra-zone staging free" 0.0
    (Topology.staging_time z ~src:0 ~dst:1 ~size:4.0);
  close "cross-zone staging = size/bw" 2.0
    (Topology.staging_time z ~src:0 ~dst:3 ~size:4.0);
  let zl = Topology.zoned ~latency:0.5 ~m:4 ~zones:2 ~bandwidth:2.0 () in
  close "latency adds" 2.5 (Topology.staging_time zl ~src:0 ~dst:3 ~size:4.0);
  close "zone_cost diagonal" 0.0 (Topology.zone_cost zl ~src:1 ~dst:1 ~size:9.0);
  close "zone_cost off-diagonal" 2.5
    (Topology.zone_cost zl ~src:0 ~dst:1 ~size:4.0)

let validation () =
  let bw2 = [| [| infinity; 1.0 |]; [| 1.0; infinity |] |] in
  let lat2 = [| [| 0.0; 0.5 |]; [| 0.5; 0.0 |] |] in
  raises_invalid "empty machine set" (fun () ->
      Topology.make ~zone_of:[||] ~bandwidth:bw2 ~latency:lat2);
  raises_invalid "non-contiguous zones" (fun () ->
      Topology.make ~zone_of:[| 0; 2 |] ~bandwidth:bw2 ~latency:lat2);
  raises_invalid "empty zone" (fun () ->
      Topology.make ~zone_of:[| 1; 1 |] ~bandwidth:bw2 ~latency:lat2);
  raises_invalid "asymmetric bandwidth" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |]
        ~bandwidth:[| [| infinity; 1.0 |]; [| 2.0; infinity |] |] ~latency:lat2);
  raises_invalid "NaN bandwidth" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |]
        ~bandwidth:[| [| infinity; nan |]; [| nan; infinity |] |] ~latency:lat2);
  raises_invalid "zero bandwidth" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |]
        ~bandwidth:[| [| infinity; 0.0 |]; [| 0.0; infinity |] |] ~latency:lat2);
  raises_invalid "finite diagonal bandwidth" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |]
        ~bandwidth:[| [| 5.0; 1.0 |]; [| 1.0; 5.0 |] |] ~latency:lat2);
  raises_invalid "negative latency" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |] ~bandwidth:bw2
        ~latency:[| [| 0.0; -1.0 |]; [| -1.0; 0.0 |] |]);
  raises_invalid "infinite latency" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |] ~bandwidth:bw2
        ~latency:[| [| 0.0; infinity |]; [| infinity; 0.0 |] |]);
  raises_invalid "nonzero diagonal latency" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |] ~bandwidth:bw2
        ~latency:[| [| 1.0; 0.5 |]; [| 0.5; 1.0 |] |]);
  raises_invalid "ragged matrix" (fun () ->
      Topology.make ~zone_of:[| 0; 1 |]
        ~bandwidth:[| [| infinity |]; [| 1.0; infinity |] |] ~latency:lat2);
  raises_invalid "zoned zones > m" (fun () ->
      Topology.zoned ~m:2 ~zones:3 ~bandwidth:1.0 ());
  raises_invalid "instance machine-count mismatch" (fun () ->
      Instance.of_ests ~m:3 ~alpha:(Uncertainty.alpha 2.0)
        ~topology:(Topology.uniform ~m:2) [| 1.0 |])

(* -------------------- serialization round-trip ---------------------- *)

let topo_gen =
  QCheck.Gen.(
    let* m = int_range 1 6 in
    let* z = int_range 1 m in
    let* seed = int_bound 1_000_000 in
    return (m, z, seed))

let random_topology (m, z, seed) =
  let rng = Rng.create ~seed () in
  let zone_of = Array.init m (fun i -> i * z / m) in
  let cell () =
    if Rng.bernoulli rng ~p:0.2 then infinity
    else Rng.float_range rng ~lo:0.25 ~hi:8.0
  in
  let bandwidth = Array.make_matrix z z infinity in
  let latency = Array.make_matrix z z 0.0 in
  for a = 0 to z - 1 do
    for b = a + 1 to z - 1 do
      let bw = cell () and lat = Rng.float_range rng ~lo:0.0 ~hi:3.0 in
      bandwidth.(a).(b) <- bw;
      bandwidth.(b).(a) <- bw;
      latency.(a).(b) <- lat;
      latency.(b).(a) <- lat
    done
  done;
  Topology.make ~zone_of ~bandwidth ~latency

let prop_round_trip =
  QCheck.Test.make ~name:"to_string/of_string round-trips bit-exactly"
    ~count:300
    (QCheck.make
       ~print:(fun (m, z, seed) -> Printf.sprintf "m=%d z=%d seed=%d" m z seed)
       topo_gen)
    (fun params ->
      let t = random_topology params in
      match Topology.of_string (Topology.to_string t) with
      | Ok t' -> Topology.equal t t'
      | Error msg -> QCheck.Test.fail_reportf "round-trip failed: %s" msg)

let spec_grammar () =
  (match Topology.of_spec ~m:4 "uniform" with
  | Ok t -> checkb "uniform spec" true (Topology.is_uniform t && Topology.m t = 4)
  | Error e -> Alcotest.failf "uniform rejected: %s" e);
  (match Topology.of_spec ~m:4 "zones:2:0.5" with
  | Ok t ->
      checki "zones spec zones" 2 (Topology.zones t);
      close "zones spec bandwidth" 8.0
        (Topology.staging_time t ~src:0 ~dst:3 ~size:4.0)
  | Error e -> Alcotest.failf "zones:2:0.5 rejected: %s" e);
  (match Topology.of_spec ~m:4 "zones:4:0.1:5" with
  | Ok t ->
      checki "zones+latency zones" 4 (Topology.zones t);
      close "zones+latency staging" 15.0
        (Topology.staging_time t ~src:0 ~dst:3 ~size:1.0)
  | Error e -> Alcotest.failf "zones:4:0.1:5 rejected: %s" e);
  let serialized = Topology.to_string (two_zone ()) in
  (match Topology.of_spec ~m:2 serialized with
  | Ok t -> checkb "serialized form accepted" true (Topology.equal t (two_zone ()))
  | Error e -> Alcotest.failf "serialized form rejected: %s" e);
  let contains msg frag =
    let fl = String.length frag and ml = String.length msg in
    let rec scan i = i + fl <= ml && (String.sub msg i fl = frag || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun bad ->
      match Topology.of_spec ~m:4 bad with
      | Ok _ -> Alcotest.failf "malformed spec %S accepted" bad
      | Error msg ->
          checkb
            (Printf.sprintf "error for %S carries the grammar" bad)
            true
            (contains msg "uniform" && contains msg "zones:Z:BW"))
    [ "zones:0:1"; "zones:9:1"; "zones:2:-1"; "bogus"; ""; "zones:2" ];
  (* Machine-count mismatch on the serialized form is rejected. *)
  match Topology.of_spec ~m:5 serialized with
  | Ok _ -> Alcotest.fail "wrong-m serialized form accepted"
  | Error _ -> ()

(* ------------------- recovery scalar contract ----------------------- *)

let prop_recovery_uniform_is_scalar =
  QCheck.Test.make
    ~name:"uniform topology reproduces scalar-bandwidth recovery bit-for-bit"
    ~count:300
    (QCheck.make
       ~print:(fun (m, bw, size, seed) ->
         Printf.sprintf "m=%d bw=%.4f size=%.4f seed=%d" m bw size seed)
       QCheck.Gen.(
         let* m = int_range 1 6 in
         let* bw = float_range 0.1 20.0 in
         let* size = float_range 0.0 50.0 in
         let* seed = int_bound 1_000_000 in
         return (m, bw, size, seed)))
    (fun (m, bw, size, seed) ->
      let rng = Rng.create ~seed () in
      let policy = Recovery.make ~bandwidth:bw () in
      let topo = Topology.uniform ~m in
      let src = Rng.int rng m and dst = Rng.int rng m in
      Recovery.transfer_time policy ~src ~dst ~size
      = Recovery.transfer_time ~topology:topo policy ~src ~dst ~size)

let transfer_time_paths () =
  let policy = Recovery.make ~bandwidth:4.0 () in
  let topo = two_zone ~bandwidth:1.0 ~latency:0.5 () in
  close "intra-zone = scalar" 2.0
    (Recovery.transfer_time ~topology:topo policy ~src:0 ~dst:0 ~size:8.0);
  (* Cross-zone: latency + size / min(policy bw, link bw). *)
  close "cross-zone capped by the link" 8.5
    (Recovery.transfer_time ~topology:topo policy ~src:0 ~dst:1 ~size:8.0);
  let fat = two_zone ~bandwidth:100.0 ~latency:0.5 () in
  close "cross-zone capped by the pipeline" 2.5
    (Recovery.transfer_time ~topology:fat policy ~src:0 ~dst:1 ~size:8.0)

(* ---------------- the golden engine contract ------------------------ *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, p, seed))

let scenario =
  QCheck.make
    ~print:(fun (n, m, k, p, seed) ->
      Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d" n m k p seed)
    scenario_gen

let build (n, m, k, p, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let sizes = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:4.0) in
  let instance =
    Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ~sizes ests
  in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    Array.init n (fun j ->
        Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  let order = Instance.lpt_order instance in
  let horizon = 2.0 *. Realization.total realization in
  let faults =
    Trace.merge
      (Trace.random_crashes rng ~m ~p ~horizon)
      (Trace.merge
         (Trace.random_outages rng ~m ~p ~horizon ~duration:(0.5, 5.0))
         (Trace.random_slowdowns rng ~m ~p ~horizon ~factor:(0.2, 0.9)))
  in
  (instance, realization, placement, order, faults)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

let outcomes_identical (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.completed = b.Engine.completed
  && a.Engine.stranded = b.Engine.stranded
  && a.Engine.makespan = b.Engine.makespan
  && a.Engine.wasted = b.Engine.wasted
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Engine.Stranded, Engine.Stranded -> true
         | Engine.Finished e, Engine.Finished f -> entries_equal e f
         | _ -> false)
       a.Engine.fates b.Engine.fates
  && Json.to_string (Metrics.to_json a.Engine.metrics)
     = Json.to_string (Metrics.to_json b.Engine.metrics)

(* A multi-zone topology whose every edge is free: staging times are all
   exactly 0, so it must be as invisible as the uniform one — the
   intra-zone fast paths and the [x +. 0.0 = x] identities both get
   exercised. *)
let free_edged ~m =
  if m < 2 then Topology.uniform ~m
  else
    let z = 2 in
    Topology.make
      ~zone_of:(Array.init m (fun i -> i * z / m))
      ~bandwidth:(Array.make_matrix z z infinity)
      ~latency:(Array.make_matrix z z 0.0)

(* THE golden property: the faulty engine and scalar recovery with the
   uniform (and free-edged) topology attached are bit-for-bit the
   topology-free run — fates, floats, events, metrics — across mixed
   fault regimes, recovery none/neutral/active, and every dispatch
   policy. *)
let prop_uniform_topology_is_golden =
  QCheck.Test.make
    ~name:"uniform/free topologies are bit-for-bit the bare faulty engine"
    ~count:320 scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, faults = build s in
      let m = Instance.m instance in
      let speculation = if seed mod 3 = 0 then Some 1.3 else None in
      let metrics_on = seed mod 2 = 0 in
      let recovery =
        match seed mod 5 with
        | 0 | 1 ->
            Recovery.make ~detection_latency:0.5
              ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:1.0
              ~checkpoint_interval:1.0 ~max_retries:2 ()
        | 2 -> Recovery.make ()
        | _ -> Recovery.none
      in
      let registry () =
        if metrics_on then Metrics.create () else Metrics.disabled
      in
      let run dispatch instance =
        Engine.run_faulty_traced ?speculation ~dispatch ~recovery
          ~metrics:(registry ()) instance realization ~faults
          ~placement:(Array.map Bitset.copy placement) ~order
      in
      List.for_all
        (fun dispatch ->
          let a, ev_a = run dispatch instance in
          List.for_all
            (fun topo ->
              let b, ev_b =
                run dispatch (Instance.with_topology instance (Some topo))
              in
              outcomes_identical a b && ev_a = ev_b)
            [ Topology.uniform ~m; free_edged ~m ])
        Dispatch.builtin)

(* Healthy engine: same contract for schedule and event log. *)
let prop_uniform_topology_is_golden_healthy =
  QCheck.Test.make
    ~name:"healthy engine: uniform topology is bit-for-bit the bare engine"
    ~count:200 scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, _ = build s in
      let m = Instance.m instance in
      let speeds =
        if seed mod 2 = 0 then
          Some (Array.init m (fun i -> 0.5 +. (0.5 *. float_of_int (i + 1))))
        else None
      in
      let a, ev_a =
        Engine.run_traced ?speeds instance realization ~placement ~order
      in
      let b, ev_b =
        Engine.run_traced ?speeds
          (Instance.with_topology instance (Some (Topology.uniform ~m)))
          realization ~placement ~order
      in
      ev_a = ev_b
      && Array.for_all2 entries_equal
           (Array.init (Schedule.n a) (Schedule.entry a))
           (Array.init (Schedule.n b) (Schedule.entry b)))

(* -------------------- engine staging behavior ----------------------- *)

(* One task, placed only across the zone boundary: the engine charges
   the staging time before (well, around) the execution — the finish
   moves back by exactly latency + size/bandwidth. *)
let staging_delays_first_copy () =
  let topo = two_zone ~bandwidth:1.0 ~latency:0.5 () in
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact ~sizes:[| 2.0 |]
      ~topology:topo [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let remote = [| Bitset.of_list 2 [ 1 ] |] in
  let s =
    Engine.run instance realization ~placement:remote ~order:[| 0 |]
  in
  let e = (Schedule.entry s 0 : Schedule.entry) in
  checki "runs on the remote holder" 1 e.Schedule.machine;
  (* Home is machine 0 (0 mod 2); staging 0.5 + 2/1 = 2.5 on top of 4. *)
  close "staging charged on the cross-zone copy" 6.5 e.Schedule.finish;
  let local = [| Bitset.of_list 2 [ 0 ] |] in
  let s0 =
    Engine.run instance realization ~placement:local ~order:[| 0 |]
  in
  close "home-zone copy stages for free" 4.0
    (Schedule.entry s0 0).Schedule.finish

(* -------------------- placement cost accounting --------------------- *)

let replication_cost_accounting () =
  let topo = two_zone ~bandwidth:1.0 ~latency:0.5 () in
  let sizes = [| 2.0; 3.0 |] in
  let p =
    Placement.of_sets ~m:2
      [| Bitset.of_list 2 [ 0; 1 ]; Bitset.of_list 2 [ 1 ] |]
  in
  let costs = Placement.replication_costs p ~topology:topo ~sizes in
  (* Task 0 (home 0): free on 0, 0.5 + 2/1 across. Task 1 (home 1):
     its only replica is at home. *)
  close "task 0 pays the cross link" 2.5 costs.(0);
  close "task 1 is free at home" 0.0 costs.(1);
  close "total" 2.5 (Placement.replication_cost p ~topology:topo ~sizes);
  let u = Topology.uniform ~m:2 in
  close "uniform topology costs nothing" 0.0
    (Placement.replication_cost p ~topology:u ~sizes);
  raises_invalid "sizes length mismatch" (fun () ->
      Placement.replication_costs p ~topology:topo ~sizes:[| 1.0 |]);
  raises_invalid "machine-count mismatch" (fun () ->
      Placement.replication_costs p ~topology:(Topology.uniform ~m:3) ~sizes)

let staged_lower_bound () =
  let topo = two_zone ~bandwidth:1.0 ~latency:0.5 () in
  let p = [| 4.0 |] and sizes = [| 2.0 |] in
  let sets = [| Bitset.of_list 2 [ 1 ] |] in
  close "staged inflates by the cheapest staging" 6.5
    (Lower_bounds.staged ~topology:topo ~sizes ~sets ~m:2 p);
  let both = [| Bitset.of_list 2 [ 0; 1 ] |] in
  close "a home holder makes staging unavoidable-free" 4.0
    (Lower_bounds.staged ~topology:topo ~sizes ~sets:both ~m:2 p);
  close "uniform topology collapses to best" (Lower_bounds.best ~m:2 p)
    (Lower_bounds.staged ~topology:(Topology.uniform ~m:2) ~sizes ~sets ~m:2 p)

(* --------------------- zone-aware placements ------------------------ *)

let multi_zone ~m ~zones ~bandwidth = Topology.zoned ~m ~zones ~bandwidth ()

let zone_of_replicas topo set =
  let zs = ref [] in
  Bitset.iter (fun i -> zs := Topology.zone topo i :: !zs) set;
  List.sort_uniq Int.compare !zs

let zonegroup_shape () =
  let topo = multi_zone ~m:6 ~zones:3 ~bandwidth:1.0 in
  let instance =
    Instance.of_ests ~m:6 ~alpha:(Uncertainty.alpha 2.0) ~topology:topo
      (Array.init 8 (fun j -> float_of_int (j + 1)))
  in
  let p = Zone_placement.zone_group_placement ~k:2 instance in
  for j = 0 to Placement.n p - 1 do
    let set = Placement.set p j in
    checki (Printf.sprintf "task %d has 2 replicas" j) 2 (Bitset.cardinal set);
    let zs = zone_of_replicas topo set in
    checki (Printf.sprintf "task %d covers 2 zones" j) 2 (List.length zs);
    let home = Topology.zone topo (j mod 6) in
    checkb
      (Printf.sprintf "task %d keeps a home-zone replica" j)
      true (List.mem home zs)
  done;
  (* k clamped to the zone count; uniform topology degenerates to one
     replica. *)
  let huge = Zone_placement.zone_group_placement ~k:99 instance in
  checki "k clamps to the zone count" 3 (Placement.max_replication huge);
  let bare =
    Zone_placement.zone_group_placement ~k:3
      (Instance.with_topology instance None)
  in
  checki "no topology = single zone = one replica" 1
    (Placement.max_replication bare)

let localbudget_shape () =
  let topo = multi_zone ~m:6 ~zones:3 ~bandwidth:1.0 in
  let sizes = Array.init 8 (fun j -> 1.0 +. (0.5 *. float_of_int (j mod 3))) in
  let instance =
    Instance.of_ests ~m:6 ~alpha:(Uncertainty.alpha 2.0) ~sizes ~topology:topo
      (Array.init 8 (fun j -> float_of_int (j + 1)))
  in
  let home_only = Zone_placement.local_budget_placement ~budget:0.0 instance in
  for j = 0 to 7 do
    checki (Printf.sprintf "B=0: task %d home only" j) 1
      (Placement.replication home_only j);
    let home = Topology.zone topo (j mod 6) in
    checkb
      (Printf.sprintf "B=0: task %d stays in its home zone" j)
      true
      (zone_of_replicas topo (Placement.set home_only j) = [ home ])
  done;
  close "B=0 placement is free" 0.0
    (Placement.replication_cost home_only ~topology:topo ~sizes);
  let everywhere = Zone_placement.local_budget_placement ~budget:1e6 instance in
  checki "huge budget covers every zone" 3 (Placement.min_replication everywhere);
  (* The budget is a hard per-task cap. *)
  let budget = 1.2 in
  let capped = Zone_placement.local_budget_placement ~budget instance in
  let costs = Placement.replication_costs capped ~topology:topo ~sizes in
  Array.iteri
    (fun j c ->
      checkb
        (Printf.sprintf "task %d cost %.3f within budget" j c)
        true
        (c <= (budget *. sizes.(j)) +. 1e-9))
    costs

let zonegroup_cheaper_than_full () =
  let topo = multi_zone ~m:6 ~zones:3 ~bandwidth:1.0 in
  let sizes = Array.make 8 1.0 in
  let instance =
    Instance.of_ests ~m:6 ~alpha:(Uncertainty.alpha 2.0) ~sizes ~topology:topo
      (Array.init 8 (fun j -> float_of_int (j + 1)))
  in
  let zg = Zone_placement.zone_group_placement ~k:2 instance in
  let full = Placement.full ~m:6 ~n:8 in
  let cost p = Placement.replication_cost p ~topology:topo ~sizes in
  checkb "zonegroup strictly cheaper than full replication" true
    (cost zg < cost full);
  (* And still zone-fault-robust: every task survives a whole-zone
     outage (any single zone's machines failing together). *)
  List.iter
    (fun z ->
      let lost = ref [] in
      for i = 0 to 5 do
        if Topology.zone topo i = z then lost := i :: !lost
      done;
      checkb
        (Printf.sprintf "zonegroup survives zone %d outage" z)
        true
        (Placement.without_machines zg !lost <> None))
    [ 0; 1; 2 ]

(* ------------------------------ suite ------------------------------- *)

let () =
  Alcotest.run "topology"
    [
      ( "model",
        [
          Alcotest.test_case "constructors and cost arithmetic" `Quick
            constructors;
          Alcotest.test_case "validation rejects malformed input" `Quick
            validation;
          Alcotest.test_case "of_spec grammar" `Quick spec_grammar;
          QCheck_alcotest.to_alcotest prop_round_trip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "transfer_time path arithmetic" `Quick
            transfer_time_paths;
          QCheck_alcotest.to_alcotest prop_recovery_uniform_is_scalar;
        ] );
      ( "golden",
        [
          QCheck_alcotest.to_alcotest prop_uniform_topology_is_golden;
          QCheck_alcotest.to_alcotest prop_uniform_topology_is_golden_healthy;
        ] );
      ( "engine",
        [
          Alcotest.test_case "staging delays the first cross-zone copy" `Quick
            staging_delays_first_copy;
        ] );
      ( "costs",
        [
          Alcotest.test_case "replication cost accounting" `Quick
            replication_cost_accounting;
          Alcotest.test_case "staged lower bound" `Quick staged_lower_bound;
        ] );
      ( "placement",
        [
          Alcotest.test_case "zonegroup shape" `Quick zonegroup_shape;
          Alcotest.test_case "localbudget shape" `Quick localbudget_shape;
          Alcotest.test_case "zonegroup beats full replication on cost" `Quick
            zonegroup_cheaper_than_full;
        ] );
    ]
