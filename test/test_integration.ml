(* Integration tests: the experiment harness end to end. *)

module Experiments = Usched_experiments
module Runner = Usched_experiments.Runner
module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Workload = Usched_model.Workload
module Uncertainty = Usched_model.Uncertainty
module Summary = Usched_stats.Summary
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))

let tiny_config =
  { Runner.default_config with reps = 4; domains = 2; exact_n = 10 }

let registry_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  Alcotest.(check int) "no duplicates"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let registry_find () =
  checkb "fig1 exists" true (Experiments.Registry.find "fig1" <> None);
  checkb "nonsense missing" true (Experiments.Registry.find "zzz" = None)

let registry_covers_all_paper_artifacts () =
  List.iter
    (fun id ->
      checkb (id ^ " registered") true (Experiments.Registry.find id <> None))
    [ "fig1"; "fig2"; "tab1"; "fig3"; "fig45"; "tab2"; "fig6" ]

let registry_covers_extensions () =
  List.iter
    (fun id ->
      checkb (id ^ " registered") true (Experiments.Registry.find id <> None))
    [
      "ablation-phase2";
      "ablation-adversary";
      "ablation-selective";
      "ablation-budget";
      "ablation-errors";
      "alpha-sweep";
      "fault-tolerance";
      "hetero";
      "lb-search";
      "portfolio";
    ]

let opt_estimate_exact_for_small () =
  let _, exact = Runner.opt_estimate tiny_config ~m:2 [| 1.0; 2.0; 3.0 |] in
  checkb "small is exact" true exact;
  let _, exact =
    Runner.opt_estimate tiny_config ~m:2 (Array.make 50 1.0)
  in
  checkb "large falls back to bounds" false exact

let opt_estimate_sound () =
  let value, exact = Runner.opt_estimate tiny_config ~m:2 [| 3.0; 3.0; 2.0; 2.0; 2.0 |] in
  checkb "exact" true exact;
  close "optimum" 6.0 value

let ratio_at_least_one () =
  let instance =
    Instance.of_ests ~m:3 ~alpha:(Uncertainty.alpha 1.5)
      [| 4.0; 3.0; 2.0; 1.0 |]
  in
  let realization = Realization.exact instance in
  let r =
    Runner.ratio tiny_config Core.Full_replication.lpt_no_restriction instance
      realization
  in
  checkb "ratio >= 1" true (r >= 1.0 -. 1e-9)

let random_sweep_reproducible () =
  let sweep () =
    Runner.random_sweep tiny_config ~algo:Core.No_replication.lpt_no_choice
      ~spec:(Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~realize:(fun instance rng -> Realization.uniform_factor instance rng)
      ~n:8 ~m:3 ~alpha:1.5
  in
  let a = sweep () and b = sweep () in
  Alcotest.(check int) "counts" (Summary.count a.Runner.summary)
    (Summary.count b.Runner.summary);
  close "same mean (deterministic streams)" (Summary.mean a.Runner.summary)
    (Summary.mean b.Runner.summary);
  close "same worst" a.Runner.worst b.Runner.worst

let random_sweep_respects_reps () =
  let sweep =
    Runner.random_sweep tiny_config ~algo:Core.Full_replication.ls_no_restriction
      ~spec:(Workload.Identical 1.0)
      ~realize:(fun instance rng -> Realization.extremes ~p_high:0.5 instance rng)
      ~n:6 ~m:2 ~alpha:2.0
  in
  Alcotest.(check int) "one ratio per rep" tiny_config.Runner.reps
    (Summary.count sweep.Runner.summary)

let sweep_ratios_bounded_by_guarantee () =
  let m = 3 and alpha = 2.0 in
  let sweep =
    Runner.random_sweep
      { tiny_config with reps = 20 }
      ~algo:Core.Full_replication.ls_no_restriction
      ~spec:(Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~realize:(fun instance rng -> Realization.uniform_factor instance rng)
      ~n:9 ~m ~alpha
  in
  checkb "worst within Graham bound" true
    (sweep.Runner.worst <= Core.Guarantees.list_scheduling ~m +. 1e-9)

let adversarial_ratio_sound () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 2.0)
      (Array.make 6 1.0)
  in
  let worst =
    Runner.adversarial_ratio tiny_config Core.No_replication.lpt_no_choice
      instance
  in
  checkb "above 1" true (worst >= 1.0 -. 1e-9);
  checkb "below Theorem 2" true
    (worst <= Core.Guarantees.lpt_no_choice ~m:2 ~alpha:2.0 +. 1e-9)

let quick_config_caps_reps () =
  let q = Runner.quick { Runner.default_config with reps = 100 } in
  Alcotest.(check int) "capped at 5" 5 q.Runner.reps

let csv_export_writes_files () =
  let dir = Filename.temp_file "usched" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let config = { tiny_config with Runner.csv_dir = Some dir } in
      Runner.maybe_csv config ~name:"probe" ~header:[ "a"; "b" ]
        [ [ "1"; "2" ] ];
      checkb "file created" true
        (Sys.file_exists (Filename.concat dir "probe.csv")));
  (* Without csv_dir nothing is written anywhere. *)
  Runner.maybe_csv tiny_config ~name:"probe" ~header:[ "a" ] [ [ "1" ] ];
  checkb "no-op without dir" true true

(* Cheap experiments must run end-to-end without raising. The heavyweight
   ones (tab1, fig3) are exercised by the bench harness. *)
let cheap_experiments_run () =
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | None -> Alcotest.failf "experiment %s missing" id
      | Some e -> e.Experiments.Registry.run tiny_config)
    [ "fig2"; "fig45"; "fig6"; "fault-tolerance"; "hetero" ]

let fig1_theoretical_ratio_monotone () =
  let m = 6 and alpha = 2.0 in
  let r lambda = Experiments.Fig1.theoretical_ratio_at_lambda ~m ~alpha ~lambda in
  checkb "grows with lambda" true (r 1 < r 2 && r 2 < r 10 && r 10 < r 100);
  checkb "bounded by the limit" true
    (r 1000 < Core.Guarantees.no_replication_lower_bound ~m ~alpha)

let fig3_divisors () =
  Alcotest.(check (list int)) "divisors of 12"
    [ 1; 2; 3; 4; 6; 12 ]
    (Experiments.Fig3.divisors 12)

let fig3_guarantee_series_shape () =
  let series = Experiments.Fig3.guarantee_series ~m:210 ~alpha:2.0 in
  Alcotest.(check int) "one point per divisor" 16 (List.length series);
  let replications = List.map fst series in
  checkb "starts at 1 replica" true (List.hd replications = 1);
  checkb "ends at 210 replicas" true
    (List.nth replications (List.length replications - 1) = 210);
  (* Ratio improves (decreases) as replication grows. *)
  let ratios = List.map snd series in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && decreasing rest
    | _ -> true
  in
  checkb "monotone improvement" true (decreasing ratios)

let fig6_curves_shapes () =
  let deltas = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let sabo = Experiments.Fig6.sabo_curve ~alpha:(sqrt 2.0) ~rho:1.0 ~deltas in
  (* Along growing delta: memory guarantee falls, makespan guarantee
     rises. *)
  let rec shape = function
    | (mem_a, mk_a) :: ((mem_b, mk_b) :: _ as rest) ->
        mem_a >= mem_b -. 1e-9 && mk_a <= mk_b +. 1e-9 && shape rest
    | _ -> true
  in
  checkb "SABO tradeoff curve" true (shape sabo);
  let abo = Experiments.Fig6.abo_curve ~m:5 ~alpha:(sqrt 2.0) ~rho:1.0 ~deltas in
  checkb "ABO tradeoff curve" true (shape abo)

let example_instance_is_mixed () =
  let instance = Experiments.Fig45.example_instance () in
  checkb "has time-heavy tasks" true
    (Array.exists (fun t -> Usched_model.Task.est t > 4.0) (Instance.tasks instance));
  checkb "has memory-heavy tasks" true
    (Array.exists (fun t -> Usched_model.Task.size t > 4.0) (Instance.tasks instance))

let () =
  Alcotest.run "integration"
    [
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick registry_ids_unique;
          Alcotest.test_case "find" `Quick registry_find;
          Alcotest.test_case "covers paper artifacts" `Quick
            registry_covers_all_paper_artifacts;
          Alcotest.test_case "covers extensions" `Quick registry_covers_extensions;
        ] );
      ( "runner",
        [
          Alcotest.test_case "opt estimate switch" `Quick opt_estimate_exact_for_small;
          Alcotest.test_case "opt estimate value" `Quick opt_estimate_sound;
          Alcotest.test_case "ratio >= 1" `Quick ratio_at_least_one;
          Alcotest.test_case "sweeps reproducible" `Quick random_sweep_reproducible;
          Alcotest.test_case "sweep repetitions" `Quick random_sweep_respects_reps;
          Alcotest.test_case "sweep within guarantee" `Quick
            sweep_ratios_bounded_by_guarantee;
          Alcotest.test_case "adversarial ratio" `Quick adversarial_ratio_sound;
          Alcotest.test_case "quick config" `Quick quick_config_caps_reps;
          Alcotest.test_case "csv export" `Quick csv_export_writes_files;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "cheap experiments run" `Slow cheap_experiments_run;
          Alcotest.test_case "fig1 ratio curve" `Quick fig1_theoretical_ratio_monotone;
          Alcotest.test_case "fig3 divisors" `Quick fig3_divisors;
          Alcotest.test_case "fig3 guarantee series" `Quick fig3_guarantee_series_shape;
          Alcotest.test_case "fig6 curve shapes" `Quick fig6_curves_shapes;
          Alcotest.test_case "fig45 instance" `Quick example_instance_is_mixed;
        ] );
    ]
