(* Unit and property tests for the optimum lower bounds. *)

module Lb = Usched_core.Lower_bounds
module Opt = Usched_core.Opt

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let average_bound () =
  close "total / m" 2.0 (Lb.average ~m:3 [| 1.0; 2.0; 3.0 |])

let largest_bound () =
  close "max" 3.0 (Lb.largest [| 1.0; 2.0; 3.0 |]);
  close "empty" 0.0 (Lb.largest [||])

let packing_trivial_when_n_le_m () =
  close "no forced pairing" 0.0 (Lb.packing ~m:3 [| 5.0; 5.0; 5.0 |])

let packing_pair_bound () =
  (* m=2, tasks (5,4,3): some machine gets two of them; best pair 4+3. *)
  close "pair" 7.0 (Lb.packing ~m:2 [| 5.0; 4.0; 3.0 |])

let packing_higher_multiplicity () =
  (* m=2, five equal tasks: some machine gets 3 -> bound 3. *)
  close "triple" 3.0 (Lb.packing ~m:2 [| 1.0; 1.0; 1.0; 1.0; 1.0 |])

let best_takes_max () =
  (* avg = 6, largest = 6, packing (m=2, n=3): 3+3=6 -> best 6. *)
  close "max of all" 6.0 (Lb.best ~m:2 [| 6.0; 3.0; 3.0 |]);
  close "dominated by average" 7.0 (Lb.best ~m:1 [| 3.0; 4.0 |]);
  (* largest dominates: one huge task among small ones. *)
  close "dominated by largest" 9.0 (Lb.best ~m:4 [| 9.0; 1.0; 1.0; 1.0 |])

let invalid_inputs () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Lower_bounds: m must be >= 1")
    (fun () -> ignore (Lb.best ~m:0 [| 1.0 |]));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Lower_bounds: negative time") (fun () ->
      ignore (Lb.best ~m:1 [| -1.0 |]))

let prop_sound_vs_exact_optimum =
  QCheck.Test.make ~name:"every bound is below the exact optimum" ~count:300
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_range 1 12) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      let opt = Opt.makespan ~m p in
      Lb.best ~m p <= opt +. 1e-9)

let prop_monotone_in_m =
  QCheck.Test.make ~name:"more machines never raise the bound" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 15) (float_range 0.1 10.0))
    (fun p ->
      let p = Array.of_list p in
      let b2 = Lb.best ~m:2 p and b4 = Lb.best ~m:4 p in
      b4 <= b2 +. 1e-9)

let prop_packing_at_least_largest_pair_when_crowded =
  QCheck.Test.make ~name:"packing bound is tight on identical tasks" ~count:200
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (m, lambda) ->
      (* lambda*m identical unit tasks: packing must reach exactly lambda
         (some machine gets lambda of them). *)
      let p = Array.make (lambda * m) 1.0 in
      let expected = if lambda > 1 then float_of_int lambda else 0.0 in
      Float.abs (Lb.packing ~m p -. expected) < 1e-9)

let () =
  checkb "self" true true;
  Alcotest.run "lower_bounds"
    [
      ( "unit",
        [
          Alcotest.test_case "average" `Quick average_bound;
          Alcotest.test_case "largest" `Quick largest_bound;
          Alcotest.test_case "packing n<=m" `Quick packing_trivial_when_n_le_m;
          Alcotest.test_case "packing pair" `Quick packing_pair_bound;
          Alcotest.test_case "packing multiplicity" `Quick packing_higher_multiplicity;
          Alcotest.test_case "best" `Quick best_takes_max;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sound_vs_exact_optimum;
            prop_monotone_in_m;
            prop_packing_at_least_largest_pair_when_crowded;
          ] );
    ]
