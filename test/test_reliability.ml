(* Reliability-targeted replication: unit solves with hand-checked
   bounds, feasibility edges, and the Monte-Carlo acceptance check —
   solver placements achieve P(no stranded task) >= target on several
   seeded failure profiles. *)

module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Failure = Usched_model.Failure
module Core = Usched_core
module Reliability = Usched_core.Reliability
module Placement = Usched_core.Placement
module Rng = Usched_prng.Rng
module Sweep = Usched_experiments.Reliability_sweep

let close = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let instance_of ?failure ~m ests =
  Instance.of_ests ?failure ~m ~alpha:(Uncertainty.alpha 2.0) ests

(* --------------------------- unit solves ---------------------------- *)

let per_task_bound () =
  close "0.99 over 10 tasks" 0.001 (Reliability.per_task_bound ~target:0.99 ~n:10);
  Alcotest.check_raises "target 1 rejected"
    (Invalid_argument "Reliability: target 1 must be in (0, 1)")
    (fun () -> ignore (Reliability.per_task_bound ~target:1.0 ~n:10));
  Alcotest.check_raises "n 0 rejected"
    (Invalid_argument "Reliability.per_task_bound: n < 1") (fun () ->
      ignore (Reliability.per_task_bound ~target:0.9 ~n:0))

let sets_meet_their_budget () =
  (* Uniform p = 0.05, target 0.99 over 12 tasks: per-task loss budget is
     (1 - 0.99)/12 ~ 8.3e-4; 0.05^2 = 2.5e-3 is too lossy, 0.05^3 =
     1.25e-4 fits — every task must end with exactly 3 replicas. *)
  let n = 12 and m = 6 in
  let failure = Failure.uniform ~m ~p:0.05 in
  let instance = instance_of ~failure ~m (Array.make n 1.0) in
  let placement = Reliability.placement ~target:0.99 instance in
  let eps = Reliability.per_task_bound ~target:0.99 ~n in
  Array.iteri
    (fun j degree ->
      checki (Printf.sprintf "task %d degree" j) 3 degree;
      checkb
        (Printf.sprintf "task %d loss within budget" j)
        true
        (Failure.prob_all_lost failure (Placement.set placement j) <= eps))
    (Placement.degrees placement);
  checkb "survival bound holds the target" true
    (Reliability.survival_bound instance placement >= 0.99)

let reliable_machines_mean_singletons () =
  let m = 4 in
  let failure = Failure.uniform ~m ~p:1e-6 in
  let instance = instance_of ~failure ~m [| 3.0; 2.0; 1.0; 5.0; 4.0 |] in
  let placement = Reliability.placement ~target:0.999 instance in
  Array.iter (fun d -> checki "singleton" 1 d) (Placement.degrees placement)

let degrees_follow_the_profile () =
  (* Tiered profile: the solver prefers the reliable tier for replicas,
     and flakier profiles need strictly more copies in total. *)
  let m = 6 and n = 10 in
  let flaky = Failure.uniform ~m ~p:0.3 in
  let calm = Failure.uniform ~m ~p:0.01 in
  let total profile =
    let instance = instance_of ~failure:profile ~m (Array.make n 1.0) in
    Array.fold_left ( + ) 0
      (Placement.degrees (Reliability.placement ~target:0.99 instance))
  in
  checkb "flaky needs more replicas than calm" true (total flaky > total calm)

let budget_is_respected () =
  let n = 12 and m = 4 in
  let failure = Failure.uniform ~m ~p:0.1 in
  let instance = instance_of ~failure ~m (Array.make n 1.0) in
  (* Target 0.9 over 12 unit tasks allots each task 8.3e-3; 0.1^2 = 0.01
     is too lossy, 0.1^3 = 1e-3 fits, so 3 replicas per task = 36 slots
     over 4 machines. A budget of 10 leaves the greedy one unit of
     packing slack per machine (it balances by memory but breaks ties by
     id, so a perfectly tight 9 is not packable); the solve must never
     exceed the cap on any machine. *)
  let placement = Reliability.placement ~budget:10.0 ~target:0.9 instance in
  checkb "memory cap held" true
    (Placement.memory_max placement ~sizes:(Instance.sizes instance)
    <= 10.0 +. 1e-9);
  checkb "the cap binds below full replication" true
    (Array.for_all (fun d -> d = 3) (Placement.degrees placement));
  checkb "survival bound still holds" true
    (Reliability.survival_bound instance placement >= 0.9)

let infeasible_budget () =
  let n = 12 and m = 4 in
  let failure = Failure.uniform ~m ~p:0.1 in
  let instance = instance_of ~failure ~m (Array.make n 1.0) in
  (* 8 slots per machine = 32 < the 36 replicas the target needs. *)
  checkb "tight budget raises Infeasible" true
    (match Reliability.placement ~budget:8.0 ~target:0.9 instance with
    | exception Reliability.Infeasible _ -> true
    | _ -> false)

let infeasible_target () =
  (* Even replicating everywhere, P(all lost) = 0.9^2 = 0.81 per task,
     far above the per-task budget — no placement can meet the target. *)
  let failure = Failure.uniform ~m:2 ~p:0.9 in
  let instance = instance_of ~failure ~m:2 (Array.make 5 1.0) in
  checkb "unreachable target raises Infeasible" true
    (match Reliability.placement ~target:0.9999 instance with
    | exception Reliability.Infeasible _ -> true
    | _ -> false)

let invalid_target () =
  List.iter
    (fun target ->
      checkb
        (Printf.sprintf "target %g rejected" target)
        true
        (match
           Reliability.placement ~target
             (instance_of ~m:2 [| 1.0; 2.0 |])
         with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ 0.0; 1.0; -0.5; 2.0; Float.nan ]

let default_profile_used () =
  (* No profile attached: the solver sizes against the documented
     uniform default, so the solve still succeeds and meets its target
     under [failure_or_default]. *)
  let n = 8 in
  let instance = instance_of ~m:5 (Array.init n (fun j -> float_of_int (j + 1))) in
  let placement = Reliability.placement ~target:0.99 instance in
  checkb "bound from the default profile" true
    (Reliability.survival_bound instance placement >= 0.99)

let analytic_bounds () =
  (* Hand-checked union bound: three singleton tasks on machine 0 with
     p0 = 0.1 strand together with probability 0.1 each. *)
  let failure = Failure.make [| 0.1; 0.2 |] in
  let instance = instance_of ~failure ~m:2 (Array.make 3 1.0) in
  let placement =
    Placement.of_sets ~m:2 (Array.make 3 (Bitset.singleton 2 0))
  in
  close "stranding union bound" 0.3 (Reliability.stranding_bound instance placement);
  close "survival bound" 0.7 (Reliability.survival_bound instance placement);
  let hopeless =
    Placement.of_sets ~m:2
      (Array.make 20 (Bitset.singleton 2 1))
  in
  close "survival bound clamps at 0" 0.0
    (Reliability.survival_bound instance hopeless)

let algorithm_names () =
  Alcotest.(check string)
    "unbudgeted" "Reliability(target=0.999)"
    (Reliability.algorithm ~target:0.999 ()).Core.Two_phase.name;
  Alcotest.(check string)
    "budgeted" "Reliability(target=0.99, B=16)"
    (Reliability.algorithm ~budget:16.0 ~target:0.99 ()).Core.Two_phase.name

(* ------------------- Monte-Carlo acceptance check ------------------- *)

(* The PR's headline guarantee, checked end to end on three seeded
   profiles: solve at the target, then estimate P(no stranded task) by
   Monte-Carlo over profile-driven crash traces. The solver's union
   bound is conservative, so the point estimate should sit at or above
   the target; we accept when the target lies at or below the upper end
   of the 95% bootstrap interval (~2 sigma). *)
let monte_carlo_meets_target () =
  let m = 8 and n = 30 in
  let profiles =
    [
      ("uniform", Failure.uniform ~m ~p:0.05);
      ( "tiered",
        Failure.make
          (Array.init m (fun i -> if i < m / 2 then 0.01 else 0.2)) );
      ( "random",
        Failure.make
          (let rng = Rng.create ~seed:991 () in
           Array.init m (fun _ -> Rng.float_range rng ~lo:0.01 ~hi:0.3)) );
    ]
  in
  List.iteri
    (fun pidx (pname, profile) ->
      List.iter
        (fun target ->
          let rng = Rng.create ~seed:(42 + pidx) () in
          let instance =
            Instance.with_failure
              (Workload.generate
                 (Workload.Uniform { lo = 1.0; hi = 10.0 })
                 ~n ~m
                 ~alpha:(Uncertainty.alpha 1.5)
                 rng)
              (Some profile)
          in
          let placement = Reliability.placement ~target instance in
          checkb
            (Printf.sprintf "%s: analytic bound >= %g" pname target)
            true
            (Reliability.survival_bound instance placement >= target);
          let sv =
            Sweep.monte_carlo_survival ~trials:2000 ~seed:(7 * (pidx + 1))
              ~profile placement
          in
          checkb
            (Printf.sprintf "%s: MC survival %.4f (CI hi %.4f) meets %g"
               pname sv.Sweep.point sv.Sweep.hi target)
            true
            (sv.Sweep.hi >= target))
        [ 0.9; 0.99 ])
    profiles

let mc_survival_extremes () =
  let m = 3 in
  let certain_loss = Failure.uniform ~m ~p:1.0 in
  let never = Failure.uniform ~m ~p:0.0 in
  let singletons = Placement.of_sets ~m (Array.make 4 (Bitset.singleton m 0)) in
  let sv dead profile =
    (Sweep.monte_carlo_survival ~trials:100 ~seed:5 ~profile dead).Sweep.point
  in
  close "p=1 profile strands everything" 0.0 (sv singletons certain_loss);
  close "p=0 profile strands nothing" 1.0 (sv singletons never)

let () =
  Alcotest.run "reliability"
    [
      ( "solver",
        [
          Alcotest.test_case "per-task bound" `Quick per_task_bound;
          Alcotest.test_case "sets meet their loss budget" `Quick
            sets_meet_their_budget;
          Alcotest.test_case "reliable machines mean singletons" `Quick
            reliable_machines_mean_singletons;
          Alcotest.test_case "degrees follow the profile" `Quick
            degrees_follow_the_profile;
          Alcotest.test_case "memory budget respected" `Quick budget_is_respected;
          Alcotest.test_case "infeasible budget" `Quick infeasible_budget;
          Alcotest.test_case "infeasible target" `Quick infeasible_target;
          Alcotest.test_case "invalid targets rejected" `Quick invalid_target;
          Alcotest.test_case "default profile when none attached" `Quick
            default_profile_used;
          Alcotest.test_case "analytic bounds" `Quick analytic_bounds;
          Alcotest.test_case "algorithm names" `Quick algorithm_names;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "solver placements meet the target" `Slow
            monte_carlo_meets_target;
          Alcotest.test_case "survival extremes" `Quick mc_survival_extremes;
        ] );
    ]
