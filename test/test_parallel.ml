(* Tests for the domain pool, and the paired-seed determinism contract
   of every parallel entry point built on it: sharding work over N
   domains must be bit-identical to running it on 1. *)

module Pool = Usched_parallel.Pool
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Failure = Usched_model.Failure
module Speed_band = Usched_model.Speed_band
module Core = Usched_core
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)

let recommended_positive () =
  checkb "at least one domain" true (Pool.recommended_domains () >= 1)

let init_matches_sequential () =
  let f i = (i * i) + 1 in
  let expected = Array.init 1000 f in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        expected
        (Pool.parallel_init ~domains 1000 f))
    [ 1; 2; 4 ]

let map_matches_sequential () =
  let a = Array.init 500 (fun i -> float_of_int i) in
  Alcotest.(check (array (float 1e-12)))
    "map" (Array.map sqrt a)
    (Pool.parallel_map ~domains:3 sqrt a)

let for_covers_all_indices () =
  let n = 2000 in
  let hits = Array.make n 0 in
  (* Index-disjoint writes only. *)
  Pool.parallel_for ~domains:4 n (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "each exactly once" true (Array.for_all (fun h -> h = 1) hits)

let empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_init ~domains:4 0 (fun i -> i));
  Alcotest.(check (array int)) "singleton" [| 0 |]
    (Pool.parallel_init ~domains:4 1 (fun i -> i))

let propagates_exceptions () =
  checkb "raises" true
    (try
       ignore
         (Pool.parallel_init ~domains:4 100 (fun i ->
              if i = 57 then failwith "boom" else i));
       false
     with Failure _ -> true)

let invalid_inputs () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Pool.parallel_init: domains < 1") (fun () ->
      ignore (Pool.parallel_init ~domains:0 1 (fun i -> i)));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Pool.parallel_init: negative n") (fun () ->
      ignore (Pool.parallel_init ~domains:1 (-1) (fun i -> i)))

(* ------------------ N-domain = 1-domain equality -------------------- *)

let domain_counts = [ 2; 3; 5 ]

let det_gen =
  QCheck.Gen.(
    let* n = int_range 4 16 in
    let* m = int_range 2 6 in
    let* seed = int_bound 1_000_000 in
    return (n, m, seed))

let det_scenario =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "n=%d m=%d seed=%d" n m seed)
    det_gen

let build_instance (n, m, seed) =
  let rng = Rng.create ~seed () in
  let instance =
    Workload.generate
      (Workload.Uniform { lo = 1.0; hi = 10.0 })
      ~n ~m
      ~alpha:(Uncertainty.alpha 1.5)
      rng
  in
  (instance, rng)

(* Monte-Carlo survival: trial generators are pre-split sequentially,
   so sharding the draws cannot change a single bit of the estimate or
   its bootstrap interval. *)
let prop_survival_domain_independent =
  QCheck.Test.make ~name:"monte_carlo_survival: N domains = 1 domain"
    ~count:60 det_scenario (fun ((n, m, seed) as s) ->
      let _, rng = build_instance s in
      let profile =
        Failure.make (Array.init m (fun _ -> Rng.float_range rng ~lo:0.02 ~hi:0.3))
      in
      let placement =
        Core.Placement.of_sets ~m
          (Array.init n (fun j ->
               Bitset.of_list m [ j mod m; (j + 1) mod m ]))
      in
      let run domains =
        Usched_experiments.Reliability_sweep.monte_carlo_survival ~trials:200
          ~domains ~seed ~profile placement
      in
      let base = run 1 in
      List.for_all (fun d -> run d = base) domain_counts)

(* Exhaustive corner adversary: corners are measured in parallel but
   folded sequentially in mask order, so the reported worst corner is
   the same at any domain count. *)
let prop_adversary_domain_independent =
  QCheck.Test.make ~name:"Speed_adversary.exhaustive: N domains = 1 domain"
    ~count:60 det_scenario (fun (_, m, seed) ->
      let rng = Rng.create ~seed () in
      let band =
        Speed_band.make
          (Array.init m (fun _ ->
               let lo = Rng.float_range rng ~lo:0.3 ~hi:1.0 in
               (lo, lo +. Rng.float_range rng ~lo:0.0 ~hi:1.0)))
      in
      (* Any deterministic measurement closes the loop; a weighted sum
         with a floor keeps distinct corners at distinct values. *)
      let run speeds =
        Array.fold_left (fun acc s -> (2.0 *. acc) +. s) 0.0 speeds
      in
      let base = Core.Speed_adversary.exhaustive ~domains:1 ~run band in
      List.for_all
        (fun d -> Core.Speed_adversary.exhaustive ~domains:d ~run band = base)
        domain_counts)

(* Scenario evaluation: each scenario's makespan is an independent pure
   replay, so the evaluation record is identical at any domain count. *)
let prop_scenarios_domain_independent =
  QCheck.Test.make ~name:"Scenarios.evaluate: N domains = 1 domain" ~count:60
    det_scenario (fun s ->
      let instance, rng = build_instance s in
      let scenarios =
        Core.Scenarios.sample ~count:12
          ~realize:(fun i r -> Realization.uniform_factor i r)
          ~rng instance
      in
      let algo = Core.Full_replication.lpt_no_restriction in
      let base = Core.Scenarios.evaluate ~domains:1 algo instance scenarios in
      List.for_all
        (fun d ->
          let e = Core.Scenarios.evaluate ~domains:d algo instance scenarios in
          e.Core.Scenarios.worst = base.Core.Scenarios.worst
          && e.Core.Scenarios.mean = base.Core.Scenarios.mean
          && e.Core.Scenarios.per_scenario = base.Core.Scenarios.per_scenario)
        domain_counts)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "recommended" `Quick recommended_positive;
          Alcotest.test_case "init correct" `Quick init_matches_sequential;
          Alcotest.test_case "map correct" `Quick map_matches_sequential;
          Alcotest.test_case "for covers indices" `Quick for_covers_all_indices;
          Alcotest.test_case "edge sizes" `Quick empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick propagates_exceptions;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_survival_domain_independent;
            prop_adversary_domain_independent;
            prop_scenarios_domain_independent;
          ] );
    ]
