(* Tests for the domain pool. *)

module Pool = Usched_parallel.Pool

let checkb = Alcotest.(check bool)

let recommended_positive () =
  checkb "at least one domain" true (Pool.recommended_domains () >= 1)

let init_matches_sequential () =
  let f i = (i * i) + 1 in
  let expected = Array.init 1000 f in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        expected
        (Pool.parallel_init ~domains 1000 f))
    [ 1; 2; 4 ]

let map_matches_sequential () =
  let a = Array.init 500 (fun i -> float_of_int i) in
  Alcotest.(check (array (float 1e-12)))
    "map" (Array.map sqrt a)
    (Pool.parallel_map ~domains:3 sqrt a)

let for_covers_all_indices () =
  let n = 2000 in
  let hits = Array.make n 0 in
  (* Index-disjoint writes only. *)
  Pool.parallel_for ~domains:4 n (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "each exactly once" true (Array.for_all (fun h -> h = 1) hits)

let empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_init ~domains:4 0 (fun i -> i));
  Alcotest.(check (array int)) "singleton" [| 0 |]
    (Pool.parallel_init ~domains:4 1 (fun i -> i))

let propagates_exceptions () =
  checkb "raises" true
    (try
       ignore
         (Pool.parallel_init ~domains:4 100 (fun i ->
              if i = 57 then failwith "boom" else i));
       false
     with Failure _ -> true)

let invalid_inputs () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Pool.parallel_init: domains < 1") (fun () ->
      ignore (Pool.parallel_init ~domains:0 1 (fun i -> i)));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Pool.parallel_init: negative n") (fun () ->
      ignore (Pool.parallel_init ~domains:1 (-1) (fun i -> i)))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "recommended" `Quick recommended_positive;
          Alcotest.test_case "init correct" `Quick init_matches_sequential;
          Alcotest.test_case "map correct" `Quick map_matches_sequential;
          Alcotest.test_case "for covers indices" `Quick for_covers_all_indices;
          Alcotest.test_case "edge sizes" `Quick empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick propagates_exceptions;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
    ]
