(* Tests for the closed-form guarantee formulas — each theorem's formula
   is checked against hand-computed values and its structural properties
   (limits, monotonicity, consistency between strategies). *)

module G = Usched_core.Guarantees

let close = Alcotest.(check (float 1e-9))
let closeish = Alcotest.(check (float 1e-6))
let checkb = Alcotest.(check bool)

(* --- Theorem 1: lower bound --- *)

let th1_values () =
  (* alpha=2, m=6: 4*6/(4+5) = 24/9. *)
  close "alpha=2,m=6" (24.0 /. 9.0) (G.no_replication_lower_bound ~m:6 ~alpha:2.0);
  (* alpha=1: 1*m/(1+m-1) = 1 — no uncertainty, no penalty. *)
  close "alpha=1 collapses" 1.0 (G.no_replication_lower_bound ~m:10 ~alpha:1.0)

let th1_limit () =
  close "corollary: limit alpha^2" 4.0 (G.no_replication_lower_bound_limit ~alpha:2.0);
  (* Large m approaches the limit from below. *)
  let near = G.no_replication_lower_bound ~m:100_000_000 ~alpha:2.0 in
  checkb "below limit" true (near < 4.0);
  closeish "approaches limit" 4.0 near

(* --- Theorem 2: LPT-No Choice --- *)

let th2_values () =
  (* alpha=2, m=6: 2*4*6/(8+5) = 48/13. *)
  close "alpha=2,m=6" (48.0 /. 13.0) (G.lpt_no_choice ~m:6 ~alpha:2.0)

let th2_dominates_th1 () =
  (* An algorithm's guarantee can never undercut the impossibility. *)
  List.iter
    (fun m ->
      List.iter
        (fun alpha ->
          checkb "guarantee >= lower bound" true
            (G.lpt_no_choice ~m ~alpha
            >= G.no_replication_lower_bound ~m ~alpha -. 1e-12))
        [ 1.0; 1.1; 1.5; 2.0; 4.0 ])
    [ 1; 2; 5; 50; 1000 ]

(* --- Theorem 3: LPT-No Restriction --- *)

let th3_values () =
  (* alpha=2, m=4: 1 + (3/4)*2 = 2.5. *)
  close "alpha=2,m=4" 2.5 (G.lpt_no_restriction ~m:4 ~alpha:2.0);
  (* alpha=1, large m: 1 + (m-1)/2m -> 1.5 (the LPT-as-LS online bound). *)
  close "alpha=1,m=4" 1.375 (G.lpt_no_restriction ~m:4 ~alpha:1.0)

let th3_combined_with_graham () =
  (* For alpha^2 < 2 the Theorem-3 term wins; above, Graham's 2-1/m. *)
  let m = 10 in
  close "small alpha keeps Th3"
    (G.lpt_no_restriction ~m ~alpha:1.1)
    (G.full_replication ~m ~alpha:1.1);
  close "large alpha falls back to Graham"
    (G.list_scheduling ~m)
    (G.full_replication ~m ~alpha:2.0);
  (* Crossover at alpha^2 = 2 exactly (both equal 2 - 1/m). *)
  closeish "crossover" (G.list_scheduling ~m)
    (G.lpt_no_restriction ~m ~alpha:(sqrt 2.0))

(* --- Theorem 4: LS-Group --- *)

let th4_values () =
  (* k=1: 1*a2/a2*(1+0) + (m-1)/m = 1 + (m-1)/m — the full-replication
     LS-style bound. *)
  close "k=1" (1.0 +. (5.0 /. 6.0)) (G.ls_group ~m:6 ~k:1 ~alpha:2.0);
  (* k=m, alpha=1: m/(m)* (1+(m-1)/m) + 0 = 1 + (m-1)/m = 2 - 1/m. *)
  close "k=m, alpha=1 is Graham" (2.0 -. (1.0 /. 6.0)) (G.ls_group ~m:6 ~k:6 ~alpha:1.0)

let th4_monotone_in_k () =
  (* More groups = fewer replicas = weaker guarantee (for alpha > 1). *)
  let m = 210 and alpha = 2.0 in
  let ks = [ 1; 2; 3; 5; 6; 7; 10; 14; 15; 21; 30; 35; 42; 70; 105; 210 ] in
  let ratios = List.map (fun k -> G.ls_group ~m ~k ~alpha) ks in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  checkb "monotone" true (increasing ratios)

let th4_beats_no_choice_with_few_replicas () =
  (* The paper's headline: at alpha=2, m=210, LS-Group with ~3 replicas
     already beats LPT-No Choice's guarantee. *)
  let m = 210 and alpha = 2.0 in
  let no_choice = G.lpt_no_choice ~m ~alpha in
  checkb "k=70 (3 replicas) beats strategy 1" true
    (G.ls_group ~m ~k:70 ~alpha < no_choice)

let replication_of_groups () =
  Alcotest.(check int) "m/k" 3 (G.replication_of_groups ~m:210 ~k:70);
  Alcotest.check_raises "k must divide m"
    (Invalid_argument "Guarantees.replication_of_groups: k must divide m")
    (fun () -> ignore (G.replication_of_groups ~m:10 ~k:3))

(* --- Classical baselines --- *)

let classical_bounds () =
  close "LS" 1.75 (G.list_scheduling ~m:4);
  close "LPT" (4.0 /. 3.0 -. 1.0 /. 12.0) (G.lpt_offline ~m:4);
  close "MULTIFIT limit" (13.0 /. 11.0 +. 1.0) (G.multifit ~iterations:0);
  closeish "MULTIFIT converges" (13.0 /. 11.0) (G.multifit ~iterations:40)

(* --- Theorems 5-8: memory-aware --- *)

let sabo_values () =
  close "Th5" (2.0 *. 4.0 *. 1.5) (G.sabo_makespan ~alpha:2.0 ~delta:1.0 ~rho1:1.5);
  close "Th6" 3.0 (G.sabo_memory ~delta:1.0 ~rho2:1.5)

let abo_values () =
  close "Th7"
    (2.0 -. 0.2 +. (1.0 *. 4.0 *. 1.5))
    (G.abo_makespan ~m:5 ~alpha:2.0 ~delta:1.0 ~rho1:1.5);
  close "Th8" ((1.0 +. 5.0) *. 1.5) (G.abo_memory ~m:5 ~delta:1.0 ~rho2:1.5)

let sabo_tradeoff_shape () =
  (* Larger delta: worse makespan, better memory. *)
  checkb "makespan grows" true
    (G.sabo_makespan ~alpha:1.5 ~delta:2.0 ~rho1:1.0
    > G.sabo_makespan ~alpha:1.5 ~delta:0.5 ~rho1:1.0);
  checkb "memory shrinks" true
    (G.sabo_memory ~delta:2.0 ~rho2:1.0 < G.sabo_memory ~delta:0.5 ~rho2:1.0)

let crossover_rule () =
  checkb "alpha*rho >= 2: ABO wins" true
    (G.abo_beats_sabo_on_makespan ~alpha:2.0 ~rho1:1.0);
  checkb "alpha*rho < 2: no uniform winner" false
    (G.abo_beats_sabo_on_makespan ~alpha:1.2 ~rho1:1.0);
  (* Check the rule's claim numerically on its positive side: at
     alpha*rho1 >= 2, ABO's makespan guarantee is lower for every
     delta. *)
  let alpha = 2.0 and rho1 = 1.1 and m = 5 in
  List.iter
    (fun delta ->
      checkb "ABO <= SABO on makespan" true
        (G.abo_makespan ~m ~alpha ~delta ~rho1
        <= G.sabo_makespan ~alpha ~delta ~rho1 +. 1e-9))
    [ 0.1; 0.5; 1.0; 2.0; 10.0 ]

let sabo_dominates_abo_on_memory () =
  List.iter
    (fun delta ->
      checkb "SABO memory <= ABO memory" true
        (G.sabo_memory ~delta ~rho2:1.3 <= G.abo_memory ~m:5 ~delta ~rho2:1.3 +. 1e-9))
    [ 0.1; 0.5; 1.0; 2.0; 10.0 ]

let impossibility_hyperbola () =
  close "x=2 -> y=2" 2.0 (G.tradeoff_impossibility ~makespan_ratio:2.0);
  close "x=1.5 -> y=3" 3.0 (G.tradeoff_impossibility ~makespan_ratio:1.5);
  (* SBO with rho=1 is exactly on the hyperbola: (1+d)(1+1/d) point. *)
  let delta = 0.7 in
  close "SBO tightness"
    (G.sabo_memory ~delta ~rho2:1.0)
    (G.tradeoff_impossibility
       ~makespan_ratio:(G.sabo_makespan ~alpha:1.0 ~delta ~rho1:1.0))

let domain_checks () =
  Alcotest.check_raises "bad m" (Invalid_argument "Guarantees: m must be >= 1")
    (fun () -> ignore (G.list_scheduling ~m:0));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Guarantees: alpha must be >= 1")
    (fun () -> ignore (G.lpt_no_choice ~m:2 ~alpha:0.5));
  Alcotest.check_raises "bad delta" (Invalid_argument "Guarantees: delta must be > 0")
    (fun () -> ignore (G.sabo_memory ~delta:0.0 ~rho2:1.0));
  Alcotest.check_raises "bad k" (Invalid_argument "Guarantees.ls_group: need 1 <= k <= m")
    (fun () -> ignore (G.ls_group ~m:4 ~k:5 ~alpha:1.5));
  Alcotest.check_raises "bad ratio"
    (Invalid_argument "Guarantees.tradeoff_impossibility: ratio must be > 1")
    (fun () -> ignore (G.tradeoff_impossibility ~makespan_ratio:1.0))

let prop_all_guarantees_at_least_one =
  QCheck.Test.make ~name:"every competitive ratio is >= 1" ~count:300
    QCheck.(pair (int_range 1 500) (float_range 1.0 4.0))
    (fun (m, alpha) ->
      G.no_replication_lower_bound ~m ~alpha >= 1.0 -. 1e-12
      && G.lpt_no_choice ~m ~alpha >= 1.0 -. 1e-12
      && G.lpt_no_restriction ~m ~alpha >= 1.0 -. 1e-12
      && G.list_scheduling ~m >= 1.0
      && G.ls_group ~m ~k:1 ~alpha >= 1.0 -. 1e-12
      && G.ls_group ~m ~k:m ~alpha >= 1.0 -. 1e-12)

let prop_monotone_in_alpha =
  QCheck.Test.make ~name:"guarantees weaken as alpha grows" ~count:300
    QCheck.(triple (int_range 2 100) (float_range 1.0 3.0) (float_range 0.01 1.0))
    (fun (m, alpha, bump) ->
      let alpha' = alpha +. bump in
      G.lpt_no_choice ~m ~alpha <= G.lpt_no_choice ~m ~alpha:alpha' +. 1e-12
      && G.lpt_no_restriction ~m ~alpha
         <= G.lpt_no_restriction ~m ~alpha:alpha' +. 1e-12
      && G.no_replication_lower_bound ~m ~alpha
         <= G.no_replication_lower_bound ~m ~alpha:alpha' +. 1e-12)

let () =
  Alcotest.run "guarantees"
    [
      ( "replication bound model",
        [
          Alcotest.test_case "Th1 values" `Quick th1_values;
          Alcotest.test_case "Th1 limit" `Quick th1_limit;
          Alcotest.test_case "Th2 values" `Quick th2_values;
          Alcotest.test_case "Th2 above Th1" `Quick th2_dominates_th1;
          Alcotest.test_case "Th3 values" `Quick th3_values;
          Alcotest.test_case "Th3 + Graham" `Quick th3_combined_with_graham;
          Alcotest.test_case "Th4 values" `Quick th4_values;
          Alcotest.test_case "Th4 monotone in k" `Quick th4_monotone_in_k;
          Alcotest.test_case "Th4 beats strategy 1" `Quick
            th4_beats_no_choice_with_few_replicas;
          Alcotest.test_case "replication of groups" `Quick replication_of_groups;
          Alcotest.test_case "classical bounds" `Quick classical_bounds;
        ] );
      ( "memory-aware model",
        [
          Alcotest.test_case "SABO values" `Quick sabo_values;
          Alcotest.test_case "ABO values" `Quick abo_values;
          Alcotest.test_case "SABO tradeoff shape" `Quick sabo_tradeoff_shape;
          Alcotest.test_case "crossover rule" `Quick crossover_rule;
          Alcotest.test_case "SABO memory dominance" `Quick
            sabo_dominates_abo_on_memory;
          Alcotest.test_case "impossibility hyperbola" `Quick impossibility_hyperbola;
        ] );
      ( "domains and properties",
        Alcotest.test_case "domain checks" `Quick domain_checks
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_all_guarantees_at_least_one; prop_monotone_in_alpha ] );
    ]
