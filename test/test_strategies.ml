(* Tests for the three replication strategies of the paper. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance_of ?(m = 2) ?(alpha = 1.5) ests =
  Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha) ests

(* --- Strategy 1: no replication --- *)

let lpt_no_choice_placement_is_lpt () =
  let instance = instance_of ~m:2 [| 1.0; 5.0; 3.0 |] in
  let p = Core.No_replication.lpt_no_choice.Core.Two_phase.phase1 instance in
  checki "singleton everywhere" 1 (Core.Placement.max_replication p);
  (* LPT on (1,5,3): 5 -> m0, 3 -> m1, 1 -> m1. *)
  checkb "task 1 on m0" true (Core.Placement.allowed p ~task:1 ~machine:0);
  checkb "task 2 on m1" true (Core.Placement.allowed p ~task:2 ~machine:1);
  checkb "task 0 on m1" true (Core.Placement.allowed p ~task:0 ~machine:1)

let lpt_no_choice_static_under_perturbation () =
  (* However the actual times land, tasks stay on their phase-1 machine. *)
  let instance = instance_of ~m:2 ~alpha:2.0 [| 4.0; 4.0; 4.0; 4.0 |] in
  let placement =
    Core.No_replication.lpt_no_choice.Core.Two_phase.phase1 instance
  in
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 10 do
    let realization = Realization.uniform_factor instance rng in
    let s =
      Core.No_replication.lpt_no_choice.Core.Two_phase.phase2 instance placement
        realization
    in
    Array.iteri
      (fun j _ ->
        checkb "pinned" true
          (Core.Placement.allowed placement ~task:j
             ~machine:(Schedule.machine_of s j)))
      (Instance.tasks instance)
  done

let lpt_no_choice_exact_alpha_matches_offline_lpt () =
  (* With alpha = 1 the two-phase pipeline is exactly offline LPT. *)
  let instance = instance_of ~m:3 ~alpha:1.0 [| 9.0; 7.0; 6.0; 5.0; 4.0; 2.0 |] in
  let realization = Realization.exact instance in
  let two_phase =
    Core.Two_phase.makespan Core.No_replication.lpt_no_choice instance realization
  in
  let offline =
    Core.Assign.makespan (Core.Assign.lpt ~m:3 ~weights:(Instance.ests instance))
  in
  close "same makespan" offline two_phase

(* --- Strategy 2: full replication --- *)

let lpt_no_restriction_adapts () =
  (* Estimates say tasks 0,1 are long; reality reverses it. Full
     replication lets phase 2 rebalance; no replication cannot. *)
  let instance = instance_of ~m:2 ~alpha:3.0 [| 6.0; 6.0; 2.0; 2.0; 2.0; 2.0 |] in
  let actuals = [| 2.0; 2.0; 6.0; 6.0; 2.0; 2.0 |] in
  let realization = Realization.of_actuals instance actuals in
  let flexible =
    Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction instance
      realization
  in
  let pinned =
    Core.Two_phase.makespan Core.No_replication.lpt_no_choice instance realization
  in
  checkb "replication adapts at least as well" true (flexible <= pinned +. 1e-9)

let ls_no_restriction_is_graham () =
  (* Submission-order online LS on exact times: textbook example. *)
  let instance = instance_of ~m:2 ~alpha:1.0 [| 3.0; 3.0; 2.0; 2.0 |] in
  let realization = Realization.exact instance in
  let s =
    Core.Two_phase.run Core.Full_replication.ls_no_restriction instance
      realization
  in
  close "LS makespan" 5.0 (Schedule.makespan s)

let full_replication_placement () =
  let instance = instance_of ~m:3 [| 1.0; 1.0 |] in
  let p = Core.Full_replication.lpt_no_restriction.Core.Two_phase.phase1 instance in
  checki "replicated everywhere" 3 (Core.Placement.max_replication p)

(* --- Strategy 3: groups --- *)

let machine_groups_divisible () =
  let groups = Core.Group_replication.machine_groups ~m:6 ~k:2 in
  Alcotest.(check (array (array int))) "contiguous halves"
    [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |]
    groups

let machine_groups_uneven () =
  let groups = Core.Group_replication.machine_groups ~m:7 ~k:3 in
  checki "three groups" 3 (Array.length groups);
  Alcotest.(check (list int)) "sizes 3,2,2"
    [ 3; 2; 2 ]
    (Array.to_list (Array.map Array.length groups));
  (* Every machine appears exactly once. *)
  let all = Array.concat (Array.to_list groups) in
  Array.sort compare all;
  Alcotest.(check (array int)) "partition" (Array.init 7 (fun i -> i)) all

let machine_groups_bounds () =
  Alcotest.check_raises "k too large"
    (Invalid_argument "Group_replication: need 1 <= k <= m") (fun () ->
      ignore (Core.Group_replication.machine_groups ~m:3 ~k:4))

let group_assignment_balances_groups () =
  (* 4 equal tasks over 2 groups: 2 in each. *)
  let instance = instance_of ~m:4 [| 2.0; 2.0; 2.0; 2.0 |] in
  let a =
    Core.Group_replication.group_assignment ~order:`Submission ~k:2 instance
  in
  let count g = Array.fold_left (fun acc x -> if x = g then acc + 1 else acc) 0 a in
  checki "group 0 gets 2" 2 (count 0);
  checki "group 1 gets 2" 2 (count 1)

let ls_group_k1_equals_full_replication () =
  let instance = instance_of ~m:3 ~alpha:2.0 [| 5.0; 4.0; 3.0; 2.0; 1.0 |] in
  let rng = Rng.create ~seed:8 () in
  let realization = Realization.uniform_factor instance rng in
  let group =
    Core.Two_phase.makespan (Core.Group_replication.ls_group ~k:1) instance
      realization
  in
  let full =
    Core.Two_phase.makespan Core.Full_replication.ls_no_restriction instance
      realization
  in
  close "k=1 is full replication with LS order" full group

let ls_group_km_is_singleton () =
  let instance = instance_of ~m:3 [| 5.0; 4.0; 3.0 |] in
  let p =
    (Core.Group_replication.ls_group ~k:3).Core.Two_phase.phase1 instance
  in
  checki "groups of one machine" 1 (Core.Placement.max_replication p)

let ls_group_respects_groups () =
  let instance = instance_of ~m:6 ~alpha:2.0 (Array.make 12 1.0) in
  let rng = Rng.create ~seed:9 () in
  let realization = Realization.extremes ~p_high:0.5 instance rng in
  let algo = Core.Group_replication.ls_group ~k:2 in
  let placement, schedule = Core.Two_phase.run_full algo instance realization in
  Alcotest.(check (list string)) "valid vs placement" []
    (List.map
       (Format.asprintf "%a" Schedule.pp_violation)
       (Schedule.validate ~placement:(Core.Placement.sets placement) instance
          realization schedule))

let lpt_group_uses_lpt_order () =
  (* Within one group of all machines, LPT-Group = LPT-No Restriction. *)
  let instance = instance_of ~m:3 ~alpha:2.0 [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  let rng = Rng.create ~seed:10 () in
  let realization = Realization.uniform_factor instance rng in
  close "k=1 LPT group = LPT no restriction"
    (Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction instance
       realization)
    (Core.Two_phase.makespan (Core.Group_replication.lpt_group ~k:1) instance
       realization)

let () =
  Alcotest.run "strategies"
    [
      ( "no replication",
        [
          Alcotest.test_case "placement is LPT" `Quick lpt_no_choice_placement_is_lpt;
          Alcotest.test_case "static under perturbation" `Quick
            lpt_no_choice_static_under_perturbation;
          Alcotest.test_case "alpha=1 is offline LPT" `Quick
            lpt_no_choice_exact_alpha_matches_offline_lpt;
        ] );
      ( "full replication",
        [
          Alcotest.test_case "adapts to reversals" `Quick lpt_no_restriction_adapts;
          Alcotest.test_case "LS online example" `Quick ls_no_restriction_is_graham;
          Alcotest.test_case "placement everywhere" `Quick full_replication_placement;
        ] );
      ( "groups",
        [
          Alcotest.test_case "divisible groups" `Quick machine_groups_divisible;
          Alcotest.test_case "uneven groups" `Quick machine_groups_uneven;
          Alcotest.test_case "bounds" `Quick machine_groups_bounds;
          Alcotest.test_case "balanced assignment" `Quick
            group_assignment_balances_groups;
          Alcotest.test_case "k=1 = full replication" `Quick
            ls_group_k1_equals_full_replication;
          Alcotest.test_case "k=m = singletons" `Quick ls_group_km_is_singleton;
          Alcotest.test_case "stays in groups" `Quick ls_group_respects_groups;
          Alcotest.test_case "LPT-Group order" `Quick lpt_group_uses_lpt_order;
        ] );
    ]
