(* Unit and property tests for the phase-2 execution engine. *)

module Engine = Usched_desim.Engine
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let submission_order n = Array.init n (fun j -> j)

let instance_of ests =
  Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact ests

let graham_ls_example () =
  (* 4 tasks (3,3,2,2) on 2 machines, submission order: t0->m0, t1->m1,
     then at time 3 both idle, t2->m0, t3->m1. Makespan 5. *)
  let instance = instance_of [| 3.0; 3.0; 2.0; 2.0 |] in
  let realization = Realization.exact instance in
  let placement = Array.init 4 (fun _ -> Bitset.full 2) in
  let s = Engine.run instance realization ~placement ~order:(submission_order 4) in
  close "makespan" 5.0 (Schedule.makespan s);
  Alcotest.(check (array int)) "round robin by idleness" [| 0; 1; 0; 1 |]
    (Schedule.assignment s)

let online_lpt_order () =
  (* Order by decreasing estimate changes who goes first. *)
  let instance = instance_of [| 1.0; 5.0; 3.0 |] in
  let realization = Realization.exact instance in
  let placement = Array.init 3 (fun _ -> Bitset.full 2) in
  let order = [| 1; 2; 0 |] in
  let s = Engine.run instance realization ~placement ~order in
  Alcotest.(check int) "longest first on machine 0" 0 (Schedule.machine_of s 1);
  Alcotest.(check int) "second on machine 1" 1 (Schedule.machine_of s 2);
  (* Machine 1 (busy 3.0) frees before machine 0 (busy 5.0). *)
  Alcotest.(check int) "third to first idle" 1 (Schedule.machine_of s 0);
  close "makespan" 5.0 (Schedule.makespan s)

let respects_singleton_placement () =
  let instance = instance_of [| 1.0; 1.0; 1.0; 1.0 |] in
  let realization = Realization.exact instance in
  (* All pinned to machine 1. *)
  let placement = Array.init 4 (fun _ -> Bitset.singleton 2 1) in
  let s = Engine.run instance realization ~placement ~order:(submission_order 4) in
  close "serialized" 4.0 (Schedule.makespan s);
  Array.iteri
    (fun j _ -> Alcotest.(check int) "on machine 1" 1 (Schedule.machine_of s j))
    (Instance.tasks instance)

let respects_group_placement () =
  let instance =
    Instance.of_ests ~m:4 ~alpha:Uncertainty.alpha_exact
      [| 2.0; 2.0; 2.0; 2.0; 2.0; 2.0 |]
  in
  let realization = Realization.exact instance in
  let g0 = Bitset.of_list 4 [ 0; 1 ] and g1 = Bitset.of_list 4 [ 2; 3 ] in
  let placement = [| g0; g0; g0; g1; g1; g1 |] in
  let s = Engine.run instance realization ~placement ~order:(submission_order 6) in
  List.iter
    (fun j ->
      checkb "group 0 tasks stay in group 0" true (Schedule.machine_of s j < 2))
    [ 0; 1; 2 ];
  List.iter
    (fun j ->
      checkb "group 1 tasks stay in group 1" true (Schedule.machine_of s j >= 2))
    [ 3; 4; 5 ];
  close "balanced inside groups" 4.0 (Schedule.makespan s)

let semi_clairvoyance () =
  (* Actual times differ from estimates; dispatch happens at *actual* idle
     times: t0 est 4 actual 1 on m0, t1 est 3 actual 6 on m1; the third
     task must go to m0, which frees first in reality. *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 4.0) [| 4.0; 3.0; 1.0 |]
  in
  let realization = Realization.of_actuals instance [| 1.0; 6.0; 1.0 |] in
  let placement = Array.init 3 (fun _ -> Bitset.full 2) in
  let order = [| 0; 1; 2 |] in
  let s = Engine.run instance realization ~placement ~order in
  Alcotest.(check int) "third task follows actual idleness" 0
    (Schedule.machine_of s 2);
  close "makespan" 6.0 (Schedule.makespan s)

let deterministic_tie_breaking () =
  let instance = instance_of [| 1.0; 1.0 |] in
  let realization = Realization.exact instance in
  let placement = Array.init 2 (fun _ -> Bitset.full 2) in
  let s = Engine.run instance realization ~placement ~order:(submission_order 2) in
  (* Both machines idle at 0; lower machine id serves the first task. *)
  Alcotest.(check int) "task 0 on machine 0" 0 (Schedule.machine_of s 0);
  Alcotest.(check int) "task 1 on machine 1" 1 (Schedule.machine_of s 1)

let rejects_empty_placement () =
  let instance = instance_of [| 1.0 |] in
  let realization = Realization.exact instance in
  let placement = [| Bitset.create 2 |] in
  Alcotest.check_raises "empty set"
    (Invalid_argument "Engine.run: task 0 is placed nowhere") (fun () ->
      ignore (Engine.run instance realization ~placement ~order:[| 0 |]))

let rejects_bad_order () =
  let instance = instance_of [| 1.0; 1.0 |] in
  let realization = Realization.exact instance in
  let placement = Array.init 2 (fun _ -> Bitset.full 2) in
  Alcotest.check_raises "duplicate order"
    (Invalid_argument "Engine.run: order is not a permutation of task ids")
    (fun () -> ignore (Engine.run instance realization ~placement ~order:[| 0; 0 |]))

let rejects_wrong_capacity () =
  let instance = instance_of [| 1.0 |] in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 3 |] in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Engine.run: placement of task 0 has wrong capacity")
    (fun () -> ignore (Engine.run instance realization ~placement ~order:[| 0 |]))

let trace_is_chronological_and_complete () =
  let instance = instance_of [| 2.0; 1.0; 1.0 |] in
  let realization = Realization.exact instance in
  let placement = Array.init 3 (fun _ -> Bitset.full 2) in
  let _, events =
    Engine.run_traced instance realization ~placement ~order:(submission_order 3)
  in
  let times =
    List.map
      (function
        | Engine.Started { time; _ } | Engine.Completed { time; _ } -> time
        | _ -> Alcotest.fail "run_traced emitted a fault event")
      events
  in
  Alcotest.(check int) "2 events per task" 6 (List.length events);
  checkb "sorted by time" true (List.sort Float.compare times = times)

let no_idle_while_work_eligible () =
  (* Graham's property: when every task is eligible everywhere, no machine
     idles while unscheduled tasks remain. Check via start times: task
     start <= sum of all previous finish "gaps" — simpler: every start
     time equals some earlier finish time or 0. *)
  let rng = Rng.create ~seed:9 () in
  for _ = 1 to 20 do
    let n = 5 + Rng.int rng 20 in
    let ests = Array.init n (fun _ -> 0.5 +. Rng.float rng) in
    let instance = Instance.of_ests ~m:3 ~alpha:Uncertainty.alpha_exact ests in
    let realization = Realization.exact instance in
    let placement = Array.init n (fun _ -> Bitset.full 3) in
    let s = Engine.run instance realization ~placement ~order:(submission_order n) in
    (* List scheduling bound must hold. *)
    let total = Array.fold_left ( +. ) 0.0 ests in
    let pmax = Array.fold_left Float.max 0.0 ests in
    checkb "LS bound" true
      (Schedule.makespan s <= (total /. 3.0) +. (2.0 /. 3.0 *. pmax) +. 1e-9)
  done

let stress_large_instance () =
  (* 100k tasks on 64 machines, full replication: the cursor-based scan
     must stay near O(m*n). Checks completion and the LS bound. *)
  let n = 100_000 and m = 64 in
  let rng = Rng.create ~seed:77 () in
  let ests = Array.init n (fun _ -> 0.1 +. Rng.float rng) in
  let instance = Instance.of_ests ~m ~alpha:Uncertainty.alpha_exact ests in
  let realization = Realization.exact instance in
  let placement = Array.init n (fun _ -> Bitset.full m) in
  let started = Unix.gettimeofday () in
  let s = Engine.run instance realization ~placement ~order:(submission_order n) in
  let elapsed = Unix.gettimeofday () -. started in
  let total = Array.fold_left ( +. ) 0.0 ests in
  let pmax = Array.fold_left Float.max 0.0 ests in
  checkb "LS bound at scale" true
    (Schedule.makespan s
    <= (total /. float_of_int m) +. ((float_of_int (m - 1) /. float_of_int m) *. pmax) +. 1e-6);
  checkb "finishes in reasonable time" true (elapsed < 30.0)

let stress_group_placement () =
  (* 50k tasks in 8 groups: per-machine cursors skip foreign-group tasks
     permanently, so this must not be quadratic either. *)
  let n = 50_000 and m = 32 in
  let rng = Rng.create ~seed:78 () in
  let ests = Array.init n (fun _ -> 0.1 +. Rng.float rng) in
  let instance = Instance.of_ests ~m ~alpha:Uncertainty.alpha_exact ests in
  let realization = Realization.exact instance in
  let group_sets =
    Array.init 8 (fun g -> Bitset.of_list m (List.init 4 (fun i -> (4 * g) + i)))
  in
  let placement = Array.init n (fun j -> group_sets.(j mod 8)) in
  let started = Unix.gettimeofday () in
  let s = Engine.run instance realization ~placement ~order:(submission_order n) in
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check int) "all tasks scheduled" n (Schedule.n s);
  checkb "finishes in reasonable time" true (elapsed < 30.0)

let prop_valid_schedules =
  QCheck.Test.make ~name:"engine output always validates" ~count:200
    QCheck.(
      triple (int_range 1 6)
        (list_of_size Gen.(int_range 1 25) (float_range 0.1 10.0))
        (int_bound 1000))
    (fun (m, ests, seed) ->
      let n = List.length ests in
      let instance =
        Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) (Array.of_list ests)
      in
      let rng = Rng.create ~seed ()  in
      let realization = Realization.uniform_factor instance rng in
      (* Random placement: each task gets a random nonempty machine set. *)
      let placement =
        Array.init n (fun _ ->
            let set = Bitset.create m in
            Bitset.add set (Rng.int rng m);
            for i = 0 to m - 1 do
              if Rng.bernoulli rng ~p:0.3 then Bitset.add set i
            done;
            set)
      in
      let order = Array.init n (fun j -> j) in
      Rng.shuffle rng order;
      let s = Engine.run instance realization ~placement ~order in
      Schedule.validate ~placement instance realization s = []
      && Schedule.n s = n)

let prop_trace_matches_schedule =
  QCheck.Test.make ~name:"trace events agree with the schedule" ~count:150
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 15) (float_range 0.1 5.0)))
    (fun (m, ests) ->
      let n = List.length ests in
      let instance =
        Instance.of_ests ~m ~alpha:Uncertainty.alpha_exact (Array.of_list ests)
      in
      let realization = Realization.exact instance in
      let placement = Array.init n (fun _ -> Bitset.full m) in
      let schedule, events =
        Engine.run_traced instance realization ~placement
          ~order:(Array.init n (fun j -> j))
      in
      List.for_all
        (fun event ->
          match event with
          | Engine.Started { time; machine; task } ->
              let e = Schedule.entry schedule task in
              e.Schedule.machine = machine
              && Float.abs (e.Schedule.start -. time) < 1e-12
          | Engine.Completed { time; machine; task } ->
              let e = Schedule.entry schedule task in
              e.Schedule.machine = machine
              && Float.abs (e.Schedule.finish -. time) < 1e-12
          | _ -> false (* run_traced never emits fault events *))
        events
      && List.length events = 2 * n)

let prop_makespan_is_max_load =
  QCheck.Test.make ~name:"makespan equals max machine load (no idle gaps)"
    ~count:200
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_range 1 20) (float_range 0.1 5.0)))
    (fun (m, ests) ->
      let n = List.length ests in
      let instance =
        Instance.of_ests ~m ~alpha:Uncertainty.alpha_exact (Array.of_list ests)
      in
      let realization = Realization.exact instance in
      let placement = Array.init n (fun _ -> Bitset.full m) in
      let s =
        Engine.run instance realization ~placement
          ~order:(Array.init n (fun j -> j))
      in
      let max_load = Array.fold_left Float.max 0.0 (Schedule.loads s) in
      Float.abs (Schedule.makespan s -. max_load) < 1e-9)

let () =
  Alcotest.run "engine"
    [
      ( "unit",
        [
          Alcotest.test_case "Graham LS example" `Quick graham_ls_example;
          Alcotest.test_case "online LPT order" `Quick online_lpt_order;
          Alcotest.test_case "singleton placement" `Quick respects_singleton_placement;
          Alcotest.test_case "group placement" `Quick respects_group_placement;
          Alcotest.test_case "semi-clairvoyance" `Quick semi_clairvoyance;
          Alcotest.test_case "tie breaking" `Quick deterministic_tie_breaking;
          Alcotest.test_case "rejects empty placement" `Quick rejects_empty_placement;
          Alcotest.test_case "rejects bad order" `Quick rejects_bad_order;
          Alcotest.test_case "rejects wrong capacity" `Quick rejects_wrong_capacity;
          Alcotest.test_case "trace" `Quick trace_is_chronological_and_complete;
          Alcotest.test_case "LS bound sanity" `Quick no_idle_while_work_eligible;
        ] );
      ( "stress",
        [
          Alcotest.test_case "100k tasks full replication" `Slow
            stress_large_instance;
          Alcotest.test_case "50k tasks in groups" `Slow stress_group_placement;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_valid_schedules;
            prop_makespan_is_max_load;
            prop_trace_matches_schedule;
          ] );
    ]
